// Unit tests for the history recorder, the impact checkers, and the
// linearizability checker.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "check/history.h"
#include "check/linearizability.h"

namespace check {
namespace {

Operation MakeOp(int client, OpType type, const std::string& key, const std::string& value,
                 OpStatus status, sim::Time invoked, sim::Time completed,
                 bool final_read = false) {
  Operation op;
  op.client = client;
  op.type = type;
  op.key = key;
  op.value = value;
  op.status = status;
  op.invoked = invoked;
  op.completed = completed;
  op.final_read = final_read;
  return op;
}

TEST(HistoryTest, RecordAssignsSequentialIds) {
  History h;
  EXPECT_EQ(h.Record(MakeOp(1, OpType::kWrite, "k", "v", OpStatus::kOk, 0, 1)), 1u);
  EXPECT_EQ(h.Record(MakeOp(1, OpType::kRead, "k", "v", OpStatus::kOk, 2, 3)), 2u);
  EXPECT_EQ(h.size(), 2u);
}

TEST(HistoryTest, LastAckedWritePicksLatestCompletion) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "v1", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kWrite, "k", "v2", OpStatus::kOk, 11, 20));
  h.Record(MakeOp(1, OpType::kWrite, "k", "v3", OpStatus::kFail, 21, 30));
  auto last = h.LastAckedWrite("k");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->value, "v2");
  EXPECT_FALSE(h.LastAckedWrite("other").has_value());
}

TEST(HistoryTest, FiltersByTypeAndKey) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "a", "1", OpStatus::kOk, 0, 1));
  h.Record(MakeOp(1, OpType::kRead, "a", "1", OpStatus::kOk, 2, 3));
  h.Record(MakeOp(2, OpType::kWrite, "b", "2", OpStatus::kOk, 4, 5));
  EXPECT_EQ(h.OfType(OpType::kWrite).size(), 2u);
  EXPECT_EQ(h.ForKey("a").size(), 2u);
}

TEST(CheckDirtyReads, DetectsValueOfFailedWrite) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "dirty", OpStatus::kFail, 0, 10));
  h.Record(MakeOp(1, OpType::kRead, "k", "dirty", OpStatus::kOk, 20, 21));
  auto violations = CheckDirtyReads(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "dirty read");
}

TEST(CheckDirtyReads, CleanHistoryPasses) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "v", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kRead, "k", "v", OpStatus::kOk, 20, 21));
  EXPECT_TRUE(CheckDirtyReads(h).empty());
}

TEST(CheckStaleReads, DetectsSupersededValue) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "old", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kWrite, "k", "new", OpStatus::kOk, 11, 20));
  h.Record(MakeOp(2, OpType::kRead, "k", "old", OpStatus::kOk, 30, 31));
  auto violations = CheckStaleReads(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "stale read");
}

TEST(CheckStaleReads, ConcurrentReadIsNotStale) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "old", OpStatus::kOk, 0, 10));
  // Read overlaps the second write, so returning "old" is legal.
  h.Record(MakeOp(1, OpType::kWrite, "k", "new", OpStatus::kOk, 11, 20));
  h.Record(MakeOp(2, OpType::kRead, "k", "old", OpStatus::kOk, 15, 16));
  EXPECT_TRUE(CheckStaleReads(h).empty());
}

TEST(CheckDataLoss, DetectsMissingAckedWrite) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "kept", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kRead, "k", "", OpStatus::kOk, 100, 101, /*final_read=*/true));
  auto violations = CheckDataLoss(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "data loss");
}

TEST(CheckDataLoss, NonFinalReadIsIgnored) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "kept", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kRead, "k", "", OpStatus::kOk, 100, 101));
  EXPECT_TRUE(CheckDataLoss(h).empty());
}

TEST(CheckDataLoss, AckedDeleteLegitimatelyEmptiesKey) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "v", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kDelete, "k", "", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kRead, "k", "", OpStatus::kOk, 100, 101, /*final_read=*/true));
  EXPECT_TRUE(CheckDataLoss(h).empty());
}

TEST(CheckReappearance, DetectsResurrectedValue) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "ghost", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kDelete, "k", "", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kRead, "k", "ghost", OpStatus::kOk, 100, 101,
                  /*final_read=*/true));
  auto violations = CheckReappearance(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "reappearance of deleted data");
}

TEST(CheckReappearance, RewrittenValueIsLegal) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "v", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kDelete, "k", "", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(1, OpType::kWrite, "k", "v", OpStatus::kOk, 40, 50));
  h.Record(MakeOp(2, OpType::kRead, "k", "v", OpStatus::kOk, 100, 101, /*final_read=*/true));
  EXPECT_TRUE(CheckReappearance(h).empty());
}

TEST(CheckBrokenLocks, DetectsDoubleLocking) {
  History h;
  h.Record(MakeOp(1, OpType::kLock, "L", "", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kLock, "L", "", OpStatus::kOk, 20, 30));
  auto violations = CheckBrokenLocks(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "broken locks");
}

TEST(CheckBrokenLocks, SequentialLockingIsLegal) {
  History h;
  h.Record(MakeOp(1, OpType::kLock, "L", "", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kUnlock, "L", "", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kLock, "L", "", OpStatus::kOk, 40, 50));
  EXPECT_TRUE(CheckBrokenLocks(h).empty());
}

TEST(CheckBrokenLocks, DifferentLocksDoNotConflict) {
  History h;
  h.Record(MakeOp(1, OpType::kLock, "L1", "", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kLock, "L2", "", OpStatus::kOk, 20, 30));
  EXPECT_TRUE(CheckBrokenLocks(h).empty());
}

TEST(CheckSemaphore, DetectsPermitOverflow) {
  History h;
  h.Record(MakeOp(1, OpType::kSemAcquire, "S", "", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kSemAcquire, "S", "", OpStatus::kOk, 20, 30));
  EXPECT_TRUE(CheckSemaphore(h, "S", 2).empty());
  auto violations = CheckSemaphore(h, "S", 1);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "broken locks");
}

TEST(CheckSemaphore, ReleaseFreesPermit) {
  History h;
  h.Record(MakeOp(1, OpType::kSemAcquire, "S", "", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kSemRelease, "S", "", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kSemAcquire, "S", "", OpStatus::kOk, 40, 50));
  EXPECT_TRUE(CheckSemaphore(h, "S", 1).empty());
}

TEST(CheckDoubleDequeue, DetectsDuplicateDelivery) {
  History h;
  h.Record(MakeOp(1, OpType::kEnqueue, "q", "m1", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kDequeue, "q", "m1", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kDequeue, "q", "m1", OpStatus::kOk, 40, 50));
  auto violations = CheckDoubleDequeue(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "double dequeue");
}

TEST(CheckLostMessages, DetectsUndeliveredEnqueueAfterDrain) {
  History h;
  h.Record(MakeOp(1, OpType::kEnqueue, "q", "m1", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kDequeue, "q", "", OpStatus::kOk, 100, 101,
                  /*final_read=*/true));
  auto violations = CheckLostMessages(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "data loss");
}

TEST(CheckLostMessages, NoDrainNoVerdict) {
  History h;
  h.Record(MakeOp(1, OpType::kEnqueue, "q", "m1", OpStatus::kOk, 0, 10));
  EXPECT_TRUE(CheckLostMessages(h).empty());
}

TEST(CheckDoubleExecution, CountsTaskRuns) {
  std::vector<TaskExecution> execs{{"t1", 1, 10}, {"t1", 2, 20}, {"t2", 1, 30}};
  auto violations = CheckDoubleExecution(execs);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "double execution");
}

TEST(CheckAllTest, AggregatesAllCheckers) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "dirty", OpStatus::kFail, 0, 10));
  h.Record(MakeOp(1, OpType::kRead, "k", "dirty", OpStatus::kOk, 20, 21));
  h.Record(MakeOp(1, OpType::kLock, "L", "", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kLock, "L", "", OpStatus::kOk, 20, 30));
  auto violations = CheckAll(h);
  EXPECT_EQ(violations.size(), 2u);
  EXPECT_FALSE(FormatViolations(violations).empty());
}

TEST(CheckCounterUniqueness, DetectsDuplicateAssignments) {
  History h;
  Operation op = MakeOp(1, OpType::kOther, "seq", "", OpStatus::kOk, 0, 10);
  op.value = "5";
  h.Record(op);
  op.client = 2;
  op.invoked = 20;
  op.completed = 30;
  h.Record(op);
  auto violations = CheckCounterUniqueness(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "broken locks");
}

TEST(CheckCounterUniqueness, UniqueValuesPass) {
  History h;
  Operation op = MakeOp(1, OpType::kOther, "seq", "", OpStatus::kOk, 0, 10);
  op.value = "5";
  h.Record(op);
  op.value = "6";
  h.Record(op);
  EXPECT_TRUE(CheckCounterUniqueness(h).empty());
}

TEST(CheckCounterUniqueness, DifferentCountersDoNotCollide) {
  History h;
  Operation op = MakeOp(1, OpType::kOther, "seq-a", "", OpStatus::kOk, 0, 10);
  op.value = "5";
  h.Record(op);
  op.key = "seq-b";
  h.Record(op);
  EXPECT_TRUE(CheckCounterUniqueness(h).empty());
}

// --- linearizability ---

TEST(Linearizability, SequentialHistoryIsLinearizable) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "a", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kRead, "k", "a", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(1, OpType::kWrite, "k", "b", OpStatus::kOk, 40, 50));
  h.Record(MakeOp(1, OpType::kRead, "k", "b", OpStatus::kOk, 60, 70));
  EXPECT_TRUE(CheckLinearizable(h).linearizable);
}

TEST(Linearizability, StaleReadIsNotLinearizable) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "a", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kWrite, "k", "b", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kRead, "k", "a", OpStatus::kOk, 40, 50));
  EXPECT_FALSE(CheckLinearizable(h).linearizable);
}

TEST(Linearizability, ConcurrentWritesAllowEitherOrder) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "a", OpStatus::kOk, 0, 100));
  h.Record(MakeOp(2, OpType::kWrite, "k", "b", OpStatus::kOk, 0, 100));
  h.Record(MakeOp(3, OpType::kRead, "k", "a", OpStatus::kOk, 200, 210));
  EXPECT_TRUE(CheckLinearizable(h).linearizable);
  History h2;
  h2.Record(MakeOp(1, OpType::kWrite, "k", "a", OpStatus::kOk, 0, 100));
  h2.Record(MakeOp(2, OpType::kWrite, "k", "b", OpStatus::kOk, 0, 100));
  h2.Record(MakeOp(3, OpType::kRead, "k", "b", OpStatus::kOk, 200, 210));
  EXPECT_TRUE(CheckLinearizable(h2).linearizable);
}

TEST(Linearizability, ReadOfUnwrittenValueFails) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "a", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kRead, "k", "phantom", OpStatus::kOk, 20, 30));
  EXPECT_FALSE(CheckLinearizable(h).linearizable);
}

TEST(Linearizability, TimedOutWriteMayOrMayNotTakeEffect) {
  // The write timed out: reading either the old or the new value is legal.
  History a;
  a.Record(MakeOp(1, OpType::kWrite, "k", "v1", OpStatus::kOk, 0, 10));
  a.Record(MakeOp(1, OpType::kWrite, "k", "v2", OpStatus::kTimeout, 20, 30));
  a.Record(MakeOp(2, OpType::kRead, "k", "v1", OpStatus::kOk, 40, 50));
  EXPECT_TRUE(CheckLinearizable(a).linearizable);
  History b;
  b.Record(MakeOp(1, OpType::kWrite, "k", "v1", OpStatus::kOk, 0, 10));
  b.Record(MakeOp(1, OpType::kWrite, "k", "v2", OpStatus::kTimeout, 20, 30));
  b.Record(MakeOp(2, OpType::kRead, "k", "v2", OpStatus::kOk, 40, 50));
  EXPECT_TRUE(CheckLinearizable(b).linearizable);
}

TEST(Linearizability, TimedOutWriteCannotUnhappenAfterObserved) {
  // Once a later read observed v2, an even later read cannot regress to v1.
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k", "v1", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kWrite, "k", "v2", OpStatus::kTimeout, 20, 30));
  h.Record(MakeOp(2, OpType::kRead, "k", "v2", OpStatus::kOk, 40, 50));
  h.Record(MakeOp(2, OpType::kRead, "k", "v1", OpStatus::kOk, 60, 70));
  EXPECT_FALSE(CheckLinearizable(h).linearizable);
}

TEST(Linearizability, InitialValueIsEmpty) {
  History h;
  h.Record(MakeOp(1, OpType::kRead, "k", "", OpStatus::kOk, 0, 10));
  EXPECT_TRUE(CheckLinearizable(h).linearizable);
  History bad;
  bad.Record(MakeOp(1, OpType::kRead, "k", "", OpStatus::kOk, 20, 30));
  bad.Record(MakeOp(1, OpType::kWrite, "k", "v", OpStatus::kOk, 0, 10));
  EXPECT_FALSE(CheckLinearizable(bad).linearizable);
}

TEST(Linearizability, KeysAreIndependent) {
  History h;
  h.Record(MakeOp(1, OpType::kWrite, "k1", "a", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(1, OpType::kWrite, "k2", "b", OpStatus::kOk, 0, 10));
  h.Record(MakeOp(2, OpType::kRead, "k1", "a", OpStatus::kOk, 20, 30));
  h.Record(MakeOp(2, OpType::kRead, "k2", "b", OpStatus::kOk, 20, 30));
  EXPECT_TRUE(CheckLinearizable(h).linearizable);
}

// --- differential check against a brute-force reference ---

// The reference model, independent of the Wing & Gong search: a history is
// linearizable iff SOME permutation of its operations (a) respects real-time
// precedence — op A precedes op B whenever A.completed <= B.invoked, the
// same tie rule CheckLinearizableKey uses — and (b) satisfies register
// semantics from the initial value "".
bool OrderRespectsRealTime(const std::vector<Operation>& ops, const std::vector<int>& order) {
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = i + 1; j < order.size(); ++j) {
      // ops[order[j]] is linearized after ops[order[i]], which real time
      // forbids when it completed at or before the earlier op's invocation.
      if (ops[order[j]].completed <= ops[order[i]].invoked) {
        return false;
      }
    }
  }
  return true;
}

bool OrderSatisfiesRegister(const std::vector<Operation>& ops, const std::vector<int>& order) {
  std::string value;
  for (const int index : order) {
    const Operation& op = ops[index];
    if (op.type == OpType::kWrite) {
      value = op.value;
    } else if (op.value != value) {
      return false;
    }
  }
  return true;
}

bool BruteForceLinearizable(const std::vector<Operation>& ops) {
  std::vector<int> order(ops.size());
  std::iota(order.begin(), order.end(), 0);
  do {
    if (OrderRespectsRealTime(ops, order) && OrderSatisfiesRegister(ops, order)) {
      return true;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return false;
}

TEST(LinearizabilityDifferential, AgreesWithBruteForceOnRandomHistories) {
  // 600 seeded random histories of <= 6 ok read/write ops on one key, with
  // overlapping invocation windows and reads drawn from the written values
  // plus the initial "". The optimized checker must agree with the
  // permutation reference on every one, and the sample must exercise both
  // verdict classes.
  std::mt19937_64 rng(20260806u);
  int linearizable = 0;
  int violations = 0;
  for (int iteration = 0; iteration < 600; ++iteration) {
    const int n = 1 + static_cast<int>(rng() % 6);
    History history;
    std::vector<Operation> ops;
    std::vector<std::string> values = {""};
    int writes = 0;
    for (int i = 0; i < n; ++i) {
      Operation op;
      op.client = 1 + static_cast<int>(rng() % 3);
      op.key = "k";
      op.status = OpStatus::kOk;
      op.invoked = static_cast<sim::Time>(rng() % 16);
      op.completed = op.invoked + static_cast<sim::Time>(rng() % 8);
      if (rng() % 2 == 0) {
        op.type = OpType::kWrite;
        op.value = "w" + std::to_string(++writes);
        values.push_back(op.value);
      } else {
        op.type = OpType::kRead;
        op.value = values[rng() % values.size()];
      }
      history.Record(op);
      ops.push_back(op);
    }
    const bool expected = BruteForceLinearizable(ops);
    const LinearizabilityResult actual = CheckLinearizableKey(history, "k");
    ASSERT_EQ(actual.linearizable, expected)
        << "iteration " << iteration << "\n"
        << history.Dump();
    if (expected) {
      ++linearizable;
    } else {
      ++violations;
    }
  }
  EXPECT_GT(linearizable, 0) << "the sample never produced a linearizable history";
  EXPECT_GT(violations, 0) << "the sample never produced a violation";
}

}  // namespace
}  // namespace check
