// Fixture: baseline matching. The rand() call is grandfathered by the
// baseline.txt next to this fixture's src/, so it reports as baselined and
// does not gate the exit code.
#include <cstdlib>

namespace legacy {

int Seed() {
  return rand();
}

}  // namespace legacy
