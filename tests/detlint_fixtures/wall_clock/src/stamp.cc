// Fixture: wall-clock. Also reused by the CI gate's negative check: the
// detlint job runs the binary against this tree and requires a nonzero exit.
#include <chrono>
#include <ctime>

long Stamp() {
  auto now = std::chrono::system_clock::now();
  (void)now;
  return time(nullptr);
}
