// Fixture: the dispatch site that marks PingMsg handled tree-wide.
#include "systems/echo/messages.h"

namespace echo {

void OnMessage(const net::Envelope& envelope) {
  if (const auto* ping = dynamic_cast<const PingMsg*>(envelope.msg)) {
    (void)ping;
  }
}

}  // namespace echo
