// Fixture: unhandled-message. PingMsg has a dynamic_cast dispatch site in
// server.cc; AckMsg is consumed generically and carries a suppression;
// OrphanMsg is the silent unhandled-protocol-event omission and is flagged.
#include <string>

namespace echo {

struct PingMsg : public net::Message {
  std::string TypeName() const override { return "Ping"; }
};

// detlint: allow(unhandled-message): acks are folded into the client's
// generic completion path, not dispatched per-type.
struct AckMsg : public net::Message {
  std::string TypeName() const override { return "Ack"; }
};

struct OrphanMsg : public net::Message {
  std::string TypeName() const override { return "Orphan"; }
};

}  // namespace echo
