// Fixture: snapshot-nonconst. Capturing a fork snapshot is a read-only
// probe of the run; a non-const Snapshot() can perturb the state it
// captures, making forked executions diverge from replays.
#include <cstdint>
#include <memory>

namespace systems {

struct SystemState {
  virtual ~SystemState() = default;
};

class BadRunner {
 public:
  std::unique_ptr<SystemState> Snapshot() {
    ++captures_;
    return nullptr;
  }

 private:
  uint64_t captures_ = 0;
};

class GoodRunner {
 public:
  std::unique_ptr<SystemState> Snapshot() const { return nullptr; }

  void Use() {
    auto a = Snapshot();       // unqualified call: not a declaration
    auto b = this->Snapshot(); // member call: not a declaration
  }
};

}  // namespace systems
