// Fixture: digest-taint (sink side). ClusterDigest hashes the unsorted
// member list — the cross-file leak the rule exists for; StableClusterDigest
// hashes the laundered one and stays clean.
#include <cstdint>
#include <string>
#include <vector>

#include "registry.h"

namespace systems {
namespace {

uint64_t Fnv1a(const std::vector<std::string>& parts) {
  uint64_t digest = 1469598103934665603ull;
  for (const std::string& part : parts) {
    for (char c : part) {
      digest = (digest ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
  }
  return digest;
}

}  // namespace

uint64_t ClusterDigest(const Registry& registry) {
  return Fnv1a(registry.MemberList());
}

uint64_t StableClusterDigest(const Registry& registry) {
  return Fnv1a(registry.SortedMemberList());
}

}  // namespace systems
