// Fixture: digest-taint (helper side). MemberList mints its result from
// hash-order iteration and returns it unsorted — harmless on its own, which
// is exactly why the token-level unordered-iteration rule stays quiet here;
// the taint only becomes a bug at a digest sink in some caller.
// SortedMemberList launders the same mint through a sort.
#ifndef TESTS_DETLINT_FIXTURES_DIGEST_TAINT_SRC_SYSTEMS_REGISTRY_H_
#define TESTS_DETLINT_FIXTURES_DIGEST_TAINT_SRC_SYSTEMS_REGISTRY_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace systems {

class Registry {
 public:
  std::vector<std::string> MemberList() const {
    std::vector<std::string> members;
    for (const auto& entry : table_) {
      members.push_back(entry.first);
    }
    return members;
  }

  std::vector<std::string> SortedMemberList() const {
    std::vector<std::string> members;
    for (const auto& entry : table_) {
      members.push_back(entry.first);
    }
    std::sort(members.begin(), members.end());
    return members;
  }

 private:
  std::unordered_map<std::string, uint64_t> table_;
};

}  // namespace systems

#endif  // TESTS_DETLINT_FIXTURES_DIGEST_TAINT_SRC_SYSTEMS_REGISTRY_H_
