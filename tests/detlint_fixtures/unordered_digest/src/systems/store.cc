// Fixture: unordered-iteration. Hash-order iteration is flagged only in
// functions that feed a trace or digest; Size() iterates the same container
// without a sink and stays clean.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace systems {

class Store {
 public:
  uint64_t StateDigest() const {
    uint64_t digest = 1469598103934665603ull;
    for (const auto& entry : table_) {
      digest ^= entry.second;
    }
    return digest;
  }

  int Size() const {
    int count = 0;
    for (const auto& entry : table_) {
      (void)entry;
      ++count;
    }
    return count;
  }

 private:
  std::unordered_map<std::string, uint64_t> table_;
};

}  // namespace systems
