// Fixture: address-derived-id. Ids fed to traces, causal edges, or digests
// must be stable log positions, never pointer values.
#include <cstdint>

namespace sys {

struct Msg {
  int payload = 0;
};

uint64_t MintIdFromAddress(const Msg* msg) {
  return reinterpret_cast<uint64_t>(msg);
}

uintptr_t AsInteger(const Msg* msg) {
  return reinterpret_cast<uintptr_t>(msg);
}

// Pointer-to-pointer reinterpretation mints no integer: clean.
const char* FineBytes(Msg* msg) {
  return reinterpret_cast<const char*>(msg);
}

uint64_t* FineAlias(Msg* msg) {
  return reinterpret_cast<uint64_t*>(msg);
}

}  // namespace sys
