// Fixture: snapshot-field-coverage. Tracker carries the seeded omission —
// cache_ is folded into the capture but never restored — plus a member
// missing from both sides, the exempt shapes (const, raw pointer), and a
// member excused with the allow(snapshot-field) shorthand.
#ifndef TESTS_DETLINT_FIXTURES_SNAPSHOT_FIELD_SRC_TRACKER_H_
#define TESTS_DETLINT_FIXTURES_SNAPSHOT_FIELD_SRC_TRACKER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace systems {

class Tracker {
 public:
  struct State {
    std::vector<uint64_t> log;
    uint64_t seq = 0;
  };

  State Snapshot() const {
    State state;
    state.log = log_;
    state.log.push_back(cache_);  // folded in on capture...
    state.seq = seq_;
    return state;
  }

  void Restore(const State& state) {
    log_ = state.log;  // ...but never unfolded on restore
    seq_ = state.seq;
  }

 private:
  std::vector<uint64_t> log_;
  uint64_t seq_ = 0;
  uint64_t cache_ = 0;
  int dropped_ = 0;
  const int limit_ = 8;
  Tracker* parent_ = nullptr;
  // detlint: allow(snapshot-field): rebuilt lazily on first use
  std::string memo_;
};

}  // namespace systems

#endif  // TESTS_DETLINT_FIXTURES_SNAPSHOT_FIELD_SRC_TRACKER_H_
