// Fixture: suppression handling. A trailing allow() covers its own line; an
// allow() on a comment line covers the next code line; an allow() without a
// reason is itself a bad-suppression finding and silences nothing.
#include <cstdlib>

namespace neat {

int Jitter() {
  return rand();  // detlint: allow(raw-rand): fixture for trailing same-line allow
}

// detlint: allow(raw-rand): fixture for a comment-line allow covering the next line
int Jitter2() { return rand(); }

int Jitter3() {
  // detlint: allow(raw-rand)
  return rand();
}

}  // namespace neat
