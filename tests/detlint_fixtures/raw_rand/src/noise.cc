// Fixture: raw-rand. Both constructs must route through sim::Rng substreams.
#include <cstdlib>
#include <random>

int Noise() {
  std::random_device seed_source;
  return rand() + static_cast<int>(seed_source());
}
