// Fixture: thread-primitive scope. The campaign layer (src/neat) may manage
// worker threads, so the same constructs are clean here.
#include <thread>

namespace neat {

void Spawn() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace neat
