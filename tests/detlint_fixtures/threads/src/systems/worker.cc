// Fixture: thread-primitive. Model systems are single-threaded by contract.
#include <mutex>
#include <thread>

namespace systems {

void Work() {
  std::mutex lock;
  std::thread runner([] {});
  runner.join();
}

}  // namespace systems
