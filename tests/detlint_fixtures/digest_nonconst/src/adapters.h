// Fixture: digest-nonconst. A state digest is a read-only probe; a
// non-const override can perturb the very run it observes.
#include <cstdint>

namespace systems {

class BadAdapter {
 public:
  uint64_t StateDigest() { return ++probes_; }

 private:
  uint64_t probes_ = 0;
};

class GoodAdapter {
 public:
  uint64_t StateDigest() const { return 7; }
};

}  // namespace systems
