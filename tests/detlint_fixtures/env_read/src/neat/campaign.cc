// Fixture: env-read exemption. neat/campaign.cc is the one sanctioned
// environment surface (the NEAT_* campaign knobs), so this read is clean.
#include <cstdlib>

int Threads() {
  const char* value = getenv("NEAT_THREADS");
  return value != nullptr ? 1 : 0;
}
