// Fixture: env-read. Any file other than neat/campaign.cc is flagged.
#include <cstdlib>

const char* Sneaky() {
  return getenv("HOME");
}
