// Fixture: override-completeness. HalfSystem captures but cannot restore
// or digest; GoodSystem carries the full set; ProbeSystem opts out of fork
// support entirely (a digest alone is fine).
#ifndef TESTS_DETLINT_FIXTURES_OVERRIDE_COMPLETE_SRC_SYSTEMS_H_
#define TESTS_DETLINT_FIXTURES_OVERRIDE_COMPLETE_SRC_SYSTEMS_H_

#include <cstdint>

namespace neat {

class ISystem {
 public:
  virtual ~ISystem() = default;
  virtual void Snapshot() const {}
  virtual void Restore() {}
  virtual uint64_t StateDigest() const { return 0; }
};

class GoodSystem : public ISystem {
 public:
  void Snapshot() const override {}
  void Restore() override {}
  uint64_t StateDigest() const override { return 1; }
};

class HalfSystem : public ISystem {
 public:
  void Snapshot() const override {}
};

class ProbeSystem : public ISystem {
 public:
  uint64_t StateDigest() const override { return 7; }
};

}  // namespace neat

#endif  // TESTS_DETLINT_FIXTURES_OVERRIDE_COMPLETE_SRC_SYSTEMS_H_
