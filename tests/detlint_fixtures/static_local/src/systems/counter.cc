// Fixture: static-local. A mutable function-local static leaks state across
// runs and campaign workers; immutable ones are fine.
namespace systems {

int NextId() {
  static int counter = 0;
  return ++counter;
}

int TableSize() {
  static const int kSize = 64;
  return kSize;
}

}  // namespace systems
