// Fixture: scnlint. Ping's TypeName() literal is what the corpus checks
// fault rules against; IsPing is the dispatch site that keeps the
// unhandled-message rule quiet.
#ifndef TESTS_DETLINT_FIXTURES_SCN_CORPUS_SRC_MESSAGES_H_
#define TESTS_DETLINT_FIXTURES_SCN_CORPUS_SRC_MESSAGES_H_

#include <string>

namespace fix {

struct Message {
  virtual ~Message() = default;
};

struct Ping : public Message {
  std::string TypeName() const { return "fix.Ping"; }
};

inline bool IsPing(const Message& m) {
  return dynamic_cast<const Ping*>(&m) != nullptr;
}

}  // namespace fix

#endif  // TESTS_DETLINT_FIXTURES_SCN_CORPUS_SRC_MESSAGES_H_
