// Data-driven conformance corpus. Every ".scn" file in tests/scenarios/
// registers as its own test: it must parse, and every expect block must
// hold when run (flawed variants flag their violation, correct variants
// run clean). Every ".scn" in tests/scenarios/bad/ registers as a
// negative-parse test: it must fail to parse, with exactly the diagnostic
// its golden ".diag" sibling records (line, column, message). Dropping a
// new scenario file into either directory adds the test — no CMake or C++
// edits.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/executor.h"
#include "scenario/parser.h"

namespace scenario {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> ListScn(const std::string& dir) {
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path().filename().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// "mqueue_repl_blackhole.scn" -> "mqueue_repl_blackhole" (gtest parameter
// names must be alphanumeric/underscore).
std::string TestName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

class ScenarioCorpus : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioCorpus, ParsesAndMeetsItsExpectations) {
  const std::string path = std::string(SCENARIO_DIR) + "/" + GetParam();
  const ParseResult parsed = ParseFile(path);
  ASSERT_TRUE(parsed.ok) << FormatDiagnostics(parsed, GetParam());
  for (const RunOutcome& outcome : RunScenario(parsed.scenario)) {
    for (const ExpectationOutcome& judged : outcome.expectations) {
      EXPECT_TRUE(judged.passed)
          << GetParam() << ":" << judged.expectation.line << ":" << judged.expectation.column
          << " [" << VariantName(outcome.variant) << "] " << judged.detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ScenarioCorpus, testing::ValuesIn(ListScn(SCENARIO_DIR)),
                         TestName);

class ScenarioBadCorpus : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioBadCorpus, FailsToParseWithItsGoldenDiagnostic) {
  const fs::path path = fs::path(SCENARIO_DIR) / "bad" / GetParam();
  const ParseResult parsed = ParseFile(path.string());
  EXPECT_FALSE(parsed.ok) << GetParam() << " parsed cleanly; the bad corpus must not";

  const fs::path golden_path = fs::path(path).replace_extension(".diag");
  std::ifstream golden_file(golden_path);
  ASSERT_TRUE(golden_file.good()) << "no golden diagnostics: " << golden_path
                                  << " (every bad/*.scn needs a .diag sibling)";
  std::ostringstream golden;
  golden << golden_file.rdbuf();
  EXPECT_EQ(FormatDiagnostics(parsed), golden.str()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ScenarioBadCorpus,
                         testing::ValuesIn(ListScn(std::string(SCENARIO_DIR) + "/bad")),
                         TestName);

}  // namespace
}  // namespace scenario
