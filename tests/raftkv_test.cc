// Scenario and property tests for the Raft key-value store, including the
// RethinkDB #5289 reproduction: a removed replica that deletes its Raft log
// lets the old configuration assemble a second majority.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "check/linearizability.h"
#include "systems/raftkv/cluster.h"

namespace raftkv {
namespace {

using check::OpStatus;

Cluster::Config MakeConfig(const Options& options, int num_servers, uint64_t seed = 1) {
  Cluster::Config config;
  config.options = options;
  config.num_servers = num_servers;
  config.seed = seed;
  return config;
}

TEST(RaftElection, LeaderEmerges) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  const net::NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, net::kInvalidNode);
  cluster.Settle(sim::Milliseconds(500));
  EXPECT_EQ(cluster.Leaders().size(), 1u);
}

TEST(RaftElection, FiveNodeClusterElects) {
  Cluster cluster(MakeConfig(CorrectOptions(), 5));
  EXPECT_NE(cluster.WaitForLeader(), net::kInvalidNode);
}

TEST(RaftKv, PutGetRoundTrips) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  ASSERT_NE(cluster.WaitForLeader(), net::kInvalidNode);
  cluster.Settle(sim::Milliseconds(300));  // followers learn the leader
  EXPECT_EQ(cluster.Put(0, "k", "v1").status, OpStatus::kOk);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "v1");
}

TEST(RaftKv, DeleteRemovesKey) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  ASSERT_NE(cluster.WaitForLeader(), net::kInvalidNode);
  cluster.Settle(sim::Milliseconds(300));  // followers learn the leader
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Delete(0, "k").status, OpStatus::kOk);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "");
}

TEST(RaftKv, CommittedEntriesReachAllReplicas) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  const net::NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, net::kInvalidNode);
  cluster.client(0).set_contact(leader);
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(500));
  for (net::NodeId id : cluster.server_ids()) {
    EXPECT_EQ(cluster.server(id).StoreGet("k").value_or("<none>"), "v") << "server " << id;
  }
}

TEST(RaftFailover, IsolatedLeaderCannotCommit) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  const net::NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, net::kInvalidNode);
  auto partition = cluster.partitioner().Complete(
      {leader}, net::Partitioner::Rest(cluster.server_ids(), {leader}));
  cluster.client(0).set_contact(leader);
  cluster.client(0).set_allow_redirect(false);
  cluster.client(0).set_op_timeout(sim::Milliseconds(600));
  auto put = cluster.Put(0, "k", "minority-write");
  EXPECT_NE(put.status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
}

TEST(RaftFailover, MajorityElectsReplacementAndServes) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  const net::NodeId leader = cluster.WaitForLeader();
  auto rest = net::Partitioner::Rest(cluster.server_ids(), {leader});
  auto partition = cluster.partitioner().Complete({leader}, rest);
  cluster.Settle(sim::Seconds(2));
  cluster.client(1).set_contact(rest.front());
  auto put = cluster.Put(1, "k", "majority-write");
  EXPECT_EQ(put.status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  // The healed old leader catches up.
  EXPECT_EQ(cluster.server(leader).StoreGet("k").value_or("<none>"), "majority-write");
}

TEST(RaftFailover, CommittedDataSurvivesLeaderCrash) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  const net::NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, net::kInvalidNode);
  cluster.client(0).set_contact(leader);
  ASSERT_EQ(cluster.Put(0, "k", "durable").status, OpStatus::kOk);
  cluster.server(leader).Crash();
  cluster.Settle(sim::Seconds(2));
  auto rest = net::Partitioner::Rest(cluster.server_ids(), {leader});
  cluster.client(1).set_contact(rest.front());
  auto get = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "durable");
}

TEST(RaftConfig, MembershipChangeCommits) {
  Cluster cluster(MakeConfig(CorrectOptions(), 5));
  const net::NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, net::kInvalidNode);
  // Shrink to the leader plus two others.
  std::vector<net::NodeId> keep{leader};
  for (net::NodeId id : cluster.server_ids()) {
    if (id != leader && keep.size() < 3) {
      keep.push_back(id);
    }
  }
  cluster.client(0).set_contact(leader);
  auto change = cluster.ChangeMembers(0, keep);
  EXPECT_EQ(change.status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(500));
  EXPECT_EQ(cluster.server(leader).members().size(), 3u);
}

TEST(RaftConfig, CorrectlyRemovedReplicaRetiresWithLogIntact) {
  Cluster cluster(MakeConfig(CorrectOptions(), 3));
  const net::NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, net::kInvalidNode);
  cluster.client(0).set_contact(leader);
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  auto rest = net::Partitioner::Rest(cluster.server_ids(), {leader});
  const net::NodeId removed = rest.back();
  std::vector<net::NodeId> keep;
  for (net::NodeId id : cluster.server_ids()) {
    if (id != removed) {
      keep.push_back(id);
    }
  }
  cluster.client(0).set_contact(leader);
  ASSERT_EQ(cluster.ChangeMembers(0, keep).status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(500));
  EXPECT_TRUE(cluster.server(removed).removed());
  EXPECT_GT(cluster.server(removed).log_size(), 0u);
}

// --- RethinkDB #5289: removed replica deletes its Raft log ---
//
// Five servers; a partial partition separates {s1, s2} from {s4, s5} while
// s3 can reach everyone. The admin shrinks the replica set to the two
// servers on the current leader's side. s3, removed, deletes its log
// (flawed mode). The orphaned old-configuration side now finds in s3 a
// willing voter and replica: two disjoint "majorities" commit conflicting
// writes to the same key.
struct Rethink5289Outcome {
  bool old_side_write_ok = false;
  bool new_side_write_ok = false;
  std::string old_side_store;
  std::string new_side_store;
  bool linearizable = true;
};

Rethink5289Outcome RunRethink5289(const Options& options, uint64_t seed) {
  Cluster::Config config = MakeConfig(options, 5, seed);
  config.num_clients = 3;
  Cluster cluster(config);
  Rethink5289Outcome outcome;

  // Elect a leader, then lay the partition around it: the leader and one
  // peer on one side, two peers orphaned on the other, and one bridge node
  // that reaches everyone (and is about to be removed).
  const net::NodeId leader = cluster.WaitForLeader();
  if (leader == net::kInvalidNode) {
    ADD_FAILURE() << "no initial leader";
    return outcome;
  }
  net::Group others = net::Partitioner::Rest(cluster.server_ids(), {leader});
  const net::NodeId bridge = others[0];
  (void)bridge;  // documents the topology; the bridge gets removed below
  net::Group keep{leader, others[1]};
  net::Group orphaned{others[2], others[3]};
  auto partition = cluster.partitioner().Partial(orphaned, keep);

  // The admin promptly shrinks the replica set to the leader's side; the
  // bridge node is removed and (in flawed mode) deletes its log.
  cluster.Settle(sim::Milliseconds(100));
  cluster.client(2).set_contact(leader);
  cluster.client(2).set_allow_redirect(false);
  auto change = cluster.ChangeMembers(2, keep);
  if (change.status != OpStatus::kOk) {
    ADD_FAILURE() << "could not apply the membership change";
    return outcome;
  }
  cluster.Settle(sim::Seconds(1));
  // A client on the orphaned side writes; another writes on the kept side;
  // then the orphaned side is read after the kept side's write completed.
  cluster.client(0).set_contact(orphaned.front());
  cluster.client(0).set_op_timeout(sim::Seconds(2));
  outcome.old_side_write_ok = cluster.Put(0, "k", "old-config-v").status == OpStatus::kOk;
  cluster.client(1).set_contact(leader);
  outcome.new_side_write_ok = cluster.Put(1, "k", "new-config-v").status == OpStatus::kOk;
  auto read = cluster.Get(0, "k");
  (void)read;

  outcome.old_side_store = cluster.server(orphaned.front()).StoreGet("k").value_or("");
  outcome.new_side_store = cluster.server(keep.front()).StoreGet("k").value_or("");
  outcome.linearizable = check::CheckLinearizable(cluster.history()).linearizable;
  cluster.partitioner().Heal(partition);
  return outcome;
}

TEST(RaftRethinkDb5289, LogDeletionCreatesTwoReplicaSets) {
  const Rethink5289Outcome outcome = RunRethink5289(RethinkDbOptions(), /*seed=*/3);
  EXPECT_TRUE(outcome.old_side_write_ok) << "orphaned side should assemble a majority via "
                                            "the amnesiac replica";
  EXPECT_TRUE(outcome.new_side_write_ok);
  EXPECT_EQ(outcome.old_side_store, "old-config-v");
  EXPECT_EQ(outcome.new_side_store, "new-config-v");
  EXPECT_FALSE(outcome.linearizable) << "conflicting commits on both sides";
}

TEST(RaftRethinkDb5289, StandardRaftRetirementPreventsIt) {
  const Rethink5289Outcome outcome = RunRethink5289(CorrectOptions(), /*seed=*/3);
  EXPECT_FALSE(outcome.old_side_write_ok)
      << "the retired replica must not help the orphaned side";
  EXPECT_TRUE(outcome.new_side_write_ok);
  EXPECT_TRUE(outcome.linearizable);
}

// --- property sweep: linearizability across partition/heal cycles ---

class RaftLinearizabilitySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(RaftLinearizabilitySweep, PartitionHealCycleStaysLinearizable) {
  const auto [seed, num_servers] = GetParam();
  Cluster::Config config = MakeConfig(CorrectOptions(), num_servers, seed);
  Cluster cluster(config);
  const net::NodeId first_leader = cluster.WaitForLeader();
  ASSERT_NE(first_leader, net::kInvalidNode);

  cluster.Put(0, "k", "v1");
  // Isolate a seed-dependent server (possibly the leader).
  const net::NodeId isolated =
      cluster.server_ids()[seed % cluster.server_ids().size()];
  auto partition = cluster.partitioner().Complete(
      {isolated}, net::Partitioner::Rest(cluster.server_ids(), {isolated}));
  cluster.client(0).set_op_timeout(sim::Milliseconds(900));
  cluster.client(0).set_contact(isolated);
  cluster.client(0).set_allow_redirect(false);
  cluster.Put(0, "k", "v2");
  cluster.Settle(sim::Seconds(2));
  const net::NodeId majority_node =
      net::Partitioner::Rest(cluster.server_ids(), {isolated}).front();
  cluster.client(1).set_contact(majority_node);
  cluster.Put(1, "k", "v3");
  cluster.Get(1, "k");
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  cluster.Get(1, "k", /*final_read=*/true);

  auto result = check::CheckLinearizable(cluster.history());
  EXPECT_TRUE(result.linearizable) << result.reason << "\n" << cluster.history().Dump();
  EXPECT_TRUE(check::CheckDirtyReads(cluster.history()).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftLinearizabilitySweep,
                         ::testing::Combine(::testing::Range<uint64_t>(1, 11),
                                            ::testing::Values(3, 5)),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(std::get<0>(param_info.param)) +
                                  "_n" + std::to_string(std::get<1>(param_info.param));
                         });

}  // namespace
}  // namespace raftkv

namespace raftkv_divergence {
namespace {

using check::OpStatus;

// Log divergence and repair: an isolated leader accumulates uncommitted
// entries; after the heal it must truncate them and adopt the majority's
// log (Raft's log-matching property).
TEST(RaftDivergence, IsolatedLeadersUncommittedSuffixIsTruncated) {
  raftkv::Cluster::Config config;
  config.num_servers = 3;
  raftkv::Cluster cluster(config);
  const net::NodeId old_leader = cluster.WaitForLeader();
  ASSERT_NE(old_leader, net::kInvalidNode);
  cluster.client(0).set_contact(old_leader);
  ASSERT_EQ(cluster.Put(0, "k", "committed-before").status, OpStatus::kOk);

  auto rest = net::Partitioner::Rest(cluster.server_ids(), {old_leader});
  auto partition = cluster.partitioner().Complete({old_leader}, rest);
  // Uncommitted writes pile up on the isolated leader.
  cluster.client(0).set_allow_redirect(false);
  cluster.client(0).set_op_timeout(sim::Milliseconds(500));
  for (int i = 0; i < 3; ++i) {
    auto put = cluster.Put(0, "junk" + std::to_string(i), "uncommitted");
    EXPECT_NE(put.status, OpStatus::kOk);
  }
  const size_t diverged_log = cluster.server(old_leader).log_size();

  // The majority moves on.
  cluster.Settle(sim::Seconds(2));
  cluster.client(1).set_contact(rest.front());
  ASSERT_EQ(cluster.Put(1, "k", "committed-after").status, OpStatus::kOk);

  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));

  // The old leader truncated its divergent suffix and converged.
  EXPECT_LT(cluster.server(old_leader).log_size(), diverged_log + 3);
  EXPECT_EQ(cluster.server(old_leader).StoreGet("k").value_or("<none>"),
            "committed-after");
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(cluster.server(old_leader).StoreGet("junk" + std::to_string(i)).has_value())
        << "uncommitted entry " << i << " must not survive";
  }
  // Every replica ends with an identical applied state for the key.
  for (net::NodeId id : cluster.server_ids()) {
    EXPECT_EQ(cluster.server(id).StoreGet("k").value_or("<none>"), "committed-after")
        << "server " << id;
  }
}

}  // namespace
}  // namespace raftkv_divergence
