// Scenario and property tests for the eventually consistent store,
// reproducing the data-consolidation failures of the study: reappearance of
// deleted data (Aerospike [140]), clock-skew LWW loss, and sloppy-quorum
// loss of acknowledged writes.

#include <gtest/gtest.h>

#include <string>

#include "check/checkers.h"
#include "systems/eventualkv/cluster.h"

namespace eventualkv {
namespace {

using check::OpStatus;

Cluster::Config MakeConfig(const Options& options, uint64_t seed = 1) {
  Cluster::Config config;
  config.options = options;
  config.seed = seed;
  return config;
}

TEST(EkvSteadyState, PutGetRoundTrips) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "k", "v1").status, OpStatus::kOk);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "v1");
}

TEST(EkvSteadyState, WritesReachAllReplicas) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(300));
  for (net::NodeId id : cluster.server_ids()) {
    EXPECT_EQ(cluster.server(id).LocalGet("k").value_or("<none>"), "v") << "replica " << id;
  }
}

TEST(EkvSteadyState, DeleteLeavesTombstone) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Delete(0, "k").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(300));
  EXPECT_TRUE(cluster.server(1).HasTombstone("k"));
  auto get = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "");
}

TEST(EkvSteadyState, LastWriterWinsAcrossCoordinators) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "k", "first").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Put(1, "k", "second").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(500));
  auto get = cluster.Get(0, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "second");
}

TEST(EkvSteadyState, ReadRepairFixesAStaleReplica) {
  Options options = CorrectOptions();
  options.anti_entropy_interval = 0;  // isolate the read-repair path
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  // Write while replica 3 is partitioned away (hint not yet delivered).
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  // A quorum read via replica 3 observes the fresh record and repairs.
  cluster.client(1).set_contact(3);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.value, "v");
  cluster.Settle(sim::Milliseconds(300));
  EXPECT_EQ(cluster.server(3).LocalGet("k").value_or("<none>"), "v");
}

TEST(EkvAntiEntropy, ConvergesDivergentReplicasAfterHeal) {
  Options options = CorrectOptions();
  options.write_quorum = 1;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "a", "from-minority").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(1, "b", "from-majority").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  for (net::NodeId id : cluster.server_ids()) {
    EXPECT_EQ(cluster.server(id).LocalGet("a").value_or("<none>"), "from-minority");
    EXPECT_EQ(cluster.server(id).LocalGet("b").value_or("<none>"), "from-majority");
  }
}

// --- reappearance of deleted data (Aerospike, Table 14 [140]) ---

TEST(EkvReappearance, MergeWithoutTombstonesResurrectsDeletedData) {
  Cluster cluster(MakeConfig(AerospikeOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "ghost", "haunting").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(300));  // replicated everywhere

  // Partition replica 3 away; the delete commits on the majority side.
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Delete(0, "ghost").status, OpStatus::kOk);

  // Heal: anti-entropy merges replica 3's stale record back in — nothing
  // remembers the deletion.
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "ghost", /*final_read=*/true);
  EXPECT_EQ(get.value, "haunting") << "deleted data should reappear";
  auto violations = check::CheckReappearance(cluster.history());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].impact, "reappearance of deleted data");
}

TEST(EkvReappearance, TombstonesPreventIt) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "ghost", "haunting").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(300));
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Delete(0, "ghost").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "ghost", /*final_read=*/true);
  EXPECT_EQ(get.value, "");
  EXPECT_TRUE(check::CheckReappearance(cluster.history()).empty());
  EXPECT_TRUE(cluster.server(3).HasTombstone("ghost")) << "tombstone propagated";
}

// --- clock-skew LWW: a later acknowledged write loses ---

TEST(EkvClockSkew, FastClockShadowsLaterWrite) {
  Options options = CorrectOptions();
  options.write_quorum = 1;  // both sides can acknowledge
  options.clock_skew[1] = sim::Seconds(5);
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "k", "early-but-skewed").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(1, "k", "later-and-real").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "early-but-skewed") << "the skewed clock wins LWW";
  auto violations = check::CheckDataLoss(cluster.history());
  ASSERT_FALSE(violations.empty());
}

TEST(EkvClockSkew, AccurateClocksKeepTheLaterWrite) {
  Options options = CorrectOptions();
  options.write_quorum = 1;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "k", "early").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(1, "k", "later").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "later");
  EXPECT_TRUE(check::CheckDataLoss(cluster.history()).empty());
}

// --- sloppy quorum: hints are not replicas ---

TEST(EkvSloppyQuorum, AckedWriteDiesWithItsOnlyCopy) {
  Cluster::Config config = MakeConfig(CorrectOptions());
  config.hints_count_toward_quorum = true;  // the sloppy-quorum flaw
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));  // node 1 declares 2 and 3 dead
  cluster.client(0).set_contact(1);
  auto put = cluster.Put(0, "k", "only-on-n1");
  EXPECT_EQ(put.status, OpStatus::kOk) << "hints satisfied the write quorum";
  EXPECT_EQ(cluster.server(1).pending_hints(), 2u);

  // The only real copy dies before the partition heals.
  cluster.server(1).Crash();
  cluster.partitioner().Heal(partition);
  cluster.server(1).Restart();
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "");
  auto violations = check::CheckDataLoss(cluster.history());
  ASSERT_FALSE(violations.empty());
}

TEST(EkvSloppyQuorum, StrictQuorumRefusesTheWrite) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  auto put = cluster.Put(0, "k", "never-acked");
  EXPECT_NE(put.status, OpStatus::kOk);
  cluster.server(1).Crash();
  cluster.partitioner().Heal(partition);
  cluster.server(1).Restart();
  cluster.Settle(sim::Seconds(2));
  cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_TRUE(check::CheckDataLoss(cluster.history()).empty());
}

// --- hinted handoff delivery ---

TEST(EkvHandoff, RetriedHintsSurviveFlakyLinks) {
  Options options = CorrectOptions();
  options.anti_entropy_interval = 0;  // hints are the only repair channel
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  EXPECT_EQ(cluster.server(1).pending_hints(), 1u);
  // Heal, but the link to replica 3 stays lossy for a while.
  cluster.partitioner().Heal(partition);
  cluster.network().SetLinkLoss(1, 3, 1.0);
  cluster.Settle(sim::Seconds(1));
  cluster.network().SetLinkLoss(1, 3, 0.0);
  cluster.Settle(sim::Seconds(1));
  EXPECT_EQ(cluster.server(3).LocalGet("k").value_or("<none>"), "v");
  EXPECT_EQ(cluster.server(1).pending_hints(), 0u);
}

TEST(EkvHandoff, FireAndForgetHintsVanishOnALossyLink) {
  Options options = SloppyHandoffOptions();
  options.anti_entropy_interval = 0;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.network().SetLinkLoss(1, 3, 1.0);
  cluster.Settle(sim::Seconds(1));
  cluster.network().SetLinkLoss(1, 3, 0.0);
  cluster.Settle(sim::Seconds(1));
  EXPECT_EQ(cluster.server(3).LocalGet("k").value_or("<none>"), "<none>")
      << "the hint was fired once into the lossy link and forgotten";
  EXPECT_EQ(cluster.server(1).pending_hints(), 0u);
}

// --- concurrent writes: LWW silent loss vs Riak-style siblings ---

TEST(EkvSiblings, LwwSilentlyDropsOneConcurrentAckedWrite) {
  Options options = CorrectOptions();
  options.write_quorum = 1;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "k", "from-side-a").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(1, "k", "from-side-b").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "k");
  ASSERT_EQ(get.status, OpStatus::kOk);
  // Exactly one of the two acknowledged values survives; the other is gone
  // without any error ever reaching a client.
  EXPECT_TRUE(get.value == "from-side-a" || get.value == "from-side-b") << get.value;
  EXPECT_EQ(get.value.find('|'), std::string::npos);
}

TEST(EkvSiblings, VectorClocksPreserveBothConcurrentWrites) {
  Options options = RiakSiblingOptions();
  options.write_quorum = 1;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "k", "from-side-a").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(1, "k", "from-side-b").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  auto get = cluster.Get(1, "k");
  ASSERT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "from-side-a|from-side-b") << "both siblings visible";
  EXPECT_EQ(cluster.server(2).LocalSiblings("k").size(), 2u);
}

TEST(EkvSiblings, AWriteAfterReadingSiblingsSupersedesBoth) {
  Options options = RiakSiblingOptions();
  options.write_quorum = 1;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(0, "k", "a").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(1, "k", "b").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(2));
  // The coordinator has seen both siblings; a new write's version vector
  // dominates both, resolving the conflict.
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(1, "k", "resolved").status, OpStatus::kOk);
  cluster.Settle(sim::Seconds(1));
  auto get = cluster.Get(0, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "resolved");
  EXPECT_EQ(cluster.server(1).LocalSiblings("k").size(), 1u);
}

TEST(EkvSiblings, CausallyOrderedWritesNeverCreateSiblings) {
  Cluster cluster(MakeConfig(RiakSiblingOptions()));
  cluster.Settle(sim::Milliseconds(200));
  for (int i = 0; i < 4; ++i) {
    cluster.client(0).set_contact(cluster.server_ids()[i % 3]);
    ASSERT_EQ(cluster.Put(0, "k", "v" + std::to_string(i)).status, OpStatus::kOk);
    cluster.Settle(sim::Milliseconds(100));
  }
  auto get = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(get.value, "v3");
  for (net::NodeId id : cluster.server_ids()) {
    EXPECT_LE(cluster.server(id).LocalSiblings("k").size(), 1u) << "server " << id;
  }
}

// --- quorum intersection: R + W > N vs R = W = 1 ---

class EkvQuorumSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EkvQuorumSweep, OverlappingQuorumsNeverServeStaleSequentialReads) {
  Options options = CorrectOptions();
  options.write_quorum = 2;
  options.read_quorum = 2;  // R + W = 4 > N = 3
  Cluster cluster(MakeConfig(options, GetParam()));
  cluster.Settle(sim::Milliseconds(200));
  for (int i = 0; i < 4; ++i) {
    cluster.client(0).set_contact(cluster.server_ids()[i % 3]);
    ASSERT_EQ(cluster.Put(0, "k", "v" + std::to_string(i)).status, OpStatus::kOk);
    cluster.client(1).set_contact(cluster.server_ids()[(i + 1) % 3]);
    auto get = cluster.Get(1, "k");
    ASSERT_EQ(get.status, OpStatus::kOk);
    EXPECT_EQ(get.value, "v" + std::to_string(i)) << "R+W>N must intersect";
  }
  EXPECT_TRUE(check::CheckStaleReads(cluster.history()).empty())
      << cluster.history().Dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EkvQuorumSweep, ::testing::Range<uint64_t>(1, 6),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

TEST(EkvQuorums, NonOverlappingQuorumsServeStaleReadsUnderPartition) {
  Options options = CorrectOptions();
  options.write_quorum = 1;
  options.read_quorum = 1;  // R + W = 2 <= N = 3: no intersection guarantee
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "k", "old").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(300));  // replicate everywhere
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Milliseconds(300));
  // A new value lands on {1,2}; replica 3 still has the old one.
  ASSERT_EQ(cluster.Put(0, "k", "new").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));  // the read strictly follows the write
  cluster.client(1).set_contact(3);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.value, "old") << "an R=1 read at the stale replica";
  EXPECT_FALSE(check::CheckStaleReads(cluster.history()).empty())
      << "eventual consistency by design: stale reads are possible";
  cluster.partitioner().Heal(partition);
}

// --- property sweep ---

class EkvConvergenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EkvConvergenceSweep, NoLossOrResurrectionWithTombstonesAndQuorums) {
  Cluster cluster(MakeConfig(CorrectOptions(), GetParam()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Put(0, "a", "v1").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Put(0, "b", "v2").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Delete(0, "b").status, OpStatus::kOk);
  const net::NodeId isolated =
      cluster.server_ids()[GetParam() % cluster.server_ids().size()];
  auto partition = cluster.partitioner().Complete(
      {isolated}, net::Partitioner::Rest(cluster.server_ids(), {isolated}));
  cluster.Settle(sim::Milliseconds(400));
  // Ops continue on the majority side.
  const net::NodeId majority_node = isolated == 1 ? 2 : 1;
  cluster.client(1).set_contact(majority_node);
  cluster.Put(1, "a", "v3");
  cluster.Delete(1, "a");
  cluster.Put(1, "a", "v4");
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(3));
  auto read_a = cluster.Get(1, "a", /*final_read=*/true);
  auto read_b = cluster.Get(1, "b", /*final_read=*/true);
  EXPECT_EQ(read_a.value, "v4");
  EXPECT_EQ(read_b.value, "");
  auto& history = cluster.history();
  EXPECT_TRUE(check::CheckDataLoss(history).empty()) << history.Dump();
  EXPECT_TRUE(check::CheckReappearance(history).empty()) << history.Dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EkvConvergenceSweep, ::testing::Range<uint64_t>(1, 9),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace eventualkv
