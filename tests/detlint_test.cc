// Tests for detlint (tools/detlint): tokenizer units, one fixture tree per
// rule with a golden JSON report, suppression and baseline semantics, the
// CLI gate's exit codes (including the deliberately-seeded violation the CI
// job replays as its negative check), and the meta-test that the repo's own
// src/ is detlint-clean under the committed baseline.
//
// Compile-time configuration (from tests/CMakeLists.txt):
//   DETLINT_FIXTURE_DIR  tests/detlint_fixtures
//   DETLINT_SOURCE_ROOT  the repository root
//   DETLINT_BIN          path to the built detlint executable

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.h"

namespace detlint {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  EXPECT_TRUE(stream.good()) << "cannot read " << path;
  std::ostringstream contents;
  contents << stream.rdbuf();
  return contents.str();
}

std::vector<SourceFile> LoadTree(const std::string& root) {
  std::vector<SourceFile> sources;
  for (const std::string& rel : CollectFiles(root, {"src"})) {
    SourceFile source;
    EXPECT_TRUE(LoadSourceFile(root, rel, &source)) << rel;
    sources.push_back(std::move(source));
  }
  return sources;
}

std::string FixtureRoot(const std::string& name) {
  return std::string(DETLINT_FIXTURE_DIR) + "/" + name;
}

// Loads a fixture's scenario corpus (its scenarios/ subtree, when present).
std::vector<ScnSource> LoadScnTree(const std::string& root) {
  std::vector<ScnSource> scenarios;
  for (const std::string& rel : CollectScnFiles(root, {"scenarios"})) {
    ScnSource scn;
    EXPECT_TRUE(LoadScnSource(root, rel, &scn)) << rel;
    scenarios.push_back(std::move(scn));
  }
  return scenarios;
}

AnalysisResult AnalyzeFixture(const std::string& name, bool with_baseline = false) {
  std::multimap<std::string, int> baseline;
  if (with_baseline) {
    baseline = ParseBaseline(ReadFile(FixtureRoot(name) + "/baseline.txt"));
  }
  return Analyze(LoadTree(FixtureRoot(name)), LoadScnTree(FixtureRoot(name)),
                 baseline);
}

int RunDetlint(const std::string& args) {
  const int status = std::system((std::string(DETLINT_BIN) + " " + args).c_str());
  EXPECT_TRUE(WIFEXITED(status)) << args;
  return WEXITSTATUS(status);
}

// --- tokenizer --------------------------------------------------------------

TEST(Tokenize, StringsAndCommentsAreNotIdentifierSources) {
  const std::vector<Token> tokens = Tokenize(
      "const char* s = \"rand() inside a string\";\n"
      "// rand() inside a comment\n"
      "/* time(nullptr) in a block comment */\n"
      "auto r = R\"(rand() inside a raw string)\";\n");
  for (const Token& token : tokens) {
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "time");
  }
}

TEST(Tokenize, TracksLinesAndColumns) {
  const std::vector<Token> tokens = Tokenize("int a;\n  int b;\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_EQ(tokens[3].column, 3);
}

TEST(Tokenize, LineContinuationInsideLineCommentExtendsIt) {
  // The backslash-newline splice keeps a // comment alive on the next
  // physical line — rand() there is commentary, not code.
  const std::vector<Token> tokens = Tokenize(
      "// a comment that continues \\\n"
      "rand();\n"
      "int after;\n");
  for (const Token& token : tokens) {
    EXPECT_NE(token.text, "rand");
  }
  // ...and line accounting survives the splice.
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 3);
}

TEST(Tokenize, LineContinuationInsideStringLiteral) {
  // A spliced string literal is one token whose contents skip the splice;
  // the next token's line number accounts for the consumed newline.
  const std::vector<Token> tokens = Tokenize(
      "const char* s = \"split \\\n"
      "string\";\n"
      "int after;\n");
  bool found = false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kString) {
      EXPECT_EQ(tokens[i].text, "split string");
      found = true;
    }
    if (tokens[i].text == "after") {
      EXPECT_EQ(tokens[i].line, 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tokenize, StringTokensRetainContents) {
  const std::vector<Token> tokens = Tokenize("auto n = obj.TypeName(\"pb.Put\");\n");
  bool found = false;
  for (const Token& token : tokens) {
    if (token.kind == TokKind::kString) {
      EXPECT_EQ(token.text, "pb.Put");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Suppressions, ParsedWithMandatoryReason) {
  const SourceFile file = MakeSourceFile(
      "src/x.cc",
      "// detlint: allow(raw-rand): the reason\n"
      "// detlint: allow(wall-clock)\n"
      "int x;\n");
  ASSERT_EQ(file.suppressions.size(), 1u);
  EXPECT_EQ(file.suppressions[0].rule, "raw-rand");
  EXPECT_EQ(file.suppressions[0].reason, "the reason");
  ASSERT_EQ(file.bad_suppression_lines.size(), 1u);
  EXPECT_EQ(file.bad_suppression_lines[0], 2);
}

// --- per-rule fixtures, golden JSON reports ---------------------------------

struct GoldenCase {
  const char* name;
  bool with_baseline;
};

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, MatchesGoldenJson) {
  const GoldenCase& param = GetParam();
  const AnalysisResult result = AnalyzeFixture(param.name, param.with_baseline);
  const std::string golden =
      ReadFile(std::string(DETLINT_FIXTURE_DIR) + "/golden/" + param.name + ".json");
  EXPECT_EQ(RenderJson(result), golden) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, GoldenTest,
    ::testing::Values(GoldenCase{"raw_rand", false}, GoldenCase{"wall_clock", false},
                      GoldenCase{"env_read", false}, GoldenCase{"threads", false},
                      GoldenCase{"static_local", false},
                      GoldenCase{"unordered_digest", false},
                      GoldenCase{"digest_nonconst", false},
                      GoldenCase{"snapshot_nonconst", false},
                      GoldenCase{"messages", false}, GoldenCase{"suppressed", false},
                      GoldenCase{"address_id", false},
                      GoldenCase{"baseline_case", true},
                      GoldenCase{"snapshot_field", false},
                      GoldenCase{"override_complete", false},
                      GoldenCase{"digest_taint", false},
                      GoldenCase{"scn_corpus", false}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

// --- targeted per-rule assertions (readable failures beyond golden diffs) ---

TEST(Rules, RawRandFlagsBothConstructs) {
  const AnalysisResult result = AnalyzeFixture("raw_rand");
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].rule, "raw-rand");
  EXPECT_EQ(result.findings[0].subject, "random_device");
  EXPECT_EQ(result.findings[1].rule, "raw-rand");
  EXPECT_EQ(result.findings[1].subject, "rand");
}

TEST(Rules, AddressDerivedIdFlagsIntegerMintingOnly) {
  const AnalysisResult result = AnalyzeFixture("address_id");
  ASSERT_EQ(result.findings.size(), 3u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.rule, "address-derived-id");
  }
  EXPECT_EQ(result.findings[0].subject, "reinterpret_cast<uint64_t>");
  EXPECT_EQ(result.findings[1].subject, "uintptr_t");
  EXPECT_EQ(result.findings[2].subject, "reinterpret_cast<uintptr_t>");
  // The pointer-to-pointer casts (FineBytes/FineAlias) stay clean: no
  // integer is minted from the address.
}

TEST(Rules, WallClockFlagsChronoTypesAndTimeCalls) {
  const AnalysisResult result = AnalyzeFixture("wall_clock");
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].subject, "system_clock");
  EXPECT_EQ(result.findings[1].subject, "time");
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.rule, "wall-clock");
  }
}

TEST(Rules, EnvReadExemptsCampaignCcOnly) {
  const AnalysisResult result = AnalyzeFixture("env_read");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "env-read");
  EXPECT_EQ(result.findings[0].file, "src/config.cc");
}

TEST(Rules, ThreadPrimitivesScopedToSimAndSystems) {
  const AnalysisResult result = AnalyzeFixture("threads");
  ASSERT_EQ(result.findings.size(), 2u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.rule, "thread-primitive");
    EXPECT_EQ(finding.file, "src/systems/worker.cc");
  }
}

TEST(Rules, StaticLocalIgnoresImmutableStatics) {
  const AnalysisResult result = AnalyzeFixture("static_local");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "static-local");
  EXPECT_EQ(result.findings[0].subject, "static@NextId");
}

TEST(Rules, UnorderedIterationOnlyInDigestFeedingFunctions) {
  const AnalysisResult result = AnalyzeFixture("unordered_digest");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(result.findings[0].subject, "StateDigest/table_");
}

TEST(Rules, DigestMustBeConst) {
  const AnalysisResult result = AnalyzeFixture("digest_nonconst");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "digest-nonconst");
  EXPECT_EQ(result.findings[0].subject, "StateDigest");
}

TEST(Rules, SnapshotMustBeConst) {
  // Declarations with a template return type (`...> Snapshot()`) are
  // flagged when non-const; call sites — member (`->Snapshot()`) and
  // unqualified (`= Snapshot()`) — are not declarations and stay clean.
  const AnalysisResult result = AnalyzeFixture("snapshot_nonconst");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "snapshot-nonconst");
  EXPECT_EQ(result.findings[0].subject, "Snapshot");
}

TEST(Rules, UnhandledMessageSeesCrossFileDispatch) {
  const AnalysisResult result = AnalyzeFixture("messages");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "unhandled-message");
  EXPECT_EQ(result.findings[0].subject, "OrphanMsg");
  EXPECT_EQ(result.suppressed, 1);  // AckMsg, suppressed with a reason
}

TEST(Rules, SuppressionsSilenceButMalformedOnesDoNot) {
  const AnalysisResult result = AnalyzeFixture("suppressed");
  EXPECT_EQ(result.suppressed, 2);
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].rule, "bad-suppression");
  EXPECT_EQ(result.findings[1].rule, "raw-rand");
}

TEST(Rules, SnapshotFieldCoverageFlagsSeededOmission) {
  // The acceptance case: cache_ is folded into the Snapshot but never
  // restored. dropped_ is in neither body; const/pointer members are
  // exempt; memo_ is excused with the allow(snapshot-field) shorthand.
  const AnalysisResult result = AnalyzeFixture("snapshot_field");
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].rule, "snapshot-field-coverage");
  EXPECT_EQ(result.findings[0].subject, "Tracker::cache_");
  EXPECT_NE(result.findings[0].message.find("Restore()"), std::string::npos);
  EXPECT_EQ(result.findings[1].subject, "Tracker::dropped_");
  EXPECT_EQ(result.suppressed, 1);  // memo_, via the snapshot-field alias
}

TEST(Rules, OverrideCompletenessRequiresTheFullSet) {
  const AnalysisResult result = AnalyzeFixture("override_complete");
  ASSERT_EQ(result.findings.size(), 2u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.rule, "override-completeness");
  }
  EXPECT_EQ(result.findings[0].subject, "HalfSystem/Restore");
  EXPECT_EQ(result.findings[1].subject, "HalfSystem/StateDigest");
  // GoodSystem (full set) and ProbeSystem (digest-only, opted out of fork
  // support) both stay clean.
}

TEST(Rules, DigestTaintCrossesFilesAndSortLaunders) {
  const AnalysisResult result = AnalyzeFixture("digest_taint");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "digest-taint");
  EXPECT_EQ(result.findings[0].file, "src/systems/digest.cc");
  EXPECT_EQ(result.findings[0].subject, "ClusterDigest/MemberList");
  // StableClusterDigest consumes the sorted list and stays clean.
}

TEST(Rules, ScnlintValidatesCorpusAgainstIndexedTypeNames) {
  const AnalysisResult result = AnalyzeFixture("scn_corpus");
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].rule, "scn-missing-expect");
  EXPECT_EQ(result.findings[0].file, "scenarios/half.scn");
  EXPECT_EQ(result.findings[1].rule, "scn-unknown-message");
  EXPECT_EQ(result.findings[1].subject, "fixture-phantom/fix.Pong");
  // good.scn names the real TypeName and asserts both variants: clean.
}

TEST(Rules, ScnParseFailureIsAFinding) {
  std::vector<ScnSource> scenarios;
  scenarios.push_back(ScnSource{"scenarios/broken.scn", "scenario \"x\"\n"});
  const AnalysisResult result =
      Analyze({}, scenarios, std::multimap<std::string, int>());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "scn-parse");
  EXPECT_EQ(result.findings[0].file, "scenarios/broken.scn");
}

// --- baseline ---------------------------------------------------------------

TEST(Baseline, GrandfatheredFindingsDoNotGate) {
  const AnalysisResult result = AnalyzeFixture("baseline_case", /*with_baseline=*/true);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].baselined);
  EXPECT_EQ(result.NewCount(), 0);
}

TEST(Baseline, RenderParseRoundTrip) {
  const AnalysisResult fresh = AnalyzeFixture("raw_rand");
  ASSERT_GT(fresh.NewCount(), 0);
  const std::multimap<std::string, int> parsed =
      ParseBaseline(RenderBaseline(fresh.findings));
  const AnalysisResult rebaselined = Analyze(LoadTree(FixtureRoot("raw_rand")), parsed);
  EXPECT_EQ(rebaselined.NewCount(), 0);
  EXPECT_EQ(rebaselined.findings.size(), fresh.findings.size());
}

// --- the CLI gate -----------------------------------------------------------

TEST(Cli, GateFailsOnSeededViolation) {
  // The same negative check the CI detlint job runs: a tree with a seeded
  // wall-clock violation must fail the gate.
  EXPECT_EQ(RunDetlint("--quiet --root " + FixtureRoot("wall_clock") + " src"), 1);
}

TEST(Cli, GateFailsOnSeededStructuralViolation) {
  // CI's structural negative check: the snapshot_field fixture's seeded
  // capture/restore omission must fail the gate.
  EXPECT_EQ(RunDetlint("--quiet --root " + FixtureRoot("snapshot_field") + " src"), 1);
}

TEST(Cli, ScnFlagRunsTheCorpusRules) {
  EXPECT_EQ(RunDetlint("--quiet --root " + FixtureRoot("scn_corpus") +
                       " --scn scenarios src"),
            1);
  EXPECT_EQ(RunDetlint("--quiet --root " + FixtureRoot("scn_corpus") +
                       " --scn scenarios/good.scn src"),
            0);
}

TEST(Cli, GatePassesWithBaseline) {
  EXPECT_EQ(RunDetlint("--quiet --root " + FixtureRoot("baseline_case") +
                       " --baseline " + FixtureRoot("baseline_case") + "/baseline.txt src"),
            0);
}

TEST(Cli, FixBaselineMakesTreePass) {
  const std::string tmp = ::testing::TempDir() + "/detlint_fix_baseline.txt";
  EXPECT_EQ(RunDetlint("--root " + FixtureRoot("raw_rand") + " --baseline " + tmp +
                       " --fix-baseline src > /dev/null"),
            0);
  EXPECT_EQ(RunDetlint("--quiet --root " + FixtureRoot("raw_rand") + " --baseline " + tmp +
                       " src"),
            0);
  std::remove(tmp.c_str());
}

// --- meta-test: the repository's own src/ is detlint-clean ------------------

TEST(RepoClean, SrcBenchAndCorpusHaveNoNewFindingsUnderCommittedBaseline) {
  const std::string root = DETLINT_SOURCE_ROOT;
  const std::multimap<std::string, int> baseline =
      ParseBaseline(ReadFile(root + "/tools/detlint/baseline.txt"));
  std::vector<SourceFile> sources;
  for (const std::string& rel : CollectFiles(root, {"src", "bench"})) {
    SourceFile source;
    ASSERT_TRUE(LoadSourceFile(root, rel, &source)) << rel;
    sources.push_back(std::move(source));
  }
  // The real corpus only — tests/scenarios/bad/ holds deliberate parser
  // rejects (the parser test suite's negative fixtures).
  std::vector<ScnSource> scenarios;
  for (const std::string& rel : CollectScnFiles(root, {"tests/scenarios"})) {
    if (rel.find("/bad/") != std::string::npos) {
      continue;
    }
    ScnSource scn;
    ASSERT_TRUE(LoadScnSource(root, rel, &scn)) << rel;
    scenarios.push_back(std::move(scn));
  }
  EXPECT_GT(scenarios.size(), 3u);
  const AnalysisResult result = Analyze(sources, scenarios, baseline);
  std::string report;
  for (const Finding& finding : result.findings) {
    if (!finding.baselined) {
      report += finding.file + ":" + std::to_string(finding.line) + " [" + finding.rule +
                "] " + finding.message + "\n";
    }
  }
  EXPECT_EQ(result.NewCount(), 0) << report;
  EXPECT_GT(result.files_scanned, 50);
}

}  // namespace
}  // namespace detlint
