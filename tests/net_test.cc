// Unit tests for the network, the partition backends, and the partition API.
// The backend tests run against both SwitchPartitioner (OpenFlow analog) and
// FirewallPartitioner (iptables analog) via a parameterized suite, verifying
// that NEAT's two implementations enforce identical semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/connectivity.h"
#include "net/message.h"
#include "net/network.h"
#include "net/partition.h"
#include "sim/simulator.h"

namespace net {
namespace {

struct Ping : public Message {
  explicit Ping(int seq_in = 0) : seq(seq_in) {}
  std::string TypeName() const override { return "Ping"; }
  int seq;
};

std::unique_ptr<PartitionBackend> MakeBackend(const std::string& kind) {
  if (kind == "switch") {
    return std::make_unique<SwitchPartitioner>();
  }
  return std::make_unique<FirewallPartitioner>();
}

class BackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { backend_ = MakeBackend(GetParam()); }
  std::unique_ptr<PartitionBackend> backend_;
};

TEST_P(BackendTest, DefaultAllowsEverything) {
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Allows(2, 1));
  EXPECT_TRUE(backend_->Allows(5, 9));
}

TEST_P(BackendTest, BlockIsDirectional) {
  backend_->Block({1}, {2});
  EXPECT_FALSE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Allows(2, 1));
}

TEST_P(BackendTest, BlockGroups) {
  backend_->Block({1, 2}, {3, 4});
  EXPECT_FALSE(backend_->Allows(1, 3));
  EXPECT_FALSE(backend_->Allows(2, 4));
  EXPECT_TRUE(backend_->Allows(3, 1));
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Allows(5, 3));
}

TEST_P(BackendTest, UnblockRestoresConnectivity) {
  RuleId rule = backend_->Block({1}, {2});
  EXPECT_FALSE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Unblock(rule));
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_FALSE(backend_->Unblock(rule));
}

TEST_P(BackendTest, OverlappingRulesBothMustBeRemoved) {
  RuleId a = backend_->Block({1}, {2});
  RuleId b = backend_->Block({1, 3}, {2, 4});
  backend_->Unblock(a);
  EXPECT_FALSE(backend_->Allows(1, 2));  // still blocked by rule b
  backend_->Unblock(b);
  EXPECT_TRUE(backend_->Allows(1, 2));
}

TEST_P(BackendTest, RuleCountTracksInstalls) {
  EXPECT_EQ(backend_->rule_count(), 0u);
  RuleId a = backend_->Block({1}, {2});
  backend_->Block({3}, {4});
  EXPECT_EQ(backend_->rule_count(), 2u);
  backend_->Unblock(a);
  EXPECT_EQ(backend_->rule_count(), 1u);
}

TEST_P(BackendTest, SelfTrafficIsAlwaysAllowed) {
  // Regression: overlapping groups used to install rules that cut a node's
  // traffic to itself; self links must be immune to every rule.
  backend_->Block({1}, {1});
  EXPECT_TRUE(backend_->Allows(1, 1));
  backend_->Block({1, 2}, {2, 3});
  EXPECT_TRUE(backend_->Allows(2, 2));
  EXPECT_FALSE(backend_->Allows(1, 2));
  EXPECT_FALSE(backend_->Allows(2, 3));
}

TEST_P(BackendTest, DuplicateGroupEntriesAreDeduped) {
  RuleId rule = backend_->Block({1, 1, 1}, {2, 2});
  EXPECT_EQ(backend_->rule_count(), 1u);
  EXPECT_FALSE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Unblock(rule));
  EXPECT_TRUE(backend_->Allows(1, 2));
}

TEST_P(BackendTest, EpochAdvancesOnEveryMutation) {
  const uint64_t start = backend_->epoch();
  RuleId rule = backend_->Block({1}, {2});
  EXPECT_EQ(backend_->epoch(), start + 1);
  EXPECT_TRUE(backend_->Unblock(rule));
  EXPECT_EQ(backend_->epoch(), start + 2);
  EXPECT_FALSE(backend_->Unblock(rule));  // failed unblock: no epoch bump
  EXPECT_EQ(backend_->epoch(), start + 2);
}

TEST_P(BackendTest, BackendsAgreeOnRandomRuleSets) {
  // Differential test: both backends must give identical verdicts after the
  // same sequence of installs/removals.
  auto other = MakeBackend(GetParam() == "switch" ? "firewall" : "switch");
  sim::Rng rng(99);
  std::vector<std::pair<RuleId, RuleId>> rules;
  for (int step = 0; step < 200; ++step) {
    if (rules.empty() || rng.NextBool(0.6)) {
      Group srcs;
      Group dsts;
      for (int i = 0; i < 3; ++i) {
        srcs.push_back(static_cast<NodeId>(rng.NextBelow(6)));
        dsts.push_back(static_cast<NodeId>(rng.NextBelow(6)));
      }
      rules.emplace_back(backend_->Block(srcs, dsts), other->Block(srcs, dsts));
    } else {
      const size_t pick = rng.NextBelow(rules.size());
      backend_->Unblock(rules[pick].first);
      other->Unblock(rules[pick].second);
      rules.erase(rules.begin() + static_cast<ptrdiff_t>(pick));
    }
    for (NodeId s = 0; s < 6; ++s) {
      for (NodeId d = 0; d < 6; ++d) {
        ASSERT_EQ(backend_->Allows(s, d), other->Allows(s, d))
            << "step " << step << " link " << s << "->" << d;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest, ::testing::Values("switch", "firewall"),
                         [](const auto& param_info) { return param_info.param; });

class PartitionerTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    backend_ = MakeBackend(GetParam());
    partitioner_ = std::make_unique<Partitioner>(backend_.get());
  }
  std::unique_ptr<PartitionBackend> backend_;
  std::unique_ptr<Partitioner> partitioner_;
};

TEST_P(PartitionerTest, CompletePartitionCutsBothDirections) {
  Partition p = partitioner_->Complete({1, 2}, {3, 4, 5});
  EXPECT_FALSE(backend_->Allows(1, 3));
  EXPECT_FALSE(backend_->Allows(3, 1));
  EXPECT_FALSE(backend_->Allows(2, 5));
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Allows(3, 4));
  partitioner_->Heal(p);
  EXPECT_TRUE(backend_->Allows(1, 3));
}

TEST_P(PartitionerTest, PartialPartitionLeavesThirdGroupConnected) {
  // Figure 1b: groups 1 and 2 are cut; group 3 reaches both.
  Partition p = partitioner_->Partial({1}, {2});
  EXPECT_FALSE(backend_->Allows(1, 2));
  EXPECT_FALSE(backend_->Allows(2, 1));
  EXPECT_TRUE(backend_->Allows(1, 3));
  EXPECT_TRUE(backend_->Allows(3, 1));
  EXPECT_TRUE(backend_->Allows(2, 3));
  EXPECT_TRUE(backend_->Allows(3, 2));
  partitioner_->Heal(p);
  EXPECT_TRUE(backend_->Allows(1, 2));
}

TEST_P(PartitionerTest, SimplexPartitionIsOneWay) {
  // Figure 1c: traffic flows src -> dst only.
  Partition p = partitioner_->Simplex({1}, {2});
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_FALSE(backend_->Allows(2, 1));
  partitioner_->Heal(p);
  EXPECT_TRUE(backend_->Allows(2, 1));
}

TEST_P(PartitionerTest, HealIsIdempotent) {
  Partition p = partitioner_->Complete({1}, {2});
  partitioner_->Heal(p);
  partitioner_->Heal(p);
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_EQ(backend_->rule_count(), 0u);
}

TEST_P(PartitionerTest, OverlappingPartitionsHealIndependently) {
  Partition p1 = partitioner_->Complete({1}, {2, 3});
  Partition p2 = partitioner_->Complete({1, 2}, {3});
  partitioner_->Heal(p1);
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_FALSE(backend_->Allows(1, 3));  // still cut by p2
  partitioner_->Heal(p2);
  EXPECT_TRUE(backend_->Allows(1, 3));
}

TEST_P(PartitionerTest, OverlappingGroupsNeverCutSelfTraffic) {
  // Regression: a node listed on both sides of a Complete/Partial partition
  // must keep Allows(n, n) == true (its traffic to itself never leaves the
  // host), while still being cut from everyone else.
  Partition p = partitioner_->Complete({1, 2}, {2, 3});
  EXPECT_TRUE(backend_->Allows(2, 2));
  EXPECT_FALSE(backend_->Allows(1, 2));
  EXPECT_FALSE(backend_->Allows(2, 1));
  EXPECT_FALSE(backend_->Allows(2, 3));
  EXPECT_FALSE(backend_->Allows(3, 2));
  partitioner_->Heal(p);
  EXPECT_TRUE(backend_->Allows(1, 2));
  EXPECT_TRUE(backend_->Allows(2, 3));
  EXPECT_EQ(backend_->rule_count(), 0u);
}

TEST_P(PartitionerTest, RestReturnsComplement) {
  Group universe{1, 2, 3, 4, 5};
  EXPECT_EQ(Partitioner::Rest(universe, {2, 4}), (Group{1, 3, 5}));
  EXPECT_EQ(Partitioner::Rest(universe, {}), universe);
  EXPECT_EQ(Partitioner::Rest(universe, universe), Group{});
}

INSTANTIATE_TEST_SUITE_P(Backends, PartitionerTest, ::testing::Values("switch", "firewall"),
                         [](const auto& param_info) { return param_info.param; });

class ConnectivityCacheTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    backend_ = MakeBackend(GetParam());
    cache_ = std::make_unique<ConnectivityCache>(backend_.get());
    for (NodeId n = 1; n <= 6; ++n) {
      cache_->AddNode(n);
    }
  }
  std::unique_ptr<PartitionBackend> backend_;
  std::unique_ptr<ConnectivityCache> cache_;
};

TEST_P(ConnectivityCacheTest, PatchesOnBlockAndUnblock) {
  EXPECT_TRUE(cache_->Allows(1, 2));
  RuleId a = backend_->Block({1}, {2});
  RuleId b = backend_->Block({1, 3}, {2, 4});
  EXPECT_FALSE(cache_->Allows(1, 2));
  EXPECT_FALSE(cache_->Allows(3, 4));
  backend_->Unblock(a);
  EXPECT_FALSE(cache_->Allows(1, 2));  // still cut by the overlapping rule b
  backend_->Unblock(b);
  EXPECT_TRUE(cache_->Allows(1, 2));
  EXPECT_TRUE(cache_->Allows(3, 4));
  EXPECT_EQ(cache_->synced_epoch(), backend_->epoch());
  EXPECT_EQ(cache_->fallback_queries(), 0u);
}

TEST_P(ConnectivityCacheTest, ReflectsRulesInstalledBeforeTracking) {
  backend_->Block({1}, {9});
  cache_->AddNode(9);  // the new row/column pick up the pre-existing rule
  EXPECT_FALSE(cache_->Allows(1, 9));
  EXPECT_TRUE(cache_->Allows(9, 1));
}

TEST_P(ConnectivityCacheTest, UntrackedNodesFallBackToTheBackend) {
  backend_->Block({1}, {42});
  EXPECT_FALSE(cache_->Allows(1, 42));
  EXPECT_TRUE(cache_->Allows(42, 1));
  EXPECT_GT(cache_->fallback_queries(), 0u);
}

TEST_P(ConnectivityCacheTest, SelfTrafficAlwaysAllowed) {
  backend_->Block({1, 2}, {2, 3});
  EXPECT_TRUE(cache_->Allows(2, 2));
  EXPECT_TRUE(cache_->Allows(7, 7));  // even untracked
}

// Registering a node must stay incremental when the bitmap stride grows past
// one 64-bit word per row: the re-layout is a pure bit copy, so rules
// installed before tracking (and rules patched after the growth) are both
// reflected without any full rebuild or fallback query.
TEST_P(ConnectivityCacheTest, StrideGrowthKeepsRulesAcrossTheWordBoundary) {
  const RuleId early = backend_->Block({1, 65}, {2, 66});  // before tracking 65/66
  for (NodeId n = 7; n <= 70; ++n) {
    cache_->AddNode(n);  // count crosses 64: rows re-lay onto a wider stride
  }
  EXPECT_EQ(cache_->node_count(), 70u);
  EXPECT_EQ(cache_->full_rebuilds(), 0u);
  const RuleId late = backend_->Block({70}, {1});  // patched on the wider stride
  for (NodeId s = 1; s <= 70; ++s) {
    for (NodeId d = 1; d <= 70; ++d) {
      ASSERT_EQ(cache_->Allows(s, d), backend_->Allows(s, d))
          << GetParam() << " cache diverged on " << s << "->" << d;
    }
  }
  EXPECT_TRUE(backend_->Unblock(early));
  EXPECT_TRUE(backend_->Unblock(late));
  for (NodeId s = 1; s <= 70; ++s) {
    for (NodeId d = 1; d <= 70; ++d) {
      ASSERT_TRUE(cache_->Allows(s, d)) << s << "->" << d;
    }
  }
  EXPECT_EQ(cache_->fallback_queries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ConnectivityCacheTest,
                         ::testing::Values("switch", "firewall"),
                         [](const auto& param_info) { return param_info.param; });

// Counts authoritative link queries so the test can pin AddNode's cost to
// exactly one row plus one column — the regression guard for the old
// full-matrix rebuild, which made registration O(N^2) per node.
class CountingBackend : public PartitionBackend {
 public:
  size_t rule_count() const override { return 0; }
  std::string name() const override { return "counting"; }
  uint64_t link_queries() const { return link_queries_; }
  std::unique_ptr<RulesSnapshot> CaptureRules() const override {
    return std::make_unique<RulesSnapshot>();  // no rules to capture
  }
  void RestoreRules(const RulesSnapshot&) override {}

 protected:
  bool AllowsLink(NodeId, NodeId) const override {
    ++link_queries_;
    return true;
  }
  RuleId DoBlock(const Group&, const Group&) override { return 0; }
  bool DoUnblock(RuleId, std::vector<Link>*) override { return false; }

 private:
  mutable uint64_t link_queries_ = 0;
};

TEST(ConnectivityCacheCost, AddNodeQueriesOneRowAndOneColumn) {
  CountingBackend backend;
  ConnectivityCache cache(&backend);
  const uint64_t n = 40;
  for (NodeId node = 0; node < static_cast<NodeId>(n); ++node) {
    const uint64_t before = backend.link_queries();
    cache.AddNode(node);
    // The new node's row and column, minus the self pair (never queried).
    EXPECT_EQ(backend.link_queries() - before, 2 * static_cast<uint64_t>(node));
  }
  EXPECT_EQ(backend.link_queries(), n * (n - 1));
  EXPECT_EQ(cache.full_rebuilds(), 0u);
  cache.AddNode(0);  // re-registration is a no-op, not a re-scan
  EXPECT_EQ(backend.link_queries(), n * (n - 1));
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : simulator_(1), network_(&simulator_, &backend_) {
    network_.Register(1, [this](const Envelope& e) { received_by_1_.push_back(e); });
    network_.Register(2, [this](const Envelope& e) { received_by_2_.push_back(e); });
  }
  sim::Simulator simulator_;
  SwitchPartitioner backend_;
  Network network_;
  std::vector<Envelope> received_by_1_;
  std::vector<Envelope> received_by_2_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  network_.set_latency({sim::Milliseconds(1), 0});
  network_.SendNew<Ping>(1, 2, 7);
  EXPECT_TRUE(received_by_2_.empty());
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 1u);
  EXPECT_EQ(received_by_2_[0].src, 1);
  EXPECT_EQ(simulator_.Now(), sim::Milliseconds(1));
  auto* ping = dynamic_cast<const Ping*>(received_by_2_[0].msg.get());
  ASSERT_NE(ping, nullptr);
  EXPECT_EQ(ping->seq, 7);
}

TEST_F(NetworkTest, DropsWhenPartitionedAtSend) {
  backend_.Block({1}, {2});
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  EXPECT_TRUE(received_by_2_.empty());
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DropsInFlightWhenPartitionInstalledBeforeDelivery) {
  network_.set_latency({sim::Milliseconds(10), 0});
  network_.SendNew<Ping>(1, 2);
  simulator_.Schedule(sim::Milliseconds(1), [this]() { backend_.Block({1}, {2}); });
  simulator_.RunUntilIdle();
  EXPECT_TRUE(received_by_2_.empty());
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DropsToUnregisteredNode) {
  network_.SendNew<Ping>(1, 99);
  simulator_.RunUntilIdle();
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, FlakyLinkDropsProbabilistically) {
  network_.SetLinkLoss(1, 2, 1.0);
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  EXPECT_TRUE(received_by_2_.empty());
  network_.SetLinkLoss(1, 2, 0.0);
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 1u);
}

TEST_F(NetworkTest, CountsDeliveries) {
  network_.SendNew<Ping>(1, 2);
  network_.SendNew<Ping>(2, 1);
  simulator_.RunUntilIdle();
  EXPECT_EQ(network_.messages_sent(), 2u);
  EXPECT_EQ(network_.messages_delivered(), 2u);
  EXPECT_EQ(network_.messages_dropped(), 0u);
}

TEST_F(NetworkTest, UniverseListsRegisteredNodes) {
  EXPECT_EQ(network_.Universe(), (Group{1, 2}));
}

TEST_F(NetworkTest, CrashedNodeStaysInUniverseAndDropsAsNoReceiver) {
  // Crashed-node semantics: a null handler detaches the process but the node
  // keeps its address — Universe() is unchanged and traffic to it is dropped
  // at delivery as "no receiver".
  network_.Register(2, nullptr);
  EXPECT_EQ(network_.Universe(), (Group{1, 2}));
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  EXPECT_EQ(network_.messages_dropped(), 1u);
  auto drops = simulator_.Trace().Filter("net");
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_NE(drops[0].detail.find("no receiver"), std::string::npos);
  // Re-registering (restart) resumes delivery.
  network_.Register(2, [this](const Envelope& e) { received_by_2_.push_back(e); });
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 1u);
}

// A second message type so fault-rule matching can be shown to be
// type-exact (Ping must not match a rule for Pong and vice versa).
struct Pong : public Message {
  explicit Pong(int seq_in = 0) : seq(seq_in) {}
  std::string TypeName() const override { return "Pong"; }
  int seq;
};

TEST_F(NetworkTest, FaultDropKillsOnlyTheNamedType) {
  network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kDrop});
  network_.SendNew<Ping>(1, 2);
  network_.SendNew<Pong>(1, 2);
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 1u);
  EXPECT_EQ(received_by_2_[0].msg->TypeName(), "Pong");
  EXPECT_EQ(network_.messages_dropped(), 1u);
  EXPECT_EQ(network_.messages_faulted(), 1u);
  auto records = simulator_.Trace().Filter("net");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, "drop");
  EXPECT_NE(records[0].detail.find("(fault drop)"), std::string::npos);
}

TEST_F(NetworkTest, FaultDropHonorsTheMatchLimit) {
  network_.AddFaultRule(
      {.type_name = "Ping", .action = FaultRule::Action::kDrop, .limit = 2});
  for (int i = 0; i < 5; ++i) {
    network_.SendNew<Ping>(1, 2, i);
  }
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 3u);
  EXPECT_EQ(network_.messages_dropped(), 2u);
  EXPECT_EQ(network_.messages_faulted(), 2u);
}

TEST_F(NetworkTest, FaultDropRestrictsToSrcAndDst) {
  network_.AddFaultRule(
      {.type_name = "Ping", .action = FaultRule::Action::kDrop, .src = 2, .dst = 1});
  network_.SendNew<Ping>(1, 2);  // does not match: wrong direction
  network_.SendNew<Ping>(2, 1);  // matches
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 1u);
  EXPECT_TRUE(received_by_1_.empty());
}

TEST_F(NetworkTest, FaultDelayPostponesDelivery) {
  network_.set_latency({sim::Milliseconds(1), 0});
  network_.AddFaultRule({.type_name = "Ping",
                         .action = FaultRule::Action::kDelay,
                         .delay = sim::Milliseconds(50)});
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 1u);
  EXPECT_EQ(simulator_.Now(), sim::Milliseconds(51));
  EXPECT_EQ(network_.messages_delivered(), 1u);
  EXPECT_EQ(network_.messages_faulted(), 1u);
}

TEST_F(NetworkTest, FaultReorderSwapsConsecutiveMatches) {
  network_.set_latency({sim::Milliseconds(1), 0});
  network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kReorder});
  for (int seq = 1; seq <= 4; ++seq) {
    simulator_.Schedule(sim::Milliseconds(10 * seq),
                        [this, seq]() { network_.SendNew<Ping>(1, 2, seq); });
  }
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 4u);
  std::vector<int> order;
  for (const Envelope& envelope : received_by_2_) {
    order.push_back(dynamic_cast<const Ping*>(envelope.msg.get())->seq);
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1, 4, 3}));
}

TEST_F(NetworkTest, FaultReorderLeavesOtherTypesInOrder) {
  network_.set_latency({sim::Milliseconds(1), 0});
  network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kReorder});
  network_.SendNew<Ping>(1, 2, 1);
  network_.SendNew<Pong>(1, 2, 2);
  simulator_.RunUntilIdle();
  // The Pong sails through; the held Ping stays held (no successor yet).
  ASSERT_EQ(received_by_2_.size(), 1u);
  EXPECT_EQ(received_by_2_[0].msg->TypeName(), "Pong");
}

TEST_F(NetworkTest, RemovingAReorderRuleFlushesTheHeldMessage) {
  network_.set_latency({sim::Milliseconds(1), 0});
  const FaultRuleId rule =
      network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kReorder});
  network_.SendNew<Ping>(1, 2, 1);
  simulator_.RunUntilIdle();
  EXPECT_TRUE(received_by_2_.empty());  // held
  network_.RemoveFaultRule(rule);
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 1u);  // flushed with its original delay
  EXPECT_FALSE(network_.HasFaultRules());
  network_.RemoveFaultRule(rule);  // unknown id: a safe no-op
}

TEST_F(NetworkTest, ClearFaultRulesFlushesEveryHeldMessage) {
  network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kReorder});
  network_.AddFaultRule({.type_name = "Pong", .action = FaultRule::Action::kReorder});
  network_.SendNew<Ping>(1, 2, 1);
  network_.SendNew<Pong>(1, 2, 2);
  simulator_.RunUntilIdle();
  EXPECT_TRUE(received_by_2_.empty());
  network_.ClearFaultRules();
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 2u);
}

TEST_F(NetworkTest, FirstMatchingFaultRuleWins) {
  network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kDrop, .limit = 1});
  network_.AddFaultRule({.type_name = "Ping",
                         .action = FaultRule::Action::kDelay,
                         .delay = sim::Milliseconds(5)});
  network_.set_latency({sim::Milliseconds(1), 0});
  network_.SendNew<Ping>(1, 2, 1);  // dropped by the first rule
  network_.SendNew<Ping>(1, 2, 2);  // first rule exhausted; delayed by the second
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 1u);
  EXPECT_EQ(simulator_.Now(), sim::Milliseconds(6));
}

TEST_F(NetworkTest, FaultStateSurvivesSnapshotRestore) {
  network_.AddFaultRule(
      {.type_name = "Ping", .action = FaultRule::Action::kDrop, .limit = 2});
  network_.SendNew<Ping>(1, 2, 1);
  simulator_.RunUntilIdle();
  const Network::State snapshot = network_.CaptureState();
  network_.SendNew<Ping>(1, 2, 2);  // consumes the second (last) match
  network_.SendNew<Ping>(1, 2, 3);  // delivered
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 1u);
  // Rewind: the rule must again have one match left, so the replayed
  // sends fault identically to the first run.
  network_.RestoreState(snapshot);
  received_by_2_.clear();
  network_.SendNew<Ping>(1, 2, 2);
  network_.SendNew<Ping>(1, 2, 3);
  simulator_.RunUntilIdle();
  EXPECT_EQ(received_by_2_.size(), 1u);
  EXPECT_EQ(network_.messages_faulted(), 2u);
}

TEST_F(NetworkTest, HeldMessageSurvivesSnapshotRestore) {
  network_.set_latency({sim::Milliseconds(1), 0});
  network_.AddFaultRule({.type_name = "Ping", .action = FaultRule::Action::kReorder});
  network_.SendNew<Ping>(1, 2, 1);
  simulator_.RunUntilIdle();
  const Network::State snapshot = network_.CaptureState();
  network_.SendNew<Ping>(1, 2, 2);
  simulator_.RunUntilIdle();
  ASSERT_EQ(received_by_2_.size(), 2u);
  network_.RestoreState(snapshot);
  received_by_2_.clear();
  network_.SendNew<Ping>(1, 2, 2);  // releases the snapshotted held message
  simulator_.RunUntilIdle();
  std::vector<int> order;
  for (const Envelope& envelope : received_by_2_) {
    order.push_back(dynamic_cast<const Ping*>(envelope.msg.get())->seq);
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_F(NetworkTest, NoFaultRulesMeansNoFaultTraceRecords) {
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  for (const auto& record : simulator_.Trace().records()) {
    EXPECT_NE(record.event, "fault");
  }
  EXPECT_EQ(network_.messages_faulted(), 0u);
}

TEST_F(NetworkTest, DropTraceNamesThePartitionedLink) {
  backend_.Block({1}, {2});
  network_.SendNew<Ping>(1, 2);
  simulator_.RunUntilIdle();
  auto drops = simulator_.Trace().Filter("net");
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].event, "drop");
  EXPECT_NE(drops[0].detail.find("1->2"), std::string::npos);
}

}  // namespace
}  // namespace net

namespace net_property {
namespace {

// Property: with a static partition in place for the whole run, no message
// ever crosses a cut link, in either backend, regardless of traffic shape.
TEST(NetworkProperty, NothingCrossesAStaticPartition) {
  for (const char* kind : {"switch", "firewall"}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      sim::Simulator simulator(seed);
      auto backend = net::SwitchPartitioner();
      auto firewall = net::FirewallPartitioner();
      net::PartitionBackend* active =
          std::string(kind) == "switch" ? static_cast<net::PartitionBackend*>(&backend)
                                        : &firewall;
      net::Network network(&simulator, active);
      net::Partitioner partitioner(active);

      // Random bipartition of 6 nodes.
      sim::Rng rng(seed * 31);
      net::Group side_a;
      net::Group side_b;
      for (net::NodeId n = 1; n <= 6; ++n) {
        (rng.NextBool(0.5) ? side_a : side_b).push_back(n);
      }
      if (side_a.empty() || side_b.empty()) {
        continue;
      }
      auto in_a = [&side_a](net::NodeId n) {
        return std::find(side_a.begin(), side_a.end(), n) != side_a.end();
      };
      partitioner.Complete(side_a, side_b);

      std::vector<std::pair<net::NodeId, net::NodeId>> delivered;
      for (net::NodeId n = 1; n <= 6; ++n) {
        network.Register(n, [n, &delivered](const net::Envelope& envelope) {
          delivered.emplace_back(envelope.src, n);
        });
      }
      for (int i = 0; i < 300; ++i) {
        const net::NodeId src = static_cast<net::NodeId>(1 + rng.NextBelow(6));
        const net::NodeId dst = static_cast<net::NodeId>(1 + rng.NextBelow(6));
        network.SendNew<net::Ping>(src, dst);
      }
      simulator.RunUntilIdle();
      for (const auto& [src, dst] : delivered) {
        EXPECT_EQ(in_a(src), in_a(dst))
            << kind << " let " << src << "->" << dst << " cross the partition";
      }
    }
  }
}

// Property: after any randomized sequence of Block/Unblock/Complete/Partial/
// Simplex/Heal (with duplicated and overlapping groups), both backends and
// both connectivity caches give the same verdict for every pair — including
// an untracked node that exercises the cache's fallback path.
TEST(NetworkProperty, BackendsAndCachesAgreeUnderChurn) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    sim::Rng rng(seed * 101);
    net::SwitchPartitioner sw;
    net::FirewallPartitioner fw;
    net::ConnectivityCache sw_cache(&sw);
    net::ConnectivityCache fw_cache(&fw);
    for (net::NodeId n = 0; n < 7; ++n) {
      sw_cache.AddNode(n);
      fw_cache.AddNode(n);
    }
    net::Partitioner sw_part(&sw);
    net::Partitioner fw_part(&fw);

    auto random_group = [&rng]() {
      net::Group g;
      const size_t len = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < len; ++i) {
        g.push_back(static_cast<net::NodeId>(rng.NextBelow(7)));  // dups allowed
      }
      return g;
    };

    std::vector<std::pair<net::RuleId, net::RuleId>> rules;
    std::vector<std::pair<net::Partition, net::Partition>> partitions;
    for (int step = 0; step < 250; ++step) {
      switch (rng.NextBelow(4)) {
        case 0: {
          const net::Group srcs = random_group();
          const net::Group dsts = random_group();
          rules.emplace_back(sw.Block(srcs, dsts), fw.Block(srcs, dsts));
          break;
        }
        case 1: {
          if (!rules.empty()) {
            const size_t pick = rng.NextBelow(rules.size());
            EXPECT_TRUE(sw.Unblock(rules[pick].first));
            EXPECT_TRUE(fw.Unblock(rules[pick].second));
            rules.erase(rules.begin() + static_cast<ptrdiff_t>(pick));
          }
          break;
        }
        case 2: {
          const net::Group a = random_group();
          const net::Group b = random_group();
          switch (rng.NextBelow(3)) {
            case 0:
              partitions.emplace_back(sw_part.Complete(a, b), fw_part.Complete(a, b));
              break;
            case 1:
              partitions.emplace_back(sw_part.Partial(a, b), fw_part.Partial(a, b));
              break;
            default:
              partitions.emplace_back(sw_part.Simplex(a, b), fw_part.Simplex(a, b));
              break;
          }
          break;
        }
        default: {
          if (!partitions.empty()) {
            const size_t pick = rng.NextBelow(partitions.size());
            sw_part.Heal(partitions[pick].first);
            fw_part.Heal(partitions[pick].second);
          }
          break;
        }
      }
      ASSERT_EQ(sw.rule_count(), fw.rule_count()) << "seed " << seed << " step " << step;
      ASSERT_EQ(sw_cache.synced_epoch(), sw.epoch());
      ASSERT_EQ(fw_cache.synced_epoch(), fw.epoch());
      for (net::NodeId s = 0; s < 8; ++s) {    // node 7 is untracked
        for (net::NodeId d = 0; d < 8; ++d) {
          const bool truth = sw.Allows(s, d);
          ASSERT_EQ(truth, fw.Allows(s, d))
              << "seed " << seed << " step " << step << " link " << s << "->" << d;
          ASSERT_EQ(truth, sw_cache.Allows(s, d))
              << "switch cache diverged at seed " << seed << " step " << step << " link "
              << s << "->" << d;
          ASSERT_EQ(truth, fw_cache.Allows(s, d))
              << "firewall cache diverged at seed " << seed << " step " << step
              << " link " << s << "->" << d;
          if (s == d) {
            ASSERT_TRUE(truth) << "self traffic cut at " << s;
          }
        }
      }
    }
    EXPECT_GT(sw_cache.patched_pairs(), 0u);
    EXPECT_EQ(sw_cache.full_rebuilds(), 0u);
    EXPECT_EQ(fw_cache.full_rebuilds(), 0u);
  }
}

}  // namespace
}  // namespace net_property

namespace net_latency {
namespace {

// Delivery latency stays within [base, base + jitter].
TEST(NetworkLatency, JitterIsBounded) {
  sim::Simulator simulator(5);
  net::SwitchPartitioner backend;
  net::Network network(&simulator, &backend);
  network.set_latency({sim::Microseconds(300), sim::Microseconds(150)});
  std::vector<sim::Time> latencies;
  network.Register(2, [&](const net::Envelope& envelope) {
    latencies.push_back(simulator.Now() - envelope.sent_at);
  });
  network.Register(1, [](const net::Envelope&) {});
  for (int i = 0; i < 500; ++i) {
    network.SendNew<net::Ping>(1, 2);
    simulator.RunUntilIdle();
  }
  ASSERT_EQ(latencies.size(), 500u);
  sim::Time lo = latencies[0];
  sim::Time hi = latencies[0];
  for (sim::Time t : latencies) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    EXPECT_GE(t, sim::Microseconds(300));
    EXPECT_LE(t, sim::Microseconds(450));
  }
  // The jitter draw actually spreads across the window.
  EXPECT_LT(lo, sim::Microseconds(330));
  EXPECT_GT(hi, sim::Microseconds(420));
}

}  // namespace
}  // namespace net_latency
