// Tests for the delta-debugging case minimizer (neat/minimize.h), its
// campaign integration (CampaignOptions::minimize_failures), and the
// structured report artifacts (neat/report.h).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "neat/adapters.h"
#include "neat/campaign.h"
#include "neat/minimize.h"
#include "neat/report.h"
#include "neat/testgen.h"

namespace neat {
namespace {

TestEvent Partition(PartitionKind kind = PartitionKind::kComplete,
                    IsolationTarget target = IsolationTarget::kLeader) {
  TestEvent event;
  event.kind = EventKind::kPartition;
  event.partition = kind;
  event.target = target;
  return event;
}

TestEvent Client(EventKind kind, Side side = Side::kMinority) {
  TestEvent event;
  event.kind = kind;
  event.side = side;
  return event;
}

TestEvent Heal() {
  TestEvent event;
  event.kind = EventKind::kHeal;
  return event;
}

bool ContainsInOrder(const TestCase& test_case, EventKind first, EventKind second) {
  bool saw_first = false;
  for (const TestEvent& event : test_case) {
    if (event.kind == first) {
      saw_first = true;
    } else if (event.kind == second && saw_first) {
      return true;
    }
  }
  return false;
}

// Fails with signature "synthetic" iff the case has a write(minority)
// followed (anywhere later) by a read. The minimal failing subsequence of
// any such case is exactly [write, read] — known by construction.
CaseExecutor WriteThenReadExecutor(uint64_t* executions = nullptr) {
  return [executions](const TestCase& test_case, uint64_t /*seed*/) {
    if (executions != nullptr) {
      ++*executions;
    }
    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    if (ContainsInOrder(test_case, EventKind::kWrite, EventKind::kRead)) {
      check::Violation violation;
      violation.impact = "synthetic";
      result.violations.push_back(violation);
      result.found_failure = true;
    }
    return result;
  };
}

TEST(Minimize, ReachesTheKnownMinimalSubsequence) {
  const TestCase original{Partition(), Client(EventKind::kWrite), Heal(),
                          Client(EventKind::kRead), Client(EventKind::kWrite, Side::kMajority)};
  const MinimizedRepro repro = MinimizeCase(original, 1, WriteThenReadExecutor());
  EXPECT_TRUE(repro.reproduced);
  EXPECT_EQ(repro.signature, "synthetic");
  ASSERT_EQ(repro.minimized.size(), 2u);
  EXPECT_EQ(repro.minimized[0].kind, EventKind::kWrite);
  EXPECT_EQ(repro.minimized[1].kind, EventKind::kRead);
  EXPECT_EQ(repro.original, original);
  EXPECT_GT(repro.probes, 0u);
  ASSERT_GE(repro.log.size(), 2u);
  EXPECT_EQ(repro.log.front().phase, "reproduce");
  EXPECT_EQ(repro.log.back().phase, "verify");
}

TEST(Minimize, ProbesCountRealExecutionsOnly) {
  uint64_t executions = 0;
  const TestCase original{Partition(), Client(EventKind::kWrite), Heal(),
                          Client(EventKind::kRead)};
  const MinimizedRepro repro = MinimizeCase(original, 1, WriteThenReadExecutor(&executions));
  EXPECT_TRUE(repro.reproduced);
  // probes counts real executions; the final verification run is included.
  EXPECT_EQ(repro.probes, executions);
}

TEST(Minimize, PreservesTheExactCompositeSignature) {
  // Fails with "r" when a read is present, "w" when a minority write is
  // present — so the original's signature is "r+w", and dropping either
  // event still *fails*, but with a different signature. The minimizer must
  // refuse those shrinks.
  const CaseExecutor executor = [](const TestCase& test_case, uint64_t) {
    ExecutionResult result;
    for (const TestEvent& event : test_case) {
      check::Violation violation;
      if (event.kind == EventKind::kRead) {
        violation.impact = "r";
      } else if (event.kind == EventKind::kWrite && event.side == Side::kMinority) {
        violation.impact = "w";
      } else {
        continue;
      }
      result.violations.push_back(violation);
    }
    result.found_failure = !result.violations.empty();
    return result;
  };
  const TestCase original{Partition(), Client(EventKind::kWrite), Client(EventKind::kRead),
                          Heal()};
  const MinimizedRepro repro = MinimizeCase(original, 1, executor);
  EXPECT_TRUE(repro.reproduced);
  EXPECT_EQ(repro.signature, "r+w");
  ASSERT_EQ(repro.minimized.size(), 2u);
  EXPECT_EQ(repro.minimized[0].kind, EventKind::kWrite);
  EXPECT_EQ(repro.minimized[1].kind, EventKind::kRead);
  EXPECT_EQ(FailureSignature(repro.final_result), "r+w");
}

TEST(Minimize, SimplifiesPartitionEventsToTheSimplestPreservingVariant) {
  // Signature depends only on having a write after any partition, so the
  // partial/leader partition can be simplified all the way down to
  // complete/any-replica.
  const CaseExecutor executor = [](const TestCase& test_case, uint64_t) {
    ExecutionResult result;
    if (ContainsInOrder(test_case, EventKind::kPartition, EventKind::kWrite)) {
      check::Violation violation;
      violation.impact = "synthetic";
      result.violations.push_back(violation);
      result.found_failure = true;
    }
    return result;
  };
  const TestCase original{Partition(PartitionKind::kPartial, IsolationTarget::kLeader),
                          Client(EventKind::kWrite)};
  const MinimizedRepro repro = MinimizeCase(original, 1, executor);
  EXPECT_TRUE(repro.reproduced);
  ASSERT_EQ(repro.minimized.size(), 2u);
  EXPECT_EQ(repro.minimized[0].partition, PartitionKind::kComplete);
  EXPECT_EQ(repro.minimized[0].target, IsolationTarget::kAnyReplica);
}

TEST(Minimize, NonReproducingCaseIsReturnedUnshrunk) {
  const TestCase passing{Partition(), Heal()};
  const MinimizedRepro repro = MinimizeCase(passing, 1, WriteThenReadExecutor());
  EXPECT_FALSE(repro.reproduced);
  EXPECT_TRUE(repro.signature.empty());
  EXPECT_EQ(repro.minimized, passing);
}

TEST(Minimize, ProbeBudgetStopsShrinkingButKeepsAValidCase) {
  MinimizeOptions options;
  options.max_probes = 1;  // only the reproduce run fits
  const TestCase original{Partition(), Client(EventKind::kWrite), Heal(),
                          Client(EventKind::kRead)};
  const MinimizedRepro repro = MinimizeCase(original, 1, WriteThenReadExecutor(), options);
  // No shrink probes fit in the budget, so the original comes back — still
  // re-verified against the signature.
  EXPECT_TRUE(repro.reproduced);
  EXPECT_EQ(repro.minimized, original);
}

// --- the seeded pbkv flaw ---

TEST(Minimize, SeededPbkvDirtyReadShrinksToTheKnownMinimalRepro) {
  // [partition(complete,leader), write(minority), read(minority), heal]
  // fails with "dirty read"; dropping the read still fails identically, and
  // the probe matrix (every single-event removal of the 3-event result
  // passes) makes [partition, write, heal] the unique 1-minimal repro.
  const TestCase padded{Partition(), Client(EventKind::kWrite), Client(EventKind::kRead),
                        Heal()};
  const CaseExecutor executor = PbkvCaseExecutor(pbkv::VoltDbOptions());
  const MinimizedRepro repro = MinimizeCase(padded, 1, executor);
  EXPECT_TRUE(repro.reproduced);
  EXPECT_EQ(repro.signature, "dirty read");
  ASSERT_EQ(repro.minimized.size(), 3u);
  EXPECT_EQ(FormatTestCase(repro.minimized),
            "partition(complete,leader) -> write(minority) -> heal");
  // 1-minimality, re-verified from first principles: removing any single
  // event loses the signature.
  for (size_t i = 0; i < repro.minimized.size(); ++i) {
    TestCase without = repro.minimized;
    without.erase(without.begin() + static_cast<ptrdiff_t>(i));
    EXPECT_NE(FailureSignature(executor(without, 1)), repro.signature)
        << "removing " << repro.minimized[i].DebugString() << " should break the repro";
  }
}

TEST(Minimize, DeterministicAcrossRepeatedRuns) {
  const TestCase padded{Partition(), Client(EventKind::kWrite), Client(EventKind::kRead),
                        Heal()};
  const CaseExecutor executor = PbkvCaseExecutor(pbkv::VoltDbOptions());
  const MinimizedRepro first = MinimizeCase(padded, 1, executor);
  const MinimizedRepro second = MinimizeCase(padded, 1, executor);
  EXPECT_EQ(FormatTestCase(first.minimized), FormatTestCase(second.minimized));
  EXPECT_EQ(first.probes, second.probes);
  EXPECT_EQ(first.signature, second.signature);
}

// --- campaign integration + the acceptance criterion ---

// Runs a minimizing campaign over the paper-pruned len <= 4 space and
// checks the triage contract for every unique signature.
void CheckMinimizedCampaign(const CampaignResult& result, const CaseExecutor& executor) {
  ASSERT_EQ(result.minimized.size(), result.signature_counts.size());
  for (const MinimizedRepro& repro : result.minimized) {
    EXPECT_EQ(result.signature_counts.count(repro.signature), 1u);
    EXPECT_TRUE(repro.reproduced) << repro.signature;
    EXPECT_LE(repro.minimized.size(), repro.original.size());
    // (a) the minimized repro still fails with the same signature on a
    // fresh re-execution outside the minimizer.
    EXPECT_EQ(FailureSignature(executor(repro.minimized, repro.seed)), repro.signature);
  }
}

TEST(CampaignMinimize, SeededFlawsYieldVerifiedReprosIdenticalAcrossThreadCounts) {
  // The acceptance criterion: on the seeded pbkv and locksvc flaw suites,
  // every unique failure signature of the len <= 4 campaign yields a
  // minimized repro that re-fails identically, never grows, and is
  // byte-identical between 1-thread and 8-thread runs (as is the verdict
  // digest the reports embed).
  struct Target {
    TestCaseGenerator generator;
    CaseExecutor executor;
  };
  TestCaseGenerator::Alphabet lock_alphabet;
  lock_alphabet.client_events = {EventKind::kLock, EventKind::kUnlock};
  std::vector<Target> targets;
  targets.push_back({TestCaseGenerator(TestCaseGenerator::Alphabet{}),
                     PbkvCaseExecutor(pbkv::VoltDbOptions())});
  targets.push_back(
      {TestCaseGenerator(lock_alphabet), LocksvcCaseExecutor(locksvc::IgniteOptions())});

  for (const Target& target : targets) {
    CampaignOptions serial;
    serial.threads = 1;
    serial.minimize_failures = true;
    CampaignOptions parallel = serial;
    parallel.threads = 8;
    const CampaignResult one =
        RunCampaign(target.generator, 4, PaperPruning(), target.executor, serial);
    const CampaignResult eight =
        RunCampaign(target.generator, 4, PaperPruning(), target.executor, parallel);

    ASSERT_GT(one.failures, 0u);
    EXPECT_EQ(one.VerdictDigest(), eight.VerdictDigest());
    CheckMinimizedCampaign(one, target.executor);
    CheckMinimizedCampaign(eight, target.executor);
    ASSERT_EQ(one.minimized.size(), eight.minimized.size());
    for (size_t i = 0; i < one.minimized.size(); ++i) {
      EXPECT_EQ(one.minimized[i].signature, eight.minimized[i].signature);
      // Byte-identical repro at any thread count.
      EXPECT_EQ(FormatTestCase(one.minimized[i].minimized),
                FormatTestCase(eight.minimized[i].minimized));
      EXPECT_EQ(FormatTestCase(one.minimized[i].original),
                FormatTestCase(eight.minimized[i].original));
      EXPECT_EQ(one.minimized[i].probes, eight.minimized[i].probes);
    }
  }
}

TEST(CampaignMinimize, OffByDefaultAndPhaseTimingsAddUp) {
  TestCaseGenerator gen{TestCaseGenerator::Alphabet{}};
  const auto suite = gen.EnumerateUpTo(2, PaperPruning());
  CampaignOptions options;
  options.threads = 2;
  const CampaignResult result = RunCampaign(suite, WriteThenReadExecutor(), options);
  EXPECT_TRUE(result.minimized.empty());
  EXPECT_EQ(result.minimize_seconds, 0.0);
  EXPECT_GE(result.wall_seconds, result.sweep_seconds);
}

// --- the fixpoint property ---

// Formats a shrink log for byte-level comparison.
std::string FormatLog(const std::vector<ShrinkStep>& log) {
  std::string out;
  for (const ShrinkStep& step : log) {
    out += step.phase + "|" + step.detail + "|" + std::to_string(step.events_after) + "|" +
           std::to_string(step.probes_after) + "\n";
  }
  return out;
}

TEST(Minimize, MinimizationIsAFixpointOnThePbkvPaperSuite) {
  // Property: minimization is idempotent. For every minimized repro the
  // pbkv paper-suite campaign produces, feeding the minimized case back
  // through MinimizeCase must return it byte-identical (a 1-minimal,
  // partition-simplified case admits no further accepted shrink), and two
  // such re-minimizations must agree on the shrink log byte for byte.
  TestCaseGenerator gen{TestCaseGenerator::Alphabet{}};
  const CaseExecutor executor = PbkvCaseExecutor(pbkv::VoltDbOptions());
  CampaignOptions options;
  options.threads = 8;
  options.minimize_failures = true;
  const CampaignResult result = RunCampaign(gen, 4, PaperPruning(), executor, options);
  ASSERT_GT(result.failures, 0u);
  ASSERT_FALSE(result.minimized.empty());
  for (const MinimizedRepro& repro : result.minimized) {
    ASSERT_TRUE(repro.reproduced) << repro.signature;
    const MinimizedRepro again = MinimizeCase(repro.minimized, repro.seed, executor);
    EXPECT_TRUE(again.reproduced) << repro.signature;
    EXPECT_EQ(again.signature, repro.signature);
    EXPECT_EQ(FormatTestCase(again.minimized), FormatTestCase(repro.minimized))
        << "re-minimizing must be a no-op";
    const MinimizedRepro twice = MinimizeCase(repro.minimized, repro.seed, executor);
    EXPECT_EQ(FormatTestCase(twice.minimized), FormatTestCase(again.minimized));
    EXPECT_EQ(FormatLog(twice.log), FormatLog(again.log))
        << "the shrink log must be deterministic byte for byte";
    EXPECT_EQ(twice.probes, again.probes);
  }
}

// --- report artifacts ---

TEST(Report, JsonAndMarkdownCarryTheRepros) {
  TestCaseGenerator gen{TestCaseGenerator::Alphabet{}};
  CampaignOptions options;
  options.threads = 2;
  options.minimize_failures = true;
  const CampaignResult result =
      RunCampaign(gen, 3, PaperPruning(), WriteThenReadExecutor(), options);
  ASSERT_GT(result.failures, 0u);
  ASSERT_EQ(result.minimized.size(), 1u);

  ReportContext context;
  context.title = "synthetic \"triage\"";  // exercises JSON escaping
  context.system = "synthetic";
  context.suite = "paper-pruned, len <= 3";
  context.threads = 2;

  const std::string json = JsonReport(result, context);
  EXPECT_NE(json.find("\"synthetic \\\"triage\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"signature\": \"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"reproduced\": true"), std::string::npos);
  EXPECT_NE(json.find("\"verdict_digest\": \"" + result.VerdictDigest() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"shrink_log\""), std::string::npos);

  const std::string markdown = MarkdownReport(result, context);
  EXPECT_NE(markdown.find("## Failure signatures"), std::string::npos);
  EXPECT_NE(markdown.find(FormatTestCase(result.minimized[0].minimized)),
            std::string::npos);
  EXPECT_NE(markdown.find(result.VerdictDigest()), std::string::npos);
}

TEST(Report, ReproIsNullWithoutMinimization) {
  TestCaseGenerator gen{TestCaseGenerator::Alphabet{}};
  CampaignOptions options;
  options.threads = 1;
  const CampaignResult result =
      RunCampaign(gen, 3, PaperPruning(), WriteThenReadExecutor(), options);
  ASSERT_GT(result.failures, 0u);
  const std::string json = JsonReport(result, ReportContext{});
  EXPECT_NE(json.find("\"repro\": null"), std::string::npos);
}

}  // namespace
}  // namespace neat
