// Byte-identity of the shipped scenario corpus against the hand-written
// legacy executors. Each of the four ported reproductions
// (tests/scenarios/*.scn) must produce, through the scenario DSL, exactly
// the campaign the legacy Run*TestCase machinery produces: same verdicts,
// same traces, same coverage, same failure signatures — pinned by
// comparing scenario::CampaignDigest of both sweeps. This is the
// compilation contract of docs/DESIGN.md: the DSL adds a parser in front
// of the existing execution stack, never a different execution.

#include <string>

#include <gtest/gtest.h>

#include "neat/adapters.h"
#include "neat/campaign.h"
#include "scenario/executor.h"
#include "scenario/parser.h"

namespace scenario {
namespace {

Scenario Load(const std::string& file) {
  const ParseResult parsed = ParseFile(std::string(SCENARIO_DIR) + "/" + file);
  EXPECT_TRUE(parsed.ok) << FormatDiagnostics(parsed, file);
  return parsed.scenario;
}

// The legacy sweep for one (scenario, executor) pair: the same generator
// alphabet, pruning, and campaign dimensions the .scn file declares, run
// through the hand-written per-system CaseExecutor.
std::string LegacyDigest(const Scenario& scn, const neat::CaseExecutor& executor) {
  neat::CampaignOptions options;
  options.threads = scn.campaign.threads;
  options.seeds = scn.campaign.seeds;
  const neat::CampaignResult result = neat::RunCampaign(
      ScenarioGenerator(scn), scn.campaign.max_length, ScenarioPruning(scn), executor, options);
  return CampaignDigest(result);
}

TEST(ScenarioConformance, PbkvPaperSuiteMatchesLegacyExecutor) {
  const Scenario scn = Load("pbkv_paper_suite.scn");
  const RunOutcome flawed = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(flawed.passed);
  EXPECT_EQ(flawed.digest, LegacyDigest(scn, neat::PbkvCaseExecutor(pbkv::VoltDbOptions())));
  const RunOutcome correct = RunScenarioVariant(scn, Variant::kCorrect);
  EXPECT_TRUE(correct.passed);
  EXPECT_EQ(correct.digest, LegacyDigest(scn, neat::PbkvCaseExecutor(pbkv::CorrectOptions())));
}

TEST(ScenarioConformance, LocksvcDoubleLockingMatchesLegacyExecutor) {
  const Scenario scn = Load("locksvc_double_locking.scn");
  const RunOutcome flawed = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(flawed.passed);
  EXPECT_EQ(flawed.digest,
            LegacyDigest(scn, neat::LocksvcCaseExecutor(locksvc::IgniteOptions())));
  const RunOutcome correct = RunScenarioVariant(scn, Variant::kCorrect);
  EXPECT_TRUE(correct.passed);
  EXPECT_EQ(correct.digest,
            LegacyDigest(scn, neat::LocksvcCaseExecutor(locksvc::CorrectOptions())));
}

TEST(ScenarioConformance, RaftKvMembershipMatchesLegacyExecutor) {
  const Scenario scn = Load("raftkv_membership_5289.scn");
  const RunOutcome flawed = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(flawed.passed);
  EXPECT_EQ(flawed.digest,
            LegacyDigest(scn, neat::RaftKvCaseExecutor(raftkv::RethinkDbOptions())));
  const RunOutcome correct = RunScenarioVariant(scn, Variant::kCorrect);
  EXPECT_TRUE(correct.passed);
  EXPECT_EQ(correct.digest,
            LegacyDigest(scn, neat::RaftKvCaseExecutor(raftkv::CorrectOptions())));
}

TEST(ScenarioConformance, MqueueDoubleDequeueMatchesLegacyExecutor) {
  const Scenario scn = Load("mqueue_double_dequeue.scn");
  const RunOutcome flawed = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(flawed.passed);
  EXPECT_EQ(flawed.digest,
            LegacyDigest(scn, neat::MqueueCaseExecutor(mqueue::ActiveMqOptions())));
  const RunOutcome correct = RunScenarioVariant(scn, Variant::kCorrect);
  EXPECT_TRUE(correct.passed);
  EXPECT_EQ(correct.digest,
            LegacyDigest(scn, neat::MqueueCaseExecutor(mqueue::CorrectOptions())));
}

}  // namespace
}  // namespace scenario
