// Unit tests for the coordination-service registry (ZooKeeper analog).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/process.h"
#include "net/network.h"
#include "net/partition.h"
#include "sim/simulator.h"
#include "systems/zk/messages.h"
#include "systems/zk/registry.h"

namespace zksvc {
namespace {

// A scriptable registry client for the tests.
class Probe : public cluster::Process {
 public:
  Probe(sim::Simulator* simulator, net::Network* network, net::NodeId id)
      : cluster::Process(simulator, network, id, "probe" + std::to_string(id)) {}

  std::vector<bool> create_replies;
  std::vector<std::pair<std::string, bool>> events;  // (path, deleted)
  std::vector<std::pair<bool, std::string>> get_replies;
  int pongs = 0;

  void Create(net::NodeId zk, const std::string& path, const std::string& data,
              bool ephemeral = true) {
    auto msg = std::make_shared<ZkCreate>();
    msg->request_id = next_request_++;
    msg->path = path;
    msg->data = data;
    msg->ephemeral = ephemeral;
    SendEnvelope(zk, msg);
  }
  void Get(net::NodeId zk, const std::string& path) {
    auto msg = std::make_shared<ZkGet>();
    msg->request_id = next_request_++;
    msg->path = path;
    SendEnvelope(zk, msg);
  }
  void Watch(net::NodeId zk, const std::string& path) {
    auto msg = std::make_shared<ZkWatch>();
    msg->path = path;
    SendEnvelope(zk, msg);
  }
  void Delete(net::NodeId zk, const std::string& path) {
    auto msg = std::make_shared<ZkDelete>();
    msg->path = path;
    SendEnvelope(zk, msg);
  }
  void StartPinging(net::NodeId zk, sim::Duration interval) {
    Every(interval, [this, zk]() { Send<ZkPing>(zk); });
  }

 protected:
  void OnMessage(const net::Envelope& envelope) override {
    const net::Message& msg = *envelope.msg;
    if (auto* reply = dynamic_cast<const ZkCreateReply*>(&msg)) {
      create_replies.push_back(reply->ok);
    } else if (auto* event = dynamic_cast<const ZkEvent*>(&msg)) {
      events.emplace_back(event->path, event->deleted);
    } else if (auto* get_reply = dynamic_cast<const ZkGetReply*>(&msg)) {
      get_replies.emplace_back(get_reply->exists, get_reply->data);
    } else if (dynamic_cast<const ZkPong*>(&msg) != nullptr) {
      ++pongs;
    }
  }

 private:
  uint64_t next_request_ = 1;
};

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : simulator_(1), network_(&simulator_, &backend_) {
    Registry::Options options;
    options.session_timeout = sim::Milliseconds(300);
    registry_ = std::make_unique<Registry>(&simulator_, &network_, 50, options);
    a_ = std::make_unique<Probe>(&simulator_, &network_, 1);
    b_ = std::make_unique<Probe>(&simulator_, &network_, 2);
    registry_->Boot();
    a_->Boot();
    b_->Boot();
  }
  sim::Simulator simulator_;
  net::SwitchPartitioner backend_;
  net::Network network_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<Probe> a_;
  std::unique_ptr<Probe> b_;
};

TEST_F(RegistryTest, FirstCreateWins) {
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Milliseconds(5));
  b_->Create(50, "/master", "2");
  simulator_.RunFor(sim::Milliseconds(5));
  ASSERT_EQ(a_->create_replies, (std::vector<bool>{true}));
  ASSERT_EQ(b_->create_replies, (std::vector<bool>{false}));
  EXPECT_EQ(registry_->Data("/master"), "1");
}

TEST_F(RegistryTest, GetReturnsDataAndExistence) {
  a_->Create(50, "/x", "payload");
  simulator_.RunFor(sim::Milliseconds(10));
  b_->Get(50, "/x");
  simulator_.RunFor(sim::Milliseconds(5));
  b_->Get(50, "/missing");
  simulator_.RunFor(sim::Milliseconds(5));
  ASSERT_EQ(b_->get_replies.size(), 2u);
  EXPECT_TRUE(b_->get_replies[0].first);
  EXPECT_EQ(b_->get_replies[0].second, "payload");
  EXPECT_FALSE(b_->get_replies[1].first);
}

TEST_F(RegistryTest, SessionExpiryDeletesEphemeralsAndFiresWatches) {
  a_->StartPinging(50, sim::Milliseconds(50));
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Milliseconds(100));
  b_->Watch(50, "/master");
  // Partition a away from the registry; its session expires.
  backend_.Block({1}, {50});
  simulator_.RunFor(sim::Milliseconds(600));
  EXPECT_FALSE(registry_->Exists("/master"));
  ASSERT_EQ(b_->events.size(), 1u);
  EXPECT_EQ(b_->events[0], std::make_pair(std::string("/master"), true));
}

TEST_F(RegistryTest, PingKeepsSessionAlive) {
  a_->StartPinging(50, sim::Milliseconds(50));
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Seconds(2));
  EXPECT_TRUE(registry_->Exists("/master"));
}

TEST_F(RegistryTest, PersistentEntrySurvivesSessionExpiry) {
  a_->Create(50, "/config", "v", /*ephemeral=*/false);
  simulator_.RunFor(sim::Milliseconds(10));
  backend_.Block({1}, {50});
  simulator_.RunFor(sim::Seconds(1));
  EXPECT_TRUE(registry_->Exists("/config"));
}

TEST_F(RegistryTest, WatchFiresOnCreateAndIsOneShot) {
  b_->Watch(50, "/master");
  simulator_.RunFor(sim::Milliseconds(5));
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Milliseconds(5));
  ASSERT_EQ(b_->events.size(), 1u);
  EXPECT_FALSE(b_->events[0].second);  // created, not deleted
  // One-shot: a later delete does not fire again without re-arming.
  a_->Delete(50, "/master");
  simulator_.RunFor(sim::Milliseconds(10));
  EXPECT_EQ(b_->events.size(), 1u);
}

TEST_F(RegistryTest, ExplicitDeleteFiresWatch) {
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Milliseconds(10));
  b_->Watch(50, "/master");
  simulator_.RunFor(sim::Milliseconds(5));
  a_->Delete(50, "/master");
  simulator_.RunFor(sim::Milliseconds(5));
  ASSERT_EQ(b_->events.size(), 1u);
  EXPECT_TRUE(b_->events[0].second);
}

TEST_F(RegistryTest, WatchRearmsAfterFiring) {
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Milliseconds(10));
  b_->Watch(50, "/master");
  simulator_.RunFor(sim::Milliseconds(5));
  a_->Delete(50, "/master");
  simulator_.RunFor(sim::Milliseconds(5));
  ASSERT_EQ(b_->events.size(), 1u);
  // Re-arm and observe the next transition.
  b_->Watch(50, "/master");
  simulator_.RunFor(sim::Milliseconds(5));
  a_->Create(50, "/master", "2");
  simulator_.RunFor(sim::Milliseconds(5));
  ASSERT_EQ(b_->events.size(), 2u);
  EXPECT_FALSE(b_->events[1].second);  // created
}

TEST_F(RegistryTest, MultipleWatchersAllFire) {
  a_->Watch(50, "/x");
  b_->Watch(50, "/x");
  simulator_.RunFor(sim::Milliseconds(5));
  a_->Create(50, "/x", "v");
  simulator_.RunFor(sim::Milliseconds(5));
  EXPECT_EQ(a_->events.size(), 1u);
  EXPECT_EQ(b_->events.size(), 1u);
}

TEST_F(RegistryTest, ReconnectedSessionCanRecreateItsEntry) {
  a_->StartPinging(50, sim::Milliseconds(50));
  a_->Create(50, "/master", "1");
  simulator_.RunFor(sim::Milliseconds(100));
  backend_.Block({1}, {50});
  simulator_.RunFor(sim::Milliseconds(600));  // session expires, entry gone
  EXPECT_FALSE(registry_->Exists("/master"));
  backend_ = net::SwitchPartitioner();  // heal: replace the whole rule table
  // After the heal, the mastership slot is up for grabs again.
  b_->Create(50, "/master", "2");
  simulator_.RunFor(sim::Milliseconds(10));
  EXPECT_EQ(registry_->Data("/master"), "2");
}

TEST_F(RegistryTest, PongAnswersPing) {
  a_->StartPinging(50, sim::Milliseconds(50));
  simulator_.RunFor(sim::Milliseconds(220));
  EXPECT_GE(a_->pongs, 4);
}

}  // namespace
}  // namespace zksvc
