// Scenario tests for the replicated message queue, reproducing the ActiveMQ
// failures NEAT found: double dequeueing under a complete partition
// (AMQ-6978, Listing 2) and the cluster-wide hang under a partial partition
// that spares the coordination service (AMQ-7064, Figure 6).

#include <gtest/gtest.h>

#include <string>

#include "check/checkers.h"
#include "systems/mqueue/cluster.h"

namespace mqueue {
namespace {

using check::OpStatus;

Cluster::Config MakeConfig(const Options& options, uint64_t seed = 1) {
  Cluster::Config config;
  config.options = options;
  config.seed = seed;
  return config;
}

TEST(MqueueSteadyState, FirstBrokerBecomesMaster) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  EXPECT_EQ(cluster.MasterPerRegistry(), 1);
  EXPECT_TRUE(cluster.broker(1).is_master());
  EXPECT_FALSE(cluster.broker(2).is_master());
}

TEST(MqueueSteadyState, SendReceiveIsFifo) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m1").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Send(0, "q", "m2").status, OpStatus::kOk);
  auto r1 = cluster.Receive(1, "q");
  auto r2 = cluster.Receive(1, "q");
  EXPECT_EQ(r1.value, "m1");
  EXPECT_EQ(r2.value, "m2");
}

TEST(MqueueSteadyState, ReceiveOnEmptyQueueReturnsEmpty) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  auto r = cluster.Receive(0, "q");
  EXPECT_EQ(r.status, OpStatus::kOk);
  EXPECT_EQ(r.value, "");
}

TEST(MqueueSteadyState, NonMasterRejectsClients) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(2);
  EXPECT_EQ(cluster.Send(0, "q", "m").status, OpStatus::kFail);
}

TEST(MqueueSteadyState, MessagesReplicateToSlaves) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m1").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(200));
  EXPECT_TRUE(cluster.broker(2).QueueContains("q", "m1"));
  EXPECT_TRUE(cluster.broker(3).QueueContains("q", "m1"));
}

TEST(MqueueFailover, CrashedMasterIsReplacedAndMessagesSurvive) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m1").status, OpStatus::kOk);
  cluster.broker(1).Crash();
  cluster.Settle(sim::Seconds(1));
  const net::NodeId new_master = cluster.MasterPerRegistry();
  ASSERT_NE(new_master, net::kInvalidNode);
  EXPECT_NE(new_master, 1);
  cluster.client(1).set_contact(new_master);
  auto r = cluster.Receive(1, "q");
  EXPECT_EQ(r.status, OpStatus::kOk);
  EXPECT_EQ(r.value, "m1");
}

// --- Listing 2 / AMQ-6978: double dequeue under a complete partition ---

TEST(MqueueDoubleDequeue, LocalDequeueCommitReproducesListing2) {
  Cluster cluster(MakeConfig(ActiveMqOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q1", "msg1").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Send(0, "q1", "msg2").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(200));

  // Isolate the master together with client1 from the rest of the cluster
  // (including the coordination service).
  const net::NodeId master = cluster.MasterPerRegistry();
  ASSERT_EQ(master, 1);
  const net::NodeId c1 = cluster.client(0).id();
  net::Group minority{master, c1};
  net::Group majority{2, 3, cluster.zk_id(), cluster.client(1).id()};
  auto partition = cluster.partitioner().Complete(minority, majority);

  // The isolated old master still serves its side: client1 pops msg1.
  cluster.client(0).set_contact(master);
  auto min_msg = cluster.Receive(0, "q1");
  EXPECT_EQ(min_msg.status, OpStatus::kOk);
  EXPECT_EQ(min_msg.value, "msg1");

  // sleep(SLEEP_PERIOD): the registry expires the master's session and the
  // majority elects a replacement — which still holds msg1.
  cluster.Settle(sim::Seconds(1));
  const net::NodeId new_master = cluster.MasterPerRegistry();
  ASSERT_NE(new_master, net::kInvalidNode);
  ASSERT_NE(new_master, master);
  cluster.client(1).set_contact(new_master);
  auto maj_msg = cluster.Receive(1, "q1");
  EXPECT_EQ(maj_msg.status, OpStatus::kOk);
  EXPECT_EQ(maj_msg.value, "msg1") << "the same message delivered twice";

  auto violations = check::CheckDoubleDequeue(cluster.history());
  ASSERT_EQ(violations.size(), 1u) << check::FormatViolations(violations);
  EXPECT_EQ(violations[0].impact, "double dequeue");
  cluster.partitioner().Heal(partition);
}

TEST(MqueueDoubleDequeue, QuorumDequeuePreventsIt) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q1", "msg1").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Send(0, "q1", "msg2").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(200));
  const net::NodeId c1 = cluster.client(0).id();
  net::Group minority{1, c1};
  net::Group majority{2, 3, cluster.zk_id(), cluster.client(1).id()};
  auto partition = cluster.partitioner().Complete(minority, majority);

  // The isolated master cannot commit the dequeue through a majority.
  cluster.client(0).set_contact(1);
  auto min_msg = cluster.Receive(0, "q1");
  EXPECT_NE(min_msg.status, OpStatus::kOk);

  cluster.Settle(sim::Seconds(1));
  const net::NodeId new_master = cluster.MasterPerRegistry();
  ASSERT_NE(new_master, net::kInvalidNode);
  cluster.client(1).set_contact(new_master);
  auto maj_msg = cluster.Receive(1, "q1");
  EXPECT_EQ(maj_msg.value, "msg1");  // delivered exactly once
  EXPECT_TRUE(check::CheckDoubleDequeue(cluster.history()).empty());
  cluster.partitioner().Heal(partition);
}

// --- Figure 6 / AMQ-7064: system hang under a partial partition ---

TEST(MqueueHang, PartialPartitionSparingRegistryBlocksEverything) {
  Cluster cluster(MakeConfig(ActiveMqOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m-before").status, OpStatus::kOk);

  // Partial partition: master vs. replicas; everyone still reaches the
  // registry and the clients.
  auto partition = cluster.partitioner().Partial({1}, {2, 3});
  cluster.Settle(sim::Seconds(1));

  // The master cannot replicate: its operations fail...
  auto send = cluster.Send(0, "q", "m-during");
  EXPECT_NE(send.status, OpStatus::kOk);
  // ...and the replicas never take over because the registry still sees the
  // master's session: the whole system is stuck.
  EXPECT_EQ(cluster.MasterPerRegistry(), 1);
  cluster.client(1).set_contact(2);
  EXPECT_EQ(cluster.Send(1, "q", "m-slave").status, OpStatus::kFail);
  cluster.partitioner().Heal(partition);
}

TEST(MqueueHang, ResigningMasterRestoresAvailability) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m-before").status, OpStatus::kOk);
  auto partition = cluster.partitioner().Partial({1}, {2, 3});
  cluster.Settle(sim::Seconds(1));

  // The isolated master resigned; a replica took over.
  const net::NodeId new_master = cluster.MasterPerRegistry();
  ASSERT_NE(new_master, net::kInvalidNode);
  EXPECT_NE(new_master, 1);
  cluster.client(1).set_contact(new_master);
  EXPECT_EQ(cluster.Send(1, "q", "m-during").status, OpStatus::kOk);
  auto r = cluster.Receive(1, "q");
  EXPECT_EQ(r.value, "m-before");
  cluster.partitioner().Heal(partition);
}

// --- KAFKA-6173 analog: a master cut off from the registry only ---

TEST(MqueueZkFence, DisconnectedMasterKeepsServingWithoutALease) {
  Cluster cluster(MakeConfig(ActiveMqOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.MasterPerRegistry(), 1);
  // Cut only the master <-> registry link; brokers and clients still reach
  // the master.
  auto partition = cluster.partitioner().Partial({1}, {cluster.zk_id()});
  cluster.Settle(sim::Seconds(1));
  // The registry expired the session and a replica took over...
  const net::NodeId new_master = cluster.MasterPerRegistry();
  EXPECT_NE(new_master, 1);
  EXPECT_NE(new_master, net::kInvalidNode);
  // ...but the old master, with no lease check, still believes and serves.
  EXPECT_EQ(cluster.SelfBelievedMasters().size(), 2u) << "split brain";
  cluster.client(0).set_contact(1);
  EXPECT_EQ(cluster.Send(0, "q", "m-via-stale-master").status, OpStatus::kOk)
      << "the stale master accepted a request (KAFKA-6173)";
  cluster.partitioner().Heal(partition);
}

TEST(MqueueZkFence, LeaseCheckFencesTheDisconnectedMaster) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.MasterPerRegistry(), 1);
  auto partition = cluster.partitioner().Partial({1}, {cluster.zk_id()});
  cluster.Settle(sim::Seconds(1));
  const net::NodeId new_master = cluster.MasterPerRegistry();
  EXPECT_NE(new_master, 1);
  // The old master's lease lapsed: it stops accepting requests even though
  // it can still reach everything but the registry.
  cluster.client(0).set_contact(1);
  EXPECT_EQ(cluster.Send(0, "q", "m-via-stale-master").status, OpStatus::kFail);
  if (new_master != net::kInvalidNode) {
    cluster.client(1).set_contact(new_master);
    EXPECT_EQ(cluster.Send(1, "q", "m-via-new-master").status, OpStatus::kOk);
  }
  cluster.partitioner().Heal(partition);
}

TEST(MqueueFailover, FifoOrderSurvivesFailover) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(cluster.Send(0, "q", "m" + std::to_string(i)).status, OpStatus::kOk);
  }
  cluster.Settle(sim::Milliseconds(200));
  cluster.broker(1).Crash();
  cluster.Settle(sim::Seconds(1));
  const net::NodeId new_master = cluster.MasterPerRegistry();
  ASSERT_NE(new_master, net::kInvalidNode);
  cluster.client(1).set_contact(new_master);
  for (int i = 0; i < 5; ++i) {
    auto r = cluster.Receive(1, "q");
    ASSERT_EQ(r.status, OpStatus::kOk);
    EXPECT_EQ(r.value, "m" + std::to_string(i)) << "FIFO order after failover";
  }
}

// --- the central service itself fails ---

TEST(MqueueRegistryCrash, UnfencedMasterRidesOutTheRegistryOutage) {
  Cluster cluster(MakeConfig(ActiveMqOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m1").status, OpStatus::kOk);
  cluster.registry().Crash();
  cluster.Settle(sim::Seconds(1));
  // Availability-first: with no lease check, the master keeps serving
  // through the outage (and nobody else can be elected anyway).
  EXPECT_EQ(cluster.Send(0, "q", "m2").status, OpStatus::kOk);
}

TEST(MqueueRegistryCrash, FencedMasterStopsWithoutItsLease) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Send(0, "q", "m1").status, OpStatus::kOk);
  cluster.registry().Crash();
  cluster.Settle(sim::Seconds(1));
  // Consistency-first: the lease lapsed, the master fences itself. The
  // trade-off is total unavailability while the registry is down...
  EXPECT_EQ(cluster.Send(0, "q", "m2").status, OpStatus::kFail);
  // ...but service resumes once the registry returns.
  cluster.registry().Restart();
  cluster.Settle(sim::Seconds(1));
  const net::NodeId master = cluster.MasterPerRegistry();
  ASSERT_NE(master, net::kInvalidNode);
  cluster.client(0).set_contact(master);
  EXPECT_EQ(cluster.Send(0, "q", "m3").status, OpStatus::kOk);
}

// --- property sweep: correct config delivers each message at most once and
// loses no acknowledged message across partition/heal cycles ---

class MqueueSafetySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MqueueSafetySweep, ExactlyOnceAcrossPartitionHeal) {
  Cluster::Config config = MakeConfig(CorrectOptions(), GetParam());
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(300));
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster.Send(0, "q", "m" + std::to_string(i)).status, OpStatus::kOk);
  }
  cluster.Settle(sim::Milliseconds(200));
  const net::NodeId isolated = static_cast<net::NodeId>(1 + (GetParam() % 3));
  auto partition = cluster.partitioner().Complete(
      {isolated}, net::Partitioner::Rest({1, 2, 3, cluster.zk_id()}, {isolated}));
  cluster.Settle(sim::Seconds(1));
  // Dequeue wherever the registry says the master is.
  const net::NodeId master = cluster.MasterPerRegistry();
  if (master != net::kInvalidNode) {
    cluster.client(1).set_contact(master);
    cluster.Receive(1, "q");
  }
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  const net::NodeId final_master = cluster.MasterPerRegistry();
  ASSERT_NE(final_master, net::kInvalidNode);
  cluster.client(1).set_contact(final_master);
  for (int i = 0; i < 6; ++i) {
    auto r = cluster.Receive(1, "q", /*final_drain=*/true);
    if (r.status == OpStatus::kOk && r.value.empty()) {
      break;
    }
  }
  auto& history = cluster.history();
  EXPECT_TRUE(check::CheckDoubleDequeue(history).empty()) << history.Dump();
  EXPECT_TRUE(check::CheckLostMessages(history).empty()) << history.Dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqueueSafetySweep, ::testing::Range<uint64_t>(1, 9),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace mqueue
