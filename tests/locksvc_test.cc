// Scenario and property tests for the lock/semaphore/atomics service,
// reproducing the Ignite/Terracotta failures NEAT found (Figure 5,
// IGNITE-8881..8883, -9767, -9768) and showing the quorum-based fix.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/checkers.h"
#include "systems/locksvc/cluster.h"

namespace locksvc {
namespace {

using check::OpStatus;

Cluster::Config MakeConfig(const Options& options, uint64_t seed = 1) {
  Cluster::Config config;
  config.options = options;
  config.seed = seed;
  return config;
}

TEST(LocksvcSteadyState, LockUnlockRoundTrips) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  EXPECT_EQ(cluster.Lock(0, "L").status, OpStatus::kOk);
  EXPECT_EQ(cluster.Unlock(0, "L").status, OpStatus::kOk);
}

TEST(LocksvcSteadyState, HeldLockDeniesOtherClients) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Lock(0, "L").status, OpStatus::kOk);
  cluster.client(1).set_contact(2);
  EXPECT_EQ(cluster.Lock(1, "L").status, OpStatus::kFail);
}

TEST(LocksvcSteadyState, UnlockFreesForOtherClients) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Lock(0, "L").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Unlock(0, "L").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(100));  // release propagates
  cluster.client(1).set_contact(2);
  EXPECT_EQ(cluster.Lock(1, "L").status, OpStatus::kOk);
}

TEST(LocksvcSteadyState, ReleasingForeignLockFails) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Lock(0, "L").status, OpStatus::kOk);
  EXPECT_EQ(cluster.Unlock(1, "L").status, OpStatus::kFail);
}

TEST(LocksvcSteadyState, SemaphoreHonorsCapacity) {
  Cluster::Config config = MakeConfig(CorrectOptions());
  config.num_clients = 3;
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(200));
  EXPECT_EQ(cluster.SemAcquire(0, "S", 2).status, OpStatus::kOk);
  EXPECT_EQ(cluster.SemAcquire(1, "S", 2).status, OpStatus::kOk);
  EXPECT_EQ(cluster.SemAcquire(2, "S", 2).status, OpStatus::kFail);
  EXPECT_EQ(cluster.SemRelease(0, "S").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(100));
  EXPECT_EQ(cluster.SemAcquire(2, "S", 2).status, OpStatus::kOk);
}

TEST(LocksvcSteadyState, CounterValuesAreUniqueAcrossCoordinators) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(3);
  std::set<int64_t> values;
  for (int i = 0; i < 3; ++i) {
    auto a = cluster.Increment(0, "seq");
    ASSERT_EQ(a.status, OpStatus::kOk);
    values.insert(cluster.client(0).last_counter_value());
    cluster.Settle(sim::Milliseconds(50));
    auto b = cluster.Increment(1, "seq");
    ASSERT_EQ(b.status, OpStatus::kOk);
    values.insert(cluster.client(1).last_counter_value());
    cluster.Settle(sim::Milliseconds(50));
  }
  EXPECT_EQ(values.size(), 6u) << "every granted value must be unique";
}

// --- Figure 5: semaphore/lock double granting under a complete partition ---

TEST(LocksvcDoubleLocking, ViewShrinkingGrantsTheSameLockTwice) {
  Cluster cluster(MakeConfig(IgniteOptions()));
  cluster.Settle(sim::Milliseconds(200));
  // Step 1: a complete partition isolates replica 1.
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(400));  // both sides shrink their views
  EXPECT_EQ(cluster.server(1).view().size(), 1u);
  EXPECT_EQ(cluster.server(2).view().size(), 2u);

  // Step 2: clients on both sides acquire the same lock — and both succeed.
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  EXPECT_EQ(cluster.Lock(0, "L").status, OpStatus::kOk);
  EXPECT_EQ(cluster.Lock(1, "L").status, OpStatus::kOk);

  auto violations = check::CheckBrokenLocks(cluster.history());
  ASSERT_EQ(violations.size(), 1u) << check::FormatViolations(violations);
  EXPECT_EQ(violations[0].impact, "broken locks");

  // The damage persists after the heal: each side kept its own holder.
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Milliseconds(500));
  EXPECT_EQ(cluster.server(1).LockHolder("L"), 1);
  EXPECT_EQ(cluster.server(2).LockHolder("L"), 2);
}

TEST(LocksvcDoubleLocking, MajorityQuorumPreventsIt) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(400));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  // The minority side cannot assemble a majority: its acquire fails.
  EXPECT_NE(cluster.Lock(0, "L").status, OpStatus::kOk);
  EXPECT_EQ(cluster.Lock(1, "L").status, OpStatus::kOk);
  EXPECT_TRUE(check::CheckBrokenLocks(cluster.history()).empty());
  cluster.partitioner().Heal(partition);
}

TEST(LocksvcDoubleLocking, SemaphoreGrantedOnBothSides) {
  Cluster cluster(MakeConfig(IgniteOptions()));
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(400));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  EXPECT_EQ(cluster.SemAcquire(0, "S", 1).status, OpStatus::kOk);
  EXPECT_EQ(cluster.SemAcquire(1, "S", 1).status, OpStatus::kOk);
  auto violations = check::CheckSemaphore(cluster.history(), "S", 1);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].impact, "broken locks");
  cluster.partitioner().Heal(partition);
}

// --- Semaphore corruption: reclaim of an unreachable client's permit ---

TEST(LocksvcReclaim, HealedClientReleaseCorruptsSemaphore) {
  Cluster cluster(MakeConfig(IgniteOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.SemAcquire(0, "S", 1).status, OpStatus::kOk);

  // Partition the holding client away from the service. Its lease expires
  // and the coordinator reclaims the permit.
  const net::NodeId c1 = cluster.client(0).id();
  auto partition = cluster.partitioner().Complete({c1}, {1, 2, 3});
  cluster.Settle(sim::Milliseconds(800));
  EXPECT_TRUE(cluster.server(1).SemaphoreHolders("S").empty()) << "permit was reclaimed";

  // Heal; the unaware client releases a permit it no longer holds.
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Milliseconds(100));
  EXPECT_EQ(cluster.SemRelease(0, "S").status, OpStatus::kFail);
  EXPECT_TRUE(cluster.server(1).SemaphoreBroken("S"));
}

TEST(LocksvcReclaim, WithoutReclaimTheLeaseSurvivesThePartition) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.SemAcquire(0, "S", 1).status, OpStatus::kOk);
  const net::NodeId c1 = cluster.client(0).id();
  auto partition = cluster.partitioner().Complete({c1}, {1, 2, 3});
  cluster.Settle(sim::Milliseconds(800));
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Milliseconds(100));
  EXPECT_EQ(cluster.SemRelease(0, "S").status, OpStatus::kOk);
  EXPECT_FALSE(cluster.server(1).SemaphoreBroken("S"));
}

// --- Broken atomics: duplicate counter values across the partition ---

TEST(LocksvcAtomics, PartitionYieldsDuplicateSequenceValues) {
  Cluster cluster(MakeConfig(IgniteOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Increment(0, "seq").status, OpStatus::kOk);  // seeds value 1 everywhere
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(400));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Increment(0, "seq").status, OpStatus::kOk);
  const int64_t minority_value = cluster.client(0).last_counter_value();
  ASSERT_EQ(cluster.Increment(1, "seq").status, OpStatus::kOk);
  const int64_t majority_value = cluster.client(1).last_counter_value();
  EXPECT_EQ(minority_value, majority_value) << "both sides handed out the same value";
  cluster.partitioner().Heal(partition);
}

TEST(LocksvcAtomics, CheckerFlagsTheDuplicateAssignments) {
  Cluster cluster(MakeConfig(IgniteOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Increment(0, "seq").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(400));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  cluster.Increment(0, "seq");
  cluster.Increment(1, "seq");
  auto violations = check::CheckCounterUniqueness(cluster.history());
  ASSERT_EQ(violations.size(), 1u) << check::FormatViolations(violations);
  cluster.partitioner().Heal(partition);
}

TEST(LocksvcAtomics, MajorityQuorumKeepsValuesUnique) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(200));
  ASSERT_EQ(cluster.Increment(0, "seq").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Milliseconds(400));
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  EXPECT_NE(cluster.Increment(0, "seq").status, OpStatus::kOk) << "minority must not assign";
  EXPECT_EQ(cluster.Increment(1, "seq").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
}

// --- property sweep: correct config grants each lock at most once, no
// matter which replica is isolated and which backend enforces the fault ---

class LocksvcSafetySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, net::NodeId, bool>> {};

TEST_P(LocksvcSafetySweep, NoDoubleGrantsUnderSingleNodeIsolation) {
  const auto [seed, isolated, use_switch] = GetParam();
  Cluster::Config config = MakeConfig(CorrectOptions(), seed);
  config.use_switch_backend = use_switch;
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(200));
  auto partition = cluster.partitioner().Complete(
      {isolated}, net::Partitioner::Rest({1, 2, 3}, {isolated}));
  cluster.Settle(sim::Milliseconds(400));
  cluster.client(0).set_contact(isolated);
  cluster.client(1).set_contact(isolated == 1 ? 2 : 1);
  cluster.Lock(0, "L");
  cluster.Lock(1, "L");
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Milliseconds(400));
  cluster.Lock(0, "L2");
  cluster.Lock(1, "L2");
  auto violations = check::CheckBrokenLocks(cluster.history());
  EXPECT_TRUE(violations.empty()) << check::FormatViolations(violations)
                                  << cluster.history().Dump();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocksvcSafetySweep,
    ::testing::Combine(::testing::Range<uint64_t>(1, 5), ::testing::Values(1, 2, 3),
                       ::testing::Bool()),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_iso" +
             std::to_string(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) ? "_switch" : "_firewall");
    });

}  // namespace
}  // namespace locksvc
