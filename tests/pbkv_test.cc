// Scenario and property tests for the primary-backup KV system.
//
// Each flawed configuration reproduces a failure the paper documents, and
// the corresponding corrected configuration must not. Scenarios follow the
// paper's manifestation sequences: partition first, then a handful of
// ordinary client events with the timing constraints of Section 5.2.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checkers.h"
#include "check/linearizability.h"
#include "systems/pbkv/cluster.h"

namespace pbkv {
namespace {

using check::OpStatus;

Cluster::Config MakeConfig(const Options& options, uint64_t seed = 1) {
  Cluster::Config config;
  config.options = options;
  config.seed = seed;
  return config;
}

TEST(PbkvSteadyState, InitialLeaderIsLowestId) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(500));
  EXPECT_EQ(cluster.FindPrimary(), 1);
}

TEST(PbkvSteadyState, PutThenGetRoundTrips) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  auto put = cluster.Put(0, "k", "v1");
  EXPECT_EQ(put.status, OpStatus::kOk);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "v1");
}

TEST(PbkvSteadyState, DeleteRemovesKey) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Delete(0, "k").status, OpStatus::kOk);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "");
}

TEST(PbkvSteadyState, WritesReplicateToAllReplicas) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(300));
  for (net::NodeId id : cluster.server_ids()) {
    EXPECT_EQ(cluster.server(id).StoreGet("k").value_or("<none>"), "v") << "replica " << id;
  }
}

TEST(PbkvSteadyState, NonLeaderRedirectsClients) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(3);  // a follower
  auto put = cluster.Put(0, "k", "v");
  EXPECT_EQ(put.status, OpStatus::kOk);  // redirected to the primary
}

TEST(PbkvClient, TimesOutWhenTheContactNeverAnswers) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(0).set_contact(99);  // no such node
  cluster.client(0).set_op_timeout(sim::Milliseconds(200));
  auto put = cluster.Put(0, "k", "v");
  EXPECT_EQ(put.status, OpStatus::kTimeout);
  // The client recovers for the next operation.
  cluster.client(0).set_contact(1);
  EXPECT_EQ(cluster.Put(0, "k", "v2").status, OpStatus::kOk);
}

TEST(PbkvClient, LateRepliesAfterTimeoutAreIgnored) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  // Timeout shorter than the network round trip: the reply arrives late.
  cluster.network().set_latency({sim::Milliseconds(5), 0});
  cluster.client(0).set_op_timeout(sim::Milliseconds(1));
  auto put = cluster.Put(0, "k", "v");
  EXPECT_EQ(put.status, OpStatus::kTimeout);
  cluster.Settle(sim::Milliseconds(100));  // the stale reply lands harmlessly
  cluster.client(0).set_op_timeout(sim::Milliseconds(800));
  EXPECT_EQ(cluster.Put(0, "k2", "v2").status, OpStatus::kOk);
}

TEST(PbkvFailover, MajorityElectsNewLeaderWhenLeaderIsolated) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Seconds(2));
  auto primaries = cluster.Primaries();
  // The majority side elected a new primary; the old one stepped down.
  bool majority_has_leader = false;
  for (net::NodeId p : primaries) {
    if (p != 1) {
      majority_has_leader = true;
    }
  }
  EXPECT_TRUE(majority_has_leader);
  EXPECT_FALSE(cluster.server(1).is_primary()) << "old leader should step down";
  cluster.partitioner().Heal(partition);
}

TEST(PbkvFailover, MinorityCannotElect) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  auto partition = cluster.partitioner().Complete({3}, {1, 2});
  cluster.Settle(sim::Seconds(2));
  EXPECT_FALSE(cluster.server(3).is_primary());
  EXPECT_TRUE(cluster.server(1).is_primary());
  cluster.partitioner().Heal(partition);
}

TEST(PbkvFailover, WritesContinueOnMajoritySide) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(300));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Seconds(2));
  cluster.client(1).set_contact(2);
  auto put = cluster.Put(1, "k", "after-failover");
  EXPECT_EQ(put.status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
}

// --- Figure 2: the VoltDB dirty read (ENG-10389) ---

TEST(PbkvDirtyRead, FlawedConfigReproducesFigure2) {
  Cluster cluster(MakeConfig(VoltDbOptions()));
  cluster.Settle(sim::Milliseconds(500));
  ASSERT_EQ(cluster.FindPrimary(), 1);

  // Step 1: a complete partition isolates the master from the replicas.
  auto partition = cluster.partitioner().Complete({1}, {2, 3});

  // Step 2: a write arrives at the old master right after the partition
  // (the timing constraint of Section 5.2). Replication fails -> the write
  // fails, but the value stays in the master's local copy.
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  auto put = cluster.Put(0, "x", "uncommitted");
  EXPECT_EQ(put.status, OpStatus::kFail);

  // Step 3: a read at the old master returns the never-committed value.
  auto get = cluster.Get(0, "x");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "uncommitted");

  auto violations = check::CheckDirtyReads(cluster.history());
  ASSERT_EQ(violations.size(), 1u) << check::FormatViolations(violations);
  EXPECT_EQ(violations[0].impact, "dirty read");
  cluster.partitioner().Heal(partition);
}

TEST(PbkvDirtyRead, QuorumReadsPreventFigure2) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(500));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  auto put = cluster.Put(0, "x", "uncommitted");
  EXPECT_EQ(put.status, OpStatus::kFail);
  auto get = cluster.Get(0, "x");
  // The deposed master cannot confirm leadership: the read fails instead of
  // returning dirty data (consistency chosen over availability).
  EXPECT_NE(get.status, OpStatus::kOk);
  EXPECT_TRUE(check::CheckDirtyReads(cluster.history()).empty());
  cluster.partitioner().Heal(partition);
}

// --- Listing 1: Elasticsearch intersecting-splits data loss (#2488) ---

TEST(PbkvSplitBrain, FlawedConfigLosesAcknowledgedWrites) {
  Cluster::Config config = MakeConfig(ElasticsearchOptions());
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));
  ASSERT_EQ(cluster.FindPrimary(), 1);
  const net::NodeId c1 = cluster.client(0).id();
  const net::NodeId c2 = cluster.client(1).id();

  // Partial partition: {s1, client1} | {s2, client2}; s3 sees everyone.
  auto partition = cluster.partitioner().Partial({1, c1}, {2, c2});
  cluster.Settle(sim::Milliseconds(600));  // SLEEP_LEADER_ELECTION_PERIOD

  // Two simultaneous leaders: s1 (old) and s2 (elected with s3's vote).
  auto primaries = cluster.Primaries();
  EXPECT_EQ(primaries.size(), 2u) << "expected split brain";

  // Writes succeed on both sides of the partition.
  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  EXPECT_EQ(cluster.Put(0, "obj1", "v1").status, OpStatus::kOk);
  EXPECT_EQ(cluster.Put(1, "obj2", "v2").status, OpStatus::kOk);

  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));

  // s2 steps down (smaller id wins) and adopts s1's data: obj2 is lost.
  auto read1 = cluster.Get(1, "obj1", /*final_read=*/true);
  auto read2 = cluster.Get(1, "obj2", /*final_read=*/true);
  EXPECT_EQ(read1.value, "v1");
  EXPECT_NE(read2.value, "v2") << "expected the acknowledged write to be lost";
  auto violations = check::CheckDataLoss(cluster.history());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].impact, "data loss");
}

TEST(PbkvSplitBrain, VoteRefusalPreventsDataLoss) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(500));
  const net::NodeId c1 = cluster.client(0).id();
  const net::NodeId c2 = cluster.client(1).id();
  auto partition = cluster.partitioner().Partial({1, c1}, {2, c2});
  cluster.Settle(sim::Milliseconds(600));

  // s3 still sees the live leader s1 and refuses to vote: no split brain.
  EXPECT_EQ(cluster.Primaries(), (std::vector<net::NodeId>{1}));

  cluster.client(0).set_contact(1);
  cluster.client(1).set_contact(2);
  cluster.client(1).set_allow_redirect(false);
  EXPECT_EQ(cluster.Put(0, "obj1", "v1").status, OpStatus::kOk);
  // client2's write cannot be acknowledged by a non-leader.
  EXPECT_NE(cluster.Put(1, "obj2", "v2").status, OpStatus::kOk);

  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  cluster.client(1).set_allow_redirect(true);
  auto read1 = cluster.Get(1, "obj1", /*final_read=*/true);
  EXPECT_EQ(read1.value, "v1");
  EXPECT_TRUE(check::CheckDataLoss(cluster.history()).empty());
}

// --- MongoDB arbiter leader thrash under a partial partition ---

TEST(PbkvArbiter, UncheckedArbiterVotesCauseLeaderThrash) {
  Cluster cluster(MakeConfig(MongoArbiterOptions()));
  cluster.Settle(sim::Milliseconds(500));
  ASSERT_EQ(cluster.FindPrimary(), 1);
  // Partial partition between the two replicas; the arbiter sees both.
  auto partition = cluster.partitioner().Partial({1}, {2});
  cluster.Settle(sim::Seconds(4));
  // Leadership thrashes back and forth until the partition heals.
  EXPECT_GE(cluster.TotalElections(), 4u);
  cluster.partitioner().Heal(partition);
}

TEST(PbkvArbiter, LeaderAwareArbiterPreventsThrash) {
  Options options = MongoArbiterOptions();
  options.arbiter_checks_leader = true;  // the SERVER-27125 fix
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(500));
  auto partition = cluster.partitioner().Partial({1}, {2});
  cluster.Settle(sim::Seconds(4));
  // Node 2 keeps trying, but the arbiter refuses while node 1 is healthy:
  // node 1 remains the only primary throughout.
  EXPECT_TRUE(cluster.server(1).is_primary());
  EXPECT_FALSE(cluster.server(2).is_primary());
  EXPECT_EQ(cluster.server(1).stepdowns(), 0u);
  cluster.partitioner().Heal(partition);
}

// --- MongoDB conflicting election criteria (SERVER-14885) ---

TEST(PbkvConflictingCriteria, ClusterCanEndUpLeaderless) {
  Options options = MongoConflictingCriteriaOptions();
  // Node 2 has the high priority; node 3 will have the latest timestamp.
  options.priorities = {{1, 0}, {2, 10}, {3, 0}};
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(500));
  ASSERT_EQ(cluster.FindPrimary(), 1);

  // Give node 3 a later operation timestamp than node 2: write while node 2
  // is partitioned away.
  auto divergence = cluster.partitioner().Partial({1}, {2});
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);  // replicated to 1 and 3
  cluster.partitioner().Heal(divergence);
  // Heal before node 2 elects; then isolate the leader completely.
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Seconds(4));

  // Node 2 rejects node 3 (priority), node 3 rejects node 2 (timestamp):
  // nobody wins — the cluster is leaderless and unavailable.
  EXPECT_FALSE(cluster.server(2).is_primary());
  EXPECT_FALSE(cluster.server(3).is_primary());
  EXPECT_GE(cluster.TotalElections(), 2u);
  cluster.client(1).set_contact(2);
  auto put = cluster.Put(1, "y", "unreachable");
  EXPECT_NE(put.status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
}

TEST(PbkvConflictingCriteria, SingleCriterionElectsALeader) {
  Options options = MongoConflictingCriteriaOptions();
  options.criterion = ElectionCriterion::kLatestTimestamp;  // drop the priority rule
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(500));
  auto divergence = cluster.partitioner().Partial({1}, {2});
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  ASSERT_EQ(cluster.Put(0, "k", "v").status, OpStatus::kOk);
  cluster.partitioner().Heal(divergence);
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Seconds(4));
  const bool two_is_primary = cluster.server(2).is_primary();
  const bool three_is_primary = cluster.server(3).is_primary();
  EXPECT_TRUE(two_is_primary || three_is_primary);
  cluster.partitioner().Heal(partition);
}

// --- Redis-style asynchronous replication: acked writes lost on failover ---

TEST(PbkvAsyncReplication, AcknowledgedWriteLostAfterFailover) {
  Cluster cluster(MakeConfig(AsyncReplicationOptions()));
  cluster.Settle(sim::Milliseconds(500));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  // Asynchronous replication acknowledges before replicating.
  auto put = cluster.Put(0, "k", "acked-then-lost");
  EXPECT_EQ(put.status, OpStatus::kOk);
  cluster.Settle(sim::Seconds(2));  // majority elects a new leader
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  cluster.client(1).set_contact(2);
  auto read = cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_EQ(read.status, OpStatus::kOk);
  EXPECT_NE(read.value, "acked-then-lost");
  auto violations = check::CheckDataLoss(cluster.history());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].impact, "data loss");
}

TEST(PbkvAsyncReplication, MajorityWriteConcernPreventsTheLoss) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(500));
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  auto put = cluster.Put(0, "k", "not-acked");
  EXPECT_EQ(put.status, OpStatus::kFail);  // no quorum, no ack
  cluster.Settle(sim::Seconds(2));
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  cluster.Get(1, "k", /*final_read=*/true);
  EXPECT_TRUE(check::CheckDataLoss(cluster.history()).empty());
}

// --- property sweep: the corrected configuration stays safe ---

class PbkvCorrectnessSweep : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(PbkvCorrectnessSweep, PartitionHealCycleStaysLinearizable) {
  const auto [seed, use_switch] = GetParam();
  Cluster::Config config = MakeConfig(CorrectOptions(), seed);
  config.use_switch_backend = use_switch;
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));

  ASSERT_EQ(cluster.Put(0, "k", "v1").status, OpStatus::kOk);
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  cluster.Put(0, "k", "v2-minority");  // fails or times out; either is safe
  cluster.Settle(sim::Seconds(2));
  cluster.client(1).set_contact(2);
  cluster.Put(1, "k", "v3-majority");
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));

  cluster.client(1).set_contact(2);
  cluster.Get(1, "k", /*final_read=*/true);
  auto& history = cluster.history();
  EXPECT_TRUE(check::CheckDirtyReads(history).empty());
  auto lin = check::CheckLinearizable(history);
  EXPECT_TRUE(lin.linearizable) << lin.reason << "\n" << history.Dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbkvCorrectnessSweep,
                         ::testing::Combine(::testing::Range<uint64_t>(1, 9),
                                            ::testing::Bool()),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(std::get<0>(param_info.param)) +
                                  (std::get<1>(param_info.param) ? "_switch" : "_firewall");
                         });

}  // namespace
}  // namespace pbkv

// --- Table 4 "electing bad leaders": the longest log wins, even when its
// extra entries were never committed (VoltDB ENG-10486) ---

namespace pbkv_extra {
namespace {

using check::OpStatus;

pbkv::Cluster::Config BadLeaderConfig(bool flawed) {
  pbkv::Cluster::Config config;
  config.options = pbkv::CorrectOptions();
  config.options.quorum_reads = false;
  if (flawed) {
    // Whoever has the longer log wins the post-heal conflict — including a
    // deposed leader fat with failed, uncommitted writes. The old leader
    // keeps serving its side (no split-brain step-down), so the conflict
    // actually happens at heal time.
    config.options.conflict_winner = pbkv::ConflictWinner::kByCriterion;
    config.options.criterion = pbkv::ElectionCriterion::kLongestLog;
    config.options.stepdown_miss_threshold = 1000;
  }
  return config;
}

void RunBadLeaderScenario(pbkv::Cluster& cluster) {
  cluster.Settle(sim::Milliseconds(500));
  ASSERT_EQ(cluster.FindPrimary(), 1);
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  // The isolated old leader accumulates a long log of *failed* writes.
  cluster.client(0).set_contact(1);
  cluster.client(0).set_allow_redirect(false);
  cluster.client(0).set_op_timeout(sim::Milliseconds(400));
  for (int i = 0; i < 4; ++i) {
    cluster.Put(0, "junk" + std::to_string(i), "uncommitted");
  }
  // The majority elects a replacement and commits real data.
  cluster.Settle(sim::Seconds(1));
  cluster.client(1).set_contact(2);
  ASSERT_EQ(cluster.Put(1, "k", "committed-on-majority").status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  cluster.client(1).set_contact(2);
  cluster.Get(1, "k", /*final_read=*/true);
}

TEST(PbkvBadLeader, LongestLogCriterionErasesCommittedWrites) {
  pbkv::Cluster cluster(BadLeaderConfig(/*flawed=*/true));
  RunBadLeaderScenario(cluster);
  // The deposed leader's longer (junk) log won the conflict; the majority's
  // acknowledged write is gone.
  auto violations = check::CheckDataLoss(cluster.history());
  ASSERT_FALSE(violations.empty()) << cluster.history().Dump();
  EXPECT_EQ(violations[0].impact, "data loss");
}

TEST(PbkvBadLeader, HigherTermConflictResolutionKeepsCommittedWrites) {
  pbkv::Cluster cluster(BadLeaderConfig(/*flawed=*/false));
  RunBadLeaderScenario(cluster);
  EXPECT_TRUE(check::CheckDataLoss(cluster.history()).empty())
      << cluster.history().Dump();
}

// --- Simplex partitions (Figure 1c): heartbeats flow out of the isolated
// leader, so followers never suspect it; without a step-down the system
// hangs exactly like the Broadcom-chipset failure the paper cites [46] ---

TEST(PbkvSimplex, OneWayPartitionHangsWithoutStepDown) {
  pbkv::Cluster::Config config;
  config.options = pbkv::CorrectOptions();
  config.options.stepdown_miss_threshold = 1000;  // primary never steps down
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));
  // Traffic flows leader -> replicas only; everything inbound is dropped.
  auto partition = cluster.partitioner().Simplex({1}, {2, 3});
  cluster.Settle(sim::Seconds(2));
  // The failover server neither detected the failure nor took over.
  EXPECT_EQ(cluster.Primaries(), (std::vector<net::NodeId>{1}));
  cluster.client(0).set_contact(2);
  cluster.client(0).set_allow_redirect(true);
  auto put = cluster.Put(0, "k", "v");
  EXPECT_NE(put.status, OpStatus::kOk) << "no node can commit anything";
  cluster.partitioner().Heal(partition);
}

TEST(PbkvSimplex, StepDownOnMissingAcksRestoresAvailability) {
  pbkv::Cluster cluster(pbkv::Cluster::Config{});
  cluster.Settle(sim::Milliseconds(500));
  auto partition = cluster.partitioner().Simplex({1}, {2, 3});
  cluster.Settle(sim::Seconds(2));
  // The leader noticed it hears nothing back and stepped down; a follower
  // then stopped receiving heartbeats and took over.
  EXPECT_FALSE(cluster.server(1).is_primary());
  bool majority_has_leader = cluster.server(2).is_primary() || cluster.server(3).is_primary();
  EXPECT_TRUE(majority_has_leader);
  cluster.client(0).set_contact(2);
  auto put = cluster.Put(0, "k", "v");
  EXPECT_EQ(put.status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
}

}  // namespace
}  // namespace pbkv_extra

// --- Request routing (#9967): a committed write reported as failed ---

namespace pbkv_routing {
namespace {

using check::OpStatus;

TEST(PbkvRouting, LostAckTurnsACommittedWriteIntoAReportedFailure) {
  pbkv::Cluster::Config config;
  config.options = pbkv::CoordinatorRoutingOptions();
  // Elasticsearch coordinators do not depose the master over one slow link;
  // keep the follower trusting its leader for the whole scenario.
  config.options.election_miss_threshold = 100;
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));
  ASSERT_EQ(cluster.FindPrimary(), 1);

  // Simplex partition: the coordinator (n3) can reach the primary, but the
  // primary's replies to it are dropped (Figure 1c).
  auto partition = cluster.partitioner().Simplex({3}, {1});

  // The client writes through the coordinator. The primary commits the
  // write (it reaches n2 for the quorum), but its acknowledgement to the
  // coordinator is lost — the client is told the write FAILED.
  cluster.client(0).set_contact(3);
  cluster.client(0).set_allow_redirect(false);
  auto put = cluster.Put(0, "k", "committed-but-reported-failed");
  EXPECT_EQ(put.status, OpStatus::kFail);

  // A later read — directly at the primary — returns the "failed" write.
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(1).set_contact(1);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.status, OpStatus::kOk);
  EXPECT_EQ(get.value, "committed-but-reported-failed");

  auto violations = check::CheckDirtyReads(cluster.history());
  ASSERT_FALSE(violations.empty()) << "the value of a reported-failed write is visible";
}

TEST(PbkvRouting, DirectPrimaryAccessReportsTheTruth) {
  pbkv::Cluster::Config config;
  config.options = pbkv::CorrectOptions();
  config.options.quorum_reads = false;
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));
  auto partition = cluster.partitioner().Simplex({3}, {1});
  // Without coordinator forwarding, the follower redirects and the client
  // talks to the primary itself: the status code is truthful.
  cluster.client(0).set_contact(3);
  auto put = cluster.Put(0, "k", "v");
  EXPECT_EQ(put.status, OpStatus::kOk);
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Milliseconds(300));
  cluster.client(1).set_contact(1);
  cluster.Get(1, "k");
  EXPECT_TRUE(check::CheckDirtyReads(cluster.history()).empty());
}

TEST(PbkvRouting, ForwardingWorksWhenTheNetworkIsHealthy) {
  pbkv::Cluster::Config config;
  config.options = pbkv::CoordinatorRoutingOptions();
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));
  cluster.client(0).set_contact(3);
  cluster.client(0).set_allow_redirect(false);
  auto put = cluster.Put(0, "k", "v1");
  EXPECT_EQ(put.status, OpStatus::kOk) << "coordinator relays the primary's ack";
  cluster.client(1).set_contact(1);
  auto get = cluster.Get(1, "k");
  EXPECT_EQ(get.value, "v1");
}

}  // namespace
}  // namespace pbkv_routing
