// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/partition.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace sim {
namespace {

TEST(TimeTest, FormatsUnits) {
  EXPECT_EQ(FormatTime(15), "15us");
  EXPECT_EQ(FormatTime(Milliseconds(2) + 500), "2.500ms");
  EXPECT_EQ(FormatTime(Seconds(3)), "3.000s");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(Milliseconds(3), [&order]() { order.push_back(3); });
  s.Schedule(Milliseconds(1), [&order]() { order.push_back(1); });
  s.Schedule(Milliseconds(2), [&order]() { order.push_back(2); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakBySchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(Milliseconds(1), [&order]() { order.push_back(1); });
  s.Schedule(Milliseconds(1), [&order]() { order.push_back(2); });
  s.Schedule(Milliseconds(1), [&order]() { order.push_back(3); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator s;
  Time seen = -1;
  s.Schedule(Milliseconds(5), [&]() { seen = s.Now(); });
  s.RunUntilIdle();
  EXPECT_EQ(seen, Milliseconds(5));
  EXPECT_EQ(s.Now(), Milliseconds(5));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int ran = 0;
  s.Schedule(Milliseconds(1), [&]() { ++ran; });
  s.Schedule(Milliseconds(10), [&]() { ++ran; });
  s.RunUntil(Milliseconds(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.Now(), Milliseconds(5));
  s.RunUntilIdle();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator s;
  s.RunUntil(Seconds(2));
  EXPECT_EQ(s.Now(), Seconds(2));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  EventId id = s.Schedule(Milliseconds(1), [&]() { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));  // second cancel fails
  s.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(s.Schedule(Milliseconds(i + 1), []() {}));
  }
  EXPECT_EQ(s.pending_events(), 5u);
  EXPECT_TRUE(s.Cancel(ids[1]));
  EXPECT_TRUE(s.Cancel(ids[3]));
  EXPECT_EQ(s.pending_events(), 3u);
  EXPECT_EQ(s.RunUntilIdle(), 3u);
  EXPECT_EQ(s.events_executed(), 3u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SimulatorTest, CancelledEventsDoNotAdvanceTheClock) {
  Simulator s;
  EventId id = s.Schedule(Seconds(10), []() {});
  s.Cancel(id);
  EXPECT_EQ(s.RunUntilIdle(), 0u);
  EXPECT_EQ(s.Now(), kTimeZero);
}

TEST(SimulatorTest, EventsCanCancelLaterEventsAtTheSameTime) {
  Simulator s;
  bool victim_ran = false;
  EventId victim = kInvalidEventId;
  s.Schedule(Milliseconds(1), [&]() { EXPECT_TRUE(s.Cancel(victim)); });
  victim = s.Schedule(Milliseconds(1), [&]() { victim_ran = true; });
  s.RunUntilIdle();
  EXPECT_FALSE(victim_ran);
}

TEST(SimulatorTest, CancelAfterRunFails) {
  Simulator s;
  EventId id = s.Schedule(0, []() {});
  s.RunUntilIdle();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      s.Schedule(Milliseconds(1), recurse);
    }
  };
  s.Schedule(Milliseconds(1), recurse);
  s.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.Now(), Milliseconds(5));
}

TEST(SimulatorTest, RunUntilPredicateStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.Schedule(Milliseconds(i + 1), [&]() { ++count; });
  }
  const bool fired = s.RunUntilPredicate([&]() { return count == 3; }, Seconds(1));
  EXPECT_TRUE(fired);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, RunUntilPredicateRespectsDeadline) {
  Simulator s;
  const bool fired = s.RunUntilPredicate([]() { return false; }, Milliseconds(10));
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.Now(), Milliseconds(10));
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) {
    s.Schedule(i, []() {});
  }
  s.RunUntilIdle();
  EXPECT_EQ(s.events_executed(), 7u);
}

// Regression: NextBelow(0) used to compute `(0 - 0) % 0` — an integer
// division by zero that crashes on every mainstream target. The empty
// range now yields 0 without consuming randomness.
TEST(RngTest, NextBelowZeroBoundIsDefined) {
  Rng rng(13);
  Rng twin(13);
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(0), 0u);
  // No state was consumed: the twin that never saw the empty range still
  // agrees on the next draw.
  EXPECT_EQ(rng.Next(), twin.Next());
}

// Regression: NextInRange computed `hi - lo + 1` in int64_t, which is
// signed-overflow UB whenever the endpoints straddle more than half the
// domain, and for the full domain the span wrapped to zero and fed
// NextBelow(0)'s division by zero.
TEST(RngTest, NextInRangeFullInt64DomainIsDefined) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  Rng rng(17);
  Rng twin(17);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 256; ++i) {
    const int64_t v = rng.NextInRange(kMin, kMax);
    EXPECT_EQ(v, twin.NextInRange(kMin, kMax));  // still deterministic
    saw_negative = saw_negative || v < 0;
    saw_positive = saw_positive || v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
  // Straddling spans short of the full domain go through the unsigned
  // NextBelow path; the degenerate one-value range is exact.
  for (int i = 0; i < 256; ++i) {
    const int64_t v = rng.NextInRange(kMin + 1, kMax);
    EXPECT_GE(v, kMin + 1);
  }
  EXPECT_EQ(rng.NextInRange(kMin, kMin), kMin);
  EXPECT_EQ(rng.NextInRange(kMax, kMax), kMax);
}

// Regression: cancelled events used to sit in the heap as tombstones until
// they surfaced at the top, so a workload that schedules far-future timers
// and cancels them (every crashed process does) grew the heap without
// bound. Compaction now keeps the heap O(live).
TEST(SimulatorTest, CancelHeavyLoadKeepsHeapCompacted) {
  Simulator s;
  int survivor_ran = 0;
  s.Schedule(Seconds(100), [&]() { ++survivor_ran; });
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(s.Schedule(Seconds(10 + i), []() {}));
    }
    for (const EventId id : ids) {
      EXPECT_TRUE(s.Cancel(id));
    }
    // Tombstones never exceed half the heap, so the heap stays within a
    // small factor of the live count (1 here) at every quiescent point.
    EXPECT_LE(s.heap_size(), 2 * s.pending_events() + 1);
  }
  EXPECT_EQ(s.pending_events(), 1u);
  s.RunUntilIdle();
  EXPECT_EQ(survivor_ran, 1);
}

// RunUntil over a queue holding only cancelled events must run nothing and
// still advance the clock to the deadline.
TEST(SimulatorTest, RunUntilOverOnlyCancelledEventsAdvancesClock) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(s.Schedule(Milliseconds(i + 1), []() {}));
  }
  for (const EventId id : ids) {
    EXPECT_TRUE(s.Cancel(id));
  }
  EXPECT_EQ(s.RunUntil(Milliseconds(10)), 0u);
  EXPECT_EQ(s.Now(), Milliseconds(10));
  EXPECT_EQ(s.events_executed(), 0u);
}

// A zero-delay Schedule lands after already-queued events at the same
// time: sequence numbers break the tie, so an event that reschedules at
// delay 0 cannot jump ahead of its peers.
TEST(SimulatorTest, ZeroDelayScheduleRunsAfterSameTimeQueuedEvents) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(0, [&]() {
    order.push_back(1);
    s.Schedule(0, [&]() { order.push_back(3); });
  });
  s.Schedule(0, [&]() { order.push_back(2); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// An already-true predicate returns before any event runs or the clock
// moves — RunUntilPredicate is a pure query in that case.
TEST(SimulatorTest, RunUntilPredicateAlreadyTrueExecutesNoEvents) {
  Simulator s;
  bool ran = false;
  s.Schedule(Milliseconds(1), [&]() { ran = true; });
  EXPECT_TRUE(s.RunUntilPredicate([]() { return true; }, Seconds(1)));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_executed(), 0u);
  EXPECT_EQ(s.Now(), kTimeZero);
}

// --- checkpoint / restore ---

TEST(SimulatorSnapshot, RestoreReplaysTheBranchIdentically) {
  Simulator s;
  s.SetEventRetention(true);
  std::vector<std::pair<Time, uint64_t>> run_log;
  // A self-rescheduling chain that consumes randomness, so any divergence
  // in clock, order, or RNG state after a restore shows up in the log.
  std::function<void()> tick = [&]() {
    run_log.emplace_back(s.Now(), s.Rand().Next());
    if (run_log.size() % 8 != 0) {
      s.Schedule(Milliseconds(1) + s.Rand().NextBelow(50), tick);
    }
  };
  s.Schedule(Milliseconds(1), tick);
  s.RunFor(Milliseconds(3));

  const Simulator::Checkpoint checkpoint = s.Snapshot();
  const size_t prefix = run_log.size();
  s.RunUntilIdle();
  const std::vector<std::pair<Time, uint64_t>> first_branch = run_log;
  const uint64_t executed_after = s.events_executed();
  const Time end_time = s.Now();

  run_log.resize(prefix);
  s.Restore(checkpoint);
  EXPECT_EQ(s.Now(), checkpoint.now);
  EXPECT_EQ(s.events_executed(), checkpoint.events_executed);
  s.RunUntilIdle();
  EXPECT_EQ(run_log, first_branch);
  EXPECT_EQ(s.events_executed(), executed_after);
  EXPECT_EQ(s.Now(), end_time);
}

TEST(SimulatorSnapshot, RestoreTruncatesTheTrace) {
  Simulator s;
  s.SetEventRetention(true);
  s.Trace().Append(s.Now(), "test", "before");
  const Simulator::Checkpoint checkpoint = s.Snapshot();
  s.Trace().Append(s.Now(), "test", "after");
  EXPECT_EQ(s.Trace().size(), 2u);
  s.Restore(checkpoint);
  EXPECT_EQ(s.Trace().size(), 1u);
}

// Repeated restore + re-run cycles must not accumulate retained closures:
// Restore purges the abandoned branch (ids at or above the checkpoint's
// next sequence number), and the replayed branch re-issues the same ids.
TEST(SimulatorSnapshot, RepeatedRestoreBoundsRetainedEvents) {
  Simulator s;
  s.SetEventRetention(true);
  s.Schedule(Seconds(5), []() {});  // stays pending across the branches
  const Simulator::Checkpoint checkpoint = s.Snapshot();
  size_t retained_after_first_branch = 0;
  for (int branch = 0; branch < 20; ++branch) {
    for (int i = 0; i < 10; ++i) {
      s.Schedule(Milliseconds(i + 1), []() {});
    }
    s.RunFor(Milliseconds(20));
    if (branch == 0) {
      retained_after_first_branch = s.retained_events();
    } else {
      EXPECT_EQ(s.retained_events(), retained_after_first_branch);
    }
    s.Restore(checkpoint);
  }
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SimulatorSnapshot, RetentionAdoptsAlreadyPendingEvents) {
  Simulator s;
  int ran = 0;
  s.Schedule(Milliseconds(1), [&]() { ++ran; });  // scheduled pre-retention
  s.SetEventRetention(true);
  EXPECT_EQ(s.retained_events(), 1u);
  const Simulator::Checkpoint checkpoint = s.Snapshot();
  s.RunUntilIdle();
  EXPECT_EQ(ran, 1);
  s.Restore(checkpoint);
  s.RunUntilIdle();
  EXPECT_EQ(ran, 2);  // the adopted copy replays like a schedule-time one
}

TEST(TraceTest, FilterByComponentPrefix) {
  TraceLog log;
  log.Append(1, "pbkv.n1", "elected");
  log.Append(2, "pbkv.n2", "vote");
  log.Append(3, "net", "drop");
  EXPECT_EQ(log.Filter("pbkv").size(), 2u);
  EXPECT_EQ(log.Filter("net").size(), 1u);
  EXPECT_EQ(log.Filter("").size(), 3u);
}

TEST(TraceTest, FilterMatchesOnComponentBoundaryOnly) {
  // "pbkv" must match the component itself and its dotted sub-components,
  // but not a different component that merely shares the prefix.
  TraceLog log;
  log.Append(1, "pbkv", "boot");
  log.Append(2, "pbkv.n1", "elected");
  log.Append(3, "pbkv2", "boot");
  log.Append(4, "pbkv2.n1", "elected");
  const auto matched = log.Filter("pbkv");
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0].component, "pbkv");
  EXPECT_EQ(matched[1].component, "pbkv.n1");
  EXPECT_EQ(log.Filter("pbkv2").size(), 2u);
}

TEST(TraceTest, CountEvent) {
  TraceLog log;
  log.Append(1, "a", "drop");
  log.Append(2, "b", "drop");
  log.Append(3, "c", "elected");
  EXPECT_EQ(log.CountEvent("drop"), 2u);
}

TEST(TraceTest, DisabledLogRecordsNothing) {
  TraceLog log;
  log.set_enabled(false);
  log.Append(1, "a", "x");
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceTest, DisabledLogStillCountsAppends) {
  // The documented counter-only mode for throughput benches: nothing is
  // retained, but appended() counts every call, before and after toggling.
  TraceLog log;
  log.Append(1, "a", "x");
  EXPECT_EQ(log.appended(), 1u);
  log.set_enabled(false);
  log.Append(2, "a", "y");
  log.Append(3, "a", "z");
  EXPECT_EQ(log.size(), 1u);  // only the enabled-time record is retained
  EXPECT_EQ(log.CountEvent("y"), 0u);
  EXPECT_EQ(log.appended(), 3u);
  log.set_enabled(true);
  log.Append(4, "a", "w");
  EXPECT_EQ(log.size(), 2u);  // the enabled-time records only
  EXPECT_EQ(log.appended(), 4u);
}

TEST(TraceTest, AppendReturnsPositionalIdsAndTruncateRewindsThem) {
  TraceLog log;
  EXPECT_EQ(log.Append(1, "a", "x"), 1u);
  EXPECT_EQ(log.Append(2, "a", "y"), 2u);
  EXPECT_EQ(log.Append(3, "a", "z"), 3u);
  log.Truncate(1);
  // Ids are positions, so a rewind re-issues them exactly — the property
  // fork/replay byte-identity rests on.
  EXPECT_EQ(log.Append(4, "a", "y2"), 2u);
  EXPECT_EQ(log.records()[1].id, 2u);
  // A disabled log issues no ids at all.
  log.set_enabled(false);
  EXPECT_EQ(log.Append(5, "a", "q"), 0u);
}

TEST(TraceTest, CauseContextStampsRecords) {
  TraceLog log;
  const uint64_t deliver = log.Append(1, "net", "deliver");
  EXPECT_EQ(log.records()[0].cause, 0u);
  {
    CauseScope scope(log, deliver);
    const uint64_t transition = log.Append(2, "sys.n1", "step-down");
    EXPECT_EQ(log.records()[1].cause, deliver);
    // A rebind redirects later appends to the newest transition...
    log.BindCause(transition);
    log.Append(3, "net", "send");
    EXPECT_EQ(log.records()[2].cause, transition);
    // ...but an explicit cause always wins over the context.
    log.Append(4, "net", "deliver", "", deliver);
    EXPECT_EQ(log.records()[3].cause, deliver);
  }
  // The scope restored the outer (empty) context, including over a rebind.
  log.Append(5, "sys.n1", "tick");
  EXPECT_EQ(log.records()[4].cause, 0u);
}

TEST(TraceTest, TruncateOnDisabledLogIsANoOp) {
  TraceLog log;
  log.Append(1, "a", "x");
  log.set_enabled(false);
  log.Append(2, "a", "y");
  log.Truncate(0);  // rewinds the retained record
  EXPECT_EQ(log.size(), 0u);
  log.Truncate(5);  // larger than the log: nothing to drop
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.appended(), 2u);  // the monotonic counter never rewinds
}

TEST(TraceTest, EventBigramsAreDistinctConsecutivePairsInFirstAppearanceOrder) {
  TraceLog log;
  log.Append(1, "a", "send");
  log.Append(2, "b", "drop");
  log.Append(3, "c", "send");
  log.Append(4, "d", "drop");   // send>drop again: deduplicated
  log.Append(5, "e", "elect");  // drop>elect: new
  const auto bigrams = log.EventBigrams();
  ASSERT_EQ(bigrams.size(), 3u);
  EXPECT_EQ(bigrams[0], (std::pair<std::string, std::string>{"send", "drop"}));
  EXPECT_EQ(bigrams[1], (std::pair<std::string, std::string>{"drop", "send"}));
  EXPECT_EQ(bigrams[2], (std::pair<std::string, std::string>{"drop", "elect"}));
}

TEST(TraceTest, EventBigramsOfShortLogsAreEmpty) {
  TraceLog log;
  EXPECT_TRUE(log.EventBigrams().empty());
  log.Append(1, "a", "send");
  EXPECT_TRUE(log.EventBigrams().empty());
}

TEST(TraceTest, EventBigramsAlternatingPairsDefeatTheRunCompressionFastPath) {
  // The scan skips consecutive identical bigrams (runs of one event name).
  // Strict A/B alternation makes every adjacent bigram differ from the
  // previous one, so the fast path never fires — and must still yield
  // exactly the two distinct pairs.
  TraceLog log;
  for (int i = 0; i < 8; ++i) {
    log.Append(i + 1, "c", i % 2 == 0 ? "a" : "b");
  }
  const auto bigrams = log.EventBigrams();
  ASSERT_EQ(bigrams.size(), 2u);
  EXPECT_EQ(bigrams[0], (std::pair<std::string, std::string>{"a", "b"}));
  EXPECT_EQ(bigrams[1], (std::pair<std::string, std::string>{"b", "a"}));
}

TEST(TraceTest, EventBigramsCompressRunsOfOneName) {
  // A run of the same event produces the self-pair once, however long.
  TraceLog log;
  for (int i = 0; i < 6; ++i) {
    log.Append(i + 1, "c", "hb");
  }
  const auto bigrams = log.EventBigrams();
  ASSERT_EQ(bigrams.size(), 1u);
  EXPECT_EQ(bigrams[0], (std::pair<std::string, std::string>{"hb", "hb"}));
}

TEST(TraceTest, DumpContainsRecords) {
  TraceLog log;
  log.Append(Milliseconds(1), "pbkv.n1", "elected", "term=2");
  const std::string dump = log.Dump();
  EXPECT_NE(dump.find("pbkv.n1"), std::string::npos);
  EXPECT_NE(dump.find("term=2"), std::string::npos);
}

}  // namespace
}  // namespace sim

namespace sim_property {
namespace {

// Model-based property: the simulator must run events in exactly the order
// a reference model (stable sort by time, then by scheduling sequence)
// predicts, including under random cancellations.
TEST(SimulatorProperty, MatchesReferenceModelUnderRandomSchedules) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng(seed);
    sim::Simulator simulator;
    std::vector<int> executed;
    struct ModelEvent {
      sim::Time when;
      uint64_t seq;
      int tag;
      sim::EventId id;
      bool cancelled = false;
    };
    std::vector<ModelEvent> model;
    for (int i = 0; i < 200; ++i) {
      const sim::Time when = static_cast<sim::Time>(rng.NextBelow(50));
      const sim::EventId id =
          simulator.Schedule(when, [&executed, i]() { executed.push_back(i); });
      model.push_back(ModelEvent{when, id, i, id});
    }
    // Cancel a random subset.
    for (ModelEvent& event : model) {
      if (rng.NextBool(0.3)) {
        event.cancelled = simulator.Cancel(event.id);
        EXPECT_TRUE(event.cancelled);
      }
    }
    simulator.RunUntilIdle();
    std::vector<ModelEvent> expected = model;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const ModelEvent& a, const ModelEvent& b) {
                       return a.when != b.when ? a.when < b.when : a.seq < b.seq;
                     });
    std::vector<int> expected_tags;
    for (const ModelEvent& event : expected) {
      if (!event.cancelled) {
        expected_tags.push_back(event.tag);
      }
    }
    EXPECT_EQ(executed, expected_tags) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sim_property

namespace sim_golden {
namespace {

struct Ping : public net::Message {
  std::string TypeName() const override { return "Ping"; }
};

uint64_t Fnv1a(const std::string& s) {
  uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// A fixed scenario exercising the full scheduling surface: timers, ties,
// cancellations, network traffic with jitter, a flaky link, and partition
// install/heal while packets are in flight.
std::string GoldenScheduleTrace(uint64_t seed) {
  sim::Simulator s(seed);
  net::FirewallPartitioner backend;
  net::Network network(&s, &backend);
  net::Partitioner partitioner(&backend);
  network.set_latency({sim::Microseconds(150), sim::Microseconds(90)});
  for (net::NodeId n = 1; n <= 5; ++n) {
    network.Register(n, [n, &s](const net::Envelope& e) {
      s.Trace().Append(s.Now(), "node" + std::to_string(n), "recv",
                       std::to_string(e.src) + "->" + std::to_string(n));
    });
  }
  network.SetLinkLoss(2, 3, 0.5);

  std::vector<sim::EventId> timers;
  for (int i = 0; i < 40; ++i) {
    timers.push_back(s.Schedule(sim::Microseconds(45 * i + 7), [&network, i]() {
      const net::NodeId src = static_cast<net::NodeId>(1 + i % 5);
      const net::NodeId dst = static_cast<net::NodeId>(1 + (i * 3 + 1) % 5);
      network.SendNew<Ping>(src, dst);
    }));
  }
  for (size_t i = 0; i < timers.size(); i += 4) {
    s.Cancel(timers[i]);
  }
  net::Partition partition;
  s.Schedule(sim::Microseconds(500),
             [&]() { partition = partitioner.Complete({1, 2}, {3, 4, 5}); });
  s.Schedule(sim::Microseconds(1300), [&]() { partitioner.Heal(partition); });
  s.RunUntilIdle();
  return s.Trace().Dump() + "#events=" + std::to_string(s.events_executed()) +
         " sent=" + std::to_string(network.messages_sent()) +
         " delivered=" + std::to_string(network.messages_delivered()) +
         " dropped=" + std::to_string(network.messages_dropped()) +
         " now=" + sim::FormatTime(s.Now());
}

// Golden digests recorded from the std::map-based event queue immediately
// before the binary-heap swap. The heap must replay the same seeded
// schedules into bit-identical traces; any divergence is an ordering bug.
TEST(DeterminismGolden, EventQueueReplaysTheRecordedSchedules) {
  EXPECT_EQ(Fnv1a(GoldenScheduleTrace(1)), 17290149954841914537ULL)
      << GoldenScheduleTrace(1);
  EXPECT_EQ(Fnv1a(GoldenScheduleTrace(2)), 13891609431013054173ULL);
  EXPECT_EQ(Fnv1a(GoldenScheduleTrace(3)), 6840748438253279289ULL);
}

}  // namespace
}  // namespace sim_golden

namespace sim_substream {
namespace {

struct Ping : public net::Message {
  std::string TypeName() const override { return "Ping"; }
};

// Satellite regression: the network draws loss and jitter from its own RNG
// substream, so toggling jitter or flakiness must not perturb the random
// decisions systems make from the simulator's stream under the same seed.
std::vector<uint64_t> SystemDrawsWith(sim::Duration jitter, double loss) {
  sim::Simulator s(11);
  net::SwitchPartitioner backend;
  net::Network network(&s, &backend);
  network.set_latency({sim::Microseconds(100), jitter});
  network.Register(1, [](const net::Envelope&) {});
  network.Register(2, [](const net::Envelope&) {});
  if (loss > 0.0) {
    network.SetLinkLoss(1, 2, loss);
  }
  std::vector<uint64_t> draws;
  for (int i = 0; i < 32; ++i) {
    network.SendNew<Ping>(1, 2);  // consumes network randomness only
    s.RunUntilIdle();
    draws.push_back(s.Rand().Next());  // a system-logic draw
  }
  return draws;
}

TEST(NetworkRngSubstream, NetworkRandomnessNeverPerturbsSystemDraws) {
  const std::vector<uint64_t> baseline = SystemDrawsWith(0, 0.0);
  EXPECT_EQ(baseline, SystemDrawsWith(sim::Microseconds(80), 0.0));
  EXPECT_EQ(baseline, SystemDrawsWith(sim::Microseconds(80), 0.5));
  EXPECT_EQ(baseline, SystemDrawsWith(0, 0.9));
}

}  // namespace
}  // namespace sim_substream
