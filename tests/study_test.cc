// Tests for the failure-study dataset and table computations: dataset
// invariants (the counts the paper states exactly) and aggregate shapes
// (computed percentages close to the published ones).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "study/export.h"
#include "study/failure.h"
#include "study/tables.h"

namespace study {
namespace {

TEST(Dataset, Has136Failures) {
  EXPECT_EQ(RawDataset().size(), 136u);
  EXPECT_EQ(Dataset().size(), 136u);
}

TEST(Dataset, SourceSplitMatchesThePaper) {
  // 88 issue-tracker failures, 16 Jepsen reports, 32 NEAT discoveries.
  std::map<Source, int> counts;
  for (const FailureRecord& r : RawDataset()) {
    ++counts[r.source];
  }
  EXPECT_EQ(counts[Source::kTicket], 88);
  EXPECT_EQ(counts[Source::kJepsen], 16);
  EXPECT_EQ(counts[Source::kNeat], 32);
}

TEST(Dataset, PerSystemTotalsMatchTable1) {
  auto rows = ComputeTable1(RawDataset());
  std::map<System, std::pair<int, int>> expected = {
      {System::kMongoDb, {19, 11}},     {System::kVoltDb, {4, 4}},
      {System::kRethinkDb, {3, 3}},     {System::kHBase, {5, 3}},
      {System::kRiak, {1, 1}},          {System::kCassandra, {4, 4}},
      {System::kAerospike, {3, 3}},     {System::kGeode, {2, 2}},
      {System::kRedis, {3, 2}},         {System::kHazelcast, {7, 5}},
      {System::kElasticsearch, {22, 21}}, {System::kZooKeeper, {3, 3}},
      {System::kHdfs, {4, 2}},          {System::kKafka, {5, 3}},
      {System::kRabbitMq, {7, 4}},      {System::kMapReduce, {6, 2}},
      {System::kChronos, {2, 1}},       {System::kMesos, {4, 0}},
      {System::kInfinispan, {1, 1}},    {System::kIgnite, {15, 13}},
      {System::kTerracotta, {9, 9}},    {System::kCeph, {2, 2}},
      {System::kMooseFs, {2, 2}},       {System::kActiveMq, {2, 2}},
      {System::kDkron, {1, 1}},
  };
  int total = 0;
  int catastrophic = 0;
  for (const SystemSummary& row : rows) {
    auto it = expected.find(row.system);
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(row.total, it->second.first) << SystemName(row.system);
    EXPECT_EQ(row.catastrophic, it->second.second) << SystemName(row.system);
    total += row.total;
    catastrophic += row.catastrophic;
  }
  EXPECT_EQ(total, 136);
  EXPECT_EQ(catastrophic, 104);  // Table 1 total
}

TEST(Dataset, CompletionIsDeterministic) {
  auto a = Dataset();
  auto b = Dataset();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client_access, b[i].client_access);
    EXPECT_EQ(a[i].min_events, b[i].min_events);
    EXPECT_EQ(a[i].isolation, b[i].isolation);
    EXPECT_EQ(a[i].mechanisms.size(), b[i].mechanisms.size());
  }
}

TEST(Dataset, GroundTruthPinsHold) {
  for (const FailureRecord& r : Dataset()) {
    if (r.reference == "ENG-10389") {
      EXPECT_EQ(r.mechanisms.front(), Mechanism::kLeaderElection);
      EXPECT_EQ(r.isolation, Isolation::kLeader);
      EXPECT_EQ(r.min_events, 3);
    }
    if (r.reference == "SERVER-14885") {
      EXPECT_EQ(r.election_flaw, ElectionFlaw::kConflictingCriteria);
    }
    if (r.reference == "#5289") {
      EXPECT_EQ(r.mechanisms.front(), Mechanism::kConfigurationChange);
      EXPECT_EQ(r.nodes_to_reproduce, 5);
    }
    if (r.reference == "MAPREDUCE-4819") {
      EXPECT_EQ(r.mechanisms.front(), Mechanism::kScheduling);
      EXPECT_EQ(r.client_access, ClientAccess::kNone);
      EXPECT_EQ(r.ordering, Ordering::kPartitionNotFirst);
    }
  }
}

// Each computed table should track the paper's percentages closely; the
// slack accounts for rounding in the published numbers and for pins that
// override quota preferences.
void ExpectShape(const Table& table, double tolerance) {
  for (const TableRow& row : table.rows) {
    EXPECT_NEAR(row.percent, row.paper_percent, tolerance)
        << table.title << " / " << row.label;
  }
}

TEST(Tables, ImpactDistributionMatchesTable2) {
  ExpectShape(ComputeTable2Impact(Dataset()), 2.5);
}

TEST(Tables, MechanismsMatchTable3) { ExpectShape(ComputeTable3Mechanisms(Dataset()), 3.0); }

TEST(Tables, ElectionFlawsMatchTable4) {
  auto table = ComputeTable4ElectionFlaws(Dataset());
  EXPECT_EQ(table.denominator, 54);  // 39.7% of 136
  ExpectShape(table, 5.0);
}

TEST(Tables, ClientAccessMatchesTable5) { ExpectShape(ComputeTable5ClientAccess(Dataset()), 2.0); }

TEST(Tables, PartitionTypesMatchTable6) {
  auto table = ComputeTable6PartitionTypes(Dataset());
  ExpectShape(table, 1.5);
  // These come straight from the appendix: exact counts.
  EXPECT_EQ(table.rows[0].count, 94);  // complete
  EXPECT_EQ(table.rows[1].count, 39);  // partial
  EXPECT_EQ(table.rows[2].count, 3);   // simplex
}

TEST(Tables, EventCountsMatchTable7) { ExpectShape(ComputeTable7EventCounts(Dataset()), 2.0); }

TEST(Tables, EventTypesMatchTable8) { ExpectShape(ComputeTable8EventTypes(Dataset()), 3.5); }

TEST(Tables, OrderingMatchesTable9) { ExpectShape(ComputeTable9Ordering(Dataset()), 2.5); }

TEST(Tables, IsolationMatchesTable10) { ExpectShape(ComputeTable10Isolation(Dataset()), 2.5); }

TEST(Tables, TimingMatchesTable11) { ExpectShape(ComputeTable11Timing(Dataset()), 6.0); }

TEST(Tables, ResolutionMatchesTable12) {
  auto summary = ComputeTable12Resolution(Dataset());
  EXPECT_EQ(summary.table.denominator, 88);
  ExpectShape(summary.table, 2.5);
  EXPECT_NEAR(summary.design_avg_days, 205.0, 15.0);
  EXPECT_NEAR(summary.implementation_avg_days, 81.0, 15.0);
  // Design flaws take ~2.5x longer to resolve.
  EXPECT_GT(summary.design_avg_days, 2.0 * summary.implementation_avg_days);
}

TEST(Tables, NodesMatchTable13) { ExpectShape(ComputeTable13Nodes(Dataset()), 2.0); }

TEST(Tables, HeadlineFindingsHold) {
  auto findings = ComputeHeadlines(Dataset());
  EXPECT_NEAR(findings.catastrophic_percent, 80.0, 5.0);   // Finding 1
  EXPECT_NEAR(findings.silent_percent, 90.0, 2.0);         // Finding 2
  EXPECT_NEAR(findings.lasting_damage_percent, 21.0, 2.0); // Finding 3
  EXPECT_NEAR(findings.single_node_isolation_percent, 88.0, 5.0);   // Finding 9 proxy
  EXPECT_NEAR(findings.single_partition_percent, 99.0, 1.0);        // Finding 6 tail
}

TEST(Tables, AppendixTablesRenderEveryRow) {
  auto records = Dataset();
  const std::string t14 = FormatTable14(records);
  const std::string t15 = FormatTable15(records);
  // Header + 104 rows / header + 32 rows.
  EXPECT_EQ(std::count(t14.begin(), t14.end(), '\n'), 1 + 1 + 104);
  EXPECT_EQ(std::count(t15.begin(), t15.end(), '\n'), 1 + 1 + 32);
  EXPECT_NE(t14.find("ENG-10389"), std::string::npos);
  EXPECT_NE(t15.find("IGNITE-8881"), std::string::npos);
}

TEST(Tables, FormattingIncludesPaperColumn) {
  const std::string text = FormatTable(ComputeTable2Impact(Dataset()));
  EXPECT_NE(text.find("paper"), std::string::npos);
  EXPECT_NE(text.find("Data loss"), std::string::npos);
  EXPECT_FALSE(FormatTable1(ComputeTable1(Dataset())).empty());
}

TEST(Dataset, EventsAreConsistentWithMinEvents) {
  for (const FailureRecord& r : Dataset()) {
    if (r.min_events == 1) {
      EXPECT_TRUE(r.events.empty()) << r.reference;
    } else {
      EXPECT_LE(static_cast<int>(r.events.size()), r.min_events) << r.reference;
    }
  }
}

TEST(Dataset, EveryRecordIsStructurallyComplete) {
  for (const FailureRecord& r : Dataset()) {
    EXPECT_FALSE(r.reference.empty());
    EXPECT_FALSE(r.mechanisms.empty()) << r.reference;
    EXPECT_GE(r.min_events, 1) << r.reference;
    EXPECT_LE(r.min_events, 5) << r.reference;
    EXPECT_TRUE(r.nodes_to_reproduce == 3 || r.nodes_to_reproduce == 5) << r.reference;
    if (!r.mechanisms.empty() && r.mechanisms.front() == Mechanism::kLeaderElection) {
      EXPECT_NE(r.election_flaw, ElectionFlaw::kNone) << r.reference;
    }
    if (r.resolution == Resolution::kUnresolved) {
      EXPECT_EQ(r.resolution_days, 0) << r.reference;
    } else {
      EXPECT_GT(r.resolution_days, 0) << r.reference;
    }
  }
}

TEST(Dataset, TableDenominatorsAreConsistent) {
  const auto records = Dataset();
  for (const Table& table :
       {ComputeTable5ClientAccess(records), ComputeTable6PartitionTypes(records),
        ComputeTable7EventCounts(records), ComputeTable9Ordering(records),
        ComputeTable10Isolation(records), ComputeTable11Timing(records),
        ComputeTable13Nodes(records)}) {
    int sum = 0;
    for (const TableRow& row : table.rows) {
      sum += row.count;
    }
    EXPECT_EQ(sum, table.denominator) << table.title;
  }
}

TEST(Export, CsvHasHeaderAndOneRowPerFailure) {
  const std::string csv = DatasetCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 136);
  EXPECT_EQ(csv.rfind("system,consistency,source,reference", 0), 0u);
  EXPECT_NE(csv.find("VoltDB,Strong,issue tracker,ENG-10389,Dirty read,yes"),
            std::string::npos);
  EXPECT_NE(csv.find("RethinkDB"), std::string::npos);
}

TEST(Export, FieldsWithCommasAreQuoted) {
  const std::string csv = DatasetCsv();
  // The isolation label "Other (e.g., new node, ...)" contains commas.
  EXPECT_NE(csv.find("\"Other (e.g., new node, source of data migration)\""),
            std::string::npos);
}

TEST(Dataset, NeatRowsAreAllUnresolved) {
  for (const FailureRecord& r : Dataset()) {
    if (r.source == Source::kNeat) {
      EXPECT_EQ(r.resolution, Resolution::kUnresolved) << r.reference;
    }
  }
}

}  // namespace
}  // namespace study
