// Scenario DSL tests: parser IR and diagnostics, executor identity with
// the legacy machinery, and determinism of message-level faults across
// thread counts and under snapshot/fork replay. The shipped corpus itself
// is exercised by scenario_corpus_test.cc; byte-identity of the four
// ported reproductions by scenario_conformance_test.cc.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "neat/adapters.h"
#include "neat/campaign.h"
#include "neat/fork.h"
#include "scenario/executor.h"
#include "scenario/parser.h"

namespace scenario {
namespace {

using neat::EventKind;
using neat::IsolationTarget;
using neat::PartitionKind;
using neat::Side;

Scenario MustParse(const std::string& text) {
  const ParseResult parsed = Parse(text);
  EXPECT_TRUE(parsed.ok) << FormatDiagnostics(parsed);
  return parsed.scenario;
}

// --- parser: IR construction ---

TEST(ScenarioParser, ParsesRunScenarioIntoSteps) {
  const Scenario scn = MustParse(R"(
scenario "full" {
  system mqueue
  preset activemq
  seed 7
  causal
  inject drop "mqueue.ReplOp" limit 3 from 1 to 2

  run {
    partition complete leader
    write minority
    read
    phase "failover" {
      crash 1 2
      sleep 800ms
      restart 1
    }
    inject delay "mqueue.ReplAck" by 250us
    inject reorder "zk.Ping"
    clear-faults
    heal
  }

  expect flawed {
    violation "double dequeue"
  }
}
)");
  EXPECT_EQ(scn.name, "full");
  EXPECT_EQ(scn.system, "mqueue");
  EXPECT_EQ(scn.preset, "activemq");
  EXPECT_EQ(scn.seed, 7u);
  EXPECT_TRUE(scn.causal);
  EXPECT_FALSE(scn.campaign.present);
  EXPECT_TRUE(scn.has_run);

  ASSERT_EQ(scn.ambient_faults.size(), 1u);
  const net::FaultRule& ambient = scn.ambient_faults[0];
  EXPECT_EQ(ambient.type_name, "mqueue.ReplOp");
  EXPECT_EQ(ambient.action, net::FaultRule::Action::kDrop);
  EXPECT_EQ(ambient.limit, 3u);
  EXPECT_EQ(ambient.src, 1);
  EXPECT_EQ(ambient.dst, 2);

  ASSERT_EQ(scn.steps.size(), 12u);
  EXPECT_EQ(scn.steps[0].kind, Step::Kind::kEvent);
  EXPECT_EQ(scn.steps[0].event.kind, EventKind::kPartition);
  EXPECT_EQ(scn.steps[0].event.partition, PartitionKind::kComplete);
  EXPECT_EQ(scn.steps[0].event.target, IsolationTarget::kLeader);
  EXPECT_EQ(scn.steps[1].event.kind, EventKind::kWrite);
  EXPECT_EQ(scn.steps[1].event.side, Side::kMinority);
  EXPECT_EQ(scn.steps[2].event.kind, EventKind::kRead);
  EXPECT_EQ(scn.steps[2].event.side, Side::kMajority);  // the default side
  EXPECT_EQ(scn.steps[3].kind, Step::Kind::kPhaseBegin);
  EXPECT_EQ(scn.steps[3].phase, "failover");
  EXPECT_EQ(scn.steps[4].kind, Step::Kind::kCrash);
  EXPECT_EQ(scn.steps[4].nodes, (net::Group{1, 2}));
  EXPECT_EQ(scn.steps[5].kind, Step::Kind::kSleep);
  EXPECT_EQ(scn.steps[5].duration, sim::Milliseconds(800));
  EXPECT_EQ(scn.steps[6].kind, Step::Kind::kRestart);
  EXPECT_EQ(scn.steps[6].nodes, (net::Group{1}));
  EXPECT_EQ(scn.steps[7].kind, Step::Kind::kPhaseEnd);
  EXPECT_EQ(scn.steps[8].kind, Step::Kind::kInject);
  EXPECT_EQ(scn.steps[8].fault.action, net::FaultRule::Action::kDelay);
  EXPECT_EQ(scn.steps[8].fault.delay, sim::Microseconds(250));
  EXPECT_EQ(scn.steps[9].fault.action, net::FaultRule::Action::kReorder);
  EXPECT_EQ(scn.steps[9].fault.type_name, "zk.Ping");
  EXPECT_EQ(scn.steps[10].kind, Step::Kind::kClearFaults);
  EXPECT_EQ(scn.steps[11].event.kind, EventKind::kHeal);

  ASSERT_EQ(scn.expects.size(), 1u);
  EXPECT_EQ(scn.expects[0].variant, Variant::kFlawed);
  ASSERT_EQ(scn.expects[0].expectations.size(), 1u);
  EXPECT_EQ(scn.expects[0].expectations[0].kind, Expectation::Kind::kViolation);
  EXPECT_EQ(scn.expects[0].expectations[0].needle, "double dequeue");
}

TEST(ScenarioParser, CampaignDefaultsMatchTheGeneratorAlphabet) {
  const Scenario scn = MustParse(R"(
scenario "defaults" {
  system pbkv
  campaign {
  }
  expect flawed {
    clean
  }
}
)");
  const neat::TestCaseGenerator::Alphabet alphabet;  // neat's defaults
  EXPECT_TRUE(scn.campaign.present);
  EXPECT_EQ(scn.campaign.events, alphabet.client_events);
  EXPECT_EQ(scn.campaign.partitions, alphabet.partitions);
  EXPECT_EQ(scn.campaign.targets, alphabet.targets);
  EXPECT_EQ(scn.campaign.sides, alphabet.sides);
  EXPECT_EQ(scn.campaign.max_length, 3);
  EXPECT_TRUE(scn.campaign.paper_pruning);
  EXPECT_EQ(scn.campaign.seeds, 1);
  EXPECT_EQ(scn.campaign.threads, 1);
}

TEST(ScenarioParser, CampaignSettingsReplaceTheDefaults) {
  const Scenario scn = MustParse(R"(
scenario "custom" {
  system locksvc
  campaign {
    events lock unlock
    partitions complete
    targets any-replica
    sides majority
    max-length 2
    prune none
    seeds 2
    threads 4
  }
  expect flawed {
    clean
  }
}
)");
  EXPECT_EQ(scn.campaign.events,
            (std::vector<EventKind>{EventKind::kLock, EventKind::kUnlock}));
  EXPECT_EQ(scn.campaign.partitions, (std::vector<PartitionKind>{PartitionKind::kComplete}));
  EXPECT_EQ(scn.campaign.targets,
            (std::vector<IsolationTarget>{IsolationTarget::kAnyReplica}));
  EXPECT_EQ(scn.campaign.sides, (std::vector<Side>{Side::kMajority}));
  EXPECT_EQ(scn.campaign.max_length, 2);
  EXPECT_FALSE(scn.campaign.paper_pruning);
  EXPECT_EQ(scn.campaign.seeds, 2);
  EXPECT_EQ(scn.campaign.threads, 4);
}

// --- parser: diagnostics ---

TEST(ScenarioParser, ReportsLineAndColumnOfTheFirstError) {
  const ParseResult parsed = Parse(
      "scenario \"x\" {\n"
      "  system pbkv\n"
      "  run {\n"
      "    sleep forever\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(parsed.ok);
  ASSERT_EQ(parsed.diagnostics.size(), 1u);
  EXPECT_EQ(parsed.diagnostics[0].line, 4);
  EXPECT_EQ(parsed.diagnostics[0].column, 11);
}

TEST(ScenarioParser, UnknownSystemIsRejected) {
  const ParseResult parsed = Parse(
      "scenario \"x\" {\n"
      "  system zookeeper\n"
      "  run {\n"
      "    write\n"
      "  }\n"
      "  expect flawed {\n"
      "    clean\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(parsed.ok);
  ASSERT_EQ(parsed.diagnostics.size(), 1u);
  EXPECT_EQ(parsed.diagnostics[0].line, 2);
  EXPECT_NE(parsed.diagnostics[0].message.find("zookeeper"), std::string::npos);
}

TEST(ScenarioParser, FormatDiagnosticsRendersTheFilePrefix) {
  ParseResult result;
  result.diagnostics.push_back({3, 7, "boom"});
  EXPECT_EQ(FormatDiagnostics(result), "3:7: boom\n");
  EXPECT_EQ(FormatDiagnostics(result, "a.scn"), "a.scn:3:7: boom\n");
}

TEST(ScenarioParser, UnreadableFileIsAFileLevelDiagnostic) {
  const ParseResult parsed = ParseFile("/nonexistent/never.scn");
  ASSERT_FALSE(parsed.ok);
  ASSERT_EQ(parsed.diagnostics.size(), 1u);
  EXPECT_EQ(parsed.diagnostics[0].line, 0);
  EXPECT_EQ(parsed.diagnostics[0].column, 0);
}

// --- executor: identity with the legacy machinery ---

neat::TestCase DirtyReadCase() {
  neat::TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  partition.target = IsolationTarget::kLeader;
  neat::TestEvent write;
  write.kind = EventKind::kWrite;
  write.side = Side::kMinority;
  neat::TestEvent read;
  read.kind = EventKind::kRead;
  read.side = Side::kMinority;
  return {partition, write, read};
}

const char* kDirtyReadRun = R"(
scenario "dirty-read" {
  system pbkv
  run {
    partition complete leader
    write minority
    read minority
  }
  expect flawed {
    violation "dirty read"
  }
}
)";

TEST(ScenarioExecutor, RunModeIsByteIdenticalToTheLegacyDirectedCase) {
  const Scenario scn = MustParse(kDirtyReadRun);
  const RunOutcome outcome = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(outcome.passed);
  const neat::ExecutionResult legacy =
      neat::RunPbkvTestCase(pbkv::VoltDbOptions(), DirtyReadCase(), scn.seed);
  EXPECT_EQ(outcome.digest, ResultDigest(legacy));
  EXPECT_EQ(outcome.signature, neat::FailureSignature(legacy));
}

TEST(ScenarioExecutor, CaseExecutorIsByteIdenticalToTheLegacyExecutor) {
  const Scenario scn = MustParse(kDirtyReadRun);
  const neat::CaseExecutor executor = ScenarioCaseExecutor(scn, Variant::kFlawed);
  const neat::TestCase test_case = DirtyReadCase();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    EXPECT_EQ(ResultDigest(executor(test_case, seed)),
              ResultDigest(neat::RunPbkvTestCase(pbkv::VoltDbOptions(), test_case, seed)));
  }
}

TEST(ScenarioExecutor, VariantWithoutAnExpectBlockTriviallyPasses) {
  const Scenario scn = MustParse(kDirtyReadRun);
  const RunOutcome outcome = RunScenarioVariant(scn, Variant::kCorrect);
  EXPECT_TRUE(outcome.passed);
  EXPECT_TRUE(outcome.expectations.empty());
}

// --- message-level faults: determinism ---

const char* kAmbientFaultCampaign = R"(
scenario "ambient-drop" {
  system pbkv
  inject drop "pbkv.Replicate" limit 2
  campaign {
    max-length 2
    seeds 2
  }
  expect flawed {
    violation "dirty read"
  }
}
)";

TEST(ScenarioFaults, AmbientCampaignIsByteIdenticalAcrossThreadCounts) {
  Scenario serial = MustParse(kAmbientFaultCampaign);
  Scenario wide = serial;
  serial.campaign.threads = 1;
  wide.campaign.threads = 8;
  const RunOutcome a = RunScenarioVariant(serial, Variant::kFlawed);
  const RunOutcome b = RunScenarioVariant(wide, Variant::kFlawed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.cases_run, b.cases_run);
}

TEST(ScenarioFaults, AmbientRulesActuallyPerturbTheRuns) {
  const Scenario faulted = MustParse(kAmbientFaultCampaign);
  Scenario clean = faulted;
  clean.ambient_faults.clear();
  EXPECT_NE(RunScenarioVariant(faulted, Variant::kFlawed).digest,
            RunScenarioVariant(clean, Variant::kFlawed).digest);
}

void ExpectForkReplayIdentity(const std::string& text) {
  const ParseResult parsed = Parse(text);
  ASSERT_TRUE(parsed.ok) << FormatDiagnostics(parsed);
  const Scenario& scn = parsed.scenario;
  const neat::TestCaseGenerator generator = ScenarioGenerator(scn);
  const std::vector<neat::TestCase> suite =
      generator.EnumerateUpTo(scn.campaign.max_length, ScenarioPruning(scn));
  ASSERT_FALSE(suite.empty());
  const neat::CaseExecutor straight = ScenarioCaseExecutor(scn, Variant::kFlawed);
  const neat::CaseExecutor forked =
      neat::ForkingCaseExecutor(ScenarioRunnerFactory(scn, Variant::kFlawed));
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(ResultDigest(straight(suite[i], 1)), ResultDigest(forked(suite[i], 1)))
        << "case " << i << " of " << suite.size();
  }
}

TEST(ScenarioFaults, DropRuleIsByteIdenticalUnderForkReplay) {
  ExpectForkReplayIdentity(R"(
scenario "fork-drop" {
  system pbkv
  inject drop "pbkv.Replicate" limit 2
  campaign {
    max-length 2
  }
  expect flawed {
    clean
  }
}
)");
}

TEST(ScenarioFaults, DelayRuleIsByteIdenticalUnderForkReplay) {
  ExpectForkReplayIdentity(R"(
scenario "fork-delay" {
  system pbkv
  inject delay "pbkv.Replicate" by 300us limit 4
  campaign {
    max-length 2
  }
  expect flawed {
    clean
  }
}
)");
}

TEST(ScenarioFaults, ReorderRuleIsByteIdenticalUnderForkReplay) {
  ExpectForkReplayIdentity(R"(
scenario "fork-reorder" {
  system pbkv
  inject reorder "pbkv.ReplicateAck" limit 2
  campaign {
    max-length 2
  }
  expect flawed {
    clean
  }
}
)");
}

// --- message-level faults: scoping semantics ---

// A drop rule injected inside a phase dies with the phase: the dequeue
// replicates normally afterwards, so the failover does not re-deliver
// (contrast tests/scenarios/mqueue_repl_blackhole.scn, where the ambient
// rule persists and the flawed variant double-dequeues).
TEST(ScenarioFaults, PhaseScopedRulesAreRemovedAtPhaseEnd) {
  const Scenario scn = MustParse(R"(
scenario "phase-scoped" {
  system mqueue
  preset activemq
  run {
    phase "armed" {
      inject drop "mqueue.ReplOp"
    }
    read
    crash 1
    sleep 800ms
  }
  expect flawed {
    clean
  }
}
)");
  const RunOutcome outcome = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(outcome.passed) << outcome.signature;
}

// clear-faults removes ambient rules too.
TEST(ScenarioFaults, ClearFaultsRemovesAmbientRules) {
  const Scenario scn = MustParse(R"(
scenario "cleared" {
  system mqueue
  preset activemq
  inject drop "mqueue.ReplOp"
  run {
    clear-faults
    read
    crash 1
    sleep 800ms
  }
  expect flawed {
    clean
  }
}
)");
  const RunOutcome outcome = RunScenarioVariant(scn, Variant::kFlawed);
  EXPECT_TRUE(outcome.passed) << outcome.signature;
}

}  // namespace
}  // namespace scenario
