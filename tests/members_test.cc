// Tests for the membership system, reproducing rabbitmq-server#1455: a
// partition during peer discovery causes two clusters to form, and the
// split persists after the heal (Finding 3: lasting damage).

#include <gtest/gtest.h>

#include "systems/members/membership.h"

namespace members {
namespace {

Deployment::Config MakeConfig(const Options& options, uint64_t seed = 1) {
  Deployment::Config config;
  config.options = options;
  config.seed = seed;
  return config;
}

TEST(MembersSteadyState, AllNodesJoinOneCluster) {
  Deployment deployment(MakeConfig(CorrectOptions()));
  deployment.Settle(sim::Seconds(1));
  EXPECT_EQ(deployment.DistinctClusters().size(), 1u);
  for (net::NodeId id : deployment.node_ids()) {
    EXPECT_TRUE(deployment.node(id).joined()) << "node " << id;
    EXPECT_EQ(deployment.node(id).cluster_id(), "cluster-1");
  }
}

TEST(MembersSteadyState, GossipSpreadsTheFullMemberList) {
  Deployment deployment(MakeConfig(CorrectOptions()));
  deployment.Settle(sim::Seconds(1));
  for (net::NodeId id : deployment.node_ids()) {
    EXPECT_EQ(deployment.node(id).members().size(), deployment.node_ids().size())
        << "node " << id;
  }
}

TEST(Members1455, PartitionDuringDiscoveryFormsTwoClusters) {
  Deployment deployment(MakeConfig(RabbitMqOptions()));
  // The partition exists from the very first discovery attempt.
  auto partition = deployment.partitioner().Complete({3}, {1, 2});
  deployment.Settle(sim::Seconds(1));
  EXPECT_EQ(deployment.node(3).cluster_id(), "cluster-3") << "node 3 self-bootstrapped";
  EXPECT_EQ(deployment.DistinctClusters().size(), 2u);

  // The damage persists after the heal: the clusters never merge.
  deployment.partitioner().Heal(partition);
  deployment.Settle(sim::Seconds(2));
  EXPECT_EQ(deployment.DistinctClusters().size(), 2u) << "lasting damage (Finding 3)";
}

TEST(Members1455, RetryingDiscoveryHealsWithThePartition) {
  Deployment deployment(MakeConfig(CorrectOptions()));
  auto partition = deployment.partitioner().Complete({3}, {1, 2});
  deployment.Settle(sim::Seconds(1));
  EXPECT_FALSE(deployment.node(3).joined()) << "node 3 keeps retrying, never bootstraps";
  deployment.partitioner().Heal(partition);
  deployment.Settle(sim::Seconds(1));
  EXPECT_TRUE(deployment.node(3).joined());
  EXPECT_EQ(deployment.DistinctClusters().size(), 1u);
}

TEST(Members1455, PartialPartitionSplitsTheJoiners) {
  // Node 2 can reach the bootstrap node, node 3 cannot — a partial
  // partition yields one real cluster plus an impostor.
  Deployment deployment(MakeConfig(RabbitMqOptions()));
  auto partition = deployment.partitioner().Partial({3}, {1});
  deployment.Settle(sim::Seconds(1));
  EXPECT_EQ(deployment.node(2).cluster_id(), "cluster-1");
  // Node 3 reaches node 2; whether it joined via node 2 or self-bootstrapped
  // depends on timing — but it must be in exactly one of those states.
  EXPECT_TRUE(deployment.node(3).joined());
  deployment.partitioner().Heal(partition);
  deployment.Settle(sim::Seconds(1));
  EXPECT_GE(deployment.DistinctClusters().size(), 1u);
}

class MembersSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MembersSweep, CorrectDiscoveryAlwaysConvergesToOneCluster) {
  Deployment deployment(MakeConfig(CorrectOptions(), GetParam()));
  const net::NodeId isolated =
      deployment.node_ids()[GetParam() % deployment.node_ids().size()];
  auto partition = deployment.partitioner().Complete(
      {isolated}, net::Partitioner::Rest(deployment.node_ids(), {isolated}));
  deployment.Settle(sim::Seconds(1));
  deployment.partitioner().Heal(partition);
  deployment.Settle(sim::Seconds(2));
  EXPECT_EQ(deployment.DistinctClusters().size(), 1u) << "isolated node " << isolated;
  for (net::NodeId id : deployment.node_ids()) {
    EXPECT_TRUE(deployment.node(id).joined());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembersSweep, ::testing::Range<uint64_t>(1, 7),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace members
