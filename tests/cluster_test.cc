// Unit tests for the process runtime and the failure detector.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/failure_detector.h"
#include "cluster/process.h"
#include "net/network.h"
#include "net/partition.h"
#include "sim/simulator.h"

namespace cluster {
namespace {

struct Note : public net::Message {
  explicit Note(std::string text_in = "") : text(std::move(text_in)) {}
  std::string TypeName() const override { return "Note"; }
  std::string text;
};

// A process that echoes notes back and counts ticks.
class Echoer : public Process {
 public:
  Echoer(sim::Simulator* simulator, net::Network* network, net::NodeId id)
      : Process(simulator, network, id, "echo" + std::to_string(id)) {}

  int ticks = 0;
  std::vector<std::string> seen;
  int starts = 0;
  int restarts = 0;

  void SendNote(net::NodeId dst, const std::string& text) { Send<Note>(dst, text); }
  void ArmAfter(sim::Duration d) {
    After(d, [this]() { ++ticks; });
  }
  void ArmEvery(sim::Duration d) {
    Every(d, [this]() { ++ticks; });
  }

 protected:
  void OnStart() override { ++starts; }
  void OnRestart() override { ++restarts; }
  void OnMessage(const net::Envelope& envelope) override {
    auto* note = dynamic_cast<const Note*>(envelope.msg.get());
    if (note != nullptr) {
      seen.push_back(note->text);
    }
  }
};

class ProcessTest : public ::testing::Test {
 protected:
  ProcessTest() : simulator_(3), network_(&simulator_, &backend_) {
    a_ = std::make_unique<Echoer>(&simulator_, &network_, 1);
    b_ = std::make_unique<Echoer>(&simulator_, &network_, 2);
    a_->Boot();
    b_->Boot();
  }
  sim::Simulator simulator_;
  net::SwitchPartitioner backend_;
  net::Network network_;
  std::unique_ptr<Echoer> a_;
  std::unique_ptr<Echoer> b_;
};

TEST_F(ProcessTest, DeliversMessagesBetweenProcesses) {
  a_->SendNote(2, "hello");
  simulator_.RunUntilIdle();
  ASSERT_EQ(b_->seen.size(), 1u);
  EXPECT_EQ(b_->seen[0], "hello");
}

TEST_F(ProcessTest, CrashedProcessReceivesNothing) {
  b_->Crash();
  a_->SendNote(2, "lost");
  simulator_.RunUntilIdle();
  EXPECT_TRUE(b_->seen.empty());
}

TEST_F(ProcessTest, RestartResumesDelivery) {
  b_->Crash();
  b_->Restart();
  a_->SendNote(2, "back");
  simulator_.RunUntilIdle();
  ASSERT_EQ(b_->seen.size(), 1u);
  EXPECT_EQ(b_->restarts, 1);
  EXPECT_EQ(b_->starts, 2);
}

TEST_F(ProcessTest, CrashCancelsPendingTimers) {
  a_->ArmAfter(sim::Milliseconds(5));
  a_->Crash();
  simulator_.RunUntilIdle();
  EXPECT_EQ(a_->ticks, 0);
}

TEST_F(ProcessTest, TimerFromOldIncarnationDoesNotFireAfterRestart) {
  a_->ArmAfter(sim::Milliseconds(5));
  a_->Crash();
  a_->Restart();
  simulator_.RunUntilIdle();
  EXPECT_EQ(a_->ticks, 0);  // the timer belonged to the old incarnation
}

TEST_F(ProcessTest, EveryRepeatsUntilCrash) {
  a_->ArmEvery(sim::Milliseconds(10));
  simulator_.RunUntil(sim::Milliseconds(55));
  EXPECT_EQ(a_->ticks, 5);
  a_->Crash();
  simulator_.RunUntil(sim::Milliseconds(200));
  EXPECT_EQ(a_->ticks, 5);
}

TEST_F(ProcessTest, IncarnationIncrementsOnCrashAndBoot) {
  const uint64_t first = a_->incarnation();
  a_->Crash();
  a_->Restart();
  EXPECT_GT(a_->incarnation(), first);
}

class FailureDetectorTest : public ::testing::Test {
 protected:
  FailureDetector::Options MakeOptions() {
    FailureDetector::Options o;
    o.interval = sim::Milliseconds(100);
    o.miss_threshold = 3;
    return o;
  }
};

TEST_F(FailureDetectorTest, PeersStartAlive) {
  FailureDetector fd(1, {2, 3}, MakeOptions());
  EXPECT_TRUE(fd.IsAlive(2, sim::Milliseconds(100)));
  EXPECT_TRUE(fd.IsAlive(3, sim::kTimeZero));
}

TEST_F(FailureDetectorTest, SelfIsExcludedFromPeers) {
  FailureDetector fd(1, {1, 2}, MakeOptions());
  EXPECT_EQ(fd.peers(), (std::vector<net::NodeId>{2}));
}

TEST_F(FailureDetectorTest, PeerDiesAfterMissedHeartbeats) {
  FailureDetector fd(1, {2}, MakeOptions());
  EXPECT_TRUE(fd.IsAlive(2, sim::Milliseconds(300)));
  EXPECT_FALSE(fd.IsAlive(2, sim::Milliseconds(301)));
}

TEST_F(FailureDetectorTest, HeartbeatRefreshesLiveness) {
  FailureDetector fd(1, {2}, MakeOptions());
  fd.RecordHeartbeat(2, sim::Milliseconds(250));
  EXPECT_TRUE(fd.IsAlive(2, sim::Milliseconds(500)));
  EXPECT_FALSE(fd.IsAlive(2, sim::Milliseconds(600)));
}

TEST_F(FailureDetectorTest, UnknownPeerIsDead) {
  FailureDetector fd(1, {2}, MakeOptions());
  EXPECT_FALSE(fd.IsAlive(42, sim::kTimeZero));
}

TEST_F(FailureDetectorTest, CustomWindowQueries) {
  FailureDetector fd(1, {2}, MakeOptions());
  fd.RecordHeartbeat(2, sim::Milliseconds(100));
  // Dead by the default 300ms window, alive by a 600ms step-down window.
  EXPECT_FALSE(fd.IsAlive(2, sim::Milliseconds(500)));
  EXPECT_TRUE(fd.IsAliveWithin(2, sim::Milliseconds(500), sim::Milliseconds(600)));
}

TEST_F(FailureDetectorTest, AliveAndDeadPartitionThePeerSet) {
  FailureDetector fd(1, {2, 3, 4}, MakeOptions());
  fd.RecordHeartbeat(2, sim::Milliseconds(400));
  const sim::Time now = sim::Milliseconds(500);
  EXPECT_EQ(fd.AlivePeers(now), (std::vector<net::NodeId>{2}));
  EXPECT_EQ(fd.DeadPeers(now), (std::vector<net::NodeId>{3, 4}));
}

TEST_F(FailureDetectorTest, ResetRevivesEveryone) {
  FailureDetector fd(1, {2, 3}, MakeOptions());
  EXPECT_FALSE(fd.IsAlive(2, sim::Seconds(10)));
  fd.Reset(sim::Seconds(10));
  EXPECT_TRUE(fd.IsAlive(2, sim::Seconds(10)));
}

TEST_F(FailureDetectorTest, LastHeardTracksLatest) {
  FailureDetector fd(1, {2}, MakeOptions());
  fd.RecordHeartbeat(2, sim::Milliseconds(7));
  fd.RecordHeartbeat(2, sim::Milliseconds(11));
  EXPECT_EQ(fd.LastHeard(2), sim::Milliseconds(11));
  EXPECT_EQ(fd.LastHeard(99), sim::kTimeZero);
}

// Partial-partition disagreement: with nodes {1,2,3} and a partial partition
// between 1 and 2, node 2's detector sees node 1 dead while node 3's sees it
// alive — the paper's defining confusion for partial partitions.
TEST(FailureDetectorScenario, PartialPartitionCausesDisagreement) {
  FailureDetector::Options options;
  options.interval = sim::Milliseconds(100);
  options.miss_threshold = 3;
  FailureDetector on_node2(2, {1, 3}, options);
  FailureDetector on_node3(3, {1, 2}, options);
  // Node 1 heartbeats reach node 3 but not node 2 (partial partition 1|2).
  for (int t = 1; t <= 10; ++t) {
    on_node3.RecordHeartbeat(1, sim::Milliseconds(100 * t));
  }
  const sim::Time now = sim::Milliseconds(1000);
  EXPECT_FALSE(on_node2.IsAlive(1, now));  // node 2: "node 1 crashed"
  EXPECT_TRUE(on_node3.IsAlive(1, now));   // node 3: "node 1 is fine"
}

}  // namespace
}  // namespace cluster
