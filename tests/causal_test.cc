// Tests for the causal happens-before layer: the CausalFold cascade
// detector (check/causal.h), feature-key escaping, the "cy:" coverage
// family, and the determinism contract of causal-mode campaigns (fork ==
// replay, parallel == serial).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/causal.h"
#include "neat/adapters.h"
#include "neat/campaign.h"
#include "neat/coverage.h"
#include "neat/fork.h"
#include "neat/testgen.h"
#include "neat/trace_scan.h"
#include "sim/trace.h"
#include "systems/pbkv/cluster.h"

namespace {

// Appends one lap of a synthetic fault-propagation loop: a state flap on
// some node that sends a message whose delivery flaps the next node. Three
// abstract labels — sys:flap, net:send:sys.Msg, net:deliver:sys.Msg — each
// lap traverses every edge of the cycle once.
uint64_t AppendLap(sim::TraceLog& log, int lap, uint64_t prev_deliver) {
  const std::string node = "sys.n" + std::to_string(lap % 2 + 1);
  const uint64_t flap = log.Append(lap, node, "flap", "", prev_deliver);
  const uint64_t send = log.Append(lap, "net", "send", "1->2 sys.Msg", flap);
  return log.Append(lap, "net", "deliver", "1->2 sys.Msg", send);
}

TEST(CausalFold, RecurringMessageCycleIsACascade) {
  sim::TraceLog log;
  uint64_t deliver = 0;
  for (int lap = 0; lap < 5; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  check::CausalFold fold;
  fold.Advance(log);
  const auto cascades = fold.Cascades();
  ASSERT_EQ(cascades.size(), 1u);
  EXPECT_EQ(cascades[0].signature, "net:deliver:sys.Msg|net:send:sys.Msg|sys:flap");
  EXPECT_GE(cascades[0].laps, 4u);
  EXPECT_EQ(cascades[0].post_heal_laps, 0u);  // no heal record: phase never 'h'
}

TEST(CausalFold, TransientsBelowMinLapsDoNotFlag) {
  sim::TraceLog log;
  uint64_t deliver = 0;
  for (int lap = 0; lap < 2; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  check::CausalFold fold;
  fold.Advance(log);
  EXPECT_TRUE(fold.Cascades().empty()) << "two laps are a transient, not a loop";
  check::CascadeOptions lenient;
  lenient.min_laps = 1;
  EXPECT_EQ(fold.Cascades(lenient).size(), 1u);
}

TEST(CausalFold, TimerAlternationWithoutMessageEdgeDoesNotFlag) {
  // A node ping-ponging between two local states forever (pure program
  // order, e.g. a timer loop) is periodic but not fault propagation: no
  // record crosses a handler boundary, so no cascade.
  sim::TraceLog log;
  for (int i = 0; i < 20; ++i) {
    log.Append(i, "sys.n1", i % 2 == 0 ? "arm" : "fire");
  }
  check::CausalFold fold;
  fold.Advance(log);
  EXPECT_TRUE(fold.Cascades().empty());
}

TEST(CausalFold, HeartbeatSelfLoopsNeverBecomeEdges) {
  // A steady heartbeat — the same label over and over — must not flag even
  // when each beat is message-caused: self-loops are skipped and a cascade
  // needs at least two labels.
  sim::TraceLog log;
  uint64_t prev = 0;
  for (int i = 0; i < 20; ++i) {
    prev = log.Append(i, "net", "deliver", "1->2 sys.Heartbeat", prev);
  }
  check::CausalFold fold;
  fold.Advance(log);
  EXPECT_TRUE(fold.Cascades().empty());
}

TEST(CausalFold, PostHealLapsGateTheSurvivesTheHealCriterion) {
  sim::TraceLog log;
  uint64_t deliver = 0;
  for (int lap = 0; lap < 4; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  log.Append(10, "neat", "heal");
  for (int lap = 4; lap < 10; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  check::CausalFold fold;
  fold.Advance(log);
  const auto cascades = fold.Cascades();
  ASSERT_EQ(cascades.size(), 1u);
  EXPECT_GE(cascades[0].post_heal_laps, 5u);
  check::CascadeOptions surviving;
  surviving.min_post_heal_laps = 5;
  EXPECT_EQ(fold.Cascades(surviving).size(), 1u);
  surviving.min_post_heal_laps = 100;
  EXPECT_TRUE(fold.Cascades(surviving).empty())
      << "a loop that died at the heal must not count as surviving it";
}

TEST(CausalFold, AdvanceIsSuffixOnlyAndValueCopyable) {
  // The fork contract: folding a prefix, copying the fold (snapshot), then
  // folding the suffix on the copy must equal one whole-trace fold.
  sim::TraceLog log;
  uint64_t deliver = 0;
  for (int lap = 0; lap < 3; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  check::CausalFold incremental;
  incremental.Advance(log);
  const check::CausalFold snapshot = incremental;  // value copy
  for (int lap = 3; lap < 7; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  incremental.Advance(log);
  check::CausalFold resumed = snapshot;
  resumed.Advance(log);
  check::CausalFold fresh;
  fresh.Advance(log);
  const auto via_fresh = fresh.Cascades();
  const auto via_incremental = incremental.Cascades();
  const auto via_resumed = resumed.Cascades();
  ASSERT_EQ(via_fresh.size(), 1u);
  ASSERT_EQ(via_incremental.size(), 1u);
  ASSERT_EQ(via_resumed.size(), 1u);
  EXPECT_EQ(via_incremental[0].signature, via_fresh[0].signature);
  EXPECT_EQ(via_incremental[0].laps, via_fresh[0].laps);
  EXPECT_EQ(via_resumed[0].signature, via_fresh[0].signature);
  EXPECT_EQ(via_resumed[0].laps, via_fresh[0].laps);
}

TEST(CausalFold, CheckCascadesRendersViolations) {
  sim::TraceLog log;
  uint64_t deliver = 0;
  for (int lap = 0; lap < 5; ++lap) {
    deliver = AppendLap(log, lap, deliver);
  }
  const auto violations = check::CheckCascades(log);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].impact, "cascading failure");
  EXPECT_NE(violations[0].description.find("sys:flap"), std::string::npos);
}

// --- feature-key escaping (satellite: bi:/ph: injection) ---

TEST(Escaping, EscapeLabelAtomEscapesSeparatorsOnly) {
  EXPECT_EQ(check::EscapeLabelAtom("a>b"), "a%3eb");
  EXPECT_EQ(check::EscapeLabelAtom("p:x"), "p%3ax");
  EXPECT_EQ(check::EscapeLabelAtom("a|b"), "a%7cb");
  EXPECT_EQ(check::EscapeLabelAtom("50%"), "50%25");
  EXPECT_EQ(check::EscapeLabelAtom("elected"), "elected") << "identity on plain names";
  EXPECT_EQ(check::EscapeLabelAtom("pbkv.RequestVote"), "pbkv.RequestVote");
}

TEST(Escaping, BigramFeatureKeysAreInjectionProof) {
  // Before escaping, events {"a>b","c"} and {"a","b>c"} both rendered the
  // feature "bi:a>b>c" — two different behaviours, one coverage key. The
  // escaped keys must differ.
  sim::TraceLog first;
  first.Append(1, "sys.n1", "a>b");
  first.Append(2, "sys.n1", "c");
  sim::TraceLog second;
  second.Append(1, "sys.n1", "a");
  second.Append(2, "sys.n1", "b>c");
  neat::TraceScan scan_first;
  scan_first.Advance(first);
  neat::TraceScan scan_second;
  scan_second.Advance(second);
  const auto features_first = scan_first.Features();
  const auto features_second = scan_second.Features();
  ASSERT_FALSE(features_first.empty());
  ASSERT_FALSE(features_second.empty());
  EXPECT_NE(features_first, features_second);
  bool saw_escaped = false;
  for (const std::string& f : features_first) {
    saw_escaped = saw_escaped || f == "bi:a%3eb>c";
  }
  EXPECT_TRUE(saw_escaped) << "the '>' inside the event name must be escaped";
}

TEST(Escaping, PaperSuiteFeaturesAreEscapeFree) {
  // Escaping is the identity on every event name and message type the
  // model systems emit, so coverage feature keys — and therefore the
  // campaign coverage digests — are unchanged by the escaping fix. Pinned
  // by scanning the whole paper-pruned pbkv suite for the escape marker.
  neat::TestCaseGenerator::Alphabet alphabet;
  neat::TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(3, neat::PaperPruning());
  const neat::CaseExecutor executor = neat::PbkvCaseExecutor(pbkv::VoltDbOptions());
  size_t features_seen = 0;
  for (const neat::TestCase& test_case : suite) {
    const neat::ExecutionResult result = executor(test_case, 1);
    for (const std::string& feature : result.coverage) {
      ++features_seen;
      EXPECT_EQ(feature.find('%'), std::string::npos) << feature;
    }
  }
  EXPECT_GT(features_seen, 0u);
}

// --- the leader-thrash acceptance scenario ---

std::vector<check::Violation> RunArbiterScenario(bool arbiter_checks_leader) {
  pbkv::Cluster::Config config;
  config.options = pbkv::MongoArbiterOptions();
  config.options.arbiter_checks_leader = arbiter_checks_leader;
  config.options.causal_trace = true;
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));
  cluster.env().simulator().Trace().Append(cluster.env().simulator().Now(), "neat", "partition",
                                           "partial 1|2");
  auto partition = cluster.partitioner().Partial({1}, {2});
  cluster.Settle(sim::Seconds(4));
  cluster.partitioner().Heal(partition);
  cluster.env().simulator().Trace().Append(cluster.env().simulator().Now(), "neat", "heal", "");
  cluster.Settle(sim::Milliseconds(500));
  return check::CheckCascades(cluster.env().simulator().Trace());
}

TEST(Cascade, FlagsFlawedArbiterAndPassesServer27125Fix) {
  const auto flawed = RunArbiterScenario(/*arbiter_checks_leader=*/false);
  ASSERT_FALSE(flawed.empty()) << "the checker must see the leader thrash";
  EXPECT_NE(flawed[0].description.find("pbkv:step-down"), std::string::npos)
      << flawed[0].description;
  EXPECT_NE(flawed[0].description.find("pbkv:elected"), std::string::npos)
      << flawed[0].description;
  const auto fixed = RunArbiterScenario(/*arbiter_checks_leader=*/true);
  EXPECT_TRUE(fixed.empty()) << check::FormatViolations(fixed);
}

// --- determinism: causal campaigns fork, replay, and parallelize
// byte-identically ---

void ExpectSameExecution(const neat::ExecutionResult& got, const neat::ExecutionResult& want) {
  EXPECT_EQ(got.found_failure, want.found_failure) << want.trace;
  EXPECT_EQ(got.trace, want.trace);
  EXPECT_EQ(got.coverage, want.coverage) << want.trace;
  EXPECT_EQ(check::FormatViolations(got.violations), check::FormatViolations(want.violations))
      << want.trace;
}

pbkv::Options CausalArbiterOptions() {
  pbkv::Options options = pbkv::MongoArbiterOptions();
  options.causal_trace = true;
  return options;
}

TEST(Cascade, CausalForkEqualsReplayOnThePaperPrunedSuite) {
  // The acceptance bar: with causal tracing on (send/deliver records,
  // cause stamping, cy: features, cascade verdicts), a persistent forking
  // session must stay byte-identical to fresh-cluster replay on every case
  // of the paper-pruned suite.
  neat::TestCaseGenerator::Alphabet alphabet;
  neat::TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(3, neat::PaperPruning());
  const neat::CaseExecutor replay = neat::PbkvCaseExecutor(CausalArbiterOptions());
  auto stats = std::make_shared<neat::ForkStats>();
  const neat::CaseExecutor forked = neat::ForkingCaseExecutor(
      neat::PbkvRunnerFactory(CausalArbiterOptions()), neat::ForkOptions{}, stats);
  for (const neat::TestCase& test_case : suite) {
    ExpectSameExecution(forked(test_case, 1), replay(test_case, 1));
  }
  EXPECT_GT(stats->forked_runs, 0u) << "the suite must actually exercise forking";
}

TEST(Cascade, CausalGuidedCampaignIsByteIdenticalAtOneAndEightThreads) {
  neat::TestCaseGenerator::Alphabet alphabet;
  neat::TestCaseGenerator gen(alphabet);
  const neat::CaseExecutor executor = neat::PbkvCaseExecutor(CausalArbiterOptions());
  neat::CampaignOptions base;
  base.guided = true;
  base.guided_rounds = 2;
  base.seeds = 2;
  neat::CampaignOptions serial = base;
  serial.threads = 1;
  neat::CampaignOptions parallel = base;
  parallel.threads = 8;
  const neat::CampaignResult one = neat::RunCampaign(gen, 3, neat::PaperPruning(), executor, serial);
  const neat::CampaignResult eight =
      neat::RunCampaign(gen, 3, neat::PaperPruning(), executor, parallel);
  ASSERT_GT(one.cases_run, 0u);
  EXPECT_EQ(eight.cases_run, one.cases_run);
  EXPECT_EQ(eight.VerdictDigest(), one.VerdictDigest());
  EXPECT_EQ(eight.coverage.Digest(), one.coverage.Digest());
  EXPECT_EQ(eight.CorpusDigest(), one.CorpusDigest());
}

}  // namespace
