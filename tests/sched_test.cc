// Scenario tests for the scheduler, reproducing the MapReduce double
// execution of Figure 3 (MAPREDUCE-4819/-4832) and showing that commit
// fencing fixes it. Note the paper's observation: this failure needs *no
// client access after the partition* — the single submit happens before.

#include <gtest/gtest.h>

#include <string>

#include "check/checkers.h"
#include "systems/sched/cluster.h"

namespace sched {
namespace {

using check::OpStatus;

Cluster::Config MakeConfig(const Options& options, uint64_t seed = 1) {
  Cluster::Config config;
  config.options = options;
  config.seed = seed;
  return config;
}

TEST(SchedSteadyState, TaskRunsToCompletionExactlyOnce) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Seconds(1));
  ASSERT_EQ(cluster.store().commits().size(), 1u);
  EXPECT_EQ(cluster.store().commits()[0].task_id, "job-1");
  EXPECT_EQ(cluster.client(0).ResultCount("job-1"), 1);
  EXPECT_TRUE(check::CheckDoubleExecution(cluster.store().commits()).empty());
}

TEST(SchedSteadyState, ContainersFanOutAcrossWorkers) {
  Options options = CorrectOptions();
  options.containers_per_task = 3;
  Cluster cluster(MakeConfig(options));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Seconds(1));
  EXPECT_EQ(cluster.store().container_runs().size(), 3u);
}

TEST(SchedSteadyState, AppMasterIsPlacedRoundRobin) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));
  EXPECT_TRUE(cluster.worker(1).HostsAppMasterFor("job-1"));
  ASSERT_EQ(cluster.Submit(0, "job-2").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));
  EXPECT_TRUE(cluster.worker(2).HostsAppMasterFor("job-2"));
}

TEST(SchedSteadyState, MultipleTasksCommitIndependently) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  ASSERT_EQ(cluster.Submit(0, "job-2").status, OpStatus::kOk);
  cluster.Settle(sim::Seconds(1));
  EXPECT_EQ(cluster.store().commits().size(), 2u);
}

TEST(SchedCrashRecovery, AmHostCrashTriggersRelaunch) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));
  cluster.worker(1).Crash();  // the AM host dies before containers finish
  cluster.Settle(sim::Seconds(2));
  // The RM relaunched on another worker; the task still completed once.
  ASSERT_EQ(cluster.store().commits().size(), 1u);
  EXPECT_NE(cluster.store().commits()[0].executor, 1);
  EXPECT_EQ(cluster.client(0).ResultCount("job-1"), 1);
}

// --- Figure 3: double execution under a partial partition ---

TEST(SchedDoubleExecution, PartialPartitionReproducesFigure3) {
  Cluster cluster(MakeConfig(MapReduceOptions()));
  cluster.Settle(sim::Milliseconds(100));

  // (a) The user submits a task; the RM starts an AppMaster on worker 1.
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));  // the AppMaster boots on worker 1
  ASSERT_TRUE(cluster.worker(1).HostsAppMasterFor("job-1"));

  // (b) A partial partition separates the AppMaster from the RM; both still
  // reach the workers, the store, and the user. No further client input.
  auto partition = cluster.partitioner().Partial({1}, {cluster.rm_id()});
  cluster.Settle(sim::Seconds(2));

  // The RM assumed the AM crashed and started a second one; both attempts
  // committed and the user got the result twice.
  EXPECT_GE(cluster.rm().AttemptOf("job-1"), 2);
  auto violations = check::CheckDoubleExecution(cluster.store().commits());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].impact, "double execution");
  EXPECT_GE(cluster.client(0).ResultCount("job-1"), 2);
  cluster.partitioner().Heal(partition);
}

TEST(SchedDoubleExecution, CommitFencingPreventsIt) {
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));
  auto partition = cluster.partitioner().Partial({1}, {cluster.rm_id()});
  cluster.Settle(sim::Seconds(2));

  // The RM still relaunches (it cannot distinguish a partition from a
  // crash), but the store only accepts the registered attempt's commit.
  EXPECT_GE(cluster.rm().AttemptOf("job-1"), 2);
  EXPECT_TRUE(check::CheckDoubleExecution(cluster.store().commits()).empty());
  EXPECT_EQ(cluster.client(0).ResultCount("job-1"), 1);
  cluster.partitioner().Heal(partition);
}

TEST(SchedDoubleExecution, WastedWorkStillVisibleWithFencing) {
  // Fencing fixes the user-visible duplicate, not the duplicated container
  // work — the cost the bench reports.
  Cluster cluster(MakeConfig(CorrectOptions()));
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  cluster.Settle(sim::Milliseconds(50));
  auto partition = cluster.partitioner().Partial({1}, {cluster.rm_id()});
  cluster.Settle(sim::Seconds(2));
  EXPECT_GT(cluster.store().container_runs().size(),
            static_cast<size_t>(CorrectOptions().containers_per_task));
  cluster.partitioner().Heal(partition);
}

class SchedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedSweep, FencedCommitsAreExactlyOnceUnderAnySingleIsolation) {
  Cluster::Config config = MakeConfig(CorrectOptions(), GetParam());
  Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(100));
  ASSERT_EQ(cluster.Submit(0, "job-1").status, OpStatus::kOk);
  const net::NodeId isolated =
      cluster.worker_ids()[GetParam() % cluster.worker_ids().size()];
  auto partition = cluster.partitioner().Partial({isolated}, {cluster.rm_id()});
  cluster.Settle(sim::Seconds(2));
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  auto violations = check::CheckDoubleExecution(cluster.store().commits());
  EXPECT_TRUE(violations.empty()) << check::FormatViolations(violations);
  EXPECT_LE(cluster.client(0).ResultCount("job-1"), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedSweep, ::testing::Range<uint64_t>(1, 7),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace sched
