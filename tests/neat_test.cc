// Tests for the NEAT framework: the test environment (partition + crash
// API, global op order), the test-case generator with the Chapter-5 pruning
// rules (materialized and streaming), the ISystem adapters, the executors,
// and the parallel campaign runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "neat/adapters.h"
#include "neat/campaign.h"
#include "neat/coverage.h"
#include "neat/env.h"
#include "neat/mutate.h"
#include "neat/testgen.h"
#include "neat/trace_report.h"

namespace neat {
namespace {

TEST(TestEnvTest, RestUsesTheRegisteredUniverse) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  // Universe: 3 servers + 2 clients.
  net::Group rest = env.Rest({1, 2});
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
}

TEST(TestEnvTest, CrashAndRestartThroughTheEnv) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  env.Sleep(sim::Milliseconds(300));
  ASSERT_TRUE(system.GetStatus());
  env.Crash({1});
  EXPECT_TRUE(env.FindProcess(1)->crashed());
  env.Sleep(sim::Seconds(2));
  // The remaining majority elected a replacement primary.
  EXPECT_TRUE(system.GetStatus());
  env.Restart({1});
  EXPECT_FALSE(env.FindProcess(1)->crashed());
}

TEST(TestEnvTest, CrashedNodeStaysInUniverseAndDropsAsNoReceiver) {
  // Crashed-node semantics: crash() detaches the process's handler but the
  // node keeps its network address — the universe (and therefore Rest()) is
  // unchanged, peers' traffic to it drops as "no receiver", and restart()
  // resumes delivery.
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  env.Sleep(sim::Milliseconds(300));
  const net::Group universe_before = env.network().Universe();

  env.Crash({1});
  EXPECT_EQ(env.network().Universe(), universe_before);
  const auto no_receiver_drops_to = [&env](net::NodeId node) {
    size_t count = 0;
    const std::string link = "->" + std::to_string(node) + " ";
    for (const auto& record : env.simulator().Trace().Filter("net")) {
      if (record.detail.find("no receiver") != std::string::npos &&
          record.detail.find(link) != std::string::npos) {
        ++count;
      }
    }
    return count;
  };
  const size_t drops_at_crash = no_receiver_drops_to(1);
  env.Sleep(sim::Seconds(1));
  // Heartbeats kept flowing to the crashed node and died as "no receiver".
  EXPECT_GT(no_receiver_drops_to(1), drops_at_crash);

  env.Restart({1});
  const size_t drops_at_restart = no_receiver_drops_to(1);
  env.Sleep(sim::Seconds(1));
  EXPECT_EQ(no_receiver_drops_to(1), drops_at_restart);
  EXPECT_TRUE(system.GetStatus());
}

TEST(TestEnvTest, ShutdownCrashesEveryServer) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  system.Env().Sleep(sim::Milliseconds(300));
  system.Shutdown();
  for (net::NodeId node : system.Servers()) {
    EXPECT_TRUE(system.Env().FindProcess(node)->crashed());
  }
  EXPECT_FALSE(system.GetStatus());
}

TEST(TestEnvTest, PartitionApiMatchesThePaper) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  net::Partition p = env.Partial({1}, {2});
  EXPECT_FALSE(env.backend().Allows(1, 2));
  EXPECT_TRUE(env.backend().Allows(1, 3));
  env.Heal(p);
  EXPECT_TRUE(env.backend().Allows(1, 2));
}

TEST(TestEnvTest, AwaitRunsUntilPredicate) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  const bool ok =
      env.Await([&]() { return env.simulator().Now() >= sim::Milliseconds(100); });
  EXPECT_TRUE(ok);
}

// --- test-case generation ---

TEST(TestGen, UnprunedCountIsAlphabetPower) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const uint64_t n = gen.Instances().size();
  EXPECT_EQ(gen.UnprunedCount(1), n);
  EXPECT_EQ(gen.UnprunedCount(3), n * n * n);
}

TEST(TestGen, NoPruningEnumeratesEverything) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  auto cases = gen.Enumerate(2, NoPruning());
  EXPECT_EQ(cases.size(), gen.UnprunedCount(2));
}

TEST(TestGen, PartitionFirstForcesTheFaultUpFront) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  PruningRules rules;
  rules.partition_first = true;
  for (const TestCase& test_case : gen.Enumerate(3, rules)) {
    ASSERT_FALSE(test_case.empty());
    EXPECT_EQ(test_case.front().kind, EventKind::kPartition)
        << FormatTestCase(test_case);
  }
}

TEST(TestGen, NaturalOrderForbidsReadBeforeWrite) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  PruningRules rules;
  rules.natural_order = true;
  for (const TestCase& test_case : gen.Enumerate(3, rules)) {
    bool wrote = false;
    for (const TestEvent& event : test_case) {
      if (event.kind == EventKind::kWrite) {
        wrote = true;
      }
      if (event.kind == EventKind::kRead || event.kind == EventKind::kDelete) {
        EXPECT_TRUE(wrote) << FormatTestCase(test_case);
      }
    }
  }
}

TEST(TestGen, SinglePartitionRuleAllowsAtMostOneFault) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  PruningRules rules;
  rules.single_partition = true;
  for (const TestCase& test_case : gen.Enumerate(3, rules)) {
    int partitions = 0;
    for (const TestEvent& event : test_case) {
      if (event.kind == EventKind::kPartition) {
        ++partitions;
      }
    }
    EXPECT_LE(partitions, 1) << FormatTestCase(test_case);
  }
}

TEST(TestGen, PaperPruningShrinksTheSpaceDramatically) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto pruned = gen.EnumerateUpTo(4, PaperPruning());
  uint64_t unpruned = 0;
  for (int len = 1; len <= 4; ++len) {
    unpruned += gen.UnprunedCount(len);
  }
  EXPECT_LT(pruned.size() * 10, unpruned)
      << "pruning should remove at least 90% of the space";
  EXPECT_FALSE(pruned.empty());
}

TEST(TestGen, EventDebugStringsAreDescriptive) {
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kPartial;
  partition.target = IsolationTarget::kLeader;
  EXPECT_EQ(partition.DebugString(), "partition(partial,leader)");
  TestEvent write;
  write.kind = EventKind::kWrite;
  write.side = Side::kMinority;
  EXPECT_EQ(write.DebugString(), "write(minority)");
}

// --- streaming generation ---

std::vector<PruningRules> AllRuleSets() {
  PruningRules none;
  PruningRules partition_first;
  partition_first.partition_first = true;
  PruningRules natural;
  natural.natural_order = true;
  PruningRules single;
  single.single_partition = true;
  PruningRules three_events;
  three_events.max_client_events = 3;
  return {none, partition_first, natural, single, three_events, PaperPruning()};
}

TEST(TestGenStream, CursorMatchesEnumerateForAllRuleSetsAndLengths) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  for (const PruningRules& rules : AllRuleSets()) {
    for (int length = 1; length <= 4; ++length) {
      const auto expected = gen.Enumerate(length, rules);
      std::vector<TestCase> via_cursor;
      auto cursor = gen.MakeCursor(length, rules);
      TestCase test_case;
      while (cursor.Next(&test_case)) {
        via_cursor.push_back(test_case);
      }
      // Order included: the cursor must walk the exact DFS order Enumerate
      // materializes.
      EXPECT_EQ(via_cursor, expected) << "length " << length;
      std::vector<TestCase> via_stream;
      EXPECT_TRUE(gen.Stream(length, rules, [&via_stream](const TestCase& streamed) {
        via_stream.push_back(streamed);
        return true;
      }));
      EXPECT_EQ(via_stream, expected) << "length " << length;
    }
  }
}

TEST(TestGenStream, CursorUpToMatchesEnumerateUpTo) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  for (const PruningRules& rules : AllRuleSets()) {
    const auto expected = gen.EnumerateUpTo(4, rules);
    std::vector<TestCase> via_cursor;
    auto cursor = gen.MakeCursorUpTo(4, rules);
    TestCase test_case;
    while (cursor.Next(&test_case)) {
      via_cursor.push_back(test_case);
    }
    EXPECT_EQ(via_cursor, expected);
  }
}

TEST(TestGenStream, EarlyStopAbortsTheEnumeration) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  size_t seen = 0;
  const bool completed = gen.StreamUpTo(3, NoPruning(), [&seen](const TestCase&) {
    return ++seen < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 5u);
}

TEST(TestGenStream, LengthFiveCountOnlySmoke) {
  // The length-5 paper-pruned space is streamed count-only: the cursor holds
  // O(max_length) state, so the suite never materializes. Both streaming
  // forms must agree, and length 5 must strictly extend length 4.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  uint64_t streamed = 0;
  EXPECT_TRUE(gen.StreamUpTo(5, PaperPruning(), [&streamed](const TestCase& test_case) {
    EXPECT_LE(test_case.size(), 5u);
    ++streamed;
    return true;
  }));
  uint64_t pulled = 0;
  auto cursor = gen.MakeCursorUpTo(5, PaperPruning());
  TestCase test_case;
  while (cursor.Next(&test_case)) {
    ++pulled;
  }
  EXPECT_EQ(streamed, pulled);
  EXPECT_GT(streamed, gen.EnumerateUpTo(4, PaperPruning()).size());
}

// --- campaign runner ---

// A cheap deterministic executor for campaign-mechanics tests: fails iff
// case length plus seed is even, with a synthetic violation to exercise the
// signature dedup.
CaseExecutor SyntheticExecutor() {
  return [](const TestCase& test_case, uint64_t seed) {
    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    if ((test_case.size() + seed) % 2 == 0) {
      check::Violation violation;
      violation.impact = "synthetic";
      violation.description = "length+seed is even";
      result.violations.push_back(violation);
      result.found_failure = true;
    }
    return result;
  };
}

TEST(Campaign, AggregatesDeterministicallyKeyedByCaseIndex) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(2, PaperPruning());
  ASSERT_FALSE(suite.empty());
  CampaignOptions options;
  options.threads = 4;
  const CampaignResult result = RunCampaign(suite, SyntheticExecutor(), options);
  ASSERT_EQ(result.cases_run, suite.size());
  uint64_t failures = 0;
  int64_t first = -1;
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(result.cases[i].case_index, i);
    EXPECT_EQ(result.cases[i].seed, 1u);
    EXPECT_EQ(result.cases[i].trace, FormatTestCase(suite[i]));
    const bool expect_failure = (suite[i].size() + 1) % 2 == 0;
    EXPECT_EQ(result.cases[i].found_failure, expect_failure);
    if (expect_failure) {
      ++failures;
      if (first < 0) {
        first = static_cast<int64_t>(i);
      }
    }
  }
  EXPECT_EQ(result.failures, failures);
  EXPECT_EQ(result.first_failure_index, first);
  EXPECT_EQ(result.signature_counts.at("synthetic"), failures);
}

TEST(Campaign, MultiSeedRunsEveryCaseUnderEverySeed) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto suite = gen.Enumerate(1, PaperPruning());
  ASSERT_FALSE(suite.empty());
  CampaignOptions options;
  options.threads = 3;
  options.seeds = 3;
  const CampaignResult result = RunCampaign(suite, SyntheticExecutor(), options);
  ASSERT_EQ(result.cases_run, suite.size() * 3);
  for (size_t i = 0; i < result.cases.size(); ++i) {
    EXPECT_EQ(result.cases[i].case_index, i / 3);
    EXPECT_EQ(result.cases[i].seed, i % 3 + 1);
    // Length-1 cases fail on odd seeds (1 + seed even).
    EXPECT_EQ(result.cases[i].found_failure, (1 + result.cases[i].seed) % 2 == 0);
  }
}

TEST(Campaign, StreamingSourceMatchesMaterializedSuite) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  CampaignOptions options;
  options.threads = 4;
  options.seeds = 2;
  const CampaignResult streamed =
      RunCampaign(gen, 3, PaperPruning(), SyntheticExecutor(), options);
  const CampaignResult materialized =
      RunCampaign(gen.EnumerateUpTo(3, PaperPruning()), SyntheticExecutor(), options);
  EXPECT_EQ(streamed.cases_run, materialized.cases_run);
  EXPECT_EQ(streamed.VerdictDigest(), materialized.VerdictDigest());
}

TEST(Campaign, ProgressReportsEveryRunAndIsMonotonic) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(2, PaperPruning());
  CampaignOptions options;
  options.threads = 4;
  uint64_t calls = 0;
  uint64_t last_done = 0;
  bool monotonic = true;
  options.progress = [&](uint64_t done, uint64_t total, uint64_t failures_so_far) {
    ++calls;
    monotonic = monotonic && done > last_done && failures_so_far <= done;
    last_done = done;
    EXPECT_EQ(total, suite.size());
  };
  const CampaignResult result = RunCampaign(suite, SyntheticExecutor(), options);
  EXPECT_EQ(calls, result.cases_run);
  EXPECT_EQ(last_done, result.cases_run);
  EXPECT_TRUE(monotonic);
}

TEST(Campaign, ProgressSnapshotsAreMonotonicUnderManyThreads) {
  // done and failures are snapshotted together under one lock: across many
  // workers racing to report, no observer may ever see the failure count
  // decrease, jump by more than the done count, or see done skip a run.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(3, PaperPruning());
  ASSERT_GT(suite.size(), 32u);
  CampaignOptions options;
  options.threads = 8;
  options.seeds = 2;
  uint64_t last_done = 0;
  uint64_t last_failures = 0;
  bool consistent = true;
  options.progress = [&](uint64_t done, uint64_t total, uint64_t failures_so_far) {
    consistent = consistent && done == last_done + 1          // no skipped runs
                 && failures_so_far >= last_failures          // never decreases
                 && failures_so_far - last_failures <= 1      // at most this run
                 && failures_so_far <= done && total == suite.size() * 2;
    last_done = done;
    last_failures = failures_so_far;
  };
  const CampaignResult result = RunCampaign(suite, SyntheticExecutor(), options);
  EXPECT_TRUE(consistent);
  EXPECT_EQ(last_done, result.cases_run);
  EXPECT_EQ(last_failures, result.failures);
  EXPECT_GT(result.failures, 0u);
}

TEST(Campaign, StreamingProgressReportsTheCountableTotal) {
  // The streaming overload pre-counts the pruned space (it is far below the
  // precount limit), so the progress callback sees the real total instead
  // of 0.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const uint64_t expected = gen.EnumerateUpTo(3, PaperPruning()).size();
  CampaignOptions options;
  options.threads = 4;
  options.seeds = 2;
  uint64_t seen_total = 0;
  uint64_t calls = 0;
  options.progress = [&](uint64_t, uint64_t total, uint64_t) {
    seen_total = total;
    ++calls;
  };
  const CampaignResult result =
      RunCampaign(gen, 3, PaperPruning(), SyntheticExecutor(), options);
  EXPECT_EQ(seen_total, expected * 2) << "total covers every (case, seed) run";
  EXPECT_EQ(calls, result.cases_run);
}

TEST(TestGen, CountUpToMatchesEnumerationAndHonorsTheLimit) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const uint64_t exact = gen.EnumerateUpTo(3, PaperPruning()).size();
  EXPECT_EQ(gen.CountUpTo(3, PaperPruning()), exact);
  EXPECT_EQ(gen.CountUpTo(3, PaperPruning(), exact + 1), exact);
  // A space at least as large as the limit is reported as 0 ("unknown").
  EXPECT_EQ(gen.CountUpTo(3, PaperPruning(), exact), 0u);
  EXPECT_EQ(gen.CountUpTo(3, PaperPruning(), 5), 0u);
}

TEST(Campaign, EnvKnobsControlThreadsAndSeeds) {
  ASSERT_EQ(setenv("NEAT_THREADS", "7", 1), 0);
  ASSERT_EQ(setenv("NEAT_SEEDS", "3", 1), 0);
  CampaignOptions options = CampaignOptionsFromEnv();
  EXPECT_EQ(options.threads, 7);
  EXPECT_EQ(options.seeds, 3);
  ASSERT_EQ(setenv("NEAT_THREADS", "not-a-number", 1), 0);
  ASSERT_EQ(unsetenv("NEAT_SEEDS"), 0);
  options = CampaignOptionsFromEnv();
  EXPECT_EQ(options.threads, 0) << "unparsable knob falls back to hardware";
  EXPECT_EQ(options.seeds, 1);
  ASSERT_EQ(unsetenv("NEAT_THREADS"), 0);
}

TEST(Campaign, ParallelEqualsSerialOnThePaperPrunedPbkvSuite) {
  // The determinism contract on the real executor: one worker and four
  // workers over the paper-pruned pbkv suite must produce identical
  // per-case verdicts and identical aggregates.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(3, PaperPruning());
  const CaseExecutor executor = PbkvCaseExecutor(pbkv::VoltDbOptions());
  CampaignOptions serial_options;
  serial_options.threads = 1;
  CampaignOptions parallel_options;
  parallel_options.threads = 4;
  const CampaignResult serial = RunCampaign(suite, executor, serial_options);
  const CampaignResult parallel = RunCampaign(suite, executor, parallel_options);
  ASSERT_EQ(serial.cases_run, suite.size());
  ASSERT_EQ(parallel.cases_run, serial.cases_run);
  for (size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(parallel.cases[i].case_index, serial.cases[i].case_index);
    EXPECT_EQ(parallel.cases[i].seed, serial.cases[i].seed);
    EXPECT_EQ(parallel.cases[i].found_failure, serial.cases[i].found_failure)
        << serial.cases[i].trace;
    EXPECT_EQ(parallel.cases[i].signature, serial.cases[i].signature)
        << serial.cases[i].trace;
    EXPECT_EQ(parallel.cases[i].trace, serial.cases[i].trace);
  }
  EXPECT_EQ(parallel.failures, serial.failures);
  EXPECT_EQ(parallel.first_failure_index, serial.first_failure_index);
  EXPECT_EQ(parallel.signature_counts, serial.signature_counts);
  EXPECT_EQ(parallel.VerdictDigest(), serial.VerdictDigest());
  EXPECT_GT(serial.failures, 0u) << "the VoltDB-like variant must fail the sweep";
}

TEST(Campaign, StatusProbeExecutorSweepsAnyModelSystem) {
  // The SystemFactory interface: the same generic executor drives a
  // partition-only campaign against systems with no bespoke executor.
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  const TestCase partition_only{partition};
  CampaignOptions options;
  options.threads = 2;
  for (SystemFactory factory :
       {MakeRaftKvFactory(), MakeMqueueFactory(), MakePbkvFactory(pbkv::CorrectOptions())}) {
    const CampaignResult result = RunCampaign(
        std::vector<TestCase>{partition_only}, StatusProbeExecutor(factory), options);
    ASSERT_EQ(result.cases_run, 1u);
    // A healed correct system must make progress again.
    EXPECT_EQ(result.failures, 0u) << result.cases[0].signature;
  }
}

// --- executor ---

TestCase DirtyReadCase() {
  // partition(complete, leader) -> write(minority) -> read(minority):
  // the Figure 2 manifestation sequence.
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  partition.target = IsolationTarget::kLeader;
  TestEvent write;
  write.kind = EventKind::kWrite;
  write.side = Side::kMinority;
  TestEvent read;
  read.kind = EventKind::kRead;
  read.side = Side::kMinority;
  return TestCase{partition, write, read};
}

TEST(Executor, FindsTheDirtyReadInTheFlawedSystem) {
  auto result = RunPbkvTestCase(pbkv::VoltDbOptions(), DirtyReadCase(), /*seed=*/1);
  EXPECT_TRUE(result.found_failure) << result.trace;
  bool has_dirty = false;
  for (const auto& violation : result.violations) {
    if (violation.impact == "dirty read") {
      has_dirty = true;
    }
  }
  EXPECT_TRUE(has_dirty);
}

TEST(Executor, CleanOnTheCorrectedSystem) {
  auto result = RunPbkvTestCase(pbkv::CorrectOptions(), DirtyReadCase(), /*seed=*/1);
  EXPECT_FALSE(result.found_failure) << check::FormatViolations(result.violations);
}

TEST(Executor, PrunedSuiteFindsTheSeededBugs) {
  // Run the whole paper-pruned suite (3-event cases) against the flawed
  // configurations; it must expose both seeded bugs.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  auto suite = gen.EnumerateUpTo(3, PaperPruning());
  int voltdb_failures = 0;
  int correct_failures = 0;
  for (const TestCase& test_case : suite) {
    if (RunPbkvTestCase(pbkv::VoltDbOptions(), test_case, 1).found_failure) {
      ++voltdb_failures;
    }
    if (RunPbkvTestCase(pbkv::CorrectOptions(), test_case, 1).found_failure) {
      ++correct_failures;
    }
  }
  EXPECT_GT(voltdb_failures, 0) << "the suite must catch the VoltDB-style dirty read";
  EXPECT_EQ(correct_failures, 0) << "the corrected system must pass the whole suite";
}

TEST(Executor, LocksvcSuiteExposesDoubleLocking) {
  TestCaseGenerator::Alphabet alphabet;
  alphabet.client_events = {EventKind::kLock, EventKind::kUnlock};
  TestCaseGenerator gen(alphabet);
  auto suite = gen.EnumerateUpTo(3, PaperPruning());
  int flawed = 0;
  int fixed = 0;
  for (const TestCase& test_case : suite) {
    if (RunLocksvcTestCase(locksvc::IgniteOptions(), test_case, 1).found_failure) {
      ++flawed;
    }
    if (RunLocksvcTestCase(locksvc::CorrectOptions(), test_case, 1).found_failure) {
      ++fixed;
    }
  }
  EXPECT_GT(flawed, 0) << "the suite must expose the Ignite double locking";
  EXPECT_EQ(fixed, 0);
}

TEST(TraceReport, SummarizesDropsAndLeadership) {
  sim::TraceLog log;
  log.Append(sim::Milliseconds(1), "net", "drop", "1->2 pbkv.Replicate (partitioned)");
  log.Append(sim::Milliseconds(2), "net", "drop", "1->2 pbkv.Replicate (partitioned)");
  log.Append(sim::Milliseconds(3), "net", "drop", "3->1 Heartbeat (partitioned)");
  log.Append(sim::Milliseconds(4), "pbkv.n2", "election-start", "term=2");
  log.Append(sim::Milliseconds(5), "pbkv.n2", "elected", "term=2");
  log.Append(sim::Milliseconds(6), "pbkv.n1", "step-down", "lost majority");
  const TraceReport report = Summarize(log);
  EXPECT_EQ(report.total_records, 6u);
  EXPECT_EQ(report.drops_per_link.at("1->2"), 2u);
  EXPECT_EQ(report.drops_per_link.at("3->1"), 1u);
  EXPECT_EQ(report.leadership_events.size(), 3u);
  const std::string text = FormatReport(report);
  EXPECT_NE(text.find("3 messages dropped on 2 links"), std::string::npos);
  EXPECT_NE(text.find("worst: 1->2 x2"), std::string::npos);
  EXPECT_NE(text.find("elected"), std::string::npos);
}

TEST(TraceReport, MalformedDropDetailStillCounts) {
  // A drop record whose detail has no space separator is counted under the
  // raw detail, so the per-link totals always sum to event_counts["drop"].
  sim::TraceLog log;
  log.Append(sim::Milliseconds(1), "net", "drop", "1->2 pbkv.Replicate (partitioned)");
  log.Append(sim::Milliseconds(2), "net", "drop", "malformed-detail");
  log.Append(sim::Milliseconds(3), "net", "drop", "");
  const TraceReport report = Summarize(log);
  EXPECT_EQ(report.drops_per_link.at("1->2"), 1u);
  EXPECT_EQ(report.drops_per_link.at("malformed-detail"), 1u);
  EXPECT_EQ(report.drops_per_link.at(""), 1u);
  size_t total = 0;
  for (const auto& [link, count] : report.drops_per_link) {
    total += count;
  }
  EXPECT_EQ(total, report.event_counts.at("drop"));
}

TEST(TraceReport, ExecutorsAttachTheRunsTraceSummary) {
  // The real executors summarize the run's simulation trace into the
  // result, which the campaign reports bundle per minimized repro.
  const auto result = RunPbkvTestCase(pbkv::VoltDbOptions(), DirtyReadCase(), /*seed=*/1);
  EXPECT_GT(result.trace_report.total_records, 0u);
  EXPECT_FALSE(result.trace_report.drops_per_link.empty())
      << "the partition must have dropped traffic";
}

TEST(TraceReport, NarratesARealFailureRun) {
  pbkv::Cluster::Config config;
  config.options = pbkv::VoltDbOptions();
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  env.Sleep(sim::Milliseconds(500));
  net::Partition part = env.Complete({1}, {2, 3});
  env.Sleep(sim::Seconds(2));
  env.Heal(part);
  env.Sleep(sim::Seconds(1));
  const TraceReport report = Summarize(env.simulator().Trace());
  EXPECT_GT(report.drops_per_link.size(), 0u) << "the partition dropped traffic";
  EXPECT_GE(report.event_counts.at("elected"), 1u) << "the majority elected a new leader";
  EXPECT_GE(report.event_counts.at("step-down"), 1u) << "the old leader stepped down";
}

TEST(Executor, RaftKvSuiteExposesTheMembershipDataLoss) {
  // The RethinkDB-like flaw (#5289): a partial partition plus the
  // fault-model membership change loses acknowledged writes. The
  // paper-pruned suite through the campaign runner must expose it, and the
  // corrected configuration must survive the identical sweep.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  CampaignOptions options;
  options.threads = 8;
  options.seeds = 3;
  const CampaignResult flawed = RunCampaign(
      gen, 3, PaperPruning(), RaftKvCaseExecutor(raftkv::RethinkDbOptions()), options);
  EXPECT_GT(flawed.failures, 0u);
  bool has_loss = false;
  for (const auto& [signature, count] : flawed.signature_counts) {
    if (signature.find("data loss") != std::string::npos ||
        signature.find("non-linearizable") != std::string::npos) {
      has_loss = true;
    }
  }
  EXPECT_TRUE(has_loss) << "expected a data-loss / non-linearizable signature";
  const CampaignResult correct = RunCampaign(
      gen, 3, PaperPruning(), RaftKvCaseExecutor(raftkv::CorrectOptions()), options);
  EXPECT_EQ(correct.failures, 0u)
      << "corrected raftkv failed: " << (correct.signature_counts.empty()
                                             ? std::string("?")
                                             : correct.signature_counts.begin()->first);
}

TEST(Executor, MqueueSuiteExposesTheDoubleDequeue) {
  // The ActiveMQ-like flaw (AMQ-6978): both sides of the cut dequeue the
  // pre-seeded replicated message. Judged by the double-dequeue checker
  // over the paper-pruned suite; the corrected broker must stay clean.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  CampaignOptions options;
  options.threads = 8;
  options.seeds = 3;
  const CampaignResult flawed = RunCampaign(
      gen, 3, PaperPruning(), MqueueCaseExecutor(mqueue::ActiveMqOptions()), options);
  EXPECT_GT(flawed.failures, 0u);
  EXPECT_TRUE(flawed.signature_counts.count("double dequeue"))
      << "expected the AMQ-6978 double-dequeue signature";
  const CampaignResult correct = RunCampaign(
      gen, 3, PaperPruning(), MqueueCaseExecutor(mqueue::CorrectOptions()), options);
  EXPECT_EQ(correct.failures, 0u)
      << "corrected mqueue failed: " << (correct.signature_counts.empty()
                                             ? std::string("?")
                                             : correct.signature_counts.begin()->first);
}

// --- coverage (guided campaigns) ---

TEST(Coverage, AdmissionSignalCountsOnlyUnseenFeatures) {
  CoverageMap map;
  EXPECT_EQ(map.Add({"a", "b", "a"}), 2u);
  EXPECT_EQ(map.Add({"a", "c"}), 1u);
  EXPECT_EQ(map.Add({"a", "b"}), 0u);
  EXPECT_EQ(map.unique_features(), 3u);
  EXPECT_EQ(map.total_hits(), 7u);
  EXPECT_TRUE(map.Covers("c"));
  EXPECT_FALSE(map.Covers("d"));
  EXPECT_EQ(map.counters().at("a"), 4u);
}

TEST(Coverage, DigestDependsOnCountsNotInsertionOrder) {
  CoverageMap a;
  a.Add({"x"});
  a.Add({"y", "z"});
  CoverageMap b;
  b.Add({"z", "y"});
  b.Add({"x"});
  EXPECT_EQ(a.Digest(), b.Digest());
  CoverageMap merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.unique_features(), 3u);
  EXPECT_EQ(merged.total_hits(), a.total_hits() + b.total_hits());
  EXPECT_NE(merged.Digest(), a.Digest()) << "doubled counts must change the digest";
}

TEST(Coverage, TraceCoverageExtractsBigramsAndPhaseEdges) {
  sim::TraceLog log;
  log.Append(sim::Milliseconds(1), "pbkv.n1", "elected", "term=1");
  log.Append(sim::Milliseconds(2), "neat", "partition", "complete");
  log.Append(sim::Milliseconds(3), "net", "drop", "1->2 pbkv.Replicate (partitioned at send)");
  log.Append(sim::Milliseconds(4), "neat", "heal", "");
  log.Append(sim::Milliseconds(5), "pbkv.n2", "elected", "term=2");
  const std::vector<std::string> features = TraceCoverage(log);
  EXPECT_TRUE(std::is_sorted(features.begin(), features.end()));
  const auto has = [&features](const std::string& feature) {
    return std::find(features.begin(), features.end(), feature) != features.end();
  };
  EXPECT_TRUE(has("ph:b:elected")) << "system event before the partition";
  EXPECT_TRUE(has("ph:p:pbkv.Replicate")) << "message type dropped during the partition";
  EXPECT_TRUE(has("ph:h:elected")) << "system event after the heal";
  EXPECT_TRUE(has("bi:elected>partition")) << "trace bigram across the phase marker";
  EXPECT_FALSE(has("ph:p:partition")) << "the neat markers are phase edges, not features";
}

TEST(Coverage, StateTransitionFeatureIsFixedWidthHex) {
  EXPECT_EQ(StateTransitionFeature(0, 15), "sd:0000000000000000>000000000000000f");
  EXPECT_NE(StateTransitionFeature(1, 2), StateTransitionFeature(2, 1));
}

TEST(Coverage, RealExecutorRunsReportCoverageFeatures) {
  const auto result = RunPbkvTestCase(pbkv::VoltDbOptions(), DirtyReadCase(), /*seed=*/1);
  ASSERT_FALSE(result.coverage.empty());
  bool has_bigram = false;
  bool has_phase = false;
  for (const std::string& feature : result.coverage) {
    has_bigram = has_bigram || feature.rfind("bi:", 0) == 0;
    has_phase = has_phase || feature.rfind("ph:", 0) == 0;
  }
  EXPECT_TRUE(has_bigram);
  EXPECT_TRUE(has_phase);
  EXPECT_TRUE(std::is_sorted(result.coverage.begin(), result.coverage.end()));
}

// --- mutation (guided campaigns) ---

TEST(Mutate, MutationIsAPureFunctionOfParentAndSeed) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const Mutator mutator(alphabet, 5);
  const auto suite = gen.EnumerateUpTo(3, PaperPruning());
  ASSERT_FALSE(suite.empty());
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    const TestCase& parent = suite[seed % suite.size()];
    const TestCase first = mutator.Mutate(parent, seed);
    const TestCase second = mutator.Mutate(parent, seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_FALSE(first.empty());
    EXPECT_LE(first.size(), 5u) << "max_events bounds mutant length";
  }
}

TEST(Mutate, DifferentSeedsExploreDifferentMutants) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const Mutator mutator(alphabet, 5);
  const TestCase parent = gen.EnumerateUpTo(3, PaperPruning()).back();
  std::set<std::string> mutants;
  size_t changed = 0;
  for (uint64_t seed = 1; seed <= 128; ++seed) {
    const TestCase mutant = mutator.Mutate(parent, seed);
    mutants.insert(FormatTestCase(mutant));
    if (mutant != parent) {
      ++changed;
    }
  }
  EXPECT_GT(mutants.size(), 8u) << "the operator set must actually diversify";
  EXPECT_GT(changed, 100u) << "nearly every seed should produce a real mutation";
}

TEST(Mutate, MixSeedSeparatesSchedulingCoordinates) {
  EXPECT_EQ(Mutator::MixSeed(1, 2, 3, 4), Mutator::MixSeed(1, 2, 3, 4));
  std::set<uint64_t> seeds;
  for (uint64_t campaign = 1; campaign <= 2; ++campaign) {
    for (uint64_t round = 0; round < 4; ++round) {
      for (uint64_t index = 0; index < 4; ++index) {
        for (uint64_t mutant = 0; mutant < 4; ++mutant) {
          seeds.insert(Mutator::MixSeed(campaign, round, index, mutant));
        }
      }
    }
  }
  EXPECT_EQ(seeds.size(), 2u * 4u * 4u * 4u) << "coordinates must not collide";
}

// --- guided campaigns ---

TEST(Guided, CampaignIsByteIdenticalAcrossThreadCountsAndRuns) {
  // The determinism acceptance bar: guided campaigns must produce the same
  // verdicts, the same coverage map, and the same corpus at NEAT_THREADS=1
  // and 8, and stay stable across repeated runs with the same seeds.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const CaseExecutor executor = PbkvCaseExecutor(pbkv::VoltDbOptions());
  CampaignOptions base;
  base.guided = true;
  base.guided_rounds = 3;
  base.seeds = 2;
  CampaignOptions serial = base;
  serial.threads = 1;
  CampaignOptions parallel = base;
  parallel.threads = 8;
  const CampaignResult one = RunCampaign(gen, 3, PaperPruning(), executor, serial);
  const CampaignResult eight = RunCampaign(gen, 3, PaperPruning(), executor, parallel);
  const CampaignResult again = RunCampaign(gen, 3, PaperPruning(), executor, parallel);
  ASSERT_GT(one.cases_run, 0u);
  EXPECT_TRUE(one.guided.enabled);
  EXPECT_EQ(eight.cases_run, one.cases_run);
  EXPECT_EQ(eight.VerdictDigest(), one.VerdictDigest());
  EXPECT_EQ(eight.coverage.Digest(), one.coverage.Digest());
  EXPECT_EQ(eight.CorpusDigest(), one.CorpusDigest());
  EXPECT_EQ(eight.guided.seed_cases, one.guided.seed_cases);
  EXPECT_EQ(eight.guided.mutants_run, one.guided.mutants_run);
  EXPECT_EQ(eight.guided.duplicates_skipped, one.guided.duplicates_skipped);
  EXPECT_EQ(eight.guided.new_features_per_round, one.guided.new_features_per_round);
  EXPECT_EQ(again.VerdictDigest(), eight.VerdictDigest());
  EXPECT_EQ(again.coverage.Digest(), eight.coverage.Digest());
  EXPECT_EQ(again.CorpusDigest(), eight.CorpusDigest());
}

TEST(Guided, HalfBudgetFindsEveryExhaustiveSignature) {
  // The yield acceptance bar: capped at HALF the exhaustive run count, the
  // guided loop must still reach every unique failure signature the full
  // paper-pruned enumeration finds — on both seeded-flaw suites.
  struct Suite {
    const char* name;
    TestCaseGenerator generator;
    CaseExecutor executor;
  };
  TestCaseGenerator::Alphabet kv_alphabet;
  TestCaseGenerator::Alphabet lock_alphabet;
  lock_alphabet.client_events = {EventKind::kLock, EventKind::kUnlock};
  std::vector<Suite> suites;
  suites.push_back({"pbkv", TestCaseGenerator(kv_alphabet),
                    PbkvCaseExecutor(pbkv::VoltDbOptions())});
  suites.push_back({"locksvc", TestCaseGenerator(lock_alphabet),
                    LocksvcCaseExecutor(locksvc::IgniteOptions())});
  CampaignOptions options;
  options.threads = 8;
  for (Suite& suite : suites) {
    CampaignOptions exhaustive_options = options;
    const CampaignResult exhaustive = RunCampaign(suite.generator, 3, PaperPruning(),
                                                  suite.executor, exhaustive_options);
    ASSERT_GT(exhaustive.failures, 0u) << suite.name;
    CampaignOptions guided_options = options;
    guided_options.guided = true;
    guided_options.guided_max_cases = exhaustive.cases_run / 2;
    const CampaignResult guided = RunCampaign(suite.generator, 3, PaperPruning(),
                                              suite.executor, guided_options);
    EXPECT_LE(guided.cases_run, exhaustive.cases_run / 2) << suite.name;
    for (const auto& [signature, count] : exhaustive.signature_counts) {
      EXPECT_TRUE(guided.signature_counts.count(signature))
          << suite.name << ": guided missed \"" << signature << "\" in "
          << guided.cases_run << " runs";
    }
  }
}

TEST(Guided, EnvKnobsControlRoundsAndCorpus) {
  ASSERT_EQ(setenv("NEAT_GUIDED_ROUNDS", "5", 1), 0);
  ASSERT_EQ(setenv("NEAT_CORPUS_MAX", "64", 1), 0);
  CampaignOptions options = CampaignOptionsFromEnv();
  EXPECT_EQ(options.guided_rounds, 5);
  EXPECT_EQ(options.corpus_max, 64);
  EXPECT_FALSE(options.guided) << "the knobs tune the loop; --guided opts in";
  ASSERT_EQ(unsetenv("NEAT_GUIDED_ROUNDS"), 0);
  ASSERT_EQ(unsetenv("NEAT_CORPUS_MAX"), 0);
  options = CampaignOptionsFromEnv();
  EXPECT_EQ(options.guided_rounds, 8);
  EXPECT_EQ(options.corpus_max, 128);
}

TEST(Adapters, EverySystemReportsHealthyAtSteadyState) {
  {
    PbkvSystem system(pbkv::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(500));
    EXPECT_TRUE(system.GetStatus());
    EXPECT_EQ(system.Name(), "pbkv");
  }
  {
    raftkv::Cluster::Config config;
    config.num_servers = 3;
    RaftKvSystem system(config);
    system.Env().Sleep(sim::Seconds(2));
    EXPECT_TRUE(system.GetStatus());
  }
  {
    LocksvcSystem system(locksvc::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(300));
    EXPECT_TRUE(system.GetStatus());
  }
  {
    MqueueSystem system(mqueue::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(500));
    EXPECT_TRUE(system.GetStatus());
  }
  {
    SchedSystem system(sched::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(300));
    EXPECT_TRUE(system.GetStatus());
    system.Shutdown();
    EXPECT_FALSE(system.GetStatus());
  }
}

// --- digest stability across hash/iteration orders --------------------------
//
// Regression pins for the determinism contract detlint's unordered-iteration
// rule enforces: no digest or coverage artifact may depend on hash-table
// iteration order, because libstdc++ is free to reorder buckets across
// versions and hash implementations. FlippedHash interposes a different
// hash the way a toolchain change silently would.

struct FlippedHash {
  size_t operator()(uint64_t value) const {
    return static_cast<size_t>(~value * 0x9e3779b97f4a7c15ull);
  }
};

TEST(DigestStability, CoverageDigestIndependentOfInsertionOrder) {
  std::vector<std::string> features;
  for (int i = 0; i < 64; ++i) {
    features.push_back(StateTransitionFeature(static_cast<uint64_t>(i) * 7,
                                              static_cast<uint64_t>(i)));
  }
  CoverageMap forward;
  forward.Add(features);
  std::vector<std::string> reversed(features.rbegin(), features.rend());
  CoverageMap backward;
  backward.Add(reversed);
  EXPECT_EQ(forward.Digest(), backward.Digest());
}

TEST(DigestStability, SortedFeaturePipelineNeutralizesHashOrder) {
  // Build the same digest set in two unordered containers with different
  // hashes; their raw iteration orders genuinely differ (the hazard).
  std::vector<uint64_t> digests;
  for (uint64_t i = 1; i <= 64; ++i) {
    digests.push_back(i * 0x94d049bb133111ebull);
  }
  std::unordered_set<uint64_t> default_hash(digests.begin(), digests.end());
  std::unordered_set<uint64_t, FlippedHash> flipped_hash(digests.begin(), digests.end());
  std::vector<uint64_t> order_a(default_hash.begin(), default_hash.end());
  std::vector<uint64_t> order_b(flipped_hash.begin(), flipped_hash.end());
  ASSERT_NE(order_a, order_b);

  // The executors' feature pipeline (StateObserver::Finish) sorts and
  // deduplicates before anything reaches a CoverageMap, so the two
  // traversal orders must produce byte-identical coverage digests.
  auto pipeline = [](const std::vector<uint64_t>& order) {
    std::vector<std::string> features;
    for (uint64_t digest : order) {
      features.push_back(StateTransitionFeature(0, digest));
    }
    std::sort(features.begin(), features.end());
    features.erase(std::unique(features.begin(), features.end()), features.end());
    CoverageMap map;
    map.Add(features);
    return map.Digest();
  };
  EXPECT_EQ(pipeline(order_a), pipeline(order_b));
}

// --- snapshot/fork prefix reuse (neat/fork.h) ---

void ExpectSameExecution(const ExecutionResult& got, const ExecutionResult& want) {
  EXPECT_EQ(got.found_failure, want.found_failure) << want.trace;
  EXPECT_EQ(FailureSignature(got), FailureSignature(want)) << want.trace;
  EXPECT_EQ(got.trace, want.trace);
  // Coverage features include the sd: state-digest transitions, so equality
  // here pins the forked run's observed system states, not just verdicts.
  EXPECT_EQ(got.coverage, want.coverage) << want.trace;
  EXPECT_EQ(check::FormatViolations(got.violations), check::FormatViolations(want.violations))
      << want.trace;
}

TEST(Fork, PbkvForkEqualsReplayOnThePaperPrunedSuite) {
  // The fork==replay acceptance bar: every case of the paper-pruned pbkv
  // suite, executed by one persistent forking session, must be
  // byte-identical to a fresh-cluster replay — and the session must
  // actually fork (the DFS enumeration shares prefixes by construction).
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto suite = gen.EnumerateUpTo(3, PaperPruning());
  const CaseExecutor replay = PbkvCaseExecutor(pbkv::VoltDbOptions());
  auto stats = std::make_shared<ForkStats>();
  const CaseExecutor forked =
      ForkingCaseExecutor(PbkvRunnerFactory(pbkv::VoltDbOptions()), ForkOptions{}, stats);
  for (const TestCase& test_case : suite) {
    ExpectSameExecution(forked(test_case, 1), replay(test_case, 1));
  }
  EXPECT_EQ(stats->cases_run, suite.size());
  EXPECT_GT(stats->forked_runs, 0u);
  EXPECT_GT(stats->events_forked_over, 0u);
  EXPECT_EQ(stats->fresh_runners, 1u) << "one live runner serves the whole suite";
}

TEST(Fork, EverySystemForksByteIdenticallyOnAPrefixFamily) {
  // The other three shipped adapters, on a nested prefix family (each case
  // extends the previous one, so every run after the first forks).
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  partition.target = IsolationTarget::kLeader;
  TestEvent minority_write;
  minority_write.kind = EventKind::kWrite;
  minority_write.side = Side::kMinority;
  TestEvent minority_read;
  minority_read.kind = EventKind::kRead;
  minority_read.side = Side::kMinority;
  TestEvent minority_lock;
  minority_lock.kind = EventKind::kLock;
  minority_lock.side = Side::kMinority;
  TestEvent majority_lock;
  majority_lock.kind = EventKind::kLock;
  majority_lock.side = Side::kMajority;

  struct Target {
    const char* name;
    CaseExecutor replay;
    CaseExecutor forked;
    std::shared_ptr<ForkStats> stats;
    std::vector<TestCase> cases;
  };
  std::vector<Target> targets;
  {
    auto stats = std::make_shared<ForkStats>();
    targets.push_back({"locksvc", LocksvcCaseExecutor(locksvc::IgniteOptions()),
                       ForkingCaseExecutor(LocksvcRunnerFactory(locksvc::IgniteOptions()),
                                           ForkOptions{}, stats),
                       stats,
                       {{partition},
                        {partition, minority_lock},
                        {partition, minority_lock, majority_lock}}});
  }
  {
    auto stats = std::make_shared<ForkStats>();
    targets.push_back({"raftkv", RaftKvCaseExecutor(raftkv::RethinkDbOptions()),
                       ForkingCaseExecutor(RaftKvRunnerFactory(raftkv::RethinkDbOptions()),
                                           ForkOptions{}, stats),
                       stats,
                       {{partition},
                        {partition, minority_write},
                        {partition, minority_write, minority_read}}});
  }
  {
    auto stats = std::make_shared<ForkStats>();
    targets.push_back({"mqueue", MqueueCaseExecutor(mqueue::ActiveMqOptions()),
                       ForkingCaseExecutor(MqueueRunnerFactory(mqueue::ActiveMqOptions()),
                                           ForkOptions{}, stats),
                       stats,
                       {{partition},
                        {partition, minority_read},
                        {partition, minority_read, minority_write}}});
  }
  for (Target& target : targets) {
    for (const TestCase& test_case : target.cases) {
      ExpectSameExecution(target.forked(test_case, 1), target.replay(test_case, 1));
    }
    EXPECT_GT(target.stats->forked_runs, 0u) << target.name;
    EXPECT_EQ(target.stats->fresh_runners, 1u) << target.name;
  }
}

TEST(Fork, SnapshotRestoreRoundTripPreservesStateDigest) {
  // The runtime face of detlint's snapshot-field-coverage rule: for every
  // registered runner, capture the post-setup state, mutate the run with a
  // campaign case (events plus the full heal/verify teardown in Finish),
  // restore, and the rewound instance must (a) report the captured
  // StateDigest again and (b) replay the same case byte-identically to a
  // fresh cluster. A field left out of a capture/restore pair fails one of
  // the two.
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  partition.target = IsolationTarget::kLeader;
  TestEvent minority_write;
  minority_write.kind = EventKind::kWrite;
  minority_write.side = Side::kMinority;
  TestEvent minority_read;
  minority_read.kind = EventKind::kRead;
  minority_read.side = Side::kMinority;
  TestEvent minority_lock;
  minority_lock.kind = EventKind::kLock;
  minority_lock.side = Side::kMinority;
  TestEvent majority_lock;
  majority_lock.kind = EventKind::kLock;
  majority_lock.side = Side::kMajority;

  struct Target {
    const char* name;
    RunnerFactory factory;
    CaseExecutor replay;
    TestCase mutate;
  };
  std::vector<Target> targets;
  targets.push_back({"pbkv", PbkvRunnerFactory(pbkv::VoltDbOptions()),
                     PbkvCaseExecutor(pbkv::VoltDbOptions()),
                     {partition, minority_write, minority_read}});
  targets.push_back({"locksvc", LocksvcRunnerFactory(locksvc::IgniteOptions()),
                     LocksvcCaseExecutor(locksvc::IgniteOptions()),
                     {partition, minority_lock, majority_lock}});
  targets.push_back({"raftkv", RaftKvRunnerFactory(raftkv::RethinkDbOptions()),
                     RaftKvCaseExecutor(raftkv::RethinkDbOptions()),
                     {partition, minority_write, minority_read}});
  targets.push_back({"mqueue", MqueueRunnerFactory(mqueue::ActiveMqOptions()),
                     MqueueCaseExecutor(mqueue::ActiveMqOptions()),
                     {partition, minority_read, minority_write}});

  for (Target& target : targets) {
    SCOPED_TRACE(target.name);
    std::unique_ptr<CaseRunner> runner = target.factory(1);
    ASSERT_NE(runner->System(), nullptr);
    // Same sequence as the fork executor: retention on before the root
    // snapshot, paused for the teardown, resumed by the next Restore.
    runner->Env().simulator().SetEventRetention(true);
    const std::unique_ptr<SystemState> root = runner->Snapshot();
    ASSERT_NE(root, nullptr);
    const uint64_t captured_digest = runner->System()->StateDigest();

    for (const TestEvent& event : target.mutate) {
      runner->ApplyEvent(event);
    }
    runner->Env().simulator().PauseEventRetention();
    (void)runner->Finish(target.mutate);

    runner->Restore(*root);
    EXPECT_EQ(runner->System()->StateDigest(), captured_digest);

    for (const TestEvent& event : target.mutate) {
      runner->ApplyEvent(event);
    }
    runner->Env().simulator().PauseEventRetention();
    const ExecutionResult rewound = runner->Finish(target.mutate);
    ExpectSameExecution(rewound, target.replay(target.mutate, 1));
  }
}

TEST(Fork, SiblingRestoreInvalidatesDescendantSnapshots) {
  // The regression behind the ancestor-chain rule: snapshots index
  // positions in the branch's simulator history (trace sizes, event
  // sequence numbers), so restoring [P] and running a sibling suffix
  // rewrites the history that the cached [P,heal] snapshot points into.
  // Before the fix, the fourth case below restored that corrupted
  // snapshot and produced a trace with the sibling's drop record where
  // the heal record should be.
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  partition.target = IsolationTarget::kLeader;
  TestEvent heal;
  heal.kind = EventKind::kHeal;
  TestEvent minority_write;
  minority_write.kind = EventKind::kWrite;
  minority_write.side = Side::kMinority;
  const CaseExecutor replay = PbkvCaseExecutor(pbkv::VoltDbOptions());
  auto stats = std::make_shared<ForkStats>();
  const CaseExecutor forked =
      ForkingCaseExecutor(PbkvRunnerFactory(pbkv::VoltDbOptions()), ForkOptions{}, stats);
  const std::vector<TestCase> cases = {{partition},
                                       {partition, heal},
                                       {partition, minority_write},
                                       {partition, heal, heal}};
  for (const TestCase& test_case : cases) {
    ExpectSameExecution(forked(test_case, 1), replay(test_case, 1));
  }
  // The third case restores [P], which must invalidate the cached [P,heal]
  // descendant; the fourth case then re-executes heal instead of reusing it.
  EXPECT_GT(stats->snapshots_invalidated, 0u);
}

TEST(Fork, GuidedCampaignWithForkingSessionsMatchesReplayAtAnyThreadCount) {
  // Guided campaigns with per-worker forking sessions must keep the
  // parallel==serial byte-identity contract AND match the session-less
  // replay campaign: session state changes speed, never results.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const CaseExecutor replay = PbkvCaseExecutor(pbkv::VoltDbOptions());
  CampaignOptions base;
  base.guided = true;
  base.guided_rounds = 2;
  CampaignOptions replay_options = base;
  replay_options.threads = 2;
  const CampaignResult expected = RunCampaign(gen, 3, PaperPruning(), replay, replay_options);
  ASSERT_GT(expected.cases_run, 0u);
  for (const int threads : {1, 8}) {
    CampaignOptions fork_options = base;
    fork_options.threads = threads;
    fork_options.sessions = ForkingSessions(PbkvRunnerFactory(pbkv::VoltDbOptions()));
    const CampaignResult got = RunCampaign(gen, 3, PaperPruning(), replay, fork_options);
    EXPECT_EQ(got.cases_run, expected.cases_run) << threads;
    EXPECT_EQ(got.VerdictDigest(), expected.VerdictDigest()) << threads;
    EXPECT_EQ(got.coverage.Digest(), expected.coverage.Digest()) << threads;
    EXPECT_EQ(got.CorpusDigest(), expected.CorpusDigest()) << threads;
    EXPECT_EQ(got.guided.new_features_per_round, expected.guided.new_features_per_round)
        << threads;
  }
}

TEST(Fork, CampaignMinimizeWithForkingSessionsMatchesReplay) {
  // The triage post-pass builds one forking session per minimization; the
  // ddmin probes share prefixes, and the repros must not change.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  CampaignOptions plain;
  plain.threads = 4;
  plain.minimize_failures = true;
  const CaseExecutor replay = PbkvCaseExecutor(pbkv::VoltDbOptions());
  const CampaignResult expected = RunCampaign(gen, 3, PaperPruning(), replay, plain);
  ASSERT_GT(expected.failures, 0u);
  ASSERT_FALSE(expected.minimized.empty());
  CampaignOptions with_sessions = plain;
  with_sessions.sessions = ForkingSessions(PbkvRunnerFactory(pbkv::VoltDbOptions()));
  const CampaignResult got = RunCampaign(gen, 3, PaperPruning(), replay, with_sessions);
  EXPECT_EQ(got.VerdictDigest(), expected.VerdictDigest());
  ASSERT_EQ(got.minimized.size(), expected.minimized.size());
  for (size_t i = 0; i < expected.minimized.size(); ++i) {
    EXPECT_EQ(got.minimized[i].signature, expected.minimized[i].signature);
    EXPECT_EQ(FormatTestCase(got.minimized[i].minimized),
              FormatTestCase(expected.minimized[i].minimized));
    EXPECT_EQ(got.minimized[i].probes, expected.minimized[i].probes);
  }
}

TEST(Fork, UnforkableRunnerFallsBackToFullReplay) {
  // A runner whose Snapshot() returns nullptr (the ISystem default) must
  // still execute correctly — every case replays on a fresh runner.
  class UnforkableRunner : public CaseRunner {
   public:
    explicit UnforkableRunner(int* built) : env_(TestEnv::Options{}) { ++*built; }
    TestEnv& Env() override { return env_; }
    void ApplyEvent(const TestEvent& event) override { ++applied_; (void)event; }
    ExecutionResult Finish(const TestCase& test_case) override {
      ExecutionResult result;
      result.trace = FormatTestCase(test_case);
      result.found_failure = applied_ >= 2;
      return result;
    }
    std::unique_ptr<SystemState> Snapshot() const override { return nullptr; }
    void Restore(const SystemState& state) override { (void)state; }

   private:
    TestEnv env_;
    int applied_ = 0;
  };
  int built = 0;
  auto stats = std::make_shared<ForkStats>();
  const CaseExecutor executor = ForkingCaseExecutor(
      [&built](uint64_t) { return std::make_unique<UnforkableRunner>(&built); },
      ForkOptions{}, stats);
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  EXPECT_FALSE(executor({partition}, 1).found_failure);
  EXPECT_TRUE(executor({partition, partition}, 1).found_failure);
  EXPECT_EQ(built, 2) << "each case gets a fresh runner without snapshots";
  EXPECT_EQ(stats->forked_runs, 0u);
  EXPECT_EQ(stats->snapshots_taken, 0u);
}

}  // namespace
}  // namespace neat
