// Tests for the NEAT framework: the test environment (partition + crash
// API, global op order), the test-case generator with the Chapter-5 pruning
// rules, the ISystem adapters, and the executor.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "neat/adapters.h"
#include "neat/env.h"
#include "neat/testgen.h"
#include "neat/trace_report.h"

namespace neat {
namespace {

TEST(TestEnvTest, RestUsesTheRegisteredUniverse) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  // Universe: 3 servers + 2 clients.
  net::Group rest = env.Rest({1, 2});
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
}

TEST(TestEnvTest, CrashAndRestartThroughTheEnv) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  env.Sleep(sim::Milliseconds(300));
  ASSERT_TRUE(system.GetStatus());
  env.Crash({1});
  EXPECT_TRUE(env.FindProcess(1)->crashed());
  env.Sleep(sim::Seconds(2));
  // The remaining majority elected a replacement primary.
  EXPECT_TRUE(system.GetStatus());
  env.Restart({1});
  EXPECT_FALSE(env.FindProcess(1)->crashed());
}

TEST(TestEnvTest, CrashedNodeStaysInUniverseAndDropsAsNoReceiver) {
  // Crashed-node semantics: crash() detaches the process's handler but the
  // node keeps its network address — the universe (and therefore Rest()) is
  // unchanged, peers' traffic to it drops as "no receiver", and restart()
  // resumes delivery.
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  env.Sleep(sim::Milliseconds(300));
  const net::Group universe_before = env.network().Universe();

  env.Crash({1});
  EXPECT_EQ(env.network().Universe(), universe_before);
  const auto no_receiver_drops_to = [&env](net::NodeId node) {
    size_t count = 0;
    const std::string link = "->" + std::to_string(node) + " ";
    for (const auto& record : env.simulator().Trace().Filter("net")) {
      if (record.detail.find("no receiver") != std::string::npos &&
          record.detail.find(link) != std::string::npos) {
        ++count;
      }
    }
    return count;
  };
  const size_t drops_at_crash = no_receiver_drops_to(1);
  env.Sleep(sim::Seconds(1));
  // Heartbeats kept flowing to the crashed node and died as "no receiver".
  EXPECT_GT(no_receiver_drops_to(1), drops_at_crash);

  env.Restart({1});
  const size_t drops_at_restart = no_receiver_drops_to(1);
  env.Sleep(sim::Seconds(1));
  EXPECT_EQ(no_receiver_drops_to(1), drops_at_restart);
  EXPECT_TRUE(system.GetStatus());
}

TEST(TestEnvTest, ShutdownCrashesEveryServer) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  system.Env().Sleep(sim::Milliseconds(300));
  system.Shutdown();
  for (net::NodeId node : system.Servers()) {
    EXPECT_TRUE(system.Env().FindProcess(node)->crashed());
  }
  EXPECT_FALSE(system.GetStatus());
}

TEST(TestEnvTest, PartitionApiMatchesThePaper) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  net::Partition p = env.Partial({1}, {2});
  EXPECT_FALSE(env.backend().Allows(1, 2));
  EXPECT_TRUE(env.backend().Allows(1, 3));
  env.Heal(p);
  EXPECT_TRUE(env.backend().Allows(1, 2));
}

TEST(TestEnvTest, AwaitRunsUntilPredicate) {
  pbkv::Cluster::Config config;
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  const bool ok =
      env.Await([&]() { return env.simulator().Now() >= sim::Milliseconds(100); });
  EXPECT_TRUE(ok);
}

// --- test-case generation ---

TEST(TestGen, UnprunedCountIsAlphabetPower) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const uint64_t n = gen.Instances().size();
  EXPECT_EQ(gen.UnprunedCount(1), n);
  EXPECT_EQ(gen.UnprunedCount(3), n * n * n);
}

TEST(TestGen, NoPruningEnumeratesEverything) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  auto cases = gen.Enumerate(2, NoPruning());
  EXPECT_EQ(cases.size(), gen.UnprunedCount(2));
}

TEST(TestGen, PartitionFirstForcesTheFaultUpFront) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  PruningRules rules;
  rules.partition_first = true;
  for (const TestCase& test_case : gen.Enumerate(3, rules)) {
    ASSERT_FALSE(test_case.empty());
    EXPECT_EQ(test_case.front().kind, EventKind::kPartition)
        << FormatTestCase(test_case);
  }
}

TEST(TestGen, NaturalOrderForbidsReadBeforeWrite) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  PruningRules rules;
  rules.natural_order = true;
  for (const TestCase& test_case : gen.Enumerate(3, rules)) {
    bool wrote = false;
    for (const TestEvent& event : test_case) {
      if (event.kind == EventKind::kWrite) {
        wrote = true;
      }
      if (event.kind == EventKind::kRead || event.kind == EventKind::kDelete) {
        EXPECT_TRUE(wrote) << FormatTestCase(test_case);
      }
    }
  }
}

TEST(TestGen, SinglePartitionRuleAllowsAtMostOneFault) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  PruningRules rules;
  rules.single_partition = true;
  for (const TestCase& test_case : gen.Enumerate(3, rules)) {
    int partitions = 0;
    for (const TestEvent& event : test_case) {
      if (event.kind == EventKind::kPartition) {
        ++partitions;
      }
    }
    EXPECT_LE(partitions, 1) << FormatTestCase(test_case);
  }
}

TEST(TestGen, PaperPruningShrinksTheSpaceDramatically) {
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  const auto pruned = gen.EnumerateUpTo(4, PaperPruning());
  uint64_t unpruned = 0;
  for (int len = 1; len <= 4; ++len) {
    unpruned += gen.UnprunedCount(len);
  }
  EXPECT_LT(pruned.size() * 10, unpruned)
      << "pruning should remove at least 90% of the space";
  EXPECT_FALSE(pruned.empty());
}

TEST(TestGen, EventDebugStringsAreDescriptive) {
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kPartial;
  partition.target = IsolationTarget::kLeader;
  EXPECT_EQ(partition.DebugString(), "partition(partial,leader)");
  TestEvent write;
  write.kind = EventKind::kWrite;
  write.side = Side::kMinority;
  EXPECT_EQ(write.DebugString(), "write(minority)");
}

// --- executor ---

TestCase DirtyReadCase() {
  // partition(complete, leader) -> write(minority) -> read(minority):
  // the Figure 2 manifestation sequence.
  TestEvent partition;
  partition.kind = EventKind::kPartition;
  partition.partition = PartitionKind::kComplete;
  partition.target = IsolationTarget::kLeader;
  TestEvent write;
  write.kind = EventKind::kWrite;
  write.side = Side::kMinority;
  TestEvent read;
  read.kind = EventKind::kRead;
  read.side = Side::kMinority;
  return TestCase{partition, write, read};
}

TEST(Executor, FindsTheDirtyReadInTheFlawedSystem) {
  auto result = RunPbkvTestCase(pbkv::VoltDbOptions(), DirtyReadCase(), /*seed=*/1);
  EXPECT_TRUE(result.found_failure) << result.trace;
  bool has_dirty = false;
  for (const auto& violation : result.violations) {
    if (violation.impact == "dirty read") {
      has_dirty = true;
    }
  }
  EXPECT_TRUE(has_dirty);
}

TEST(Executor, CleanOnTheCorrectedSystem) {
  auto result = RunPbkvTestCase(pbkv::CorrectOptions(), DirtyReadCase(), /*seed=*/1);
  EXPECT_FALSE(result.found_failure) << check::FormatViolations(result.violations);
}

TEST(Executor, PrunedSuiteFindsTheSeededBugs) {
  // Run the whole paper-pruned suite (3-event cases) against the flawed
  // configurations; it must expose both seeded bugs.
  TestCaseGenerator::Alphabet alphabet;
  TestCaseGenerator gen(alphabet);
  auto suite = gen.EnumerateUpTo(3, PaperPruning());
  int voltdb_failures = 0;
  int correct_failures = 0;
  for (const TestCase& test_case : suite) {
    if (RunPbkvTestCase(pbkv::VoltDbOptions(), test_case, 1).found_failure) {
      ++voltdb_failures;
    }
    if (RunPbkvTestCase(pbkv::CorrectOptions(), test_case, 1).found_failure) {
      ++correct_failures;
    }
  }
  EXPECT_GT(voltdb_failures, 0) << "the suite must catch the VoltDB-style dirty read";
  EXPECT_EQ(correct_failures, 0) << "the corrected system must pass the whole suite";
}

TEST(Executor, LocksvcSuiteExposesDoubleLocking) {
  TestCaseGenerator::Alphabet alphabet;
  alphabet.client_events = {EventKind::kLock, EventKind::kUnlock};
  TestCaseGenerator gen(alphabet);
  auto suite = gen.EnumerateUpTo(3, PaperPruning());
  int flawed = 0;
  int fixed = 0;
  for (const TestCase& test_case : suite) {
    if (RunLocksvcTestCase(locksvc::IgniteOptions(), test_case, 1).found_failure) {
      ++flawed;
    }
    if (RunLocksvcTestCase(locksvc::CorrectOptions(), test_case, 1).found_failure) {
      ++fixed;
    }
  }
  EXPECT_GT(flawed, 0) << "the suite must expose the Ignite double locking";
  EXPECT_EQ(fixed, 0);
}

TEST(TraceReport, SummarizesDropsAndLeadership) {
  sim::TraceLog log;
  log.Append(sim::Milliseconds(1), "net", "drop", "1->2 pbkv.Replicate (partitioned)");
  log.Append(sim::Milliseconds(2), "net", "drop", "1->2 pbkv.Replicate (partitioned)");
  log.Append(sim::Milliseconds(3), "net", "drop", "3->1 Heartbeat (partitioned)");
  log.Append(sim::Milliseconds(4), "pbkv.n2", "election-start", "term=2");
  log.Append(sim::Milliseconds(5), "pbkv.n2", "elected", "term=2");
  log.Append(sim::Milliseconds(6), "pbkv.n1", "step-down", "lost majority");
  const TraceReport report = Summarize(log);
  EXPECT_EQ(report.total_records, 6u);
  EXPECT_EQ(report.drops_per_link.at("1->2"), 2u);
  EXPECT_EQ(report.drops_per_link.at("3->1"), 1u);
  EXPECT_EQ(report.leadership_events.size(), 3u);
  const std::string text = FormatReport(report);
  EXPECT_NE(text.find("3 messages dropped on 2 links"), std::string::npos);
  EXPECT_NE(text.find("worst: 1->2 x2"), std::string::npos);
  EXPECT_NE(text.find("elected"), std::string::npos);
}

TEST(TraceReport, NarratesARealFailureRun) {
  pbkv::Cluster::Config config;
  config.options = pbkv::VoltDbOptions();
  PbkvSystem system(config);
  TestEnv& env = system.Env();
  env.Sleep(sim::Milliseconds(500));
  net::Partition part = env.Complete({1}, {2, 3});
  env.Sleep(sim::Seconds(2));
  env.Heal(part);
  env.Sleep(sim::Seconds(1));
  const TraceReport report = Summarize(env.simulator().Trace());
  EXPECT_GT(report.drops_per_link.size(), 0u) << "the partition dropped traffic";
  EXPECT_GE(report.event_counts.at("elected"), 1u) << "the majority elected a new leader";
  EXPECT_GE(report.event_counts.at("step-down"), 1u) << "the old leader stepped down";
}

TEST(Adapters, EverySystemReportsHealthyAtSteadyState) {
  {
    PbkvSystem system(pbkv::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(500));
    EXPECT_TRUE(system.GetStatus());
    EXPECT_EQ(system.Name(), "pbkv");
  }
  {
    raftkv::Cluster::Config config;
    config.num_servers = 3;
    RaftKvSystem system(config);
    system.Env().Sleep(sim::Seconds(2));
    EXPECT_TRUE(system.GetStatus());
  }
  {
    LocksvcSystem system(locksvc::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(300));
    EXPECT_TRUE(system.GetStatus());
  }
  {
    MqueueSystem system(mqueue::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(500));
    EXPECT_TRUE(system.GetStatus());
  }
  {
    SchedSystem system(sched::Cluster::Config{});
    system.Env().Sleep(sim::Milliseconds(300));
    EXPECT_TRUE(system.GetStatus());
    system.Shutdown();
    EXPECT_FALSE(system.GetStatus());
  }
}

}  // namespace
}  // namespace neat
