// CLI tests for scnrun (tools/scnrun): exit codes for the parse gate,
// --list inventory mode, and scenario-name attribution on failed
// expectation lines (what a grep over a multi-file run's log keys on).
//
// Compile-time configuration (from tests/CMakeLists.txt):
//   SCNRUN_BIN    path to the built scnrun executable
//   SCENARIO_DIR  tests/scenarios

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult RunScnrun(const std::string& args) {
  const std::string command = std::string(SCNRUN_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  CliResult result;
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed: " << command;
    return result;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status)) << command;
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string ScenarioPath(const std::string& rel) {
  return std::string(SCENARIO_DIR) + "/" + rel;
}

TEST(ScnrunCli, ParseOnlyPassesTheCorpusAndFailsTheBadCorpus) {
  const CliResult good =
      RunScnrun("--parse-only " + ScenarioPath("mqueue_repl_blackhole.scn"));
  EXPECT_EQ(good.exit_code, 0) << good.output;
  EXPECT_NE(good.output.find("mqueue-repl-blackhole"), std::string::npos);

  const CliResult bad =
      RunScnrun("--parse-only " + ScenarioPath("bad/bad_duration.scn"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
}

TEST(ScnrunCli, ListPrintsInventoryWithoutExecuting) {
  const CliResult result =
      RunScnrun("--list " + ScenarioPath("mqueue_repl_blackhole.scn"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("mqueue-repl-blackhole"), std::string::npos);
  EXPECT_NE(result.output.find("mqueue"), std::string::npos);
  EXPECT_NE(result.output.find("activemq"), std::string::npos);
  EXPECT_NE(result.output.find("flawed,correct"), std::string::npos);
  // Listing must not run the simulation: no verdict lines.
  EXPECT_EQ(result.output.find("PASS"), std::string::npos);
  EXPECT_EQ(result.output.find("digest"), std::string::npos);
}

TEST(ScnrunCli, ListStillFailsOnUnparsableInput) {
  const CliResult result =
      RunScnrun("--list " + ScenarioPath("bad/bad_duration.scn"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
}

TEST(ScnrunCli, FailedExpectationLinesCarryTheScenarioName) {
  // A fault-free run that expects a violation: the expectation fails and
  // the FAIL line must name the scenario, not just the line number.
  const std::string path = ::testing::TempDir() + "/scnrun_cli_fail.scn";
  {
    std::ofstream out(path);
    out << "scenario \"attribution-check\" {\n"
           "  system pbkv\n"
           "  preset voltdb\n"
           "  run {\n"
           "    sleep 10ms\n"
           "  }\n"
           "  expect flawed {\n"
           "    violation \"phantom\"\n"
           "  }\n"
           "  expect correct {\n"
           "    clean\n"
           "  }\n"
           "}\n";
  }
  const CliResult result = RunScnrun(path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("FAIL [attribution-check]"), std::string::npos)
      << result.output;
}

}  // namespace
