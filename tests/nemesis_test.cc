// Randomized nemesis tests: Jepsen-style runs (random partitions injected
// under a random workload, then healed) against the strongly consistent
// systems, checked for linearizability — plus determinism properties of the
// whole simulation stack (identical seeds must yield identical executions,
// which is what makes every reproduction in this repository replayable).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "check/linearizability.h"
#include "sim/rng.h"
#include "systems/pbkv/cluster.h"
#include "systems/raftkv/cluster.h"

namespace {

// --- determinism ---

std::string RunPbkvScript(uint64_t seed) {
  pbkv::Cluster::Config config;
  config.seed = seed;
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(400));
  cluster.Put(0, "k", "v1");
  auto partition = cluster.partitioner().Complete({1}, {2, 3});
  cluster.Settle(sim::Seconds(1));
  cluster.client(1).set_contact(2);
  cluster.Put(1, "k", "v2");
  cluster.partitioner().Heal(partition);
  cluster.Settle(sim::Seconds(1));
  cluster.Get(1, "k", /*final_read=*/true);
  return cluster.simulator().Trace().Dump() + "\n#events=" +
         std::to_string(cluster.simulator().events_executed()) + " sent=" +
         std::to_string(cluster.network().messages_sent()) + " dropped=" +
         std::to_string(cluster.network().messages_dropped());
}

TEST(Determinism, IdenticalSeedsYieldIdenticalExecutions) {
  EXPECT_EQ(RunPbkvScript(42), RunPbkvScript(42));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Latency jitter and election backoffs depend on the seed, so the traces
  // should differ (the histories may still agree).
  EXPECT_NE(RunPbkvScript(1), RunPbkvScript(2));
}

// --- randomized nemesis against Raft ---

struct NemesisRun {
  check::LinearizabilityResult linearizability;
  size_t dirty_reads = 0;
  int acked_ops = 0;
  std::string history_dump;
  // Election safety (Raft Figure 3 property): term -> distinct leaders.
  std::map<std::string, std::set<std::string>> leaders_per_term;
};

NemesisRun RunRaftNemesis(uint64_t seed, int cycles) {
  raftkv::Cluster::Config config;
  config.num_servers = 5;
  config.seed = seed;
  raftkv::Cluster cluster(config);
  sim::Rng nemesis(seed * 7919 + 13);
  cluster.WaitForLeader();
  cluster.Settle(sim::Milliseconds(300));

  int value = 0;
  NemesisRun run;
  const std::vector<std::string> keys = {"k0", "k1", "k2"};
  auto random_op = [&](int client) {
    const std::string key = keys[nemesis.NextBelow(keys.size())];
    cluster.client(client).set_contact(
        cluster.server_ids()[nemesis.NextBelow(cluster.server_ids().size())]);
    cluster.client(client).set_op_timeout(sim::Milliseconds(900));
    check::Operation op;
    if (nemesis.NextBool(0.6)) {
      op = cluster.Put(client, key, "v" + std::to_string(++value));
    } else {
      op = cluster.Get(client, key);
    }
    if (op.status == check::OpStatus::kOk) {
      ++run.acked_ops;
    }
  };

  for (int cycle = 0; cycle < cycles; ++cycle) {
    random_op(0);
    random_op(1);
    // Partition a random subset (1 or 2 nodes) from the rest.
    net::Group isolated;
    isolated.push_back(
        cluster.server_ids()[nemesis.NextBelow(cluster.server_ids().size())]);
    if (nemesis.NextBool(0.5)) {
      net::NodeId second =
          cluster.server_ids()[nemesis.NextBelow(cluster.server_ids().size())];
      if (second != isolated.front()) {
        isolated.push_back(second);
      }
    }
    auto partition = cluster.partitioner().Complete(
        isolated, net::Partitioner::Rest(cluster.server_ids(), isolated));
    random_op(0);
    cluster.Settle(sim::Seconds(1));
    random_op(1);
    cluster.partitioner().Heal(partition);
    cluster.Settle(sim::Seconds(1));
  }
  for (const std::string& key : keys) {
    cluster.client(0).set_contact(cluster.server_ids().front());
    cluster.Get(0, key, /*final_read=*/true);
  }
  run.linearizability = check::CheckLinearizable(cluster.history());
  run.dirty_reads = check::CheckDirtyReads(cluster.history()).size();
  run.history_dump = cluster.history().Dump();
  for (const sim::TraceRecord& record : cluster.simulator().Trace().records()) {
    if (record.event == "elected") {
      run.leaders_per_term[record.detail].insert(record.component);
    }
  }
  return run;
}

class RaftNemesisSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaftNemesisSweep, RandomPartitionsNeverBreakLinearizability) {
  const NemesisRun run = RunRaftNemesis(GetParam(), /*cycles=*/3);
  EXPECT_TRUE(run.linearizability.linearizable)
      << run.linearizability.reason << "\n" << run.history_dump;
  EXPECT_EQ(run.dirty_reads, 0u);
  EXPECT_GT(run.acked_ops, 0) << "the nemesis should not starve the workload entirely";
  for (const auto& [term, leaders] : run.leaders_per_term) {
    EXPECT_EQ(leaders.size(), 1u) << "election safety violated in " << term;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftNemesisSweep, ::testing::Range<uint64_t>(1, 13),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
