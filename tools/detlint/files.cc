// Filesystem driver: collects the C++ sources under the requested paths
// and loads them with root-relative, forward-slash paths so reports and
// baselines are stable regardless of where the tool runs from.

#include "detlint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace detlint {
namespace {

namespace fs = std::filesystem;

bool IsSourceExtension(const fs::path& path) {
  static const char* kExtensions[] = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"};
  const std::string ext = path.extension().string();
  for (const char* candidate : kExtensions) {
    if (ext == candidate) {
      return true;
    }
  }
  return false;
}

std::string RelativeTo(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) {
    rel = path;
  }
  return rel.generic_string();
}

}  // namespace

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths) {
  const fs::path root_path(root);
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    fs::path path(raw);
    if (path.is_relative()) {
      path = root_path / path;
    }
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; !ec && it != end;
           it.increment(ec)) {
        if (it->is_regular_file() && IsSourceExtension(it->path())) {
          files.push_back(RelativeTo(root_path, it->path()));
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(RelativeTo(root_path, path));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool LoadSourceFile(const std::string& root, const std::string& rel_path, SourceFile* out) {
  fs::path path(rel_path);
  if (path.is_relative()) {
    path = fs::path(root) / path;
  }
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  std::ostringstream contents;
  contents << stream.rdbuf();
  *out = MakeSourceFile(rel_path, contents.str());
  return true;
}

std::vector<std::string> CollectScnFiles(const std::string& root,
                                         const std::vector<std::string>& paths) {
  const fs::path root_path(root);
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    fs::path path(raw);
    if (path.is_relative()) {
      path = root_path / path;
    }
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; !ec && it != end;
           it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".scn") {
          files.push_back(RelativeTo(root_path, it->path()));
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(RelativeTo(root_path, path));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool LoadScnSource(const std::string& root, const std::string& rel_path,
                   ScnSource* out) {
  fs::path path(rel_path);
  if (path.is_relative()) {
    path = fs::path(root) / path;
  }
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  std::ostringstream contents;
  contents << stream.rdbuf();
  out->path = rel_path;
  out->contents = contents.str();
  return true;
}

}  // namespace detlint
