// detlint CLI.
//
//   detlint [--root DIR] [--baseline FILE] [--json FILE] [--fix-baseline]
//           [--quiet] [--scn PATH]... [PATH...]
//
// PATHs (files or directories, default: src) are resolved against --root
// (default: the current directory) and reported root-relative. --scn adds
// scenario-corpus (.scn) files or directories to the scan; they are checked
// by the scn-* rule family against the scenario parser and the structural
// index of the C++ scan set. Exit codes:
//   0  no new findings (baselined/suppressed findings are tolerated)
//   1  at least one new finding
//   2  usage or I/O error

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--baseline FILE] [--json FILE] [--fix-baseline]"
               " [--quiet] [--scn PATH]... [PATH...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string json_path;
  bool fix_baseline = false;
  bool quiet = false;
  std::vector<std::string> paths;
  std::vector<std::string> scn_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--scn" && i + 1 < argc) {
      scn_paths.push_back(argv[++i]);
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths.push_back("src");
  }

  std::multimap<std::string, int> baseline;
  if (!baseline_path.empty() && !fix_baseline) {
    std::ifstream stream(baseline_path, std::ios::binary);
    if (stream) {
      std::ostringstream contents;
      contents << stream.rdbuf();
      baseline = detlint::ParseBaseline(contents.str());
    }
    // A missing baseline file is an empty baseline, not an error: a clean
    // tree needs no grandfathered findings.
  }

  const std::vector<std::string> files = detlint::CollectFiles(root, paths);
  const std::vector<std::string> scn_files = detlint::CollectScnFiles(root, scn_paths);
  if (files.empty() && scn_files.empty()) {
    std::cerr << "detlint: no source files under the given paths\n";
    return 2;
  }
  std::vector<detlint::SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    detlint::SourceFile source;
    if (!detlint::LoadSourceFile(root, file, &source)) {
      std::cerr << "detlint: cannot read " << file << "\n";
      return 2;
    }
    sources.push_back(std::move(source));
  }
  std::vector<detlint::ScnSource> scenarios;
  scenarios.reserve(scn_files.size());
  for (const std::string& file : scn_files) {
    detlint::ScnSource scn;
    if (!detlint::LoadScnSource(root, file, &scn)) {
      std::cerr << "detlint: cannot read " << file << "\n";
      return 2;
    }
    scenarios.push_back(std::move(scn));
  }

  const detlint::AnalysisResult result = detlint::Analyze(sources, scenarios, baseline);

  if (fix_baseline) {
    if (baseline_path.empty()) {
      std::cerr << "detlint: --fix-baseline requires --baseline FILE\n";
      return 2;
    }
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "detlint: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << detlint::RenderBaseline(result.findings);
    std::cout << "detlint: baselined " << result.findings.size() << " finding(s) into "
              << baseline_path << "\n";
    return 0;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "detlint: cannot write " << json_path << "\n";
      return 2;
    }
    out << detlint::RenderJson(result);
  }
  if (!quiet) {
    std::cout << detlint::RenderText(result);
  }
  return result.NewCount() > 0 ? 1 : 0;
}
