// The structural index: detlint's second analysis layer.
//
// The token-level rules (rules.cc) see one identifier at a time; the
// contracts that matter most after the fork/replay work are per-class and
// cross-file — "every mutable member of a snapshotted class round-trips
// through Snapshot AND Restore", "a class that can capture must also be
// able to restore", "no digest consumes a value minted from hash-order
// iteration, even through a helper". BuildIndex runs a lightweight
// declaration parser over the token stream (no full C++ parse — the same
// pragmatic subset the whole-tree unhandled-message sweep proved out) and
// produces a repo-wide model: classes with their namespaces, base-class
// names, data members (with const/reference/pointer/static qualifiers),
// declared methods, inline bodies, and every out-of-line function
// definition. The structural rule families (structural_rules.cc) and the
// scenario-corpus checks (scnlint.cc) are built on top of it.

#ifndef TOOLS_DETLINT_INDEX_H_
#define TOOLS_DETLINT_INDEX_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "detlint.h"

namespace detlint {

struct MemberInfo {
  std::string name;
  int line = 0;
  int column = 0;
  bool is_const = false;      // const-qualified: immutable after construction
  bool is_reference = false;  // wiring, not state
  bool is_pointer = false;    // raw pointer: environment wiring by convention
  bool is_static = false;     // static/constexpr: shared, not per-instance
};

struct MethodInfo {
  std::string name;
  int line = 0;
  int column = 0;
  bool is_const = false;     // trailing const
  bool is_override = false;  // `override` specifier present
  bool has_inline_body = false;
  size_t body_begin = 0;  // token index of '{' in the class's file
  size_t body_end = 0;    // token index of the matching '}'
};

struct ClassInfo {
  std::string name;
  std::string ns;  // enclosing namespaces joined with "::"; "" at global scope
  const SourceFile* file = nullptr;
  int line = 0;
  int column = 0;
  std::vector<std::string> bases;  // identifiers from the base-clause
  std::vector<MemberInfo> members;
  std::vector<MethodInfo> methods;

  const MethodInfo* FindMethod(const std::string& method) const;
  bool HasBase(const std::string& base) const;
};

// An out-of-line function definition (`Type Class::Method(...) { ... }`) or
// a free function at namespace scope. class_name is empty for free
// functions; ns is the effective enclosing namespace (block namespaces plus
// any extra qualification on the definition).
struct FunctionDef {
  std::string class_name;
  std::string method_name;
  std::string ns;
  const SourceFile* file = nullptr;
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;
};

struct Index {
  std::vector<ClassInfo> classes;      // declaration order across all files
  std::vector<FunctionDef> functions;  // out-of-line + free definitions
  // Every string literal returned by a `TypeName()` body — the protocol
  // vocabulary scnlint validates `inject` clauses against.
  std::set<std::string> message_type_names;

  // Locates the body of Class::Method: the inline body if the declaration
  // has one, otherwise the out-of-line definition with matching class,
  // method, and namespace. Returns false when only a declaration exists in
  // the scanned set (partial trees are skipped, not flagged).
  bool FindBody(const ClassInfo& cls, const std::string& method,
                const SourceFile** file, size_t* begin, size_t* end) const;
};

Index BuildIndex(const std::vector<SourceFile>& sources);

// The structural rule families (snapshot-field-coverage,
// override-completeness, digest-taint). Called from Analyze.
void CheckStructuralRules(const Index& index, std::vector<Finding>* out);

// The scenario-corpus rule family (scn-parse, scn-unknown-system,
// scn-unknown-preset, scn-unknown-message, scn-missing-expect). Called
// from Analyze when .scn sources are in the scan set.
void CheckScenarios(const std::vector<ScnSource>& scenarios, const Index& index,
                    std::vector<Finding>* out);

}  // namespace detlint

#endif  // TOOLS_DETLINT_INDEX_H_
