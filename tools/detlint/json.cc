// The machine-readable report: a stable, SARIF-like JSON document
// ("detlint-findings-v1"). Findings are pre-sorted by Analyze(), so equal
// trees produce byte-identical reports — CI archives them as artifacts and
// schema-validates the keys.

#include "detlint.h"

#include <cstdio>
#include <sstream>

namespace detlint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

}  // namespace

std::string RenderJson(const AnalysisResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"detlint-findings-v1\",\n";
  out << "  \"tool\": {\"name\": \"detlint\", \"version\": \"1.0\"},\n";
  out << "  \"summary\": {\n";
  out << "    \"files_scanned\": " << result.files_scanned << ",\n";
  out << "    \"total\": " << result.findings.size() << ",\n";
  out << "    \"new\": " << result.NewCount() << ",\n";
  out << "    \"baselined\": " << (result.findings.size() - static_cast<size_t>(result.NewCount()))
      << ",\n";
  out << "    \"suppressed\": " << result.suppressed << "\n";
  out << "  },\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"rule\": \"" << JsonEscape(f.rule) << "\",\n";
    out << "      \"file\": \"" << JsonEscape(f.file) << "\",\n";
    out << "      \"line\": " << f.line << ",\n";
    out << "      \"column\": " << f.column << ",\n";
    out << "      \"severity\": \"error\",\n";
    out << "      \"baselined\": " << (f.baselined ? "true" : "false") << ",\n";
    out << "      \"subject\": \"" << JsonEscape(f.subject) << "\",\n";
    out << "      \"message\": \"" << JsonEscape(f.message) << "\",\n";
    out << "      \"snippet\": \"" << JsonEscape(f.snippet) << "\"\n";
    out << "    }";
  }
  out << (result.findings.empty() ? "],\n" : "\n  ],\n");
  out << "  \"exit\": " << (result.NewCount() > 0 ? 1 : 0) << "\n";
  out << "}\n";
  return out.str();
}

std::string RenderText(const AnalysisResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ":" << f.column << ": "
        << (f.baselined ? "baselined" : "error") << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.snippet.empty()) {
      out << "    | " << f.snippet << "\n";
    }
  }
  out << "detlint: " << result.files_scanned << " file(s), " << result.NewCount()
      << " new finding(s), "
      << (result.findings.size() - static_cast<size_t>(result.NewCount())) << " baselined, "
      << result.suppressed << " suppressed\n";
  return out.str();
}

}  // namespace detlint
