// The detlint tokenizer: a minimal C++ lexer sufficient for rule matching.
// It understands comments (line, block), string/char literals (including
// raw strings), identifiers, numbers, and single-character punctuation.
// Preprocessor lines are tokenized like ordinary code — the rules only key
// off identifiers and local token context, so that is safe.

#include "detlint.h"

#include <cctype>
#include <sstream>

namespace detlint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

// Parses `detlint: allow(rule): reason` markers out of one comment's text.
void ParseMarkers(const std::string& comment, int line, SourceFile* file) {
  size_t at = 0;
  static const std::string kMarker = "detlint: allow(";
  while ((at = comment.find(kMarker, at)) != std::string::npos) {
    const size_t rule_begin = at + kMarker.size();
    const size_t rule_end = comment.find(')', rule_begin);
    at = rule_begin;
    if (rule_end == std::string::npos) {
      file->bad_suppression_lines.push_back(line);
      continue;
    }
    const std::string rule = Trim(comment.substr(rule_begin, rule_end - rule_begin));
    // The reason is mandatory: "): <non-empty text>".
    std::string reason;
    if (rule_end + 1 < comment.size() && comment[rule_end + 1] == ':') {
      reason = Trim(comment.substr(rule_end + 2));
    }
    if (rule.empty() || reason.empty()) {
      file->bad_suppression_lines.push_back(line);
      continue;
    }
    file->suppressions.push_back(Suppression{rule, reason, line});
  }
}

class Lexer {
 public:
  Lexer(const std::string& contents, SourceFile* file)
      : src_(contents), file_(file) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        Advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"' || c == '\'') {
        LexQuoted(c, tokens);
        continue;
      }
      if (c == 'R' && Peek(1) == '"' && LooksLikeRawString()) {
        LexRawString(tokens);
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifier(tokens);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LexNumber(tokens);
        continue;
      }
      tokens.push_back(Token{TokKind::kPunct, std::string(1, c), line_, column_});
      Advance();
    }
    return tokens;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void LexLineComment() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      // A backslash-newline splice continues the comment onto the next
      // physical line (the preprocessor's line-continuation rule applies to
      // `//` comments too). Consuming it here keeps line accounting right:
      // without this, the continued text was re-lexed as code and every
      // suppression marker after the splice attached to the wrong line.
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        Advance();  // '\'
        Advance();  // '\n' (bumps line_)
        continue;
      }
      if (src_[pos_] == '\\' && pos_ + 2 < src_.size() && src_[pos_ + 1] == '\r' &&
          src_[pos_ + 2] == '\n') {
        Advance();  // '\'
        Advance();  // '\r'
        Advance();  // '\n'
        continue;
      }
      text += src_[pos_];
      Advance();
    }
    if (file_ != nullptr) {
      ParseMarkers(text, start_line, file_);
    }
  }

  void LexBlockComment() {
    const int start_line = line_;
    std::string text;
    Advance();  // '/'
    Advance();  // '*'
    while (pos_ < src_.size() && !(src_[pos_] == '*' && Peek(1) == '/')) {
      text += src_[pos_];
      Advance();
    }
    if (pos_ < src_.size()) {
      Advance();  // '*'
      Advance();  // '/'
    }
    if (file_ != nullptr) {
      ParseMarkers(text, start_line, file_);
    }
  }

  void LexQuoted(char quote, std::vector<Token>& tokens) {
    Token token{TokKind::kString, "", line_, column_};
    Advance();  // opening quote
    while (pos_ < src_.size() && src_[pos_] != quote) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        // Escape sequence. A backslash-newline is a line splice: the literal
        // continues on the next physical line and contributes no character.
        if (src_[pos_ + 1] == '\n') {
          Advance();  // '\'
          Advance();  // '\n' (bumps line_)
          continue;
        }
        token.text += src_[pos_];
        Advance();
        token.text += src_[pos_];
        Advance();
        continue;
      }
      if (src_[pos_] == '\n') {
        break;  // unterminated on this line; resynchronize
      }
      token.text += src_[pos_];
      Advance();
    }
    if (pos_ < src_.size() && src_[pos_] == quote) {
      Advance();
    }
    tokens.push_back(std::move(token));
  }

  // R"delim( — delimiter is 0-16 chars of non-parenthesis, non-space.
  bool LooksLikeRawString() const {
    size_t i = pos_ + 2;
    for (int n = 0; n <= 16 && i < src_.size(); ++n, ++i) {
      const char c = src_[i];
      if (c == '(') {
        return true;
      }
      if (c == ')' || c == '\\' || std::isspace(static_cast<unsigned char>(c))) {
        return false;
      }
    }
    return false;
  }

  void LexRawString(std::vector<Token>& tokens) {
    Token token{TokKind::kString, "", line_, column_};
    Advance();  // 'R'
    Advance();  // '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_];
      Advance();
    }
    if (pos_ < src_.size()) {
      Advance();  // '('
    }
    const std::string terminator = ")" + delim + "\"";
    while (pos_ < src_.size() && src_.compare(pos_, terminator.size(), terminator) != 0) {
      token.text += src_[pos_];
      Advance();
    }
    for (size_t i = 0; i < terminator.size() && pos_ < src_.size(); ++i) {
      Advance();
    }
    tokens.push_back(std::move(token));
  }

  void LexIdentifier(std::vector<Token>& tokens) {
    Token token{TokKind::kIdentifier, "", line_, column_};
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      token.text += src_[pos_];
      Advance();
    }
    tokens.push_back(std::move(token));
  }

  void LexNumber(std::vector<Token>& tokens) {
    Token token{TokKind::kNumber, "", line_, column_};
    // Good enough for matching purposes: digits plus the usual suffix and
    // separator characters (also swallows hex/exponent forms).
    while (pos_ < src_.size() &&
           (IsIdentChar(src_[pos_]) || src_[pos_] == '\'' || src_[pos_] == '.')) {
      token.text += src_[pos_];
      Advance();
    }
    tokens.push_back(std::move(token));
  }

  const std::string& src_;
  SourceFile* file_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(const std::string& contents) {
  Lexer lexer(contents, nullptr);
  return lexer.Run();
}

SourceFile MakeSourceFile(const std::string& path, const std::string& contents) {
  SourceFile file;
  file.path = path;
  file.contents = contents;
  std::istringstream stream(contents);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    file.lines.push_back(line);
  }
  Lexer lexer(contents, &file);
  file.tokens = lexer.Run();
  return file;
}

}  // namespace detlint
