// scnlint: the scenario-corpus rule family. A `.scn` file is executable
// configuration — a typo'd preset or a fault rule naming a message type
// that no system ever sends parses into a scenario that silently tests
// nothing. These checks cross-validate the corpus against the scenario
// parser, the executor registry, and the structural index's harvest of
// Message::TypeName() literals, and report through the same finding/
// baseline/JSON machinery as every other rule.

#include <algorithm>
#include <string>
#include <vector>

#include "index.h"
#include "scenario/executor.h"
#include "scenario/parser.h"

namespace detlint {
namespace {

// Findings in .scn files have no token stream; snippets come straight from
// the raw line.
std::string ScnSnippet(const ScnSource& scn, int line) {
  if (line < 1) {
    return "";
  }
  int at = 1;
  size_t begin = 0;
  while (at < line) {
    const size_t nl = scn.contents.find('\n', begin);
    if (nl == std::string::npos) {
      return "";
    }
    begin = nl + 1;
    ++at;
  }
  size_t end = scn.contents.find('\n', begin);
  if (end == std::string::npos) {
    end = scn.contents.size();
  }
  std::string snippet = scn.contents.substr(begin, end - begin);
  const size_t first = snippet.find_first_not_of(" \t");
  if (first == std::string::npos) {
    return "";
  }
  const size_t last = snippet.find_last_not_of(" \t\r");
  return snippet.substr(first, last - first + 1);
}

void EmitScn(const ScnSource& scn, int line, int column, const std::string& rule,
             const std::string& message, const std::string& subject,
             std::vector<Finding>* out) {
  Finding finding;
  finding.rule = rule;
  finding.file = scn.path;
  finding.line = line;
  finding.column = column;
  finding.message = message;
  finding.snippet = ScnSnippet(scn, line);
  finding.subject = subject;
  out->push_back(std::move(finding));
}

void CheckFaultTypeNames(const ScnSource& scn, const scenario::Scenario& scenario,
                         const Index& index, std::vector<Finding>* out) {
  if (index.message_type_names.empty()) {
    return;  // no C++ sources in the scan set; nothing to validate against
  }
  // Ambient faults and inject steps both carry a FaultRule; the parser does
  // not record per-rule positions, so anchor at the line that names the
  // type (first occurrence; subjects keep baseline keys stable regardless).
  std::vector<std::string> names;
  for (const net::FaultRule& rule : scenario.ambient_faults) {
    names.push_back(rule.type_name);
  }
  for (const scenario::Step& step : scenario.steps) {
    if (step.kind == scenario::Step::Kind::kInject) {
      names.push_back(step.fault.type_name);
    }
  }
  for (const std::string& name : names) {
    if (index.message_type_names.count(name) > 0) {
      continue;
    }
    int line = 1;
    int column = 1;
    const size_t at = scn.contents.find("\"" + name + "\"");
    if (at != std::string::npos) {
      line = 1 + static_cast<int>(
                     std::count(scn.contents.begin(),
                                scn.contents.begin() + static_cast<long>(at), '\n'));
      const size_t bol = scn.contents.rfind('\n', at);
      column = static_cast<int>(at - (bol == std::string::npos ? 0 : bol + 1)) + 1;
    }
    EmitScn(scn, line, column, "scn-unknown-message",
            "fault rule targets message type '" + name +
                "', which matches no Message::TypeName() in the indexed "
                "sources: the rule can never fire and the scenario tests "
                "less than it claims",
            scenario.name + "/" + name, out);
  }
}

// Line of the `scenario` header (file-level findings anchor there, not at
// a leading comment).
int ScenarioHeaderLine(const ScnSource& scn) {
  int line = 1;
  size_t begin = 0;
  while (begin < scn.contents.size()) {
    const size_t first = scn.contents.find_first_not_of(" \t", begin);
    if (first != std::string::npos &&
        scn.contents.compare(first, 8, "scenario") == 0) {
      return line;
    }
    const size_t nl = scn.contents.find('\n', begin);
    if (nl == std::string::npos) {
      break;
    }
    begin = nl + 1;
    ++line;
  }
  return 1;
}

void CheckExpectBlocks(const ScnSource& scn, const scenario::Scenario& scenario,
                       std::vector<Finding>* out) {
  bool has_flawed = false;
  bool has_correct = false;
  for (const scenario::ExpectBlock& block : scenario.expects) {
    if (block.variant == scenario::Variant::kFlawed) {
      has_flawed = true;
    } else {
      has_correct = true;
    }
  }
  if (has_flawed && has_correct) {
    return;
  }
  const std::string missing = has_flawed ? "correct" : "flawed";
  EmitScn(scn, ScenarioHeaderLine(scn), 1, "scn-missing-expect",
          "scenario '" + scenario.name + "' has no `expect " + missing +
              "` block: every reproduction must assert both the flawed "
              "variant's failure and the correct variant's fix, or the "
              "regression it encodes is only half-checked",
          scenario.name + "/" + missing, out);
}

}  // namespace

void CheckScenarios(const std::vector<ScnSource>& scenarios, const Index& index,
                    std::vector<Finding>* out) {
  for (const ScnSource& scn : scenarios) {
    const scenario::ParseResult parsed = scenario::Parse(scn.contents);
    if (!parsed.ok) {
      for (const scenario::Diagnostic& diag : parsed.diagnostics) {
        EmitScn(scn, diag.line > 0 ? diag.line : 1,
                diag.column > 0 ? diag.column : 1, "scn-parse",
                "scenario file does not parse: " + diag.message, scn.path, out);
      }
      continue;
    }
    const scenario::Scenario& scenario = parsed.scenario;
    // The parser validates system/preset against the same registry, so
    // these two fire only if the parser's checks and the executor's tables
    // ever drift apart — exactly the regression they exist to catch.
    if (!scenario::KnownSystem(scenario.system)) {
      EmitScn(scn, ScenarioHeaderLine(scn), 1, "scn-unknown-system",
              "system '" + scenario.system + "' is not in the executor registry",
              scenario.name + "/" + scenario.system, out);
    } else if (!scenario::KnownPreset(scenario.system, scenario.preset)) {
      EmitScn(scn, ScenarioHeaderLine(scn), 1, "scn-unknown-preset",
              "preset '" + scenario.preset + "' is not in system '" +
                  scenario.system + "''s preset table",
              scenario.name + "/" + scenario.preset, out);
    }
    CheckFaultTypeNames(scn, scenario, index, out);
    CheckExpectBlocks(scn, scenario, out);
  }
}

}  // namespace detlint
