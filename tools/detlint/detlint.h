// detlint — a determinism & model-safety linter for this repository.
//
// Every guarantee the reproduction makes (byte-identical parallel==serial
// campaign digests, replayable minimized repros, coverage/corpus
// determinism) dies silently the moment a model system or the NEAT layer
// picks up a nondeterminism source — wall clock, unseeded RNG, hash-order
// iteration feeding a trace or digest — or drops a protocol message on the
// floor, the class of silent partition-time omission the source paper
// catalogs (OSDI'18 Section 5). detlint enforces those conventions
// mechanically: a lightweight C++ tokenizer, a set of rules over the token
// stream (plus one whole-project rule), inline suppressions with mandatory
// reasons, and a committed baseline for grandfathered findings.
//
// Rule catalog (ids are stable; see README "detlint" section):
//   raw-rand            rand()/srand()/std::random_device & friends — all
//                       randomness must flow through sim::Rng substreams
//   wall-clock          time()/clock()/std::chrono::{system,steady,high_
//                       resolution}_clock etc. — virtual time only
//   env-read            getenv/setenv outside src/neat/campaign.cc (the
//                       campaign knobs NEAT_THREADS/NEAT_SEEDS/... are the
//                       one sanctioned environment surface)
//   thread-primitive    std::thread/mutex/atomic/... or pthread_* inside
//                       src/sim or src/systems — the sim kernel and model
//                       systems are single-threaded by contract; only the
//                       campaign layer may spawn workers
//   static-local        mutable function-local statics in src/sim,
//                       src/cluster, src/systems — cross-instance state
//                       leaks between campaign workers
//   unordered-iteration iteration over std::unordered_{map,set,...} in a
//                       function that also touches a TraceLog, CoverageMap,
//                       or digest — hash order is not part of the
//                       deterministic contract
//   address-derived-id  reinterpret_cast to an integral type, or any use
//                       of uintptr_t/intptr_t, in src/ — trace record ids
//                       and causal edges must be stable log positions;
//                       an address-derived id breaks fork/replay
//                       byte-identity
//   digest-nonconst     ISystem::StateDigest declarations/definitions not
//                       marked const — a digest probe must be read-only
//   snapshot-nonconst   Snapshot() declarations/definitions not marked
//                       const — capturing a fork snapshot must not perturb
//                       the run it captures (neat/system.h contract)
//   unhandled-message   a net::Message subclass with no dynamic_cast
//                       dispatch site anywhere in the tree — the silent
//                       unhandled-protocol-event omission
//   bad-suppression     a `detlint: allow(...)` comment without a reason
//
// Structural rules (index.h builds a repo-wide class/member model first):
//   snapshot-field-coverage  a mutable data member of a class with a
//                       Snapshot/Restore (or CaptureState/RestoreState,
//                       CaptureKernel/RestoreKernel) pair that is not
//                       referenced in BOTH functions — the one-field-left-
//                       out-of-the-state-transfer omission that breaks
//                       fork==replay byte-identity. const, reference, raw-
//                       pointer, and static members are exempt (wiring or
//                       immutable, not per-run state)
//   override-completeness    an ISystem subclass overriding Snapshot must
//                       also override Restore and StateDigest (and vice
//                       versa); a CaseRunner subclass must pair
//                       Snapshot/Restore — a capture with no restore path
//                       is dead weight, a restore with no capture is a trap
//   digest-taint        a function whose return value is minted from
//                       unordered_{map,set} iteration (and not laundered
//                       through a sort) feeding a digest/coverage sink in
//                       any caller, across files — the interprocedural form
//                       of unordered-iteration
//
// Scenario-corpus rules (scnlint.cc; run over .scn files via --scn):
//   scn-parse           a corpus file the scenario parser rejects
//   scn-unknown-system  `system:` not in the executor registry
//   scn-unknown-preset  `preset:` not in the system's preset table
//   scn-unknown-message an `inject`/ambient fault type name that matches no
//                       Message::TypeName() literal in the indexed sources —
//                       a fault rule that can never fire
//   scn-missing-expect  a scenario without both `expect flawed` and
//                       `expect correct` blocks — an unasserted variant
//
// Suppression syntax (same line as the finding or the line above):
//   // detlint: allow(<rule>): <reason text, mandatory>

#ifndef TOOLS_DETLINT_DETLINT_H_
#define TOOLS_DETLINT_DETLINT_H_

#include <map>
#include <string>
#include <vector>

namespace detlint {

// --- tokens ---

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,  // string or char literal; text holds the (unquoted) contents
  kPunct,   // one punctuation character per token
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;    // 1-based
  int column = 0;  // 1-based
};

// Tokenizes C++ source. Comments are not emitted as tokens; `detlint:
// allow(...)` markers inside them are returned through SourceFile.
std::vector<Token> Tokenize(const std::string& contents);

// --- source files ---

struct Suppression {
  std::string rule;
  std::string reason;
  int line = 0;  // line of the comment
};

struct SourceFile {
  std::string path;  // root-relative, forward slashes
  std::string contents;
  std::vector<std::string> lines;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  // Lines with an allow() marker missing its mandatory reason.
  std::vector<int> bad_suppression_lines;
};

// Builds a SourceFile from in-memory contents (path is used for reporting
// and for path-scoped rules).
SourceFile MakeSourceFile(const std::string& path, const std::string& contents);

// --- findings ---

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  int column = 0;
  std::string message;
  std::string snippet;  // the offending source line, trimmed
  // Stable, line-number-independent key used by baseline matching
  // (typically the banned identifier, function, or message name).
  std::string subject;
  bool baselined = false;
};

struct AnalysisResult {
  std::vector<Finding> findings;  // sorted by (file, line, rule); includes baselined
  int suppressed = 0;             // findings silenced by inline allow()s
  int files_scanned = 0;
  // New (non-baselined) findings — what gates the exit code.
  int NewCount() const;
};

// A scenario-corpus file (.scn). Checked by the scnlint rule family
// against the scenario parser and the structural index of `sources`.
struct ScnSource {
  std::string path;  // root-relative, forward slashes
  std::string contents;
};

// Runs every rule over the given sources. Baseline entries (one
// "rule<TAB>file<TAB>subject" per line) mark matching findings baselined
// instead of new.
AnalysisResult Analyze(const std::vector<SourceFile>& sources,
                       const std::multimap<std::string, int>& baseline);
// As above, plus the scenario-corpus rules over `scenarios`. Scenario
// findings flow through the same baseline/report/exit-code machinery;
// scenario files count toward files_scanned.
AnalysisResult Analyze(const std::vector<SourceFile>& sources,
                       const std::vector<ScnSource>& scenarios,
                       const std::multimap<std::string, int>& baseline);

// --- baseline files ---

// Parses "rule\tfile\tsubject" lines into a multiset (key -> count).
// Lines starting with '#' and blank lines are ignored.
std::multimap<std::string, int> ParseBaseline(const std::string& contents);
std::string BaselineKey(const Finding& finding);
// Renders the (non-suppressed) findings as a baseline file body.
std::string RenderBaseline(const std::vector<Finding>& findings);

// --- output ---

// Stable JSON report (schema "detlint-findings-v1").
std::string RenderJson(const AnalysisResult& result);
// Human-readable report, one line per finding plus a summary.
std::string RenderText(const AnalysisResult& result);

// --- filesystem driver (used by main; tests feed sources directly) ---

// Recursively collects .h/.hh/.hpp/.cc/.cpp/.cxx files under each path
// (or the file itself), sorted, with paths reported relative to `root`.
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths);
// Loads and tokenizes one file from disk. Returns false on read failure.
bool LoadSourceFile(const std::string& root, const std::string& rel_path,
                    SourceFile* out);
// Recursively collects .scn files under each path (or the file itself),
// sorted, with paths reported relative to `root`.
std::vector<std::string> CollectScnFiles(const std::string& root,
                                         const std::vector<std::string>& paths);
// Loads one scenario file from disk. Returns false on read failure.
bool LoadScnSource(const std::string& root, const std::string& rel_path,
                   ScnSource* out);

}  // namespace detlint

#endif  // TOOLS_DETLINT_DETLINT_H_
