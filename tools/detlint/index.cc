// The structural index builder: a lightweight declaration parser over the
// detlint token stream. It is deliberately not a C++ parser — it tracks
// namespace/class scopes, splits class bodies into declarations, and brace-
// matches function bodies wholesale — the same pragmatic subset the
// whole-tree unhandled-message sweep uses, extended with enough state
// (angle-bracket depth, constructor-initializer-list tracking) to classify
// this repository's declarations correctly. Where real C++ outruns the
// heuristics (function pointers, lambdas in default member initializers),
// the failure mode is a skipped declaration, never a crash: rules built on
// the index only act on what was positively identified.

#include "index.h"

#include <algorithm>
#include <set>

namespace detlint {
namespace {

bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

bool IsIdentTok(const Token& t, const char* s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}

// Keywords that can appear in a member declaration but are never its name.
bool IsDeclKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "const",    "constexpr", "constinit", "static",   "inline",  "mutable",
      "volatile", "virtual",   "explicit",  "typename", "struct",  "class",
      "union",    "enum",      "unsigned",  "signed",   "long",    "short",
      "int",      "char",      "bool",      "float",    "double",  "void",
      "auto",     "default",   "delete",    "nullptr",  "true",    "false",
      "noexcept", "override",  "final",     "operator", "extern",  "register",
      "thread_local",
  };
  return kKeywords.count(s) > 0;
}

class FileIndexer {
 public:
  FileIndexer(const SourceFile& file, Index* index)
      : file_(file), t_(file.tokens), index_(index) {}

  void Run() { ParseScope(0, t_.size(), nullptr); }

 private:
  // Index of the '}' matching the '{' at `open` (or the last token when the
  // file is unbalanced — callers always make progress).
  size_t MatchBrace(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < t_.size(); ++i) {
      if (IsPunct(t_[i], "{")) {
        ++depth;
      } else if (IsPunct(t_[i], "}")) {
        if (--depth == 0) {
          return i;
        }
      }
    }
    return t_.empty() ? 0 : t_.size() - 1;
  }

  // Skips a preprocessor directive starting at the '#': every token on its
  // line, plus continuation lines when a line ends with a backslash.
  size_t SkipPreprocessor(size_t i, size_t end) const {
    while (i < end) {
      const int line = t_[i].line;
      size_t j = i;
      while (j < end && t_[j].line == line) {
        ++j;
      }
      const bool continued = j > i && IsPunct(t_[j - 1], "\\");
      i = j;
      if (!continued) {
        break;
      }
    }
    return i;
  }

  // Skips a balanced '<...>' starting at `i` (which must be '<').
  size_t SkipAngles(size_t i, size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (IsPunct(t_[i], "<")) {
        ++depth;
      } else if (IsPunct(t_[i], ">")) {
        if (--depth <= 0) {
          return i + 1;
        }
      } else if (IsPunct(t_[i], ";") || IsPunct(t_[i], "{")) {
        return i;  // malformed; resynchronize
      }
    }
    return end;
  }

  std::string CurrentNs() const {
    std::string ns;
    for (const std::string& part : ns_stack_) {
      if (!ns.empty()) {
        ns += "::";
      }
      ns += part;
    }
    return ns;
  }

  // Parses declarations in [begin, end). `cls` is the enclosing class being
  // populated, or null at namespace scope.
  void ParseScope(size_t begin, size_t end, ClassInfo* cls) {
    size_t i = begin;
    while (i < end) {
      const Token& tok = t_[i];
      if (IsPunct(tok, ";") || IsPunct(tok, "}")) {
        ++i;
        continue;
      }
      if (IsPunct(tok, "#")) {
        i = SkipPreprocessor(i, end);
        continue;
      }
      if (cls == nullptr && IsIdentTok(tok, "namespace")) {
        i = ParseNamespace(i, end);
        continue;
      }
      if (IsIdentTok(tok, "template")) {
        ++i;
        if (i < end && IsPunct(t_[i], "<")) {
          i = SkipAngles(i, end);
        }
        continue;
      }
      if (IsIdentTok(tok, "using") || IsIdentTok(tok, "typedef") ||
          IsIdentTok(tok, "friend") || IsIdentTok(tok, "static_assert")) {
        i = SkipToSemicolon(i, end);
        continue;
      }
      if (cls != nullptr &&
          (IsIdentTok(tok, "public") || IsIdentTok(tok, "private") ||
           IsIdentTok(tok, "protected")) &&
          i + 1 < end && IsPunct(t_[i + 1], ":")) {
        i += 2;
        continue;
      }
      if (IsIdentTok(tok, "enum")) {
        i = SkipEnum(i, end);
        continue;
      }
      if (IsIdentTok(tok, "class") || IsIdentTok(tok, "struct") ||
          IsIdentTok(tok, "union")) {
        i = ParseClass(i, end);
        continue;
      }
      i = ParseDeclaration(i, end, cls);
    }
  }

  size_t ParseNamespace(size_t i, size_t end) {
    size_t j = i + 1;
    std::string name;
    while (j < end && !IsPunct(t_[j], "{") && !IsPunct(t_[j], ";") &&
           !IsPunct(t_[j], "=")) {
      if (t_[j].kind == TokKind::kIdentifier) {
        name = name.empty() ? t_[j].text : name + "::" + t_[j].text;
      }
      ++j;
    }
    if (j >= end || !IsPunct(t_[j], "{")) {
      return SkipToSemicolon(i, end);  // alias or declaration
    }
    const size_t close = MatchBrace(j);
    ns_stack_.push_back(name.empty() ? "(anon)" : name);
    ParseScope(j + 1, close, nullptr);
    ns_stack_.pop_back();
    return close + 1;
  }

  size_t SkipToSemicolon(size_t i, size_t end) const {
    for (; i < end; ++i) {
      if (IsPunct(t_[i], ";")) {
        return i + 1;
      }
      if (IsPunct(t_[i], "{")) {
        i = MatchBrace(i);
      }
    }
    return end;
  }

  size_t SkipEnum(size_t i, size_t end) const {
    size_t j = i + 1;
    while (j < end && !IsPunct(t_[j], "{") && !IsPunct(t_[j], ";")) {
      ++j;
    }
    if (j < end && IsPunct(t_[j], "{")) {
      j = MatchBrace(j) + 1;
    }
    return SkipToSemicolon(j, end);
  }

  size_t ParseClass(size_t i, size_t end) {
    size_t j = i + 1;
    std::string name;
    if (j < end && t_[j].kind == TokKind::kIdentifier && t_[j].text != "final") {
      name = t_[j].text;
      ++j;
    }
    if (j < end && IsPunct(t_[j], "<")) {
      j = SkipAngles(j, end);  // explicit specialization arguments
    }
    if (j < end && IsIdentTok(t_[j], "final")) {
      ++j;
    }
    std::vector<std::string> bases;
    if (j < end && IsPunct(t_[j], ":")) {
      for (++j; j < end && !IsPunct(t_[j], "{") && !IsPunct(t_[j], ";"); ++j) {
        if (IsPunct(t_[j], "<")) {
          j = SkipAngles(j, end) - 1;  // base template args are not bases
          continue;
        }
        if (t_[j].kind == TokKind::kIdentifier && t_[j].text != "public" &&
            t_[j].text != "protected" && t_[j].text != "private" &&
            t_[j].text != "virtual") {
          bases.push_back(t_[j].text);
        }
      }
    }
    if (j >= end || !IsPunct(t_[j], "{")) {
      // Forward declaration or a variable of elaborated type.
      return SkipToSemicolon(i, end);
    }
    const size_t close = MatchBrace(j);
    ClassInfo cls;
    cls.name = name.empty() ? "(anon)" : name;
    cls.ns = CurrentNs();
    cls.file = &file_;
    cls.line = t_[i].line;
    cls.column = t_[i].column;
    cls.bases = std::move(bases);
    const size_t slot = index_->classes.size();
    index_->classes.push_back(std::move(cls));
    // Nested classes may reallocate index_->classes during the recursive
    // parse, so re-fetch by slot and populate into a local first.
    ClassInfo local = std::move(index_->classes[slot]);
    ns_stack_.push_back(local.name);
    ParseScope(j + 1, close, &local);
    ns_stack_.pop_back();
    index_->classes[slot] = std::move(local);
    return SkipToSemicolon(close + 1, end);
  }

  // Parses one declaration statement at class or namespace scope and
  // records a member, a method, or a function definition.
  size_t ParseDeclaration(size_t i, size_t end, ClassInfo* cls) {
    const size_t start = i;
    int paren = 0;
    int angle = 0;
    size_t first_paren = kNone;
    size_t eq = kNone;
    size_t bracket = kNone;
    bool is_static = false;
    bool is_const = false;
    bool is_ref = false;
    bool is_ptr = false;
    size_t stop = end;
    bool stop_is_brace = false;
    for (size_t j = i; j < end; ++j) {
      const Token& t = t_[j];
      if (t.kind == TokKind::kIdentifier && paren == 0 && angle == 0 &&
          eq == kNone) {
        if (t.text == "static" || t.text == "constexpr" || t.text == "constinit") {
          is_static = true;
        } else if (t.text == "const" && first_paren == kNone) {
          is_const = true;
        }
        continue;
      }
      if (t.kind != TokKind::kPunct) {
        continue;
      }
      if (t.text == "(") {
        if (paren == 0 && angle == 0 && first_paren == kNone && eq == kNone) {
          first_paren = j;
        }
        ++paren;
      } else if (t.text == ")") {
        if (paren > 0) {
          --paren;
        }
      } else if (t.text == "<" && paren == 0 && eq == kNone) {
        ++angle;
      } else if (t.text == ">" && paren == 0 && eq == kNone) {
        if (angle > 0) {
          --angle;
        }
      } else if (paren == 0 && angle == 0) {
        if (t.text == "=" && eq == kNone && first_paren == kNone) {
          eq = j;
        } else if (t.text == "&" && eq == kNone && first_paren == kNone) {
          is_ref = true;
        } else if (t.text == "*" && eq == kNone && first_paren == kNone) {
          is_ptr = true;
        } else if (t.text == "[" && eq == kNone && bracket == kNone &&
                   first_paren == kNone) {
          bracket = j;
        } else if (t.text == ";") {
          stop = j;
          break;
        } else if (t.text == "{") {
          stop = j;
          stop_is_brace = true;
          break;
        }
      } else if (t.text == ";" && paren == 0) {
        stop = j;  // unbalanced angles (an expression, not a declaration)
        break;
      }
    }
    if (stop >= end) {
      return end;
    }

    if (first_paren != kNone) {
      return ParseFunction(start, first_paren, end, cls);
    }

    if (stop_is_brace) {
      // Brace-initialized member (`sim::Rng rng_{1};`) or a stray block.
      const size_t close = MatchBrace(stop);
      if (cls != nullptr) {
        RecordMember(start, stop, eq, bracket, is_static, is_const, is_ref,
                     is_ptr, cls);
      }
      return SkipToSemicolon(close + 1, end);
    }
    if (cls != nullptr) {
      RecordMember(start, stop, eq, bracket, is_static, is_const, is_ref, is_ptr,
                   cls);
    }
    return stop + 1;
  }

  void RecordMember(size_t start, size_t stop, size_t eq, size_t bracket,
                    bool is_static, bool is_const, bool is_ref, bool is_ptr,
                    ClassInfo* cls) {
    // The declared name: the last identifier before the initializer (or the
    // array bound, or the terminator).
    size_t limit = stop;
    if (eq != kNone && eq < limit) {
      limit = eq;
    }
    if (bracket != kNone && bracket < limit) {
      limit = bracket;
    }
    size_t name_at = kNone;
    for (size_t j = limit; j > start;) {
      --j;
      if (t_[j].kind == TokKind::kIdentifier) {
        if (IsDeclKeyword(t_[j].text)) {
          return;  // `int;`-style junk or a keyword-only fragment
        }
        name_at = j;
        break;
      }
      if (!IsPunct(t_[j], "&") && !IsPunct(t_[j], "*") && !IsPunct(t_[j], "]")) {
        break;
      }
    }
    if (name_at == kNone) {
      return;
    }
    MemberInfo member;
    member.name = t_[name_at].text;
    member.line = t_[name_at].line;
    member.column = t_[name_at].column;
    member.is_static = is_static;
    member.is_const = is_const;
    member.is_reference = is_ref;
    member.is_pointer = is_ptr;
    cls->members.push_back(std::move(member));
  }

  // Handles a declaration whose top-level '(' was found: a method
  // declaration, a method/function definition (with constructor-initializer
  // lists), or `= default/delete/0` forms.
  size_t ParseFunction(size_t start, size_t first_paren, size_t end,
                       ClassInfo* cls) {
    // Name and (for out-of-line definitions) the Class:: qualification.
    std::string name;
    std::vector<std::string> quals;
    if (first_paren > start && t_[first_paren - 1].kind == TokKind::kIdentifier) {
      name = t_[first_paren - 1].text;
      size_t q = first_paren - 1;
      while (q >= start + 3 && IsPunct(t_[q - 1], ":") && IsPunct(t_[q - 2], ":") &&
             t_[q - 3].kind == TokKind::kIdentifier) {
        quals.push_back(t_[q - 3].text);
        q -= 3;
      }
    }

    // Find the ')' closing the parameter list, then classify the tail.
    size_t pclose = first_paren;
    int depth = 0;
    for (size_t j = first_paren; j < end; ++j) {
      if (IsPunct(t_[j], "(")) {
        ++depth;
      } else if (IsPunct(t_[j], ")")) {
        if (--depth == 0) {
          pclose = j;
          break;
        }
      }
    }

    bool is_const = false;
    bool is_override = false;
    size_t body = kNone;
    size_t j = pclose + 1;
    bool in_init_list = false;
    while (j < end) {
      const Token& t = t_[j];
      if (IsIdentTok(t, "const")) {
        is_const = true;
        ++j;
        continue;
      }
      if (IsIdentTok(t, "override") || IsIdentTok(t, "final") ||
          IsIdentTok(t, "noexcept")) {
        is_override = is_override || t.text == "override";
        ++j;
        if (j < end && IsPunct(t_[j], "(")) {  // noexcept(...)
          int d = 0;
          for (; j < end; ++j) {
            if (IsPunct(t_[j], "(")) {
              ++d;
            } else if (IsPunct(t_[j], ")")) {
              if (--d == 0) {
                ++j;
                break;
              }
            }
          }
        }
        continue;
      }
      if (IsPunct(t, ";")) {
        break;  // declaration only
      }
      if (IsPunct(t, "=")) {
        j = SkipToSemicolon(j, end) - 1;  // `= 0` / `= default` / `= delete`
        break;
      }
      if (IsPunct(t, ":") && !(j + 1 < end && IsPunct(t_[j + 1], ":"))) {
        in_init_list = true;
        ++j;
        continue;
      }
      if (IsPunct(t, "{")) {
        if (!in_init_list) {
          body = j;
          break;
        }
        // Constructor-initializer brace (`: a_{1}`) or the body: a member
        // init is always followed by ',' or by the body's '{'.
        const size_t close = MatchBrace(j);
        if (close + 1 < end && IsPunct(t_[close + 1], ",")) {
          j = close + 2;
          continue;
        }
        if (close + 1 < end && IsPunct(t_[close + 1], "{")) {
          body = close + 1;
          break;
        }
        body = j;  // this brace was the body after all
        break;
      }
      if (IsPunct(t, "(")) {  // a parenthesized member initializer
        int d = 0;
        for (; j < end; ++j) {
          if (IsPunct(t_[j], "(")) {
            ++d;
          } else if (IsPunct(t_[j], ")")) {
            if (--d == 0) {
              ++j;
              break;
            }
          }
        }
        continue;
      }
      ++j;
    }

    size_t next = body != kNone ? MatchBrace(body) + 1 : SkipToSemicolon(j, end);

    if (cls != nullptr && quals.empty() && !name.empty()) {
      MethodInfo method;
      method.name = name;
      method.line = t_[first_paren - 1].line;
      method.column = t_[first_paren - 1].column;
      method.is_const = is_const;
      method.is_override = is_override;
      if (body != kNone) {
        method.has_inline_body = true;
        method.body_begin = body;
        method.body_end = MatchBrace(body);
        RecordFunctionDef(cls->name, name, CurrentNsWithoutClass(), body,
                          method.body_end, first_paren - 1);
      }
      cls->methods.push_back(std::move(method));
    } else if (body != kNone && !name.empty()) {
      // Out-of-line definition or free function at namespace scope.
      std::string class_name;
      std::string ns = CurrentNs();
      if (!quals.empty()) {
        class_name = quals.front();  // innermost qualifier
        for (size_t q = quals.size(); q > 1;) {
          --q;
          ns = ns.empty() ? quals[q] : ns + "::" + quals[q];
        }
      }
      RecordFunctionDef(class_name, name, ns, body, MatchBrace(body),
                        first_paren - 1);
    }
    return next;
  }

  // The namespace path excluding the class name ns_stack_ currently ends
  // with (inline methods are recorded against the class's namespace).
  std::string CurrentNsWithoutClass() const {
    std::string ns;
    for (size_t k = 0; k + 1 < ns_stack_.size(); ++k) {
      if (!ns.empty()) {
        ns += "::";
      }
      ns += ns_stack_[k];
    }
    return ns;
  }

  void RecordFunctionDef(const std::string& class_name, const std::string& name,
                         const std::string& ns, size_t body_begin,
                         size_t body_end, size_t name_tok) {
    FunctionDef def;
    def.class_name = class_name;
    def.method_name = name;
    def.ns = ns;
    def.file = &file_;
    def.body_begin = body_begin;
    def.body_end = body_end;
    def.line = t_[name_tok].line;
    index_->functions.push_back(def);
    if (name == "TypeName") {
      HarvestTypeName(body_begin, body_end);
    }
  }

  // Collects the string literal a TypeName() body returns — the protocol
  // vocabulary scnlint validates `inject` clauses against.
  void HarvestTypeName(size_t body_begin, size_t body_end) {
    for (size_t j = body_begin; j < body_end; ++j) {
      if (IsIdentTok(t_[j], "return") && j + 1 <= body_end &&
          t_[j + 1].kind == TokKind::kString && !t_[j + 1].text.empty()) {
        index_->message_type_names.insert(t_[j + 1].text);
        return;
      }
    }
  }

  static constexpr size_t kNone = static_cast<size_t>(-1);

  const SourceFile& file_;
  const std::vector<Token>& t_;
  Index* index_;
  std::vector<std::string> ns_stack_;
};

}  // namespace

const MethodInfo* ClassInfo::FindMethod(const std::string& method) const {
  for (const MethodInfo& m : methods) {
    if (m.name == method) {
      return &m;
    }
  }
  return nullptr;
}

bool ClassInfo::HasBase(const std::string& base) const {
  return std::find(bases.begin(), bases.end(), base) != bases.end();
}

bool Index::FindBody(const ClassInfo& cls, const std::string& method,
                     const SourceFile** file, size_t* begin, size_t* end) const {
  const MethodInfo* m = cls.FindMethod(method);
  if (m != nullptr && m->has_inline_body) {
    *file = cls.file;
    *begin = m->body_begin;
    *end = m->body_end;
    return true;
  }
  const FunctionDef* fallback = nullptr;
  for (const FunctionDef& def : functions) {
    if (def.class_name != cls.name || def.method_name != method) {
      continue;
    }
    if (def.ns == cls.ns) {
      *file = def.file;
      *begin = def.body_begin;
      *end = def.body_end;
      return true;
    }
    if (fallback == nullptr) {
      fallback = &def;
    }
  }
  if (fallback != nullptr) {
    *file = fallback->file;
    *begin = fallback->body_begin;
    *end = fallback->body_end;
    return true;
  }
  return false;
}

Index BuildIndex(const std::vector<SourceFile>& sources) {
  Index index;
  for (const SourceFile& file : sources) {
    FileIndexer indexer(file, &index);
    indexer.Run();
  }
  return index;
}

}  // namespace detlint
