// Baseline files grandfather pre-existing findings: one
// "rule<TAB>file<TAB>subject" line per tolerated finding. Keys are
// line-number independent, so unrelated edits to a file do not invalidate
// its baseline entries. `detlint --fix-baseline` regenerates the file from
// the current findings.

#include "detlint.h"

#include <algorithm>
#include <sstream>

namespace detlint {

std::string BaselineKey(const Finding& finding) {
  return finding.rule + "\t" + finding.file + "\t" + finding.subject;
}

std::multimap<std::string, int> ParseBaseline(const std::string& contents) {
  std::multimap<std::string, int> baseline;
  std::istringstream stream(contents);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    baseline.emplace(line, 1);
  }
  return baseline;
}

std::string RenderBaseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& finding : findings) {
    keys.push_back(BaselineKey(finding));
  }
  std::sort(keys.begin(), keys.end());
  std::ostringstream out;
  out << "# detlint baseline: grandfathered findings, one rule<TAB>file<TAB>subject\n"
      << "# per line. Regenerate with `detlint --fix-baseline`; shrink it by\n"
      << "# fixing findings, never grow it by hand.\n";
  for (const std::string& key : keys) {
    out << key << "\n";
  }
  return out.str();
}

}  // namespace detlint
