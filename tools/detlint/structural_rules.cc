// Structural rule families: per-class, cross-file contracts over the
// index (index.h). These are the checks the token-level rules cannot
// express — the paper's partition failures hide in omissions (one
// mechanism left out of a replication or reclaim path), and this repo's
// analogue is one mutable field left out of a Snapshot/Restore pair or
// one hash-ordered value laundered into a digest through a helper.
//
//   snapshot-field-coverage  every mutable data member of a class with a
//                            capture/restore pair must appear in BOTH
//                            bodies (or carry an allow with a reason)
//   override-completeness    ISystem subclasses must override Snapshot,
//                            Restore, and StateDigest together; CaseRunner
//                            subclasses must pair Snapshot/Restore
//   digest-taint             a function returning a value minted from
//                            unordered-container iteration must not feed
//                            a digest/coverage sink in any caller

#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.h"

namespace detlint {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string SnippetAt(const SourceFile& file, int line) {
  if (line < 1 || static_cast<size_t>(line) > file.lines.size()) {
    return "";
  }
  return Trim(file.lines[static_cast<size_t>(line) - 1]);
}

void EmitAt(const SourceFile& file, int line, int column, const std::string& rule,
            const std::string& message, const std::string& subject,
            std::vector<Finding>* out) {
  Finding finding;
  finding.rule = rule;
  finding.file = file.path;
  finding.line = line;
  finding.column = column;
  finding.message = message;
  finding.snippet = SnippetAt(file, line);
  finding.subject = subject;
  out->push_back(std::move(finding));
}

bool IsIdentTok(const Token& t, const char* s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}

// bench/ sources are indexed (their dispatch/call sites matter to the
// whole-tree view) but carry only the determinism rules, so no structural
// finding anchors in them.
bool InBench(const std::string& path) {
  return path.rfind("bench/", 0) == 0 || path.find("/bench/") != std::string::npos;
}

bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

// True when `name` appears as an identifier anywhere in [begin, end].
bool BodyReferences(const SourceFile& file, size_t begin, size_t end,
                    const std::string& name) {
  for (size_t i = begin; i <= end && i < file.tokens.size(); ++i) {
    if (file.tokens[i].kind == TokKind::kIdentifier && file.tokens[i].text == name) {
      return true;
    }
  }
  return false;
}

// --- snapshot-field-coverage ------------------------------------------------

struct CapturePair {
  const char* capture;
  const char* restore;
};

// The repo's three capture/restore naming conventions (neat/system.h,
// net/network.h & the model systems, cluster/process.h).
constexpr CapturePair kPairs[] = {
    {"Snapshot", "Restore"},
    {"CaptureState", "RestoreState"},
    {"CaptureKernel", "RestoreKernel"},
};

void CheckSnapshotFieldCoverage(const Index& index, std::vector<Finding>* out) {
  for (const ClassInfo& cls : index.classes) {
    if (InBench(cls.file->path)) {
      continue;
    }
    for (const CapturePair& pair : kPairs) {
      if (cls.FindMethod(pair.capture) == nullptr ||
          cls.FindMethod(pair.restore) == nullptr) {
        continue;
      }
      const SourceFile* cap_file = nullptr;
      const SourceFile* res_file = nullptr;
      size_t cap_begin = 0, cap_end = 0, res_begin = 0, res_end = 0;
      if (!index.FindBody(cls, pair.capture, &cap_file, &cap_begin, &cap_end) ||
          !index.FindBody(cls, pair.restore, &res_file, &res_begin, &res_end)) {
        continue;  // declaration-only in the scanned set; nothing to audit
      }
      for (const MemberInfo& member : cls.members) {
        if (member.is_const || member.is_reference || member.is_pointer ||
            member.is_static) {
          continue;  // wiring or immutable, not per-run state
        }
        const bool in_capture =
            BodyReferences(*cap_file, cap_begin, cap_end, member.name);
        const bool in_restore =
            BodyReferences(*res_file, res_begin, res_end, member.name);
        if (in_capture && in_restore) {
          continue;
        }
        std::string where;
        if (!in_capture && !in_restore) {
          where = std::string(pair.capture) + "() and " + pair.restore + "()";
        } else if (!in_capture) {
          where = std::string(pair.capture) + "()";
        } else {
          where = std::string(pair.restore) + "()";
        }
        EmitAt(*cls.file, member.line, member.column, "snapshot-field-coverage",
               "mutable member '" + member.name + "' of '" + cls.name +
                   "' is not referenced in " + where +
                   ": a field left out of the capture/restore pair silently "
                   "breaks fork==replay byte-identity — transfer it, or "
                   "suppress with the reason it is derived or rebuilt",
               cls.name + "::" + member.name, out);
      }
    }
  }
}

// --- override-completeness --------------------------------------------------

void CheckOverrideCompleteness(const Index& index, std::vector<Finding>* out) {
  for (const ClassInfo& cls : index.classes) {
    if (InBench(cls.file->path)) {
      continue;
    }
    const bool isystem = cls.HasBase("ISystem");
    const bool runner = cls.HasBase("CaseRunner");
    if (!isystem && !runner) {
      continue;
    }
    const bool has_snapshot = cls.FindMethod("Snapshot") != nullptr;
    const bool has_restore = cls.FindMethod("Restore") != nullptr;
    const bool has_digest = cls.FindMethod("StateDigest") != nullptr;
    if (!has_snapshot && !has_restore) {
      continue;  // opted out of fork support entirely (a digest alone is fine)
    }
    std::vector<std::string> missing;
    if (!has_snapshot) {
      missing.push_back("Snapshot");
    }
    if (!has_restore) {
      missing.push_back("Restore");
    }
    if (isystem && !has_digest) {
      missing.push_back("StateDigest");
    }
    for (const std::string& method : missing) {
      EmitAt(*cls.file, cls.line, cls.column, "override-completeness",
             "'" + cls.name + "' overrides " +
                 std::string(has_snapshot ? "Snapshot" : "Restore") +
                 " but not " + method +
                 ": a capture with no restore path is dead weight and a "
                 "restore with no capture is a trap — the fork contract "
                 "(neat/system.h) requires the full set",
             cls.name + "/" + method, out);
    }
  }
}

// --- digest-taint -----------------------------------------------------------

// Names of variables declared with an unordered container type anywhere in
// the file (duplicated from rules.cc's token-level pass; the structural
// rule needs it per-file too).
std::set<std::string> UnorderedNames(const std::vector<Token>& tokens) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  std::set<std::string> names;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier || kUnordered.count(tokens[i].text) == 0) {
      continue;
    }
    size_t j = i + 1;
    if (j >= tokens.size() || !IsPunct(tokens[j], "<")) {
      continue;
    }
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokKind::kPunct) {
        continue;
      }
      if (tokens[j].text == "<") {
        ++depth;
      } else if (tokens[j].text == ">") {
        if (--depth == 0) {
          break;
        }
      }
    }
    for (++j; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*")) {
        continue;
      }
      if (IsIdentTok(t, "const")) {
        continue;
      }
      if (t.kind == TokKind::kIdentifier) {
        names.insert(t.text);
      }
      break;
    }
  }
  return names;
}

struct TaintInfo {
  bool tainted_return = false;
  std::string container;  // the unordered container the value came from
};

// Per-body taint analysis: does this function return a value minted from
// unordered-container iteration (and not laundered through a sort)?
TaintInfo AnalyzeBody(const FunctionDef& def) {
  TaintInfo info;
  const std::vector<Token>& t = def.file->tokens;
  const std::set<std::string> unordered = UnorderedNames(t);
  if (unordered.empty()) {
    return info;
  }
  std::set<std::string> tainted;
  std::string container;
  for (size_t i = def.body_begin; i < def.body_end; ++i) {
    // Range-for over an unordered container: the loop variable is tainted.
    if (IsIdentTok(t[i], "for") && i + 1 < def.body_end && IsPunct(t[i + 1], "(")) {
      int depth = 0;
      size_t colon = 0, close = 0;
      for (size_t j = i + 1; j <= def.body_end; ++j) {
        if (t[j].kind != TokKind::kPunct) {
          continue;
        }
        if (t[j].text == "(") {
          ++depth;
        } else if (t[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (t[j].text == ":" && depth == 1 && colon == 0 &&
                   !IsPunct(t[j - 1], ":") && !IsPunct(t[j + 1], ":")) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) {
        continue;
      }
      bool over_unordered = false;
      for (size_t j = colon + 1; j < close; ++j) {
        if (t[j].kind == TokKind::kIdentifier && unordered.count(t[j].text) > 0) {
          over_unordered = true;
          container = t[j].text;
        }
      }
      if (!over_unordered) {
        continue;
      }
      // Loop variable: the last identifier before the ':'.
      for (size_t j = colon; j > i;) {
        --j;
        if (t[j].kind == TokKind::kIdentifier) {
          tainted.insert(t[j].text);
          break;
        }
      }
      // Identifiers mutated inside the loop body pick up the taint: the
      // first identifier of any `x.push_back/insert/emplace*/[...]` or
      // `x += ...` statement between the loop's braces.
      if (close + 1 <= def.body_end && IsPunct(t[close + 1], "{")) {
        int bdepth = 0;
        size_t j = close + 1;
        size_t stmt_first = 0;
        for (; j <= def.body_end; ++j) {
          if (IsPunct(t[j], "{")) {
            ++bdepth;
            stmt_first = 0;
            continue;
          }
          if (IsPunct(t[j], "}")) {
            if (--bdepth == 0) {
              break;
            }
            continue;
          }
          if (IsPunct(t[j], ";")) {
            stmt_first = 0;
            continue;
          }
          if (stmt_first == 0 && t[j].kind == TokKind::kIdentifier) {
            stmt_first = j;
            continue;
          }
          if (stmt_first != 0 && t[j].kind == TokKind::kIdentifier &&
              j == stmt_first + 2 && IsPunct(t[j - 1], ".") &&
              (t[j].text == "push_back" || t[j].text == "insert" ||
               t[j].text.rfind("emplace", 0) == 0)) {
            tainted.insert(t[stmt_first].text);
          }
          if (stmt_first != 0 && j == stmt_first + 1 &&
              (IsPunct(t[j], "[") || IsPunct(t[j], "+") || IsPunct(t[j], "="))) {
            tainted.insert(t[stmt_first].text);
          }
        }
      }
    }
    // Iterator form: `target.assign(u.begin(), ...)` / `target.insert(...,
    // u.begin(), ...)` — the statement's first identifier picks up the
    // taint when the statement mentions `u.begin` for an unordered `u`.
    if (t[i].kind == TokKind::kIdentifier && unordered.count(t[i].text) > 0 &&
        i + 2 < def.body_end && IsPunct(t[i + 1], ".") &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin")) {
      // Walk back to the statement start and take its first identifier.
      size_t j = i;
      while (j > def.body_begin && !IsPunct(t[j - 1], ";") && !IsPunct(t[j - 1], "{") &&
             !IsPunct(t[j - 1], "}")) {
        --j;
      }
      if (t[j].kind == TokKind::kIdentifier) {
        tainted.insert(t[j].text);
        container = t[i].text;
      }
    }
  }
  if (tainted.empty()) {
    return info;
  }
  // Laundering: sorting a tainted value fixes its order. `sort(x...)` or
  // `std::sort(x.begin()...)` with a tainted identifier in the argument
  // list clears the taint (the canonical fix this rule exists to demand).
  for (size_t i = def.body_begin; i < def.body_end; ++i) {
    if (!IsIdentTok(t[i], "sort") && !IsIdentTok(t[i], "stable_sort")) {
      continue;
    }
    if (i + 1 >= def.body_end || !IsPunct(t[i + 1], "(")) {
      continue;
    }
    int depth = 0;
    for (size_t j = i + 1; j <= def.body_end; ++j) {
      if (IsPunct(t[j], "(")) {
        ++depth;
      } else if (IsPunct(t[j], ")")) {
        if (--depth == 0) {
          break;
        }
      } else if (t[j].kind == TokKind::kIdentifier && tainted.count(t[j].text) > 0) {
        tainted.clear();
        break;
      }
    }
    if (tainted.empty()) {
      break;
    }
  }
  if (tainted.empty()) {
    return info;
  }
  // Tainted return: a `return` statement mentioning a tainted identifier.
  for (size_t i = def.body_begin; i < def.body_end; ++i) {
    if (!IsIdentTok(t[i], "return")) {
      continue;
    }
    for (size_t j = i + 1; j < def.body_end && !IsPunct(t[j], ";"); ++j) {
      if (t[j].kind == TokKind::kIdentifier && tainted.count(t[j].text) > 0) {
        info.tainted_return = true;
        info.container = container;
        return info;
      }
    }
  }
  return info;
}

// Sink identifiers: referencing any of these marks a function as feeding
// the digest/coverage machinery.
bool IsSinkIdent(const std::string& s) {
  static const std::set<std::string> kSinks = {
      "FNV",  "Fnv1a",       "Digest",      "StateDigest",
      "Mix",  "StateHash",   "CoverageMap", "CaseDigest",
  };
  return kSinks.count(s) > 0;
}

void CheckDigestTaint(const Index& index, std::vector<Finding>* out) {
  // Pass 1: per-function taint (intra-body).
  std::map<std::string, TaintInfo> tainted_fns;  // by unqualified name
  for (const FunctionDef& def : index.functions) {
    const TaintInfo info = AnalyzeBody(def);
    if (info.tainted_return && tainted_fns.count(def.method_name) == 0) {
      tainted_fns[def.method_name] = info;
    }
  }
  if (tainted_fns.empty()) {
    return;
  }
  // Pass 2: propagate through returns — a function that returns the result
  // of a tainted function is itself tainted (fixpoint, cross-file).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef& def : index.functions) {
      if (tainted_fns.count(def.method_name) > 0) {
        continue;
      }
      const std::vector<Token>& t = def.file->tokens;
      for (size_t i = def.body_begin; i < def.body_end; ++i) {
        if (!IsIdentTok(t[i], "return")) {
          continue;
        }
        for (size_t j = i + 1; j < def.body_end && !IsPunct(t[j], ";"); ++j) {
          if (t[j].kind == TokKind::kIdentifier && j + 1 <= def.body_end &&
              IsPunct(t[j + 1], "(") && tainted_fns.count(t[j].text) > 0) {
            tainted_fns[def.method_name] = tainted_fns[t[j].text];
            changed = true;
            break;
          }
        }
        if (changed) {
          break;
        }
      }
    }
  }
  // Pass 3: flag calls to tainted functions inside sink-context bodies.
  for (const FunctionDef& def : index.functions) {
    if (InBench(def.file->path)) {
      continue;
    }
    const std::vector<Token>& t = def.file->tokens;
    bool sink = def.method_name == "StateDigest";
    for (size_t i = def.body_begin; i <= def.body_end && !sink; ++i) {
      if (t[i].kind == TokKind::kIdentifier && IsSinkIdent(t[i].text)) {
        sink = true;
      }
    }
    if (!sink) {
      continue;
    }
    for (size_t i = def.body_begin; i < def.body_end; ++i) {
      if (t[i].kind != TokKind::kIdentifier || i + 1 > def.body_end ||
          !IsPunct(t[i + 1], "(")) {
        continue;
      }
      auto it = tainted_fns.find(t[i].text);
      if (it == tainted_fns.end() || t[i].text == def.method_name) {
        continue;
      }
      EmitAt(*def.file, t[i].line, t[i].column, "digest-taint",
             "'" + def.method_name + "' feeds digest/coverage state with the "
             "result of '" + it->first + "', which is minted from iteration "
             "over unordered container '" + it->second.container +
             "': hash order is not deterministic across libstdc++ builds — "
             "sort before returning, or use an ordered container",
             def.method_name + "/" + it->first, out);
    }
  }
}

}  // namespace

void CheckStructuralRules(const Index& index, std::vector<Finding>* out) {
  CheckSnapshotFieldCoverage(index, out);
  CheckOverrideCompleteness(index, out);
  CheckDigestTaint(index, out);
}

}  // namespace detlint
