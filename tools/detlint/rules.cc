// detlint rule implementations. Rules operate on the token stream of one
// file (plus one whole-project pass for message dispatch). Everything here
// is heuristic in the way any token-level linter is — the suppression
// syntax exists precisely so a considered exception can be recorded with
// its reason — but each heuristic is tuned to this repository's idioms
// (see DESIGN notes in detlint.h).

#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "index.h"

namespace detlint {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string SnippetAt(const SourceFile& file, int line) {
  if (line < 1 || static_cast<size_t>(line) > file.lines.size()) {
    return "";
  }
  return Trim(file.lines[static_cast<size_t>(line) - 1]);
}

void Emit(const SourceFile& file, const Token& token, const std::string& rule,
          const std::string& message, const std::string& subject,
          std::vector<Finding>* out) {
  Finding finding;
  finding.rule = rule;
  finding.file = file.path;
  finding.line = token.line;
  finding.column = token.column;
  finding.message = message;
  finding.snippet = SnippetAt(file, token.line);
  finding.subject = subject;
  out->push_back(std::move(finding));
}

bool IsIdent(const Token& token, const char* text) {
  return token.kind == TokKind::kIdentifier && token.text == text;
}

// True when tokens[i] is reached through a member access (`x.f`, `x->f`).
bool IsMemberAccess(const std::vector<Token>& tokens, size_t i) {
  if (i == 0) {
    return false;
  }
  const Token& prev = tokens[i - 1];
  if (prev.kind == TokKind::kPunct && prev.text == ".") {
    return true;
  }
  if (prev.kind == TokKind::kPunct && prev.text == ">" && i >= 2 &&
      tokens[i - 2].kind == TokKind::kPunct && tokens[i - 2].text == "-") {
    return true;
  }
  return false;
}

// True when tokens[i] is `std::`-qualified, or unqualified; false when it is
// qualified by some other scope (`sim::time` would be fine, `std::time` not).
bool IsStdOrUnqualified(const std::vector<Token>& tokens, size_t i) {
  if (i >= 2 && tokens[i - 1].kind == TokKind::kPunct && tokens[i - 1].text == ":" &&
      tokens[i - 2].kind == TokKind::kPunct && tokens[i - 2].text == ":") {
    return i >= 3 && IsIdent(tokens[i - 3], "std");
  }
  return true;
}

bool NextIs(const std::vector<Token>& tokens, size_t i, const char* punct) {
  return i + 1 < tokens.size() && tokens[i + 1].kind == TokKind::kPunct &&
         tokens[i + 1].text == punct;
}

bool PathContains(const std::string& path, const std::string& dir) {
  return path.rfind(dir + "/", 0) == 0 || path.find("/" + dir + "/") != std::string::npos;
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- function-scope scanner -------------------------------------------------
//
// detlint needs to know which `{ ... }` regions are function bodies: the
// static-local rule fires only inside them, and the unordered-iteration
// rule groups its evidence per function. A `{` opens a function body when
// walking left over declarator tokens first reaches a `)` (function or
// ctor-initializer parameter list); class/enum/namespace/initializer braces
// reach something else first.

struct FunctionBody {
  std::string name;  // best-effort: identifier before the parameter list
  size_t begin = 0;  // token index of `{`
  size_t end = 0;    // token index of matching `}`
};

bool IsDeclaratorSkippable(const Token& token) {
  if (token.kind == TokKind::kIdentifier) {
    static const std::set<std::string> kStoppers = {
        "class", "struct", "union", "enum", "namespace", "do", "else", "try",
    };
    return kStoppers.count(token.text) == 0;
  }
  if (token.kind == TokKind::kPunct) {
    static const std::set<std::string> kSkippable = {
        ":", "<", ">", "&", "*", ",", "-", "[", "]",
    };
    return kSkippable.count(token.text) > 0;
  }
  return token.kind == TokKind::kNumber;
}

// Walks back from tokens[open] (a `{`) and decides whether it opens a
// function body; fills `name` with the function's identifier when it does.
bool OpensFunctionBody(const std::vector<Token>& tokens, size_t open, std::string* name) {
  size_t i = open;
  while (i > 0) {
    --i;
    const Token& token = tokens[i];
    if (token.kind == TokKind::kPunct && token.text == ")") {
      // Walk to the matching '(' and take the identifier before it.
      int depth = 1;
      size_t j = i;
      while (j > 0 && depth > 0) {
        --j;
        if (tokens[j].kind == TokKind::kPunct && tokens[j].text == ")") {
          ++depth;
        } else if (tokens[j].kind == TokKind::kPunct && tokens[j].text == "(") {
          --depth;
        }
      }
      if (j > 0 && tokens[j - 1].kind == TokKind::kIdentifier) {
        *name = tokens[j - 1].text;
      }
      return true;
    }
    if (!IsDeclaratorSkippable(token)) {
      return false;
    }
  }
  return false;
}

// All function bodies, outermost only (a lambda inside a function belongs
// to its enclosing function's body for our purposes).
std::vector<FunctionBody> FindFunctionBodies(const std::vector<Token>& tokens) {
  std::vector<FunctionBody> bodies;
  struct Scope {
    bool function = false;
  };
  std::vector<Scope> stack;
  size_t functions_open = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokKind::kPunct) {
      continue;
    }
    if (token.text == "{") {
      std::string name;
      const bool function = functions_open == 0 && OpensFunctionBody(tokens, i, &name);
      if (function) {
        bodies.push_back(FunctionBody{name, i, 0});
      }
      if (function || functions_open > 0) {
        ++functions_open;
        stack.push_back(Scope{true});
      } else {
        stack.push_back(Scope{false});
      }
    } else if (token.text == "}") {
      if (stack.empty()) {
        continue;  // unbalanced; bail out of tracking gracefully
      }
      if (stack.back().function) {
        --functions_open;
        if (functions_open == 0 && !bodies.empty() && bodies.back().end == 0) {
          bodies.back().end = i;
        }
      }
      stack.pop_back();
    }
  }
  if (!bodies.empty() && bodies.back().end == 0) {
    bodies.back().end = tokens.size() - 1;
  }
  return bodies;
}

// --- determinism rules ------------------------------------------------------

void CheckBannedIdentifiers(const SourceFile& file, std::vector<Finding>* out) {
  static const std::set<std::string> kRand = {"rand",    "srand",   "drand48",
                                             "lrand48", "mrand48", "arc4random"};
  static const std::set<std::string> kClockTypes = {"system_clock", "steady_clock",
                                                    "high_resolution_clock"};
  static const std::set<std::string> kClockCalls = {
      "gettimeofday", "clock_gettime", "localtime", "gmtime", "mktime", "timespec_get"};
  static const std::set<std::string> kEnv = {"getenv", "secure_getenv", "setenv",
                                             "putenv", "unsetenv"};
  // campaign.cc owns the NEAT_* knob surface; bench/ drivers run on the
  // host and may read the same knobs (bench scope is wall-clock/raw-rand).
  const bool env_exempt = PathEndsWith(file.path, "neat/campaign.cc") ||
                          PathContains(file.path, "bench");
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokKind::kIdentifier || IsMemberAccess(tokens, i)) {
      continue;
    }
    if (token.text == "random_device") {
      Emit(file, token, "raw-rand",
           "std::random_device is a nondeterminism source; draw from the "
           "simulation's seeded sim::Rng substreams instead",
           token.text, out);
      continue;
    }
    if (kRand.count(token.text) > 0 && NextIs(tokens, i, "(") &&
        IsStdOrUnqualified(tokens, i)) {
      Emit(file, token, "raw-rand",
           token.text + "() bypasses the seeded sim::Rng; all randomness must be "
           "replayable from the run's seed",
           token.text, out);
      continue;
    }
    if (kClockTypes.count(token.text) > 0) {
      Emit(file, token, "wall-clock",
           "std::chrono::" + token.text + " reads the host clock; simulated code "
           "must use virtual time (sim::Simulator::Now)",
           token.text, out);
      continue;
    }
    if ((kClockCalls.count(token.text) > 0 ||
         ((token.text == "time" || token.text == "clock") && IsStdOrUnqualified(tokens, i))) &&
        NextIs(tokens, i, "(")) {
      Emit(file, token, "wall-clock",
           token.text + "() reads the host clock; simulated code must use virtual "
           "time (sim::Simulator::Now)",
           token.text, out);
      continue;
    }
    if (kEnv.count(token.text) > 0 && NextIs(tokens, i, "(") && !env_exempt) {
      Emit(file, token, "env-read",
           token.text + "() makes behaviour depend on the host environment; only "
           "src/neat/campaign.cc may read the NEAT_* knobs",
           token.text, out);
      continue;
    }
  }
}

void CheckThreadPrimitives(const SourceFile& file, std::vector<Finding>* out) {
  if (!PathContains(file.path, "sim") && !PathContains(file.path, "systems")) {
    return;
  }
  static const std::set<std::string> kStdThreading = {
      "thread",        "jthread",        "mutex",
      "shared_mutex",  "recursive_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",        "atomic_flag",    "future",
      "promise",       "async",          "counting_semaphore",
      "binary_semaphore", "barrier",     "latch",
      "lock_guard",    "unique_lock",    "scoped_lock", "call_once", "once_flag",
  };
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokKind::kIdentifier) {
      continue;
    }
    const bool pthread = token.text.rfind("pthread_", 0) == 0;
    const bool std_qualified =
        i >= 3 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":" &&
        IsIdent(tokens[i - 3], "std") && kStdThreading.count(token.text) > 0;
    if (pthread || std_qualified) {
      Emit(file, token, "thread-primitive",
           "threading primitive '" + token.text + "' inside the single-threaded "
           "simulation layer; only the campaign runner may manage threads",
           token.text, out);
    }
  }
}

void CheckStaticLocals(const SourceFile& file, std::vector<Finding>* out) {
  if (!PathContains(file.path, "sim") && !PathContains(file.path, "systems") &&
      !PathContains(file.path, "cluster")) {
    return;
  }
  const std::vector<Token>& tokens = file.tokens;
  const std::vector<FunctionBody> bodies = FindFunctionBodies(tokens);
  for (const FunctionBody& body : bodies) {
    for (size_t i = body.begin + 1; i < body.end; ++i) {
      if (!IsIdent(tokens[i], "static")) {
        continue;
      }
      const Token& next = tokens[i + 1];
      if (next.kind == TokKind::kIdentifier &&
          (next.text == "const" || next.text == "constexpr" || next.text == "constinit")) {
        continue;  // immutable locals cannot carry state between runs
      }
      Emit(file, tokens[i], "static-local",
           "mutable function-local static in '" + body.name + "' leaks state "
           "across runs and campaign workers; make it per-instance",
           "static@" + body.name, out);
    }
  }
}

// Names of variables declared with an unordered container type anywhere in
// the file (members, locals, parameters).
std::set<std::string> UnorderedVariableNames(const std::vector<Token>& tokens) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  std::set<std::string> names;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier || kUnordered.count(tokens[i].text) == 0) {
      continue;
    }
    size_t j = i + 1;
    if (j >= tokens.size() || tokens[j].text != "<") {
      continue;
    }
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokKind::kPunct) {
        continue;
      }
      if (tokens[j].text == "<") {
        ++depth;
      } else if (tokens[j].text == ">") {
        if (--depth == 0) {
          break;
        }
      }
    }
    // Skip reference/pointer/cv tokens between the type and the name.
    for (++j; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*")) {
        continue;
      }
      if (IsIdent(t, "const")) {
        continue;
      }
      if (t.kind == TokKind::kIdentifier) {
        names.insert(t.text);
      }
      break;
    }
  }
  return names;
}

void CheckUnorderedIteration(const SourceFile& file, std::vector<Finding>* out) {
  const std::vector<Token>& tokens = file.tokens;
  const std::set<std::string> unordered = UnorderedVariableNames(tokens);
  if (unordered.empty()) {
    return;
  }
  static const std::set<std::string> kSinks = {"TraceLog",  "TraceEvent", "CoverageMap",
                                               "Digest",    "StateDigest", "StateHash"};
  for (const FunctionBody& body : FindFunctionBodies(tokens)) {
    bool sink = body.name == "StateDigest";
    for (size_t i = body.begin; i <= body.end && !sink; ++i) {
      if (tokens[i].kind == TokKind::kIdentifier &&
          (kSinks.count(tokens[i].text) > 0 ||
           (tokens[i].text == "Trace" && NextIs(tokens, i, "(")))) {
        sink = true;
      }
    }
    if (!sink) {
      continue;
    }
    for (size_t i = body.begin; i < body.end; ++i) {
      // Range-for over an unordered container: `for (... : expr)` where the
      // range expression mentions an unordered-typed variable.
      if (IsIdent(tokens[i], "for") && NextIs(tokens, i, "(")) {
        int depth = 0;
        size_t colon = 0;
        size_t close = 0;
        for (size_t j = i + 1; j < tokens.size(); ++j) {
          if (tokens[j].kind != TokKind::kPunct) {
            continue;
          }
          if (tokens[j].text == "(") {
            ++depth;
          } else if (tokens[j].text == ")") {
            if (--depth == 0) {
              close = j;
              break;
            }
          } else if (tokens[j].text == ":" && depth == 1 && colon == 0 &&
                     tokens[j - 1].text != ":" && tokens[j + 1].text != ":") {
            colon = j;
          }
        }
        if (colon != 0 && close != 0) {
          for (size_t j = colon + 1; j < close; ++j) {
            if (tokens[j].kind == TokKind::kIdentifier && unordered.count(tokens[j].text) > 0) {
              Emit(file, tokens[j], "unordered-iteration",
                   "iteration over unordered container '" + tokens[j].text + "' in '" +
                       body.name + "', which feeds a trace/digest; hash order is "
                       "not deterministic across libstdc++ builds — iterate a "
                       "sorted copy or an ordered container",
                   body.name + "/" + tokens[j].text, out);
              break;
            }
          }
        }
      }
      // Iterator-based: `container.begin()` and friends.
      if (tokens[i].kind == TokKind::kIdentifier && unordered.count(tokens[i].text) > 0 &&
          NextIs(tokens, i, ".") && i + 2 < tokens.size()) {
        const std::string& member = tokens[i + 2].text;
        if (member == "begin" || member == "cbegin" || member == "end" ||
            member == "cend") {
          Emit(file, tokens[i], "unordered-iteration",
               "iterator over unordered container '" + tokens[i].text + "' in '" +
                   body.name + "', which feeds a trace/digest; hash order is not "
                   "deterministic across libstdc++ builds",
               body.name + "/" + tokens[i].text, out);
        }
      }
    }
  }
}

// Trace record ids and causal edges must come from stable log positions
// (sim/trace.h): an id minted from a pointer value differs between the
// forked and the replayed execution of the same case and silently breaks
// the fork==replay byte-identity contract. Flag the two ways an address
// becomes an integer in src/: a reinterpret_cast to a (non-pointer)
// integral type, and any use of the uintptr_t/intptr_t conversion types.
void CheckAddressDerivedIds(const SourceFile& file, std::vector<Finding>* out) {
  if (!PathContains(file.path, "src")) {
    return;
  }
  static const std::set<std::string> kIntegral = {
      "uint64_t", "uint32_t", "uint16_t", "int64_t", "int32_t", "size_t",
      "uintptr_t", "intptr_t", "long", "int", "unsigned", "ptrdiff_t"};
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokKind::kIdentifier) {
      continue;
    }
    if (IsIdent(token, "reinterpret_cast") && NextIs(tokens, i, "<")) {
      // Scan the cast target up to the closing '>'. A '*' makes it a
      // pointer cast (no integer is minted); otherwise any integral name
      // in the target means address-to-integer.
      std::string integral;
      bool pointer_target = false;
      size_t j = i + 2;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].kind == TokKind::kPunct &&
            (tokens[j].text == ">" || tokens[j].text == "(")) {
          break;
        }
        if (tokens[j].kind == TokKind::kPunct && tokens[j].text == "*") {
          pointer_target = true;
        }
        if (tokens[j].kind == TokKind::kIdentifier && kIntegral.count(tokens[j].text) > 0) {
          integral = tokens[j].text;
        }
      }
      if (!integral.empty() && !pointer_target) {
        Emit(file, token, "address-derived-id",
             "reinterpret_cast to integral type '" + integral +
                 "' mints an address-derived value; ids fed to traces, causal "
                 "edges, or digests must be stable log positions (fork/replay "
                 "byte-identity)",
             "reinterpret_cast<" + integral + ">", out);
      }
      i = j;  // do not re-flag the conversion type inside the cast
      continue;
    }
    if (IsIdent(token, "uintptr_t") || IsIdent(token, "intptr_t")) {
      Emit(file, token, "address-derived-id",
           "pointer-to-integer type '" + token.text +
               "' — ids fed to traces, causal edges, or digests must be stable "
               "log positions, never addresses (fork/replay byte-identity)",
           token.text, out);
    }
  }
}

// --- model-safety rules -----------------------------------------------------

void CheckDigestConst(const SourceFile& file, std::vector<Finding>* out) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "StateDigest") || !NextIs(tokens, i, "(")) {
      continue;
    }
    if (IsMemberAccess(tokens, i)) {
      continue;  // a call site, not a declaration
    }
    // Declarations/definitions are preceded by the return type or by the
    // `::` of a qualified definition; calls are preceded by punctuation or
    // statement keywords.
    std::string subject = "StateDigest";
    if (i > 0 && tokens[i - 1].kind == TokKind::kIdentifier) {
      static const std::set<std::string> kStatementKeywords = {"return", "co_return",
                                                              "case", "co_await"};
      if (kStatementKeywords.count(tokens[i - 1].text) > 0) {
        continue;
      }
    } else if (i >= 2 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":") {
      if (i >= 3 && tokens[i - 3].kind == TokKind::kIdentifier) {
        subject = tokens[i - 3].text + "::StateDigest";
      }
    } else {
      continue;
    }
    // Find the `)` closing the (empty) parameter list, then look for
    // `const` before the body/terminator.
    size_t j = i + 1;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokKind::kPunct) {
        continue;
      }
      if (tokens[j].text == "(") {
        ++depth;
      } else if (tokens[j].text == ")") {
        if (--depth == 0) {
          break;
        }
      }
    }
    bool is_const = false;
    bool terminated = false;
    for (++j; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (IsIdent(t, "const")) {
        is_const = true;
        break;
      }
      if (t.kind == TokKind::kPunct && (t.text == "{" || t.text == ";" || t.text == "=")) {
        terminated = true;
        break;
      }
    }
    if (!is_const && (terminated || j >= tokens.size())) {
      Emit(file, tokens[i], "digest-nonconst",
           "'" + subject + "' is not const: a state digest is a read-only probe — "
           "a mutating digest perturbs the very run it observes",
           subject, out);
    }
  }
}

void CheckSnapshotConst(const SourceFile& file, std::vector<Finding>* out) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "Snapshot") || !NextIs(tokens, i, "(")) {
      continue;
    }
    if (IsMemberAccess(tokens, i)) {
      continue;  // a call site (x.Snapshot() / x->Snapshot()), not a declaration
    }
    // Declarations are preceded by the return type — an identifier or the
    // closing `>` of a template like std::unique_ptr<SystemState> — or by
    // the `::` of a qualified definition. Calls are preceded by punctuation
    // or statement keywords.
    std::string subject = "Snapshot";
    if (i > 0 && tokens[i - 1].kind == TokKind::kIdentifier) {
      static const std::set<std::string> kStatementKeywords = {"return", "co_return",
                                                              "case", "co_await"};
      if (kStatementKeywords.count(tokens[i - 1].text) > 0) {
        continue;
      }
    } else if (i >= 2 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":") {
      if (i >= 3 && tokens[i - 3].kind == TokKind::kIdentifier) {
        subject = tokens[i - 3].text + "::Snapshot";
      }
    } else if (i > 0 && tokens[i - 1].kind == TokKind::kPunct && tokens[i - 1].text == ">") {
      // Template return type; `->` was already excluded by IsMemberAccess.
    } else {
      continue;
    }
    size_t j = i + 1;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokKind::kPunct) {
        continue;
      }
      if (tokens[j].text == "(") {
        ++depth;
      } else if (tokens[j].text == ")") {
        if (--depth == 0) {
          break;
        }
      }
    }
    bool is_const = false;
    bool terminated = false;
    for (++j; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (IsIdent(t, "const")) {
        is_const = true;
        break;
      }
      if (t.kind == TokKind::kPunct && (t.text == "{" || t.text == ";" || t.text == "=")) {
        terminated = true;
        break;
      }
    }
    if (!is_const && (terminated || j >= tokens.size())) {
      Emit(file, tokens[i], "snapshot-nonconst",
           "'" + subject + "' is not const: capturing a fork snapshot must not "
           "perturb the run, or forked executions diverge from replays",
           subject, out);
    }
  }
}

// Whole-project pass: every net::Message subclass must have a dynamic_cast
// dispatch site somewhere, or carry an explicit suppression — the silent
// unhandled-protocol-event omission the paper catalogs.
void CheckUnhandledMessages(const std::vector<SourceFile>& sources,
                            std::vector<Finding>* out) {
  struct MessageDef {
    const SourceFile* file;
    Token token;
    std::string name;
  };
  std::vector<MessageDef> messages;
  std::set<std::string> handled;
  for (const SourceFile& file : sources) {
    // bench/ carries only the determinism rules; a bench-local probe
    // message is not protocol surface. Its dispatch sites still count as
    // handling for message types defined elsewhere.
    const bool collect_defs = !PathContains(file.path, "bench");
    const std::vector<Token>& tokens = file.tokens;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      // `struct Name : ... Message ... {`
      if ((IsIdent(tokens[i], "struct") || IsIdent(tokens[i], "class")) &&
          tokens[i + 1].kind == TokKind::kIdentifier &&
          i + 2 < tokens.size() && tokens[i + 2].text == ":") {
        bool message_base = false;
        size_t j = i + 2;
        for (; j < tokens.size(); ++j) {
          if (tokens[j].kind == TokKind::kPunct && (tokens[j].text == "{" || tokens[j].text == ";")) {
            break;
          }
          if (IsIdent(tokens[j], "Message")) {
            message_base = true;
          }
        }
        if (collect_defs && message_base && j < tokens.size() &&
            tokens[j].text == "{") {
          messages.push_back(MessageDef{&file, tokens[i + 1], tokens[i + 1].text});
        }
      }
      // `dynamic_cast<const ns::Name*>` — the last identifier inside the
      // template argument is the dispatched message type.
      if (IsIdent(tokens[i], "dynamic_cast") && NextIs(tokens, i, "<")) {
        std::string last_ident;
        for (size_t j = i + 2; j < tokens.size(); ++j) {
          if (tokens[j].kind == TokKind::kIdentifier) {
            last_ident = tokens[j].text;
          } else if (tokens[j].kind == TokKind::kPunct && tokens[j].text == ">") {
            break;
          }
        }
        if (!last_ident.empty()) {
          handled.insert(last_ident);
        }
      }
    }
  }
  for (const MessageDef& message : messages) {
    if (handled.count(message.name) > 0) {
      continue;
    }
    Emit(*message.file, message.token, "unhandled-message",
         "message type '" + message.name + "' has no dynamic_cast dispatch site in "
         "the tree: a node receiving it will drop it on the floor — handle it or "
         "suppress with the reason it is consumed another way",
         message.name, out);
  }
}

void CheckBadSuppressions(const SourceFile& file, std::vector<Finding>* out) {
  for (int line : file.bad_suppression_lines) {
    Finding finding;
    finding.rule = "bad-suppression";
    finding.file = file.path;
    finding.line = line;
    finding.column = 1;
    finding.message =
        "malformed detlint suppression: the syntax is "
        "`// detlint: allow(<rule>): <reason>` and the reason is mandatory";
    finding.snippet = SnippetAt(file, line);
    finding.subject = "suppression";
    out->push_back(std::move(finding));
  }
}

}  // namespace

int AnalysisResult::NewCount() const {
  int count = 0;
  for (const Finding& finding : findings) {
    if (!finding.baselined) {
      ++count;
    }
  }
  return count;
}

AnalysisResult Analyze(const std::vector<SourceFile>& sources,
                       const std::multimap<std::string, int>& baseline) {
  return Analyze(sources, std::vector<ScnSource>(), baseline);
}

AnalysisResult Analyze(const std::vector<SourceFile>& sources,
                       const std::vector<ScnSource>& scenarios,
                       const std::multimap<std::string, int>& baseline) {
  AnalysisResult result;
  result.files_scanned = static_cast<int>(sources.size() + scenarios.size());
  std::vector<Finding> raw;
  for (const SourceFile& file : sources) {
    // Files under bench/ carry only the sim-scope determinism rules
    // (wall-clock, raw-rand): benches run on the host and may thread or
    // iterate freely, but their BENCH_*.json trajectories are part of the
    // perf record and must replay from the seed like everything else.
    if (PathContains(file.path, "bench")) {
      CheckBannedIdentifiers(file, &raw);
      CheckBadSuppressions(file, &raw);
      continue;
    }
    CheckBannedIdentifiers(file, &raw);
    CheckThreadPrimitives(file, &raw);
    CheckStaticLocals(file, &raw);
    CheckUnorderedIteration(file, &raw);
    CheckAddressDerivedIds(file, &raw);
    CheckDigestConst(file, &raw);
    CheckSnapshotConst(file, &raw);
    CheckBadSuppressions(file, &raw);
  }
  CheckUnhandledMessages(sources, &raw);
  const Index index = BuildIndex(sources);
  CheckStructuralRules(index, &raw);
  CheckScenarios(scenarios, index, &raw);

  // Apply inline suppressions. A trailing allow() (code on the same line)
  // covers that line; an allow() on its own comment line — possibly inside
  // a multi-line comment block — covers the next line that has code.
  // bad-suppression findings cannot be suppressed.
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : sources) {
    by_path[file.path] = &file;
  }
  std::map<const SourceFile*, std::set<int>> token_lines;
  for (const SourceFile& file : sources) {
    for (const Token& token : file.tokens) {
      token_lines[&file].insert(token.line);
    }
  }
  auto target_line = [&token_lines](const SourceFile* file, const Suppression& s) {
    const std::set<int>& lines = token_lines[file];
    if (lines.count(s.line) > 0) {
      return s.line;  // trailing comment: covers its own line
    }
    auto next = lines.upper_bound(s.line);
    return next == lines.end() ? s.line : *next;
  };
  // snapshot-field-coverage accepts the shorthand allow(snapshot-field):
  // the rule id names the analysis; the suppression names the exemption.
  auto rule_matches = [](const std::string& allowed, const std::string& rule) {
    if (allowed == rule) {
      return true;
    }
    return allowed == "snapshot-field" && rule == "snapshot-field-coverage";
  };
  std::vector<Finding> kept;
  for (Finding& finding : raw) {
    bool suppressed = false;
    if (finding.rule != "bad-suppression") {
      auto it = by_path.find(finding.file);
      // Scenario-corpus findings have no tokenized SourceFile (and .scn
      // files carry no suppression syntax); only the baseline covers them.
      const SourceFile* file = it == by_path.end() ? nullptr : it->second;
      if (file != nullptr) {
        for (const Suppression& suppression : file->suppressions) {
          if (rule_matches(suppression.rule, finding.rule) &&
              target_line(file, suppression) == finding.line) {
            suppressed = true;
            break;
          }
        }
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      kept.push_back(std::move(finding));
    }
  }

  // Baseline matching consumes grandfathered entries by stable key.
  std::map<std::string, int> budget;
  for (const auto& [key, count] : baseline) {
    budget[key] += count;
  }
  for (Finding& finding : kept) {
    auto it = budget.find(BaselineKey(finding));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      finding.baselined = true;
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.column != b.column) {
      return a.column < b.column;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    // Structural rules can anchor several findings at one token (e.g. two
    // missing overrides on the same class line); the subject breaks the tie
    // so report order never depends on emission order.
    return a.subject < b.subject;
  });
  result.findings = std::move(kept);
  return result;
}

}  // namespace detlint
