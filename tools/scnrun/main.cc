// scnrun: parse and execute ".scn" scenario files (src/scenario/).
//
//   scnrun file.scn...                 run every expect block, report verdicts
//   scnrun --parse-only file.scn...    syntax/semantic gate only (CI schema check)
//   scnrun --variant flawed file.scn   run one variant regardless of expect blocks
//   scnrun --list file.scn...          one line per scenario: name, system,
//                                      preset, variants — no execution
//
// Exit code 0 iff every file parsed (and, unless --parse-only or --list,
// every expectation of every executed variant held).

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/executor.h"
#include "scenario/parser.h"

namespace {

const char* ExpectationName(const scenario::Expectation& expectation) {
  switch (expectation.kind) {
    case scenario::Expectation::Kind::kClean:
      return "clean";
    case scenario::Expectation::Kind::kViolation:
      return "violation";
    case scenario::Expectation::Kind::kLinearizable:
      return "linearizable";
    case scenario::Expectation::Kind::kNoLostOps:
      return "no-lost-ops";
    case scenario::Expectation::Kind::kNoCascade:
      return "no-cascade";
    case scenario::Expectation::Kind::kStatusConverges:
      return "status-converges";
  }
  return "?";
}

bool ReportOutcome(const scenario::Scenario& scn, const scenario::RunOutcome& outcome) {
  std::printf("%s [%s]: ", scn.name.c_str(), scenario::VariantName(outcome.variant));
  if (scn.campaign.present) {
    std::printf("%llu cases, %llu failures",
                static_cast<unsigned long long>(outcome.cases_run),
                static_cast<unsigned long long>(outcome.failures));
  } else {
    std::printf("%llu violations", static_cast<unsigned long long>(outcome.failures));
  }
  if (!outcome.signature.empty()) {
    std::printf(" (%s)", outcome.signature.c_str());
  }
  std::printf(", digest %s\n", outcome.digest.c_str());
  for (const scenario::ExpectationOutcome& judged : outcome.expectations) {
    // Failed expectations carry the scenario name so a grep over a
    // multi-file run's output stays attributable without the header line.
    if (judged.passed) {
      std::printf("  PASS %d:%d %s", judged.expectation.line,
                  judged.expectation.column, ExpectationName(judged.expectation));
    } else {
      std::printf("  FAIL [%s] %d:%d %s", scn.name.c_str(),
                  judged.expectation.line, judged.expectation.column,
                  ExpectationName(judged.expectation));
    }
    if (!judged.expectation.needle.empty()) {
      std::printf(" \"%s\"", judged.expectation.needle.c_str());
    }
    if (!judged.detail.empty()) {
      std::printf(" — %s", judged.detail.c_str());
    }
    std::printf("\n");
  }
  return outcome.passed;
}

}  // namespace

void ListScenario(const std::string& file, const scenario::Scenario& scn) {
  std::string variants;
  for (const scenario::ExpectBlock& block : scn.expects) {
    if (!variants.empty()) {
      variants += ",";
    }
    variants += scenario::VariantName(block.variant);
  }
  std::printf("%-32s %-8s %-12s [%s] %s\n", scn.name.c_str(), scn.system.c_str(),
              scn.preset.empty() ? "-" : scn.preset.c_str(),
              variants.empty() ? "-" : variants.c_str(), file.c_str());
}

int main(int argc, char** argv) {
  bool parse_only = false;
  bool list_only = false;
  bool variant_set = false;
  scenario::Variant variant = scenario::Variant::kFlawed;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--parse-only") {
      parse_only = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--variant") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scnrun: --variant needs an argument (flawed|correct)\n");
        return 2;
      }
      const std::string value = argv[++i];
      if (value == "flawed") {
        variant = scenario::Variant::kFlawed;
      } else if (value == "correct") {
        variant = scenario::Variant::kCorrect;
      } else {
        std::fprintf(stderr, "scnrun: unknown variant '%s'\n", value.c_str());
        return 2;
      }
      variant_set = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(
          stderr,
          "usage: scnrun [--parse-only] [--list] [--variant flawed|correct] file.scn...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(
        stderr,
        "usage: scnrun [--parse-only] [--list] [--variant flawed|correct] file.scn...\n");
    return 2;
  }

  bool ok = true;
  for (const std::string& file : files) {
    const scenario::ParseResult parsed = scenario::ParseFile(file);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s", scenario::FormatDiagnostics(parsed, file).c_str());
      ok = false;
      continue;
    }
    if (list_only) {
      ListScenario(file, parsed.scenario);
      continue;
    }
    if (parse_only) {
      std::printf("%s: ok (%s)\n", file.c_str(), parsed.scenario.name.c_str());
      continue;
    }
    if (variant_set) {
      ok = ReportOutcome(parsed.scenario,
                         scenario::RunScenarioVariant(parsed.scenario, variant)) &&
           ok;
      continue;
    }
    for (const scenario::RunOutcome& outcome : scenario::RunScenario(parsed.scenario)) {
      ok = ReportOutcome(parsed.scenario, outcome) && ok;
    }
  }
  return ok ? 0 : 1;
}
