// Incremental trace folding.
//
// TraceCoverage (neat/coverage.h) and Summarize (neat/trace_report.h) are
// left-folds over the simulation trace, but were historically written as
// whole-trace scans. For the fork executor (neat/fork.h) that re-scan was
// the same waste the snapshots eliminate for execution: a forked case paid
// O(full trace) at Finish even though everything before its fork point had
// been scanned by the parent already. TraceScan is the fold's state made
// explicit — a value that advances over newly appended records, travels
// inside runner snapshots, and rewinds with a Restore, so a forked case
// only ever folds its own suffix.
//
// The full-scan entry points are wrappers over a fresh TraceScan, so the
// incremental and one-shot paths cannot drift apart.

#ifndef NEAT_TRACE_SCAN_H_
#define NEAT_TRACE_SCAN_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/causal.h"
#include "neat/trace_report.h"
#include "sim/trace.h"

namespace neat {

class TraceScan {
 public:
  // Folds the records appended since the last Advance (all of them on a
  // fresh scan). The trace must be the same log the scan has been following
  // and must not have been truncated below the scan's position — the fork
  // machinery guarantees both by restoring scan state and trace together.
  // When the trace is in causal mode, the embedded CausalFold advances in
  // lockstep (also suffix-only), feeding the "cy:" feature family.
  void Advance(const sim::TraceLog& trace);

  // The features TraceCoverage(trace) would return for the records folded
  // so far: sorted, distinct "bi:" bigram, "ph:" phase, and (causal mode
  // only) "cy:" cascade-signature features. Event names and message types
  // are escaped (check::EscapeLabelAtom) before being joined, so a name
  // containing '>' or ':' cannot collide with a different bigram or phase
  // sighting.
  std::vector<std::string> Features() const;

  // The report Summarize(trace) would return for the records folded so far.
  // Leadership records are stored as indices while folding (cheap to copy
  // into snapshots) and materialized from `trace` here.
  TraceReport Report(const sim::TraceLog& trace) const;

  size_t position() const { return pos_; }

 private:
  // Heterogeneous comparators so per-record membership probes use views
  // parsed out of the live records instead of materializing keys.
  struct PairLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      const int first = std::string_view(a.first).compare(std::string_view(b.first));
      if (first != 0) {
        return first < 0;
      }
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };
  struct PhaseLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };

  size_t pos_ = 0;

  // Coverage fold: distinct consecutive event-name pairs and distinct
  // (phase, name) sightings; owned strings because record storage may move
  // between Advance calls. (The record before pos_ always survives a
  // restore — truncation stops at the snapshot's size — so bigrams can
  // bridge Advance calls by reading records()[i - 1] directly.)
  std::set<std::pair<std::string, std::string>, PairLess> bigrams_;
  char phase_ = 'b';
  std::set<std::pair<char, std::string>, PhaseLess> phase_features_;

  // Report fold (mirrors Summarize's accumulation).
  std::map<std::string, size_t, std::less<>> event_counts_;
  std::map<std::string, size_t, std::less<>> drops_per_link_;
  std::vector<size_t> leadership_records_;

  // Cascade fold, advanced only for causal-mode traces (a non-causal trace
  // has no message edges, so folding it would find nothing). Value state:
  // copies into snapshots and rewinds with the rest of the scan.
  check::CausalFold causal_;
};

}  // namespace neat

#endif  // NEAT_TRACE_SCAN_H_
