#include "neat/trace_scan.h"

#include <algorithm>

namespace neat {
namespace {

// The first whitespace-separated token of a net "drop" detail — the
// directed link ("3->1"). A detail with no separator is used whole, so
// per-link totals always sum to the drop count.
std::string_view DroppedLink(const std::string& detail) {
  const size_t space = detail.find(' ');
  return std::string_view(detail).substr(0, space == std::string::npos ? detail.size() : space);
}

// The second whitespace-separated token of a net "drop" detail
// ("3->1 pbkv.Replicate (partitioned at send)") — the message type.
std::string_view DroppedMessageType(const std::string& detail) {
  const size_t first_space = detail.find(' ');
  if (first_space == std::string::npos) {
    return detail;
  }
  const size_t start = first_space + 1;
  const size_t end = detail.find(' ', start);
  return std::string_view(detail).substr(
      start, end == std::string::npos ? std::string::npos : end - start);
}

// The events that describe leadership movement across the model systems.
bool IsLeadershipEvent(const std::string& event) {
  return event == "election-start" || event == "elected" || event == "step-down" ||
         event == "election-timeout" || event == "vote" || event == "master" ||
         event == "resign" || event == "demoted";
}

}  // namespace

void TraceScan::Advance(const sim::TraceLog& trace) {
  if (trace.causal()) {
    causal_.Advance(trace);
  }
  const std::vector<sim::TraceRecord>& records = trace.records();
  // Traces are bursty — runs of the same event name — so a cached counter
  // iterator and last-bigram check skip most of the per-record lookups.
  auto counted = event_counts_.end();
  std::pair<std::string_view, std::string_view> last_bigram{};
  bool have_last = false;
  for (size_t i = pos_; i < records.size(); ++i) {
    const sim::TraceRecord& record = records[i];

    if (i > 0) {
      const std::pair<std::string_view, std::string_view> bigram{records[i - 1].event,
                                                                 record.event};
      if (!have_last || bigram != last_bigram) {
        last_bigram = bigram;
        have_last = true;
        if (bigrams_.find(bigram) == bigrams_.end()) {
          bigrams_.emplace(bigram.first, bigram.second);
        }
      }
    }

    if (counted == event_counts_.end() || counted->first != record.event) {
      counted = event_counts_.try_emplace(record.event, 0).first;
    }
    ++counted->second;
    if (IsLeadershipEvent(record.event)) {
      leadership_records_.push_back(i);
    }

    if (record.component == "neat") {
      if (record.event == "partition") {
        phase_ = 'p';
      } else if (record.event == "heal") {
        phase_ = 'h';
      }
      continue;
    }
    std::string_view name;
    if (record.component == "net") {
      if (record.event != "drop") {
        continue;
      }
      const std::string_view link = DroppedLink(record.detail);
      const auto it = drops_per_link_.find(link);
      if (it == drops_per_link_.end()) {
        drops_per_link_.emplace(std::string(link), 1);
      } else {
        ++it->second;
      }
      name = DroppedMessageType(record.detail);
    } else {
      // System-level records (elections, step-downs, session expiries):
      // the event name by phase.
      name = record.event;
    }
    const std::pair<char, std::string_view> sighting{phase_, name};
    if (phase_features_.find(sighting) == phase_features_.end()) {
      phase_features_.emplace(phase_, std::string(name));
    }
  }
  pos_ = records.size();
}

std::vector<std::string> TraceScan::Features() const {
  std::vector<std::string> features;
  features.reserve(bigrams_.size() + phase_features_.size());
  // Atoms are escaped before joining so that an event named "a>b" cannot
  // fabricate the bigram ("a", "b"), nor one named "p:x" a phase sighting.
  // Escaping is the identity on every name the model systems emit today,
  // so existing coverage digests are unchanged (pinned by neat_test).
  for (const auto& [a, b] : bigrams_) {
    features.push_back("bi:" + check::EscapeLabelAtom(a) + ">" + check::EscapeLabelAtom(b));
  }
  for (const auto& [phase, name] : phase_features_) {
    features.push_back(std::string("ph:") + phase + ":" + check::EscapeLabelAtom(name));
  }
  for (const check::Cascade& cascade : causal_.Cascades()) {
    features.push_back("cy:" + cascade.signature);
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()), features.end());
  return features;
}

TraceReport TraceScan::Report(const sim::TraceLog& trace) const {
  TraceReport report;
  report.total_records = pos_;
  report.event_counts = event_counts_;
  report.drops_per_link = drops_per_link_;
  report.leadership_events.reserve(leadership_records_.size());
  for (const size_t index : leadership_records_) {
    report.leadership_events.push_back(trace.records()[index]);
  }
  return report;
}

}  // namespace neat
