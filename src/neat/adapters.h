// ISystem adapters for the model systems, plus the executor that runs
// generated test cases (neat/testgen.h) against the primary-backup store.
// Together these are the "seven systems tested with NEAT" layer of the
// paper, scaled to the systems this repository implements.

#ifndef NEAT_ADAPTERS_H_
#define NEAT_ADAPTERS_H_

#include <memory>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "neat/system.h"
#include "neat/testgen.h"
#include "systems/locksvc/cluster.h"
#include "systems/mqueue/cluster.h"
#include "systems/pbkv/cluster.h"
#include "systems/raftkv/cluster.h"
#include "systems/sched/cluster.h"

namespace neat {

class PbkvSystem : public ISystem {
 public:
  explicit PbkvSystem(const pbkv::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "pbkv"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.server_ids(); }
  bool GetStatus() override { return cluster_.FindPrimary() != net::kInvalidNode; }
  void Shutdown() override { cluster_.env().Crash(cluster_.server_ids()); }
  pbkv::Cluster& cluster() { return cluster_; }

 private:
  pbkv::Cluster cluster_;
};

class RaftKvSystem : public ISystem {
 public:
  explicit RaftKvSystem(const raftkv::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "raftkv"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.server_ids(); }
  bool GetStatus() override { return !cluster_.Leaders().empty(); }
  void Shutdown() override { cluster_.env().Crash(cluster_.server_ids()); }
  raftkv::Cluster& cluster() { return cluster_; }

 private:
  raftkv::Cluster cluster_;
};

class LocksvcSystem : public ISystem {
 public:
  explicit LocksvcSystem(const locksvc::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "locksvc"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.server_ids(); }
  bool GetStatus() override;
  void Shutdown() override { cluster_.env().Crash(cluster_.server_ids()); }
  locksvc::Cluster& cluster() { return cluster_; }

 private:
  locksvc::Cluster cluster_;
};

class MqueueSystem : public ISystem {
 public:
  explicit MqueueSystem(const mqueue::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "mqueue"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.broker_ids(); }
  bool GetStatus() override { return cluster_.MasterPerRegistry() != net::kInvalidNode; }
  void Shutdown() override { cluster_.env().Crash(cluster_.broker_ids()); }
  mqueue::Cluster& cluster() { return cluster_; }

 private:
  mqueue::Cluster cluster_;
};

class SchedSystem : public ISystem {
 public:
  explicit SchedSystem(const sched::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "sched"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.worker_ids(); }
  bool GetStatus() override { return !cluster_.rm().crashed(); }
  void Shutdown() override;
  sched::Cluster& cluster() { return cluster_; }

 private:
  sched::Cluster cluster_;
};

// --- test-case executor ---

struct ExecutionResult {
  // Catastrophic violations found by the checkers after the run.
  std::vector<check::Violation> violations;
  bool found_failure = false;
  std::string trace;  // the executed event sequence
};

// Runs one abstract test case against a fresh pbkv cluster with the given
// options. Client events on the minority side go through a client pinned to
// the isolated node; majority-side events go through a client pinned to the
// surviving majority. After the sequence, the partition is healed, the
// system settles, final verification reads run, and the checkers scan the
// history. Stale reads count as failures only under strong consistency
// (`strong` flag), matching the paper's classification.
ExecutionResult RunPbkvTestCase(const pbkv::Options& options, const TestCase& test_case,
                                uint64_t seed, bool strong = true);

// The same executor against the lock service: lock/unlock events map to the
// locksvc client API, and the broken-locks checker judges the run.
ExecutionResult RunLocksvcTestCase(const locksvc::Options& options, const TestCase& test_case,
                                   uint64_t seed);

}  // namespace neat

#endif  // NEAT_ADAPTERS_H_
