// ISystem adapters for the model systems, plus the executors that run
// generated test cases (neat/testgen.h) against them. Together these are
// the "seven systems tested with NEAT" layer of the paper, scaled to the
// systems this repository implements. Executors plug into the campaign
// runner (neat/campaign.h) through the SystemFactory/CaseExecutor
// interface, so a sweep can target any model system.

#ifndef NEAT_ADAPTERS_H_
#define NEAT_ADAPTERS_H_

#include <memory>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "neat/campaign.h"
#include "neat/fork.h"
#include "neat/system.h"
#include "neat/testgen.h"
#include "systems/locksvc/cluster.h"
#include "systems/mqueue/cluster.h"
#include "systems/pbkv/cluster.h"
#include "systems/raftkv/cluster.h"
#include "systems/sched/cluster.h"

namespace neat {

class PbkvSystem : public ISystem {
 public:
  explicit PbkvSystem(const pbkv::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "pbkv"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.server_ids(); }
  bool GetStatus() override { return cluster_.FindPrimary() != net::kInvalidNode; }
  uint64_t StateDigest() const override;  // who is primary
  void Shutdown() override { cluster_.env().Crash(cluster_.server_ids()); }
  std::unique_ptr<SystemState> Snapshot() const override;
  void Restore(const SystemState& state) override;
  pbkv::Cluster& cluster() { return cluster_; }
  const pbkv::Cluster& cluster() const { return cluster_; }

 private:
  pbkv::Cluster cluster_;
};

class RaftKvSystem : public ISystem {
 public:
  explicit RaftKvSystem(const raftkv::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "raftkv"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.server_ids(); }
  bool GetStatus() override { return !cluster_.Leaders().empty(); }
  uint64_t StateDigest() const override;  // the set of self-believed leaders
  void Shutdown() override { cluster_.env().Crash(cluster_.server_ids()); }
  std::unique_ptr<SystemState> Snapshot() const override;
  void Restore(const SystemState& state) override;
  raftkv::Cluster& cluster() { return cluster_; }
  const raftkv::Cluster& cluster() const { return cluster_; }

 private:
  raftkv::Cluster cluster_;
};

class LocksvcSystem : public ISystem {
 public:
  explicit LocksvcSystem(const locksvc::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "locksvc"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.server_ids(); }
  bool GetStatus() override;
  // Per-server membership views. GetStatus() probes with a real lock
  // round-trip and would perturb the run, so the digest reads the views
  // directly instead.
  uint64_t StateDigest() const override;
  void Shutdown() override { cluster_.env().Crash(cluster_.server_ids()); }
  // The snapshot includes the status-probe counter: probe lock names land
  // in the history, so a forked run must reuse the same sequence.
  std::unique_ptr<SystemState> Snapshot() const override;
  void Restore(const SystemState& state) override;
  locksvc::Cluster& cluster() { return cluster_; }
  const locksvc::Cluster& cluster() const { return cluster_; }

 private:
  locksvc::Cluster cluster_;
  // Per-instance (not static): campaign workers probe concurrently.
  int status_probe_ = 0;
};

class MqueueSystem : public ISystem {
 public:
  explicit MqueueSystem(const mqueue::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "mqueue"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.broker_ids(); }
  bool GetStatus() override { return cluster_.MasterPerRegistry() != net::kInvalidNode; }
  uint64_t StateDigest() const override;  // registry master + self-believed masters
  void Shutdown() override { cluster_.env().Crash(cluster_.broker_ids()); }
  std::unique_ptr<SystemState> Snapshot() const override;
  void Restore(const SystemState& state) override;
  mqueue::Cluster& cluster() { return cluster_; }
  const mqueue::Cluster& cluster() const { return cluster_; }

 private:
  mqueue::Cluster cluster_;
};

class SchedSystem : public ISystem {
 public:
  explicit SchedSystem(const sched::Cluster::Config& config) : cluster_(config) {}
  std::string Name() const override { return "sched"; }
  TestEnv& Env() override { return cluster_.env(); }
  net::Group Servers() const override { return cluster_.worker_ids(); }
  bool GetStatus() override { return !cluster_.rm().crashed(); }
  // Mirrors the ISystem default's healthy/unhealthy constants (keyed off
  // the same resource-manager liveness GetStatus reports) so existing sd:
  // coverage features are unchanged, but through a const read-only probe.
  uint64_t StateDigest() const override {
    return !cluster_.rm().crashed() ? 0x9e3779b97f4a7c15ull : 0x94d049bb133111ebull;
  }
  void Shutdown() override;
  sched::Cluster& cluster() { return cluster_; }

 private:
  sched::Cluster cluster_;
};

// --- system factories ---

// Builds a fresh, fully booted ISystem for one campaign case. Campaign
// workers each construct their own instance, so factories must capture only
// immutable configuration. (ExecutionResult lives in neat/campaign.h.)
using SystemFactory = std::function<std::unique_ptr<ISystem>(uint64_t seed)>;

SystemFactory MakePbkvFactory(const pbkv::Options& options);
SystemFactory MakeRaftKvFactory(int num_servers = 3);
SystemFactory MakeLocksvcFactory(const locksvc::Options& options);
SystemFactory MakeMqueueFactory();
SystemFactory MakeSchedFactory();

// --- test-case executors ---

// Wraps the per-system runners below as campaign executors: each call
// builds a fresh cluster from the captured options, so the returned
// executor is safe to invoke concurrently from campaign workers.
CaseExecutor PbkvCaseExecutor(const pbkv::Options& options, bool strong = true);
CaseExecutor LocksvcCaseExecutor(const locksvc::Options& options);
CaseExecutor RaftKvCaseExecutor(const raftkv::Options& options);
CaseExecutor MqueueCaseExecutor(const mqueue::Options& options);

// --- fork-executor runner factories (neat/fork.h) ---
//
// Each factory builds the same runner the Run*TestCase executors drive,
// exposed step by step so a ForkingExecutor can snapshot between events
// and fork suffixes off shared prefixes. A forked run is byte-identical to
// the corresponding Run*TestCase replay.
RunnerFactory PbkvRunnerFactory(const pbkv::Options& options, bool strong = true);
RunnerFactory LocksvcRunnerFactory(const locksvc::Options& options);
RunnerFactory RaftKvRunnerFactory(const raftkv::Options& options);
RunnerFactory MqueueRunnerFactory(const mqueue::Options& options);

// A system-agnostic executor over any SystemFactory: it drives only the
// partition/heal events of the test case (client events need a concrete
// client API and are skipped), heals, and reports "data unavailability"
// when the healed system cannot make progress (ISystem::GetStatus). The
// weakest checker — it sees no operation history — but it lets a campaign
// sweep every model system.
CaseExecutor StatusProbeExecutor(SystemFactory factory);

// Runs one abstract test case against a fresh pbkv cluster with the given
// options. Client events on the minority side go through a client pinned to
// the isolated node; majority-side events go through a client pinned to the
// surviving majority. After the sequence, the partition is healed, the
// system settles, final verification reads run, and the checkers scan the
// history. Stale reads count as failures only under strong consistency
// (`strong` flag), matching the paper's classification.
ExecutionResult RunPbkvTestCase(const pbkv::Options& options, const TestCase& test_case,
                                uint64_t seed, bool strong = true);

// The same executor against the lock service: lock/unlock events map to the
// locksvc client API, and the broken-locks checker judges the run.
ExecutionResult RunLocksvcTestCase(const locksvc::Options& options, const TestCase& test_case,
                                   uint64_t seed);

// The raftkv executor (RethinkDB analog): write/read/delete events map to
// the KV API on a 5-server cluster. A partial partition reproduces the
// #5289 topology — two replicas orphaned behind the cut, a bridge replica
// reaching both sides, and an admin that shrinks the member set to the
// leader's side while the partition is up (the membership change is part
// of the fault model, not the event alphabet, mirroring how the paper's
// RethinkDB failure needs an admin action during the partition). Judged by
// the KV checkers plus the linearizability checker.
ExecutionResult RunRaftKvTestCase(const raftkv::Options& options, const TestCase& test_case,
                                  uint64_t seed);

// The mqueue executor (ActiveMQ analog): write/read events map to
// send/receive. Setup enqueues one fully replicated message, so a
// partition-first case can still dequeue on both sides of the cut — the
// shape of the AMQ-6978 double dequeue. The partition universe includes
// the coordination service on the majority side (an isolated master's
// session expires and the survivors elect a replacement, Figure 6), and a
// final majority-side drain empties the queue for the double-dequeue and
// lost-message checkers.
ExecutionResult RunMqueueTestCase(const mqueue::Options& options, const TestCase& test_case,
                                  uint64_t seed);

}  // namespace neat

#endif  // NEAT_ADAPTERS_H_
