#include "neat/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

namespace neat {
namespace {

using Clock = std::chrono::steady_clock;

// Streaming campaigns pre-count the suite for progress totals only while
// the count stays below this; beyond it the walk would cost real time and
// the total is reported as 0 ("unknown").
constexpr uint64_t kPrecountLimit = 1000000;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct WorkItem {
  uint64_t index = 0;
  TestCase test_case;
};

// Runs `worker(shard)` on `threads` threads (inline when threads == 1).
void RunOnPool(int threads, const std::function<void(int)>& worker) {
  if (threads <= 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int shard = 0; shard < threads; ++shard) {
    pool.emplace_back(worker, shard);
  }
  for (std::thread& thread : pool) {
    thread.join();
  }
}

// The triage post-pass: shrink the earliest failing run of every unique
// signature to a minimal repro, fanned out over the worker pool. Each
// minimization is a pure function of (case, seed, executor), and results
// are stored by signature rank, so the output is byte-identical at any
// thread count.
void MinimizeFailures(CampaignResult* result, const CaseExecutor& executor,
                      const CampaignOptions& options, int threads) {
  std::vector<const CaseResult*> representatives;
  std::set<std::string> seen;
  for (const CaseResult& run : result->cases) {
    if (run.found_failure && seen.insert(run.signature).second) {
      representatives.push_back(&run);
    }
  }
  std::sort(representatives.begin(), representatives.end(),
            [](const CaseResult* a, const CaseResult* b) {
              return a->signature < b->signature;
            });
  result->minimized.resize(representatives.size());
  std::atomic<size_t> next{0};
  RunOnPool(std::min<int>(threads, static_cast<int>(representatives.size())),
            [&](int /*shard*/) {
              for (;;) {
                const size_t i = next.fetch_add(1);
                if (i >= representatives.size()) {
                  break;
                }
                result->minimized[i] = MinimizeCase(
                    representatives[i]->test_case, representatives[i]->seed, executor,
                    options.minimize);
              }
            });
}

// The shared driver behind both RunCampaign overloads. `next_case` is the
// work queue head: workers serialize on it to pull the next (index, case)
// pair, then execute every seed of that case without further coordination.
// Each worker appends into its own shard; the final sort by (case_index,
// seed) restores generation order, so aggregation never sees thread
// scheduling.
CampaignResult RunWithSource(const std::function<bool(WorkItem*)>& next_case,
                             const CaseExecutor& executor, const CampaignOptions& options,
                             uint64_t total_cases) {
  const int seeds = std::max(1, options.seeds);
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }

  std::mutex source_mutex;
  std::mutex progress_mutex;
  // Progress counters, both guarded by progress_mutex: snapshotting them
  // together under the callback's lock is what makes the observed
  // (done, failures) pairs monotonic — separate atomics would let a
  // concurrent worker's failure land between the two reads.
  uint64_t progress_done = 0;
  uint64_t progress_failures = 0;
  const uint64_t total_runs = total_cases * static_cast<uint64_t>(seeds);
  std::vector<std::vector<CaseResult>> shards(static_cast<size_t>(threads));

  const Clock::time_point campaign_start = Clock::now();
  auto worker = [&](int shard) {
    WorkItem item;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(source_mutex);
        if (!next_case(&item)) {
          break;
        }
      }
      for (int seed = 1; seed <= seeds; ++seed) {
        const Clock::time_point case_start = Clock::now();
        ExecutionResult run = executor(item.test_case, static_cast<uint64_t>(seed));
        CaseResult result;
        result.case_index = item.index;
        result.seed = static_cast<uint64_t>(seed);
        result.found_failure = run.found_failure;
        result.signature = FailureSignature(run);
        result.trace = std::move(run.trace);
        if (run.found_failure) {
          result.test_case = item.test_case;  // retained for the triage pass
        }
        result.host_micros = MicrosSince(case_start);
        const bool found_failure = result.found_failure;
        shards[static_cast<size_t>(shard)].push_back(std::move(result));
        if (options.progress) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          ++progress_done;
          if (found_failure) {
            ++progress_failures;
          }
          options.progress(progress_done, total_runs, progress_failures);
        }
      }
    }
  };
  RunOnPool(threads, worker);

  CampaignResult result;
  for (std::vector<CaseResult>& shard : shards) {
    result.cases.insert(result.cases.end(), std::make_move_iterator(shard.begin()),
                        std::make_move_iterator(shard.end()));
  }
  std::sort(result.cases.begin(), result.cases.end(),
            [](const CaseResult& a, const CaseResult& b) {
              return a.case_index != b.case_index ? a.case_index < b.case_index
                                                  : a.seed < b.seed;
            });
  result.cases_run = result.cases.size();
  for (const CaseResult& run : result.cases) {
    result.total_host_micros += run.host_micros;
    if (!run.found_failure) {
      continue;
    }
    ++result.failures;
    ++result.signature_counts[run.signature];
    if (result.first_failure_index < 0 ||
        static_cast<int64_t>(run.case_index) < result.first_failure_index) {
      result.first_failure_index = static_cast<int64_t>(run.case_index);
    }
  }
  result.sweep_seconds = MicrosSince(campaign_start) / 1e6;

  if (options.minimize_failures && result.failures > 0) {
    const Clock::time_point minimize_start = Clock::now();
    MinimizeFailures(&result, executor, options, threads);
    result.minimize_seconds = MicrosSince(minimize_start) / 1e6;
  }
  result.wall_seconds = MicrosSince(campaign_start) / 1e6;
  return result;
}

}  // namespace

std::string FailureSignature(const ExecutionResult& result) {
  std::set<std::string> impacts;
  for (const check::Violation& violation : result.violations) {
    impacts.insert(violation.impact);
  }
  std::string signature;
  for (const std::string& impact : impacts) {
    if (!signature.empty()) {
      signature += "+";
    }
    signature += impact;
  }
  return signature;
}

int EnvKnob(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0 || value > 1000000) {
    return fallback;
  }
  return static_cast<int>(value);
}

CampaignOptions CampaignOptionsFromEnv() {
  CampaignOptions options;
  options.threads = EnvKnob("NEAT_THREADS", 0);
  options.seeds = EnvKnob("NEAT_SEEDS", 1);
  return options;
}

double CampaignResult::CasesPerSecond() const {
  return sweep_seconds > 0 ? static_cast<double>(cases_run) / sweep_seconds : 0;
}

std::string CampaignResult::VerdictDigest() const {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char byte : text) {
      hash ^= byte;
      hash *= 1099511628211ull;
    }
  };
  for (const CaseResult& run : cases) {
    mix(std::to_string(run.case_index));
    mix(":");
    mix(std::to_string(run.seed));
    mix(run.found_failure ? ":F:" : ":.:");
    mix(run.signature);
    mix("\n");
  }
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

CampaignResult RunCampaign(const std::vector<TestCase>& suite, const CaseExecutor& executor,
                           const CampaignOptions& options) {
  uint64_t next = 0;
  const auto source = [&suite, &next](WorkItem* item) {
    if (next >= suite.size()) {
      return false;
    }
    item->index = next;
    item->test_case = suite[next];
    ++next;
    return true;
  };
  return RunWithSource(source, executor, options, suite.size());
}

CampaignResult RunCampaign(const TestCaseGenerator& generator, int max_length,
                           const PruningRules& rules, const CaseExecutor& executor,
                           const CampaignOptions& options) {
  // Pre-count the suite so progress observers get a real total: the count
  // streams the pruned space without materializing it, and bails out (to
  // total == 0, "unknown") when the space reaches kPrecountLimit cases.
  // Without an observer the total is never read, so skip the walk.
  const uint64_t total =
      options.progress ? generator.CountUpTo(max_length, rules, kPrecountLimit) : 0;
  TestCaseGenerator::Cursor cursor = generator.MakeCursorUpTo(max_length, rules);
  uint64_t next = 0;
  const auto source = [&cursor, &next](WorkItem* item) {
    if (!cursor.Next(&item->test_case)) {
      return false;
    }
    item->index = next++;
    return true;
  };
  return RunWithSource(source, executor, options, total);
}

}  // namespace neat
