#include "neat/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "neat/mutate.h"

namespace neat {
namespace {

// detlint: allow(wall-clock): campaign phase timing is wall-clock reporting
// for humans (sweep/minimize seconds in reports); it never feeds a verdict,
// trace, or digest, so replay determinism is unaffected.
using Clock = std::chrono::steady_clock;

// Streaming campaigns pre-count the suite for progress totals only while
// the count stays below this; beyond it the walk would cost real time and
// the total is reported as 0 ("unknown").
constexpr uint64_t kPrecountLimit = 1000000;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct WorkItem {
  uint64_t index = 0;
  TestCase test_case;
};

// Runs `worker(shard)` on `threads` threads (inline when threads == 1).
void RunOnPool(int threads, const std::function<void(int)>& worker) {
  if (threads <= 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int shard = 0; shard < threads; ++shard) {
    pool.emplace_back(worker, shard);
  }
  for (std::thread& thread : pool) {
    thread.join();
  }
}

// The triage post-pass: shrink the earliest failing run of every unique
// signature to a minimal repro, fanned out over the worker pool. Each
// minimization is a pure function of (case, seed, executor), and results
// are stored by signature rank, so the output is byte-identical at any
// thread count.
void MinimizeFailures(CampaignResult* result, const CaseExecutor& executor,
                      const CampaignOptions& options, int threads) {
  std::vector<const CaseResult*> representatives;
  std::set<std::string> seen;
  for (const CaseResult& run : result->cases) {
    if (run.found_failure && seen.insert(run.signature).second) {
      representatives.push_back(&run);
    }
  }
  std::sort(representatives.begin(), representatives.end(),
            [](const CaseResult* a, const CaseResult* b) {
              return a->signature < b->signature;
            });
  result->minimized.resize(representatives.size());
  std::atomic<size_t> next{0};
  RunOnPool(std::min<int>(threads, static_cast<int>(representatives.size())),
            [&](int /*shard*/) {
              for (;;) {
                const size_t i = next.fetch_add(1);
                if (i >= representatives.size()) {
                  break;
                }
                // One session per minimization: ddmin probes of one case
                // differ by a dropped chunk, so a forking session replays
                // their shared prefixes from snapshots (neat/fork.h).
                const CaseExecutor session =
                    options.sessions ? options.sessions() : CaseExecutor{};
                result->minimized[i] = MinimizeCase(
                    representatives[i]->test_case, representatives[i]->seed,
                    session ? session : executor, options.minimize);
              }
            });
}

int ResolveThreads(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return threads <= 0 ? 1 : threads;
}

// The sweep machinery shared by the exhaustive driver and the guided
// loop's batches: worker-pool configuration plus the progress counters,
// which persist across batches so a guided campaign reports one monotonic
// run count.
struct SweepState {
  int threads = 1;
  int seeds = 1;
  uint64_t total_runs = 0;  // 0 = unknown
  // Per-worker executor sessions (CampaignOptions::sessions), one per
  // shard, built once per campaign. Living here rather than in SweepInto
  // keeps each worker's session — and any prefix snapshots it carries —
  // alive across a guided campaign's batches, where cross-round prefix
  // reuse pays the most. Empty when the campaign runs a shared executor.
  std::vector<CaseExecutor> sessions;
  std::mutex progress_mutex;
  // Both guarded by progress_mutex: snapshotting them together under the
  // callback's lock is what makes the observed (done, failures) pairs
  // monotonic — separate atomics would let a concurrent worker's failure
  // land between the two reads.
  uint64_t progress_done = 0;
  uint64_t progress_failures = 0;
};

// Builds one executor session per worker when the campaign asked for them
// (CampaignOptions::sessions); otherwise leaves the shared-executor path.
void BuildSessions(SweepState* state, const CampaignOptions& options) {
  if (!options.sessions) {
    return;
  }
  state->sessions.reserve(static_cast<size_t>(state->threads));
  for (int i = 0; i < state->threads; ++i) {
    state->sessions.push_back(options.sessions());
  }
}

// Executes every case `next_case` yields (all seeds each) on the worker
// pool and appends the runs to `out`, sorted by (case_index, seed).
// `next_case` is the work queue head: workers serialize on it to pull the
// next (index, case) pair, then execute without further coordination. Each
// worker appends into its own shard; the sort restores generation order,
// so callers never see thread scheduling.
void SweepInto(SweepState* state, const std::function<bool(WorkItem*)>& next_case,
               const CaseExecutor& executor, const CampaignOptions& options,
               std::vector<CaseResult>* out) {
  std::mutex source_mutex;
  std::vector<std::vector<CaseResult>> shards(static_cast<size_t>(state->threads));

  auto worker = [&](int shard) {
    const CaseExecutor& run_case =
        state->sessions.empty() ? executor : state->sessions[static_cast<size_t>(shard)];
    WorkItem item;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(source_mutex);
        if (!next_case(&item)) {
          break;
        }
      }
      for (int seed = 1; seed <= state->seeds; ++seed) {
        const Clock::time_point case_start = Clock::now();
        ExecutionResult run = run_case(item.test_case, static_cast<uint64_t>(seed));
        CaseResult result;
        result.case_index = item.index;
        result.seed = static_cast<uint64_t>(seed);
        result.found_failure = run.found_failure;
        result.signature = FailureSignature(run);
        result.trace = std::move(run.trace);
        result.coverage = std::move(run.coverage);
        if (run.found_failure) {
          result.test_case = item.test_case;  // retained for the triage pass
        }
        result.host_micros = MicrosSince(case_start);
        const bool found_failure = result.found_failure;
        shards[static_cast<size_t>(shard)].push_back(std::move(result));
        if (options.progress) {
          std::lock_guard<std::mutex> lock(state->progress_mutex);
          ++state->progress_done;
          if (found_failure) {
            ++state->progress_failures;
          }
          options.progress(state->progress_done, state->total_runs, state->progress_failures);
        }
      }
    }
  };
  RunOnPool(state->threads, worker);

  const size_t first = out->size();
  for (std::vector<CaseResult>& shard : shards) {
    out->insert(out->end(), std::make_move_iterator(shard.begin()),
                std::make_move_iterator(shard.end()));
  }
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first), out->end(),
            [](const CaseResult& a, const CaseResult& b) {
              return a.case_index != b.case_index ? a.case_index < b.case_index
                                                  : a.seed < b.seed;
            });
}

// Computes every aggregate derived from result->cases (already sorted by
// (case_index, seed)): failure counts, the signature histogram, and the
// campaign coverage map.
void AggregateCases(CampaignResult* result) {
  result->cases_run = result->cases.size();
  for (const CaseResult& run : result->cases) {
    result->total_host_micros += run.host_micros;
    result->coverage.Add(run.coverage);
    if (!run.found_failure) {
      continue;
    }
    ++result->failures;
    ++result->signature_counts[run.signature];
    if (result->first_failure_index < 0 ||
        static_cast<int64_t>(run.case_index) < result->first_failure_index) {
      result->first_failure_index = static_cast<int64_t>(run.case_index);
    }
  }
}

// The shared driver behind both exhaustive RunCampaign overloads.
CampaignResult RunWithSource(const std::function<bool(WorkItem*)>& next_case,
                             const CaseExecutor& executor, const CampaignOptions& options,
                             uint64_t total_cases) {
  SweepState state;
  state.seeds = std::max(1, options.seeds);
  state.threads = ResolveThreads(options.threads);
  state.total_runs = total_cases * static_cast<uint64_t>(state.seeds);
  BuildSessions(&state, options);

  const Clock::time_point campaign_start = Clock::now();
  CampaignResult result;
  SweepInto(&state, next_case, executor, options, &result.cases);
  AggregateCases(&result);
  result.sweep_seconds = MicrosSince(campaign_start) / 1e6;

  if (options.minimize_failures && result.failures > 0) {
    const Clock::time_point minimize_start = Clock::now();
    MinimizeFailures(&result, executor, options, state.threads);
    result.minimize_seconds = MicrosSince(minimize_start) / 1e6;
  }
  result.wall_seconds = MicrosSince(campaign_start) / 1e6;
  return result;
}

// The guided loop body, with the pruned-space size supplied by the caller:
// the streaming RunCampaign already walks the space once for its progress
// total, and this avoids counting it a second time for the seed-schedule
// stride. `space` must be generator.CountUpTo(max_length, rules,
// kPrecountLimit) for the same (max_length, rules).
CampaignResult RunGuidedWithSpace(const TestCaseGenerator& generator, int max_length,
                                  const PruningRules& rules, const CaseExecutor& executor,
                                  const CampaignOptions& options, uint64_t space);

}  // namespace

std::string FailureSignature(const ExecutionResult& result) {
  std::set<std::string> impacts;
  for (const check::Violation& violation : result.violations) {
    impacts.insert(violation.impact);
  }
  std::string signature;
  for (const std::string& impact : impacts) {
    if (!signature.empty()) {
      signature += "+";
    }
    signature += impact;
  }
  return signature;
}

int EnvKnob(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0 || value > 1000000) {
    return fallback;
  }
  return static_cast<int>(value);
}

CampaignOptions CampaignOptionsFromEnv() {
  CampaignOptions options;
  options.threads = EnvKnob("NEAT_THREADS", 0);
  options.seeds = EnvKnob("NEAT_SEEDS", 1);
  options.guided_rounds = EnvKnob("NEAT_GUIDED_ROUNDS", options.guided_rounds);
  options.corpus_max = EnvKnob("NEAT_CORPUS_MAX", options.corpus_max);
  return options;
}

double CampaignResult::CasesPerSecond() const {
  return sweep_seconds > 0 ? static_cast<double>(cases_run) / sweep_seconds : 0;
}

std::string CampaignResult::VerdictDigest() const {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char byte : text) {
      hash ^= byte;
      hash *= 1099511628211ull;
    }
  };
  for (const CaseResult& run : cases) {
    mix(std::to_string(run.case_index));
    mix(":");
    mix(std::to_string(run.seed));
    mix(run.found_failure ? ":F:" : ":.:");
    mix(run.signature);
    mix("\n");
  }
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

std::string CampaignResult::CorpusDigest() const {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char byte : text) {
      hash ^= byte;
      hash *= 1099511628211ull;
    }
  };
  for (const TestCase& test_case : guided.corpus) {
    mix(FormatTestCase(test_case));
    mix("\n");
  }
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

CampaignResult RunCampaign(const std::vector<TestCase>& suite, const CaseExecutor& executor,
                           const CampaignOptions& options) {
  uint64_t next = 0;
  const auto source = [&suite, &next](WorkItem* item) {
    if (next >= suite.size()) {
      return false;
    }
    item->index = next;
    item->test_case = suite[next];
    ++next;
    return true;
  };
  return RunWithSource(source, executor, options, suite.size());
}

CampaignResult RunCampaign(const TestCaseGenerator& generator, int max_length,
                           const PruningRules& rules, const CaseExecutor& executor,
                           const CampaignOptions& options) {
  // Pre-count the suite: the count streams the pruned space without
  // materializing it, and bails out (to 0, "unknown") when the space
  // reaches kPrecountLimit cases. One walk serves both consumers — the
  // progress observer's total and guided mode's seed-schedule stride —
  // where previously guided campaigns with a progress observer counted
  // the space once for each. With neither consumer the count is never
  // read, so skip the walk.
  const uint64_t space = (options.progress || options.guided)
                             ? generator.CountUpTo(max_length, rules, kPrecountLimit)
                             : 0;
  if (options.guided) {
    return RunGuidedWithSpace(generator, max_length, rules, executor, options, space);
  }
  TestCaseGenerator::Cursor cursor = generator.MakeCursorUpTo(max_length, rules);
  uint64_t next = 0;
  const auto source = [&cursor, &next](WorkItem* item) {
    if (!cursor.Next(&item->test_case)) {
      return false;
    }
    item->index = next++;
    return true;
  };
  return RunWithSource(source, executor, options, space);
}

namespace {

CampaignResult RunGuidedWithSpace(const TestCaseGenerator& generator, int max_length,
                                  const PruningRules& rules, const CaseExecutor& executor,
                                  const CampaignOptions& options, uint64_t space) {
  SweepState state;
  state.seeds = std::max(1, options.seeds);
  state.threads = ResolveThreads(options.threads);
  state.total_runs = 0;  // open-ended: the loop decides how many runs happen
  BuildSessions(&state, options);

  const Clock::time_point campaign_start = Clock::now();
  CampaignResult result;
  result.guided.enabled = true;

  const uint64_t budget = options.guided_max_cases;
  uint64_t seed_target = static_cast<uint64_t>(std::max(1, options.corpus_seed_cases));
  if (budget > 0 && budget < seed_target) {
    seed_target = budget;
  }

  // Seed schedule: a stride over the pruned enumeration, so the starting
  // corpus samples the whole space (short and long cases, every partition
  // variant) instead of the lexicographic prefix. The caller supplies the
  // space count (one shared walk, see RunCampaign).
  const uint64_t stride = space > seed_target ? space / seed_target : 1;
  std::vector<TestCase> batch;
  std::set<std::string> scheduled;  // dedup key: the faithful textual form
  uint64_t walked = 0;
  generator.StreamUpTo(max_length, rules, [&](const TestCase& test_case) {
    if (walked++ % stride == 0) {
      batch.push_back(test_case);
      scheduled.insert(FormatTestCase(test_case));
    }
    return batch.size() < seed_target;
  });
  result.guided.seed_cases = batch.size();

  const Mutator mutator(generator.alphabet(), max_length + 2);
  CoverageMap covered;  // the working map driving corpus admission
  std::vector<TestCase> corpus;
  const size_t corpus_max = static_cast<size_t>(std::max(1, options.corpus_max));
  uint64_t next_index = 0;

  // Executes one batch on the pool, then admits cases to the corpus
  // serially in schedule order — with mutation scheduling a pure function
  // of (round, corpus index, mutant index), this keeps the corpus and
  // coverage map byte-identical at any thread count. Returns the number of
  // features the batch newly covered.
  const auto run_batch = [&](const std::vector<TestCase>& cases) -> uint64_t {
    std::vector<CaseResult> runs;
    size_t cursor = 0;
    const auto source = [&](WorkItem* item) {
      if (cursor >= cases.size()) {
        return false;
      }
      item->index = next_index + cursor;
      item->test_case = cases[cursor];
      ++cursor;
      return true;
    };
    SweepInto(&state, source, executor, options, &runs);
    next_index += cases.size();

    uint64_t new_features = 0;
    for (size_t c = 0; c < cases.size(); ++c) {
      uint64_t fresh = 0;
      for (int s = 0; s < state.seeds; ++s) {
        fresh += covered.Add(runs[c * static_cast<size_t>(state.seeds) +
                                  static_cast<size_t>(s)].coverage);
      }
      if (fresh > 0 && corpus.size() < corpus_max) {
        corpus.push_back(cases[c]);
      }
      new_features += fresh;
    }
    result.cases.insert(result.cases.end(), std::make_move_iterator(runs.begin()),
                        std::make_move_iterator(runs.end()));
    return new_features;
  };

  result.guided.new_features_per_round.push_back(run_batch(batch));

  for (int round = 1; round <= std::max(0, options.guided_rounds); ++round) {
    const uint64_t remaining = budget == 0 ? std::numeric_limits<uint64_t>::max()
                               : budget > next_index ? budget - next_index
                                                     : 0;
    if (remaining == 0 || corpus.empty()) {
      break;
    }
    // The round's whole mutant batch is derived from the corpus snapshot
    // before any of it executes; already-scheduled cases are skipped so
    // the budget buys distinct behaviours.
    std::vector<TestCase> mutants;
    const int fan_out = std::max(1, options.mutants_per_entry);
    for (size_t i = 0; i < corpus.size() && mutants.size() < remaining; ++i) {
      for (int j = 0; j < fan_out && mutants.size() < remaining; ++j) {
        TestCase mutant = mutator.Mutate(
            corpus[i], Mutator::MixSeed(options.guided_seed, static_cast<uint64_t>(round),
                                        static_cast<uint64_t>(i), static_cast<uint64_t>(j)));
        if (!scheduled.insert(FormatTestCase(mutant)).second) {
          ++result.guided.duplicates_skipped;
          continue;
        }
        mutants.push_back(std::move(mutant));
      }
    }
    if (mutants.empty()) {
      break;
    }
    result.guided.mutants_run += mutants.size();
    result.guided.rounds_run = round;
    result.guided.new_features_per_round.push_back(run_batch(mutants));
  }
  result.guided.corpus = std::move(corpus);

  AggregateCases(&result);
  result.sweep_seconds = MicrosSince(campaign_start) / 1e6;
  if (options.minimize_failures && result.failures > 0) {
    const Clock::time_point minimize_start = Clock::now();
    MinimizeFailures(&result, executor, options, state.threads);
    result.minimize_seconds = MicrosSince(minimize_start) / 1e6;
  }
  result.wall_seconds = MicrosSince(campaign_start) / 1e6;
  return result;
}

}  // namespace

CampaignResult RunGuidedCampaign(const TestCaseGenerator& generator, int max_length,
                                 const PruningRules& rules, const CaseExecutor& executor,
                                 const CampaignOptions& options) {
  return RunGuidedWithSpace(generator, max_length, rules, executor, options,
                            generator.CountUpTo(max_length, rules, kPrecountLimit));
}

}  // namespace neat
