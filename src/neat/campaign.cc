#include "neat/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

namespace neat {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct WorkItem {
  uint64_t index = 0;
  TestCase test_case;
};

// The shared driver behind both RunCampaign overloads. `next_case` is the
// work queue head: workers serialize on it to pull the next (index, case)
// pair, then execute every seed of that case without further coordination.
// Each worker appends into its own shard; the final sort by (case_index,
// seed) restores generation order, so aggregation never sees thread
// scheduling.
CampaignResult RunWithSource(const std::function<bool(WorkItem*)>& next_case,
                             const CaseExecutor& executor, const CampaignOptions& options,
                             uint64_t total_cases) {
  const int seeds = std::max(1, options.seeds);
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }

  std::mutex source_mutex;
  std::mutex progress_mutex;
  std::atomic<uint64_t> done{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::vector<CaseResult>> shards(static_cast<size_t>(threads));

  const Clock::time_point campaign_start = Clock::now();
  auto worker = [&](int shard) {
    WorkItem item;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(source_mutex);
        if (!next_case(&item)) {
          break;
        }
      }
      for (int seed = 1; seed <= seeds; ++seed) {
        const Clock::time_point case_start = Clock::now();
        ExecutionResult run = executor(item.test_case, static_cast<uint64_t>(seed));
        CaseResult result;
        result.case_index = item.index;
        result.seed = static_cast<uint64_t>(seed);
        result.found_failure = run.found_failure;
        result.signature = FailureSignature(run);
        result.trace = std::move(run.trace);
        result.host_micros = MicrosSince(case_start);
        shards[static_cast<size_t>(shard)].push_back(std::move(result));
        const uint64_t done_now = done.fetch_add(1) + 1;
        const uint64_t failures_now =
            run.found_failure ? failures.fetch_add(1) + 1 : failures.load();
        if (options.progress) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          options.progress(done_now, total_cases * static_cast<uint64_t>(seeds),
                           failures_now);
        }
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int shard = 0; shard < threads; ++shard) {
      pool.emplace_back(worker, shard);
    }
    for (std::thread& thread : pool) {
      thread.join();
    }
  }

  CampaignResult result;
  for (std::vector<CaseResult>& shard : shards) {
    result.cases.insert(result.cases.end(), std::make_move_iterator(shard.begin()),
                        std::make_move_iterator(shard.end()));
  }
  std::sort(result.cases.begin(), result.cases.end(),
            [](const CaseResult& a, const CaseResult& b) {
              return a.case_index != b.case_index ? a.case_index < b.case_index
                                                  : a.seed < b.seed;
            });
  result.cases_run = result.cases.size();
  for (const CaseResult& run : result.cases) {
    result.total_host_micros += run.host_micros;
    if (!run.found_failure) {
      continue;
    }
    ++result.failures;
    ++result.signature_counts[run.signature];
    if (result.first_failure_index < 0 ||
        static_cast<int64_t>(run.case_index) < result.first_failure_index) {
      result.first_failure_index = static_cast<int64_t>(run.case_index);
    }
  }
  result.wall_seconds = MicrosSince(campaign_start) / 1e6;
  return result;
}

}  // namespace

std::string FailureSignature(const ExecutionResult& result) {
  std::set<std::string> impacts;
  for (const check::Violation& violation : result.violations) {
    impacts.insert(violation.impact);
  }
  std::string signature;
  for (const std::string& impact : impacts) {
    if (!signature.empty()) {
      signature += "+";
    }
    signature += impact;
  }
  return signature;
}

int EnvKnob(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0 || value > 1000000) {
    return fallback;
  }
  return static_cast<int>(value);
}

CampaignOptions CampaignOptionsFromEnv() {
  CampaignOptions options;
  options.threads = EnvKnob("NEAT_THREADS", 0);
  options.seeds = EnvKnob("NEAT_SEEDS", 1);
  return options;
}

double CampaignResult::CasesPerSecond() const {
  return wall_seconds > 0 ? static_cast<double>(cases_run) / wall_seconds : 0;
}

std::string CampaignResult::VerdictDigest() const {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char byte : text) {
      hash ^= byte;
      hash *= 1099511628211ull;
    }
  };
  for (const CaseResult& run : cases) {
    mix(std::to_string(run.case_index));
    mix(":");
    mix(std::to_string(run.seed));
    mix(run.found_failure ? ":F:" : ":.:");
    mix(run.signature);
    mix("\n");
  }
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

CampaignResult RunCampaign(const std::vector<TestCase>& suite, const CaseExecutor& executor,
                           const CampaignOptions& options) {
  uint64_t next = 0;
  const auto source = [&suite, &next](WorkItem* item) {
    if (next >= suite.size()) {
      return false;
    }
    item->index = next;
    item->test_case = suite[next];
    ++next;
    return true;
  };
  return RunWithSource(source, executor, options, suite.size());
}

CampaignResult RunCampaign(const TestCaseGenerator& generator, int max_length,
                           const PruningRules& rules, const CaseExecutor& executor,
                           const CampaignOptions& options) {
  TestCaseGenerator::Cursor cursor = generator.MakeCursorUpTo(max_length, rules);
  uint64_t next = 0;
  const auto source = [&cursor, &next](WorkItem* item) {
    if (!cursor.Next(&item->test_case)) {
      return false;
    }
    item->index = next++;
    return true;
  };
  return RunWithSource(source, executor, options, 0);
}

}  // namespace neat
