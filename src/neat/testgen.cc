#include "neat/testgen.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace neat {
namespace {

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPartition:
      return "partition";
    case EventKind::kHeal:
      return "heal";
    case EventKind::kWrite:
      return "write";
    case EventKind::kRead:
      return "read";
    case EventKind::kDelete:
      return "delete";
    case EventKind::kLock:
      return "lock";
    case EventKind::kUnlock:
      return "unlock";
  }
  return "?";
}

const char* PartitionName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kComplete:
      return "complete";
    case PartitionKind::kPartial:
      return "partial";
    case PartitionKind::kSimplex:
      return "simplex";
  }
  return "?";
}

bool IsClientEvent(EventKind kind) {
  return kind != EventKind::kPartition && kind != EventKind::kHeal;
}

// The "natural order" partial order of Table 9: an event that undoes or
// observes another should not come first.
bool NaturalOrderViolated(const TestCase& prefix, const TestEvent& next) {
  auto count = [&prefix](EventKind kind) {
    int n = 0;
    for (const TestEvent& event : prefix) {
      if (event.kind == kind) {
        ++n;
      }
    }
    return n;
  };
  switch (next.kind) {
    case EventKind::kRead:
    case EventKind::kDelete:
      return count(EventKind::kWrite) == 0;  // read/delete something written
    case EventKind::kUnlock:
      return count(EventKind::kUnlock) >= count(EventKind::kLock);
    case EventKind::kHeal:
      return count(EventKind::kPartition) == 0;
    default:
      return false;
  }
}

}  // namespace

std::string TestEvent::DebugString() const {
  std::ostringstream os;
  os << KindName(kind);
  if (kind == EventKind::kPartition) {
    os << "(" << PartitionName(partition) << ","
       << (target == IsolationTarget::kLeader ? "leader" : "any-replica") << ")";
  } else if (IsClientEvent(kind)) {
    os << "(" << (side == Side::kMinority ? "minority" : "majority") << ")";
  }
  return os.str();
}

bool TestEvent::operator==(const TestEvent& other) const {
  if (kind != other.kind) {
    return false;
  }
  if (kind == EventKind::kPartition) {
    return partition == other.partition && target == other.target;
  }
  if (IsClientEvent(kind)) {
    return side == other.side;
  }
  return true;
}

std::string FormatTestCase(const TestCase& test_case) {
  std::ostringstream os;
  for (size_t i = 0; i < test_case.size(); ++i) {
    if (i > 0) {
      os << " -> ";
    }
    os << test_case[i].DebugString();
  }
  return os.str();
}

std::vector<TestEvent> TestCaseGenerator::Instances() const {
  std::vector<TestEvent> out;
  for (PartitionKind partition : alphabet_.partitions) {
    for (IsolationTarget target : alphabet_.targets) {
      TestEvent event;
      event.kind = EventKind::kPartition;
      event.partition = partition;
      event.target = target;
      out.push_back(event);
    }
  }
  {
    TestEvent heal;
    heal.kind = EventKind::kHeal;
    out.push_back(heal);
  }
  for (EventKind kind : alphabet_.client_events) {
    for (Side side : alphabet_.sides) {
      TestEvent event;
      event.kind = kind;
      event.side = side;
      out.push_back(event);
    }
  }
  return out;
}

uint64_t TestCaseGenerator::UnprunedCount(int length) const {
  const uint64_t n = Instances().size();
  uint64_t total = 1;
  for (int i = 0; i < length; ++i) {
    total *= n;
  }
  return total;
}

uint64_t TestCaseGenerator::CountUpTo(int max_length, const PruningRules& rules,
                                      uint64_t limit) const {
  uint64_t count = 0;
  const bool complete = StreamUpTo(max_length, rules, [&count, limit](const TestCase&) {
    ++count;
    return limit == 0 || count < limit;
  });
  return complete ? count : 0;
}

bool TestCaseGenerator::Admissible(const TestCase& prefix, const TestEvent& next,
                                   const PruningRules& rules) const {
  int partitions = 0;
  int client_events = 0;
  for (const TestEvent& event : prefix) {
    if (event.kind == EventKind::kPartition) {
      ++partitions;
    } else if (IsClientEvent(event.kind)) {
      ++client_events;
    }
  }
  if (rules.partition_first) {
    if (prefix.empty()) {
      if (next.kind != EventKind::kPartition) {
        return false;
      }
    } else if (next.kind == EventKind::kPartition && partitions > 0) {
      // With partition-first there is exactly one injection point.
      return false;
    }
  }
  if (rules.single_partition && next.kind == EventKind::kPartition && partitions >= 1) {
    return false;
  }
  if (rules.max_client_events > 0 && IsClientEvent(next.kind) &&
      client_events >= rules.max_client_events) {
    return false;
  }
  if (rules.natural_order && NaturalOrderViolated(prefix, next)) {
    return false;
  }
  return true;
}

std::vector<TestCase> TestCaseGenerator::Enumerate(int length,
                                                   const PruningRules& rules) const {
  const std::vector<TestEvent> instances = Instances();
  std::vector<TestCase> out;
  TestCase current;
  // Iterative depth-first enumeration over admissible extensions.
  std::function<void()> extend = [&]() {
    if (static_cast<int>(current.size()) == length) {
      out.push_back(current);
      return;
    }
    for (const TestEvent& next : instances) {
      if (Admissible(current, next, rules)) {
        current.push_back(next);
        extend();
        current.pop_back();
      }
    }
  };
  extend();
  return out;
}

std::vector<TestCase> TestCaseGenerator::EnumerateUpTo(int max_length,
                                                       const PruningRules& rules) const {
  std::vector<TestCase> out;
  for (int length = 1; length <= max_length; ++length) {
    auto cases = Enumerate(length, rules);
    out.insert(out.end(), cases.begin(), cases.end());
  }
  return out;
}

TestCaseGenerator::Cursor::Cursor(const TestCaseGenerator* generator, int min_length,
                                  int max_length, const PruningRules& rules)
    : generator_(generator),
      instances_(generator->Instances()),
      rules_(rules),
      max_length_(max_length),
      target_length_(std::max(1, min_length)) {
  if (max_length_ < target_length_) {
    done_ = true;
  } else {
    next_index_.assign(static_cast<size_t>(max_length_) + 1, 0);
  }
}

bool TestCaseGenerator::Cursor::Next(TestCase* out) {
  // Resumable depth-first search: prefix_ is the DFS path, next_index_[d]
  // the next instance to try at depth d. Emitting backtracks one level so
  // the following call resumes exactly where the recursive Enumerate would.
  while (!done_) {
    const int depth = static_cast<int>(prefix_.size());
    if (depth == target_length_) {
      *out = prefix_;
      prefix_.pop_back();
      return true;
    }
    size_t& index = next_index_[static_cast<size_t>(depth)];
    bool extended = false;
    while (index < instances_.size()) {
      const TestEvent& next = instances_[index++];
      if (generator_->Admissible(prefix_, next, rules_)) {
        prefix_.push_back(next);
        next_index_[static_cast<size_t>(depth) + 1] = 0;
        extended = true;
        break;
      }
    }
    if (extended) {
      continue;
    }
    index = 0;
    if (depth == 0) {
      if (target_length_ >= max_length_) {
        done_ = true;
      } else {
        ++target_length_;
      }
    } else {
      prefix_.pop_back();
    }
  }
  return false;
}

TestCaseGenerator::Cursor TestCaseGenerator::MakeCursor(int length,
                                                        const PruningRules& rules) const {
  return Cursor(this, length, length, rules);
}

TestCaseGenerator::Cursor TestCaseGenerator::MakeCursorUpTo(
    int max_length, const PruningRules& rules) const {
  return Cursor(this, 1, max_length, rules);
}

bool TestCaseGenerator::Stream(int length, const PruningRules& rules,
                               const std::function<bool(const TestCase&)>& yield) const {
  Cursor cursor = MakeCursor(length, rules);
  TestCase test_case;
  while (cursor.Next(&test_case)) {
    if (!yield(test_case)) {
      return false;
    }
  }
  return true;
}

bool TestCaseGenerator::StreamUpTo(int max_length, const PruningRules& rules,
                                   const std::function<bool(const TestCase&)>& yield) const {
  Cursor cursor = MakeCursorUpTo(max_length, rules);
  TestCase test_case;
  while (cursor.Next(&test_case)) {
    if (!yield(test_case)) {
      return false;
    }
  }
  return true;
}

}  // namespace neat
