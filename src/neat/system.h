// The NEAT system-under-test interface (paper Section 6.1).
//
// "To test a system, the developer should implement three classes. First is
// the ISystem interface, which provides methods to install, start, obtain
// the status of, and shut down the target system." In this repository,
// installation and start happen in the adapter's constructor (it builds the
// simulated cluster already booted); GetStatus and Shutdown match the paper.
// The second class — the Client wrappers — are each system's Client
// process; the third — workload and verification — are the tests, benches,
// and the generated test cases in neat/testgen.h.

#ifndef NEAT_SYSTEM_H_
#define NEAT_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "neat/env.h"
#include "net/message.h"

namespace neat {

// Opaque value snapshot of a system's complete state — environment plus
// every server/client process — taken at a quiescent point (no handler
// mid-flight; in practice: between test events, while the simulator is not
// running). Concrete systems derive their own state type; holders only
// ever pass it back to Restore on the same instance. Snapshots are plain
// values: they must not capture live closures or pointers into the heap of
// the system that produced them (the simulator checkpoint stores event ids,
// not callbacks — see sim::Simulator::Checkpoint).
struct SystemState {
  virtual ~SystemState() = default;
};

class ISystem {
 public:
  virtual ~ISystem() = default;

  virtual std::string Name() const = 0;

  // The environment this system runs in (network, partitioner, history).
  virtual TestEnv& Env() = 0;

  // The server-side nodes (partition targets).
  virtual net::Group Servers() const = 0;

  // True while the system is able to make progress (e.g. has a leader able
  // to serve requests).
  virtual bool GetStatus() = 0;

  // A digest of the system's externally observable control state right
  // now. Executors sample it between test events; guided campaigns treat
  // digest *transitions* as behavioural coverage (neat/coverage.h).
  // Adapters override it with read-only state (leader identity, membership
  // views). The method is const by contract — a digest probe must not
  // perturb the system (a probe that sends real operations would change
  // what the run under test does; detlint's digest-nonconst rule enforces
  // this). The default reports a fixed "no view" value, contributing no
  // sd: coverage; every shipped adapter overrides it.
  virtual uint64_t StateDigest() const { return 0x9e3779b97f4a7c15ull; }

  // Crashes every server node.
  virtual void Shutdown() = 0;

  // Captures the full system state at a quiescent point so a later Restore
  // can rewind this instance instead of re-executing the prefix that led
  // here (the fork executor, neat/fork.h). Requires the environment
  // simulator to have event retention enabled before the events being
  // rewound over were scheduled (sim::Simulator::SetEventRetention).
  // Returns nullptr when the system does not support snapshotting; callers
  // must then fall back to full replay. The method is const by contract —
  // like StateDigest, a snapshot must not perturb the run (detlint's
  // snapshot-nonconst rule enforces this).
  virtual std::unique_ptr<SystemState> Snapshot() const { return nullptr; }

  // Rewinds this instance to a state previously captured by Snapshot() on
  // the same instance. Only ever called with states this system produced;
  // the default (for systems whose Snapshot returns nullptr) is unreachable
  // by that contract and does nothing.
  virtual void Restore(const SystemState& state) { (void)state; }
};

}  // namespace neat

#endif  // NEAT_SYSTEM_H_
