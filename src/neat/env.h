// The NEAT test environment (paper Section 6.3, Figure 4).
//
// One TestEnv is the "test engine" node of a NEAT deployment: it owns the
// simulated network and its partition backend, imposes a global order on
// client operations (each operation runs to completion before the next
// starts), records every operation in a history for the checkers, and
// provides the paper's fault-injection API:
//
//   Partition complete(groupA, groupB)
//   Partition partial(groupA, groupB)
//   Partition simplex(groupSrc, groupDst)
//   void heal(Partition)
//   rest(group)                       — all other nodes
//   crash(nodes) / restart(nodes)     — the crash API
//   sleep(duration)                   — advance virtual time
//
// The OpenFlow-style and iptables-style partitioners are selected by
// Options::use_switch_backend, mirroring NEAT's two implementations.

#ifndef NEAT_ENV_H_
#define NEAT_ENV_H_

#include <functional>
#include <map>
#include <memory>

#include "check/history.h"
#include "cluster/process.h"
#include "net/network.h"
#include "net/partition.h"
#include "sim/simulator.h"

namespace neat {

class TestEnv {
 public:
  struct Options {
    uint64_t seed = 1;
    // True: central-switch rules (OpenFlow analog). False: per-host
    // firewall chains (iptables analog).
    bool use_switch_backend = true;
  };

  explicit TestEnv(const Options& options);

  TestEnv(const TestEnv&) = delete;
  TestEnv& operator=(const TestEnv&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return *network_; }
  net::Partitioner& partitioner() { return *partitioner_; }
  net::PartitionBackend& backend() { return *backend_; }
  check::History& history() { return history_; }

  // --- the paper's partition API ---
  net::Partition Complete(const net::Group& group_a, const net::Group& group_b);
  net::Partition Partial(const net::Group& group_a, const net::Group& group_b);
  net::Partition Simplex(const net::Group& group_src, const net::Group& group_dst);
  void Heal(net::Partition& partition);
  // All registered nodes not in `group`.
  net::Group Rest(const net::Group& group) const;

  // --- the crash API ---
  // Processes register so they can be addressed by node id.
  void RegisterProcess(cluster::Process* process);
  cluster::Process* FindProcess(net::NodeId node) const;
  void Crash(const net::Group& nodes);
  void Restart(const net::Group& nodes);

  // --- global operation order ---
  // Advances virtual time (the paper's sleep()).
  void Sleep(sim::Duration duration);
  // Runs the simulation until `done` holds or `deadline_from_now` passes;
  // the engine's way of running one client operation to completion.
  bool Await(const std::function<bool()>& done,
             sim::Duration deadline_from_now = sim::Seconds(5));

  // --- snapshot / restore (NEAT fork executor) ---
  //
  // Everything the environment owns: the simulator checkpoint, the
  // network's value state, the partition backend's rule table, the
  // partition-handle counter, the operation history, and each registered
  // process's kernel incarnation. Captured at quiescent points (between
  // script steps, never mid-event) and restorable only onto this same env —
  // retained event closures point at the processes registered here. The
  // registered process set itself must be identical at capture and restore
  // time; process-subclass state is the system adapter's responsibility
  // (ISystem::Snapshot), not the env's.
  struct State {
    sim::Simulator::Checkpoint simulator;
    net::Network::State network;
    std::unique_ptr<net::PartitionBackend::RulesSnapshot> rules;
    uint64_t next_partition_id = 1;
    check::History::State history;
    std::map<net::NodeId, cluster::Process::KernelState> kernels;
  };
  State Snapshot() const;
  void Restore(const State& state);

 private:
  sim::Simulator simulator_;
  std::unique_ptr<net::PartitionBackend> backend_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::Partitioner> partitioner_;
  check::History history_;
  // detlint: allow(snapshot-field): Restore reaches it via FindProcess; the registration set is identical at capture and restore by contract (see State doc above)
  std::map<net::NodeId, cluster::Process*> processes_;
};

}  // namespace neat

#endif  // NEAT_ENV_H_
