#include "neat/adapters.h"

#include <algorithm>

#include "check/linearizability.h"
#include "neat/coverage.h"
#include "neat/trace_report.h"

namespace neat {
namespace {

// FNV-1a over a word sequence — the shared idiom for state digests.
class StateHash {
 public:
  void Mix(uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (word >> (byte * 8)) & 0xff;
      hash_ *= 1099511628211ull;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace

bool LocksvcSystem::GetStatus() {
  // Healthy when a lock round-trip works end to end.
  const std::string resource = "__status_probe_" + std::to_string(status_probe_++);
  if (cluster_.Lock(0, resource).status != check::OpStatus::kOk) {
    return false;
  }
  return cluster_.Unlock(0, resource).status == check::OpStatus::kOk;
}

uint64_t PbkvSystem::StateDigest() const {
  StateHash hash;
  hash.Mix(static_cast<uint64_t>(cluster_.FindPrimary()));
  return hash.value();
}

uint64_t RaftKvSystem::StateDigest() const {
  StateHash hash;
  for (const net::NodeId leader : cluster_.Leaders()) {
    hash.Mix(static_cast<uint64_t>(leader));
  }
  return hash.value();
}

uint64_t LocksvcSystem::StateDigest() const {
  StateHash hash;
  for (const net::NodeId id : cluster_.server_ids()) {
    hash.Mix(static_cast<uint64_t>(id));
    for (const net::NodeId member : cluster_.server(id).view()) {
      hash.Mix(static_cast<uint64_t>(member));
    }
  }
  return hash.value();
}

uint64_t MqueueSystem::StateDigest() const {
  StateHash hash;
  hash.Mix(static_cast<uint64_t>(cluster_.MasterPerRegistry()));
  for (const net::NodeId master : cluster_.SelfBelievedMasters()) {
    hash.Mix(static_cast<uint64_t>(master));
  }
  return hash.value();
}

void SchedSystem::Shutdown() {
  net::Group all = cluster_.worker_ids();
  all.push_back(cluster_.rm_id());
  all.push_back(cluster_.store_id());
  cluster_.env().Crash(all);
}

namespace {

// Picks the node the partition isolates.
net::NodeId PickIsolated(pbkv::Cluster& cluster, IsolationTarget target) {
  if (target == IsolationTarget::kLeader) {
    const net::NodeId primary = cluster.FindPrimary();
    if (primary != net::kInvalidNode) {
      return primary;
    }
  }
  // "Any replica": a fixed non-initial-leader replica keeps runs comparable.
  return cluster.server_ids().back();
}

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kComplete:
      return "complete";
    case PartitionKind::kPartial:
      return "partial";
    case PartitionKind::kSimplex:
      return "simplex";
  }
  return "?";
}

// The partition/heal machinery every executor shares: builds the requested
// partition shape around an isolated node (or between explicit groups) and
// tears it down, keeping track of the currently installed partition so
// re-partition and final heal are uniform across systems. Each install and
// heal appends a "neat" trace record — the phase markers the coverage
// signal keys partition-phase edges off (neat/coverage.h).
class PartitionScript {
 public:
  PartitionScript(TestEnv& env, net::Group servers)
      : env_(env), servers_(std::move(servers)) {}

  bool partitioned() const { return partitioned_; }
  net::NodeId isolated() const { return isolated_; }

  void Partition(PartitionKind kind, net::NodeId isolated) {
    isolated_ = isolated;
    net::Group rest = net::Partitioner::Rest(servers_, {isolated});
    if (kind == PartitionKind::kPartial) {
      // Cut the isolated node from all but one bridge replica.
      rest = net::Group(rest.begin(), rest.end() - 1);
    }
    PartitionGroups(kind, {isolated}, rest);
  }

  // Cuts `side_a` from `side_b`; nodes in neither group keep full
  // connectivity (the bridge of a partial partition).
  void PartitionGroups(PartitionKind kind, const net::Group& side_a,
                       const net::Group& side_b) {
    Heal();
    switch (kind) {
      case PartitionKind::kComplete:
        partition_ = env_.partitioner().Complete(side_a, side_b);
        break;
      case PartitionKind::kPartial:
        partition_ = env_.partitioner().Partial(side_a, side_b);
        break;
      case PartitionKind::kSimplex:
        partition_ = env_.partitioner().Simplex(side_a, side_b);
        break;
    }
    partitioned_ = true;
    sim::Simulator& simulator = env_.simulator();
    simulator.Trace().Append(simulator.Now(), "neat", "partition", PartitionKindName(kind));
  }

  void Heal() {
    if (partitioned_) {
      env_.partitioner().Heal(partition_);
      partitioned_ = false;
      sim::Simulator& simulator = env_.simulator();
      simulator.Trace().Append(simulator.Now(), "neat", "heal");
    }
  }

 private:
  TestEnv& env_;
  net::Group servers_;
  bool partitioned_ = false;
  net::Partition partition_;
  net::NodeId isolated_ = net::kInvalidNode;
};

// Samples ISystem::StateDigest between test events and turns the observed
// transitions into sd: coverage features.
class StateObserver {
 public:
  explicit StateObserver(ISystem& system) : system_(system), last_(system.StateDigest()) {}

  void Observe() {
    const uint64_t digest = system_.StateDigest();
    if (digest != last_) {
      features_.push_back(StateTransitionFeature(last_, digest));
      last_ = digest;
    }
  }

  // The run's full coverage: trace-derived features plus the observed
  // state transitions, sorted and deduplicated.
  std::vector<std::string> Finish(const sim::TraceLog& trace) {
    std::vector<std::string> features = TraceCoverage(trace);
    features.insert(features.end(), features_.begin(), features_.end());
    std::sort(features.begin(), features.end());
    features.erase(std::unique(features.begin(), features.end()), features.end());
    return features;
  }

 private:
  ISystem& system_;
  uint64_t last_;
  std::vector<std::string> features_;
};

}  // namespace

ExecutionResult RunPbkvTestCase(const pbkv::Options& options, const TestCase& test_case,
                                uint64_t seed, bool strong) {
  pbkv::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  PbkvSystem system(config);
  pbkv::Cluster& cluster = system.cluster();
  cluster.Settle(sim::Milliseconds(500));

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);
  StateObserver observer(system);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_allow_redirect(false);
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  PartitionScript script(cluster.env(), cluster.server_ids());
  bool slept_for_election = false;
  int value_counter = 0;
  const std::string key = "k";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && script.partitioned()) {
      // Section 5.2: events on the old leader's side must be invoked right
      // after the partition, before it steps down — no sleep.
      cluster.client(kMinorityClient).set_contact(script.isolated());
      return kMinorityClient;
    }
    if (script.partitioned() && !slept_for_election) {
      // ...while on the majority side, the test sleeps until a new leader
      // is elected (the NEAT tests' SLEEP_LEADER_ELECTION_PERIOD).
      cluster.Settle(sim::Milliseconds(600));
      slept_for_election = true;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (script.partitioned()) {
      for (net::NodeId node : cluster.server_ids()) {
        if (node != script.isolated()) {
          contact = node;
          break;
        }
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition:
        script.Partition(event.partition, PickIsolated(cluster, event.target));
        slept_for_election = false;
        break;
      case EventKind::kHeal:
        script.Heal();
        break;
      case EventKind::kWrite:
        cluster.Put(client_for(event.side), key, "v" + std::to_string(++value_counter));
        break;
      case EventKind::kRead:
        cluster.Get(client_for(event.side), key);
        break;
      case EventKind::kDelete:
        cluster.Delete(client_for(event.side), key);
        break;
      case EventKind::kLock:
      case EventKind::kUnlock:
        break;  // pbkv has no locks; the locksvc executor covers those
    }
    observer.Observe();
  }

  if (script.partitioned()) {
    // The studied partitions last minutes to hours; let the system run its
    // failure-handling (elections, step-downs) before the heal so latent
    // damage — e.g. asynchronously replicated writes stranded on a deposed
    // leader — manifests.
    cluster.Settle(sim::Milliseconds(800));
    script.Heal();
  }
  cluster.Settle(sim::Seconds(1));
  observer.Observe();
  cluster.client(kMajorityClient).set_contact(cluster.server_ids().front());
  cluster.client(kMajorityClient).set_allow_redirect(true);
  cluster.Get(kMajorityClient, key, /*final_read=*/true);

  const check::History& history = cluster.history();
  auto add = [&result](std::vector<check::Violation> violations) {
    result.violations.insert(result.violations.end(), violations.begin(), violations.end());
  };
  add(check::CheckDirtyReads(history));
  add(check::CheckDataLoss(history));
  add(check::CheckReappearance(history));
  if (strong) {
    add(check::CheckStaleReads(history));
  }
  result.found_failure = !result.violations.empty();
  result.trace_report = Summarize(cluster.env().simulator().Trace());
  result.coverage = observer.Finish(cluster.env().simulator().Trace());
  return result;
}

ExecutionResult RunLocksvcTestCase(const locksvc::Options& options, const TestCase& test_case,
                                   uint64_t seed) {
  locksvc::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  LocksvcSystem system(config);
  locksvc::Cluster& cluster = system.cluster();
  cluster.Settle(sim::Milliseconds(300));

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);
  StateObserver observer(system);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  PartitionScript script(cluster.env(), cluster.server_ids());
  const net::NodeId isolated = cluster.server_ids().back();
  const std::string lock = "L";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && script.partitioned()) {
      cluster.client(kMinorityClient).set_contact(isolated);
      return kMinorityClient;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (script.partitioned() && contact == isolated) {
      contact = cluster.server_ids()[1];
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition:
        script.Partition(event.partition, isolated);
        // Let the flawed views shrink, as the Ignite failures require.
        cluster.Settle(sim::Milliseconds(400));
        break;
      case EventKind::kHeal:
        script.Heal();
        break;
      case EventKind::kLock:
        cluster.Lock(client_for(event.side), lock);
        break;
      case EventKind::kUnlock:
        cluster.Unlock(client_for(event.side), lock);
        break;
      default:
        break;  // the lock service has no KV surface
    }
    observer.Observe();
  }
  script.Heal();
  cluster.Settle(sim::Seconds(1));
  observer.Observe();
  result.violations = check::CheckBrokenLocks(cluster.history());
  result.found_failure = !result.violations.empty();
  result.trace_report = Summarize(cluster.env().simulator().Trace());
  result.coverage = observer.Finish(cluster.env().simulator().Trace());
  return result;
}

ExecutionResult RunRaftKvTestCase(const raftkv::Options& options, const TestCase& test_case,
                                  uint64_t seed) {
  raftkv::Cluster::Config config;
  config.options = options;
  config.num_servers = 5;  // the #5289 topology needs an orphaned pair
  config.num_clients = 3;
  config.seed = seed;
  RaftKvSystem system(config);
  raftkv::Cluster& cluster = system.cluster();
  const net::NodeId initial_leader = cluster.WaitForLeader();

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);
  StateObserver observer(system);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  constexpr int kAdminClient = 2;
  cluster.client(kMinorityClient).set_allow_redirect(false);
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(800));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(800));
  cluster.client(kAdminClient).set_allow_redirect(false);
  cluster.client(kAdminClient).set_op_timeout(sim::Milliseconds(800));

  const net::Group servers = cluster.server_ids();
  PartitionScript script(cluster.env(), servers);
  // The nodes cut off by the current partition; minority-side client
  // events contact its first member.
  net::Group minority_side;
  bool slept_for_election = false;
  int value_counter = 0;
  const std::string key = "k";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && script.partitioned() && !minority_side.empty()) {
      cluster.client(kMinorityClient).set_contact(minority_side.front());
      return kMinorityClient;
    }
    if (script.partitioned() && !slept_for_election) {
      cluster.Settle(sim::Milliseconds(700));
      slept_for_election = true;
    }
    net::NodeId contact = initial_leader;
    const std::vector<net::NodeId> leaders = cluster.Leaders();
    for (const net::NodeId leader : leaders) {
      if (std::find(minority_side.begin(), minority_side.end(), leader) ==
          minority_side.end()) {
        contact = leader;
        break;
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition: {
        net::NodeId leader = initial_leader;
        const std::vector<net::NodeId> leaders = cluster.Leaders();
        if (!leaders.empty()) {
          leader = leaders.front();
        }
        if (event.partition == PartitionKind::kPartial) {
          // RethinkDB #5289: orphan two replicas behind the cut, keep the
          // leader plus one replica, leave one bridge replica reaching
          // both sides — then the admin removes everything beyond the
          // leader pair while the partition is up. With
          // delete_log_on_removal, the bridge wipes its log and votes the
          // orphaned side a second, amnesiac majority.
          const net::Group others = net::Partitioner::Rest(servers, {leader});
          const net::Group keep = {leader, others[1]};
          const net::Group orphaned = {others[2], others[3]};
          script.PartitionGroups(PartitionKind::kPartial, orphaned, keep);
          minority_side = orphaned;
          cluster.Settle(sim::Milliseconds(100));
          cluster.client(kAdminClient).set_contact(leader);
          cluster.ChangeMembers(kAdminClient, keep);
          cluster.Settle(sim::Seconds(1));
        } else {
          const net::NodeId isolated =
              event.target == IsolationTarget::kLeader ? leader : servers.back();
          script.Partition(event.partition, isolated);
          minority_side = {isolated};
        }
        slept_for_election = false;
        break;
      }
      case EventKind::kHeal:
        script.Heal();
        break;
      case EventKind::kWrite:
        cluster.Put(client_for(event.side), key, "v" + std::to_string(++value_counter));
        break;
      case EventKind::kRead:
        cluster.Get(client_for(event.side), key);
        break;
      case EventKind::kDelete:
        cluster.Delete(client_for(event.side), key);
        break;
      case EventKind::kLock:
      case EventKind::kUnlock:
        break;  // no lock surface
    }
    observer.Observe();
  }

  if (script.partitioned()) {
    cluster.Settle(sim::Milliseconds(800));
    script.Heal();
  }
  cluster.Settle(sim::Seconds(1));
  observer.Observe();
  cluster.client(kMajorityClient).set_contact(servers.front());
  cluster.Get(kMajorityClient, key, /*final_read=*/true);

  const check::History& history = cluster.history();
  auto add = [&result](std::vector<check::Violation> violations) {
    result.violations.insert(result.violations.end(), violations.begin(), violations.end());
  };
  add(check::CheckDirtyReads(history));
  add(check::CheckDataLoss(history));
  add(check::CheckReappearance(history));
  add(check::CheckStaleReads(history));  // raftkv promises strong consistency
  const check::LinearizabilityResult linearizable = check::CheckLinearizable(history);
  if (!linearizable.linearizable) {
    check::Violation violation;
    violation.impact = "non-linearizable";
    violation.description = linearizable.reason;
    result.violations.push_back(std::move(violation));
  }
  result.found_failure = !result.violations.empty();
  result.trace_report = Summarize(cluster.env().simulator().Trace());
  result.coverage = observer.Finish(cluster.env().simulator().Trace());
  return result;
}

ExecutionResult RunMqueueTestCase(const mqueue::Options& options, const TestCase& test_case,
                                  uint64_t seed) {
  mqueue::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  MqueueSystem system(config);
  mqueue::Cluster& cluster = system.cluster();
  cluster.Settle(sim::Milliseconds(500));  // first master election via the registry

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);
  StateObserver observer(system);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  const std::string queue = "q";
  // One fully replicated message before any fault: partition-first pruning
  // leaves no room for a pre-partition enqueue inside the case, but the
  // double-dequeue flaw needs a message both sides of the cut believe they
  // hold.
  cluster.Send(kMajorityClient, queue, "m0");
  cluster.Settle(sim::Milliseconds(300));

  // The partition universe includes the coordination service, which always
  // rides the majority side: an isolated master's session expires there
  // and the survivors elect a replacement (Figure 6).
  net::Group universe = cluster.broker_ids();
  universe.push_back(cluster.zk_id());
  PartitionScript script(cluster.env(), universe);
  bool slept_for_takeover = false;
  int value_counter = 0;

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && script.partitioned()) {
      cluster.client(kMinorityClient).set_contact(script.isolated());
      return kMinorityClient;
    }
    if (script.partitioned() && !slept_for_takeover) {
      // Wait out the session timeout so the surviving brokers take over.
      cluster.Settle(sim::Milliseconds(800));
      slept_for_takeover = true;
    }
    net::NodeId contact = cluster.MasterPerRegistry();
    if (contact == net::kInvalidNode || contact == script.isolated()) {
      for (const net::NodeId broker : cluster.broker_ids()) {
        if (broker != script.isolated()) {
          contact = broker;
          break;
        }
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition: {
        net::NodeId isolated = cluster.MasterPerRegistry();
        if (event.target == IsolationTarget::kAnyReplica || isolated == net::kInvalidNode) {
          // A non-master broker (the last one that is not master).
          for (const net::NodeId broker : cluster.broker_ids()) {
            if (broker != cluster.MasterPerRegistry()) {
              isolated = broker;
            }
          }
        }
        script.Partition(event.partition, isolated);
        slept_for_takeover = false;
        break;
      }
      case EventKind::kHeal:
        script.Heal();
        break;
      case EventKind::kWrite:
        cluster.Send(client_for(event.side), queue, "m" + std::to_string(++value_counter));
        break;
      case EventKind::kRead:
        cluster.Receive(client_for(event.side), queue);
        break;
      default:
        break;  // no KV/lock surface
    }
    observer.Observe();
  }

  if (script.partitioned()) {
    cluster.Settle(sim::Milliseconds(800));
    script.Heal();
  }
  cluster.Settle(sim::Seconds(1));
  observer.Observe();

  // Drain the healed cluster's queue so the lost-message checker sees the
  // final state; drained values also complete the double-dequeue pattern.
  net::NodeId master = cluster.MasterPerRegistry();
  if (master == net::kInvalidNode) {
    master = cluster.broker_ids().front();
  }
  cluster.client(kMajorityClient).set_contact(master);
  for (int i = 0; i < 8; ++i) {
    const check::Operation drained =
        cluster.Receive(kMajorityClient, queue, /*final_drain=*/true);
    if (drained.status != check::OpStatus::kOk || drained.value.empty()) {
      break;
    }
  }
  observer.Observe();

  const check::History& history = cluster.history();
  auto add = [&result](std::vector<check::Violation> violations) {
    result.violations.insert(result.violations.end(), violations.begin(), violations.end());
  };
  add(check::CheckDoubleDequeue(history));
  add(check::CheckLostMessages(history));
  result.found_failure = !result.violations.empty();
  result.trace_report = Summarize(cluster.env().simulator().Trace());
  result.coverage = observer.Finish(cluster.env().simulator().Trace());
  return result;
}

// --- system factories ---

SystemFactory MakePbkvFactory(const pbkv::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<ISystem> {
    pbkv::Cluster::Config config;
    config.options = options;
    config.seed = seed;
    return std::make_unique<PbkvSystem>(config);
  };
}

SystemFactory MakeRaftKvFactory(int num_servers) {
  return [num_servers](uint64_t seed) -> std::unique_ptr<ISystem> {
    raftkv::Cluster::Config config;
    config.num_servers = num_servers;
    config.seed = seed;
    return std::make_unique<RaftKvSystem>(config);
  };
}

SystemFactory MakeLocksvcFactory(const locksvc::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<ISystem> {
    locksvc::Cluster::Config config;
    config.options = options;
    config.seed = seed;
    return std::make_unique<LocksvcSystem>(config);
  };
}

SystemFactory MakeMqueueFactory() {
  return [](uint64_t seed) -> std::unique_ptr<ISystem> {
    mqueue::Cluster::Config config;
    config.seed = seed;
    return std::make_unique<MqueueSystem>(config);
  };
}

SystemFactory MakeSchedFactory() {
  return [](uint64_t seed) -> std::unique_ptr<ISystem> {
    sched::Cluster::Config config;
    config.seed = seed;
    return std::make_unique<SchedSystem>(config);
  };
}

// --- campaign executors ---

CaseExecutor PbkvCaseExecutor(const pbkv::Options& options, bool strong) {
  return [options, strong](const TestCase& test_case, uint64_t seed) {
    return RunPbkvTestCase(options, test_case, seed, strong);
  };
}

CaseExecutor LocksvcCaseExecutor(const locksvc::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunLocksvcTestCase(options, test_case, seed);
  };
}

CaseExecutor RaftKvCaseExecutor(const raftkv::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunRaftKvTestCase(options, test_case, seed);
  };
}

CaseExecutor MqueueCaseExecutor(const mqueue::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunMqueueTestCase(options, test_case, seed);
  };
}

CaseExecutor StatusProbeExecutor(SystemFactory factory) {
  return [factory = std::move(factory)](const TestCase& test_case, uint64_t seed) {
    std::unique_ptr<ISystem> system = factory(seed);
    TestEnv& env = system->Env();
    env.Sleep(sim::Milliseconds(500));

    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    StateObserver observer(*system);

    PartitionScript script(env, system->Servers());
    const net::NodeId isolated = system->Servers().back();
    for (const TestEvent& event : test_case) {
      switch (event.kind) {
        case EventKind::kPartition:
          script.Partition(event.partition, isolated);
          env.Sleep(sim::Milliseconds(400));
          break;
        case EventKind::kHeal:
          script.Heal();
          break;
        default:
          break;  // no generic client surface; client events are skipped
      }
      observer.Observe();
    }
    if (script.partitioned()) {
      env.Sleep(sim::Milliseconds(800));
      script.Heal();
    }
    env.Sleep(sim::Seconds(1));
    observer.Observe();
    if (!system->GetStatus()) {
      check::Violation violation;
      violation.impact = "data unavailability";
      violation.description =
          system->Name() + " cannot make progress after the partition healed";
      result.violations.push_back(std::move(violation));
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = Summarize(env.simulator().Trace());
    result.coverage = observer.Finish(env.simulator().Trace());
    return result;
  };
}

}  // namespace neat
