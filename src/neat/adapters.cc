#include "neat/adapters.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "check/causal.h"
#include "check/linearizability.h"
#include "neat/coverage.h"
#include "neat/trace_report.h"
#include "neat/trace_scan.h"

namespace neat {
namespace {

// FNV-1a over a word sequence — the shared idiom for state digests.
class StateHash {
 public:
  void Mix(uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (word >> (byte * 8)) & 0xff;
      hash_ *= 1099511628211ull;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace

bool LocksvcSystem::GetStatus() {
  // Healthy when a lock round-trip works end to end.
  const std::string resource = "__status_probe_" + std::to_string(status_probe_++);
  if (cluster_.Lock(0, resource).status != check::OpStatus::kOk) {
    return false;
  }
  return cluster_.Unlock(0, resource).status == check::OpStatus::kOk;
}

uint64_t PbkvSystem::StateDigest() const {
  StateHash hash;
  hash.Mix(static_cast<uint64_t>(cluster_.FindPrimary()));
  return hash.value();
}

uint64_t RaftKvSystem::StateDigest() const {
  StateHash hash;
  for (const net::NodeId leader : cluster_.Leaders()) {
    hash.Mix(static_cast<uint64_t>(leader));
  }
  return hash.value();
}

uint64_t LocksvcSystem::StateDigest() const {
  StateHash hash;
  for (const net::NodeId id : cluster_.server_ids()) {
    hash.Mix(static_cast<uint64_t>(id));
    for (const net::NodeId member : cluster_.server(id).view()) {
      hash.Mix(static_cast<uint64_t>(member));
    }
  }
  return hash.value();
}

uint64_t MqueueSystem::StateDigest() const {
  StateHash hash;
  hash.Mix(static_cast<uint64_t>(cluster_.MasterPerRegistry()));
  for (const net::NodeId master : cluster_.SelfBelievedMasters()) {
    hash.Mix(static_cast<uint64_t>(master));
  }
  return hash.value();
}

void SchedSystem::Shutdown() {
  net::Group all = cluster_.worker_ids();
  all.push_back(cluster_.rm_id());
  all.push_back(cluster_.store_id());
  cluster_.env().Crash(all);
}

// --- system snapshots ---
//
// Each adapter's snapshot wraps its cluster's CaptureState (environment
// plus every process) in a SystemState. The concrete types stay private to
// this translation unit; Restore type-checks with a dynamic_cast, which
// also enforces the same-system half of the contract.

namespace {

struct PbkvSystemState : SystemState {
  explicit PbkvSystemState(pbkv::Cluster::State captured) : state(std::move(captured)) {}
  pbkv::Cluster::State state;
};

struct RaftKvSystemState : SystemState {
  explicit RaftKvSystemState(raftkv::Cluster::State captured) : state(std::move(captured)) {}
  raftkv::Cluster::State state;
};

struct LocksvcSystemState : SystemState {
  LocksvcSystemState(locksvc::Cluster::State captured, int probe)
      : state(std::move(captured)), status_probe(probe) {}
  locksvc::Cluster::State state;
  int status_probe = 0;
};

struct MqueueSystemState : SystemState {
  explicit MqueueSystemState(mqueue::Cluster::State captured) : state(std::move(captured)) {}
  mqueue::Cluster::State state;
};

}  // namespace

std::unique_ptr<SystemState> PbkvSystem::Snapshot() const {
  return std::make_unique<PbkvSystemState>(cluster_.CaptureState());
}

void PbkvSystem::Restore(const SystemState& state) {
  const auto* snapshot = dynamic_cast<const PbkvSystemState*>(&state);
  assert(snapshot != nullptr && "pbkv restore needs a pbkv snapshot");
  cluster_.RestoreState(snapshot->state);
}

std::unique_ptr<SystemState> RaftKvSystem::Snapshot() const {
  return std::make_unique<RaftKvSystemState>(cluster_.CaptureState());
}

void RaftKvSystem::Restore(const SystemState& state) {
  const auto* snapshot = dynamic_cast<const RaftKvSystemState*>(&state);
  assert(snapshot != nullptr && "raftkv restore needs a raftkv snapshot");
  cluster_.RestoreState(snapshot->state);
}

std::unique_ptr<SystemState> LocksvcSystem::Snapshot() const {
  return std::make_unique<LocksvcSystemState>(cluster_.CaptureState(), status_probe_);
}

void LocksvcSystem::Restore(const SystemState& state) {
  const auto* snapshot = dynamic_cast<const LocksvcSystemState*>(&state);
  assert(snapshot != nullptr && "locksvc restore needs a locksvc snapshot");
  cluster_.RestoreState(snapshot->state);
  status_probe_ = snapshot->status_probe;
}

std::unique_ptr<SystemState> MqueueSystem::Snapshot() const {
  return std::make_unique<MqueueSystemState>(cluster_.CaptureState());
}

void MqueueSystem::Restore(const SystemState& state) {
  const auto* snapshot = dynamic_cast<const MqueueSystemState*>(&state);
  assert(snapshot != nullptr && "mqueue restore needs an mqueue snapshot");
  cluster_.RestoreState(snapshot->state);
}

namespace {

// Picks the node the partition isolates.
net::NodeId PickIsolated(pbkv::Cluster& cluster, IsolationTarget target) {
  if (target == IsolationTarget::kLeader) {
    const net::NodeId primary = cluster.FindPrimary();
    if (primary != net::kInvalidNode) {
      return primary;
    }
  }
  // "Any replica": a fixed non-initial-leader replica keeps runs comparable.
  return cluster.server_ids().back();
}

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kComplete:
      return "complete";
    case PartitionKind::kPartial:
      return "partial";
    case PartitionKind::kSimplex:
      return "simplex";
  }
  return "?";
}

// The partition/heal machinery every executor shares: builds the requested
// partition shape around an isolated node (or between explicit groups) and
// tears it down, keeping track of the currently installed partition so
// re-partition and final heal are uniform across systems. Each install and
// heal appends a "neat" trace record — the phase markers the coverage
// signal keys partition-phase edges off (neat/coverage.h).
class PartitionScript {
 public:
  PartitionScript(TestEnv& env, net::Group servers)
      : env_(env), servers_(std::move(servers)) {}

  bool partitioned() const { return partitioned_; }
  net::NodeId isolated() const { return isolated_; }

  void Partition(PartitionKind kind, net::NodeId isolated) {
    isolated_ = isolated;
    net::Group rest = net::Partitioner::Rest(servers_, {isolated});
    if (kind == PartitionKind::kPartial) {
      // Cut the isolated node from all but one bridge replica.
      rest = net::Group(rest.begin(), rest.end() - 1);
    }
    PartitionGroups(kind, {isolated}, rest);
  }

  // Cuts `side_a` from `side_b`; nodes in neither group keep full
  // connectivity (the bridge of a partial partition).
  void PartitionGroups(PartitionKind kind, const net::Group& side_a,
                       const net::Group& side_b) {
    Heal();
    switch (kind) {
      case PartitionKind::kComplete:
        partition_ = env_.partitioner().Complete(side_a, side_b);
        break;
      case PartitionKind::kPartial:
        partition_ = env_.partitioner().Partial(side_a, side_b);
        break;
      case PartitionKind::kSimplex:
        partition_ = env_.partitioner().Simplex(side_a, side_b);
        break;
    }
    partitioned_ = true;
    sim::Simulator& simulator = env_.simulator();
    simulator.Trace().Append(simulator.Now(), "neat", "partition", PartitionKindName(kind));
  }

  void Heal() {
    if (partitioned_) {
      env_.partitioner().Heal(partition_);
      partitioned_ = false;
      sim::Simulator& simulator = env_.simulator();
      simulator.Trace().Append(simulator.Now(), "neat", "heal");
    }
  }

  // The installed-partition tracking is part of a forked run's state: the
  // backend rules themselves rewind through the environment snapshot, and
  // this mirrors the script's view of them.
  struct State {
    bool partitioned = false;
    net::Partition partition;
    net::NodeId isolated = net::kInvalidNode;
  };
  State CaptureState() const { return State{partitioned_, partition_, isolated_}; }
  void RestoreState(const State& state) {
    partitioned_ = state.partitioned;
    partition_ = state.partition;
    isolated_ = state.isolated;
  }

 private:
  TestEnv& env_;
  // detlint: allow(snapshot-field): script topology is fixed at construction and never mutated mid-run
  net::Group servers_;
  bool partitioned_ = false;
  net::Partition partition_;
  net::NodeId isolated_ = net::kInvalidNode;
};

// Samples ISystem::StateDigest between test events and turns the observed
// transitions into sd: coverage features. Also owns the incremental trace
// fold (neat/trace_scan.h): each Observe advances it over the records the
// event just appended, so a snapshot taken at an event boundary carries the
// fold's position — a forked case re-scans only its own suffix instead of
// the whole trace at Finish.
class StateObserver {
 public:
  StateObserver(ISystem& system, const sim::TraceLog& trace)
      : system_(system), trace_(trace), last_(system.StateDigest()) {}

  void Observe() {
    const uint64_t digest = system_.StateDigest();
    if (digest != last_) {
      features_.push_back(StateTransitionFeature(last_, digest));
      last_ = digest;
    }
    scan_.Advance(trace_);
  }

  // The run's full coverage: trace-derived features plus the observed
  // state transitions, sorted and deduplicated.
  std::vector<std::string> Finish() {
    scan_.Advance(trace_);
    std::vector<std::string> features = scan_.Features();
    features.insert(features.end(), features_.begin(), features_.end());
    std::sort(features.begin(), features.end());
    features.erase(std::unique(features.begin(), features.end()), features.end());
    return features;
  }

  // What Summarize(trace) would report — served from the fold.
  TraceReport Report() {
    scan_.Advance(trace_);
    return scan_.Report(trace_);
  }

  struct State {
    uint64_t last = 0;
    std::vector<std::string> features;
    TraceScan scan;
  };
  State CaptureState() const { return State{last_, features_, scan_}; }
  void RestoreState(const State& state) {
    last_ = state.last;
    features_ = state.features;
    scan_ = state.scan;
  }

 private:
  ISystem& system_;
  const sim::TraceLog& trace_;
  uint64_t last_;
  std::vector<std::string> features_;
  TraceScan scan_;
};

// --- per-system case runners ---
//
// Each runner is the corresponding Run*TestCase executor cut at its event
// loop: the constructor is everything before the loop (build, settle,
// client config), ApplyEvent is one loop iteration, Finish is everything
// after. The Run*TestCase wrappers below drive a fresh runner straight
// through, so their behaviour is unchanged; the fork executor drives the
// same runner with snapshots in between.

struct PbkvRunnerState : SystemState {
  std::unique_ptr<SystemState> system;
  PartitionScript::State script;
  StateObserver::State observer;
  bool slept_for_election = false;
  int value_counter = 0;
};

class PbkvRunner : public CaseRunner {
 public:
  PbkvRunner(const pbkv::Options& options, uint64_t seed, bool strong)
      : strong_(strong), system_(MakeConfig(options, seed)) {
    pbkv::Cluster& cluster = system_.cluster();
    cluster.Settle(sim::Milliseconds(500));
    observer_.emplace(system_, system_.Env().simulator().Trace());
    cluster.client(kMinorityClient).set_allow_redirect(false);
    cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
    cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));
    script_.emplace(cluster.env(), cluster.server_ids());
  }

  TestEnv& Env() override { return system_.Env(); }
  ISystem* System() override { return &system_; }

  void ApplyEvent(const TestEvent& event) override {
    pbkv::Cluster& cluster = system_.cluster();
    switch (event.kind) {
      case EventKind::kPartition:
        script_->Partition(event.partition, PickIsolated(cluster, event.target));
        slept_for_election_ = false;
        break;
      case EventKind::kHeal:
        script_->Heal();
        break;
      case EventKind::kWrite:
        cluster.Put(ClientFor(event.side), key_, "v" + std::to_string(++value_counter_));
        break;
      case EventKind::kRead:
        cluster.Get(ClientFor(event.side), key_);
        break;
      case EventKind::kDelete:
        cluster.Delete(ClientFor(event.side), key_);
        break;
      case EventKind::kLock:
      case EventKind::kUnlock:
        break;  // pbkv has no locks; the locksvc executor covers those
    }
    observer_->Observe();
  }

  ExecutionResult Finish(const TestCase& test_case) override {
    pbkv::Cluster& cluster = system_.cluster();
    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    if (script_->partitioned()) {
      // The studied partitions last minutes to hours; let the system run its
      // failure-handling (elections, step-downs) before the heal so latent
      // damage — e.g. asynchronously replicated writes stranded on a deposed
      // leader — manifests.
      cluster.Settle(sim::Milliseconds(800));
      script_->Heal();
    }
    cluster.Settle(sim::Seconds(1));
    observer_->Observe();
    cluster.client(kMajorityClient).set_contact(cluster.server_ids().front());
    cluster.client(kMajorityClient).set_allow_redirect(true);
    cluster.Get(kMajorityClient, key_, /*final_read=*/true);

    const check::History& history = cluster.history();
    auto add = [&result](std::vector<check::Violation> violations) {
      result.violations.insert(result.violations.end(), violations.begin(), violations.end());
    };
    add(check::CheckDirtyReads(history));
    add(check::CheckDataLoss(history));
    add(check::CheckReappearance(history));
    if (strong_) {
      add(check::CheckStaleReads(history));
    }
    const sim::TraceLog& trace = system_.Env().simulator().Trace();
    if (trace.causal()) {
      add(check::CheckCascades(trace));
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = observer_->Report();
    result.coverage = observer_->Finish();
    return result;
  }

  std::unique_ptr<SystemState> Snapshot() const override {
    auto state = std::make_unique<PbkvRunnerState>();
    state->system = system_.Snapshot();
    if (state->system == nullptr) {
      return nullptr;
    }
    state->script = script_->CaptureState();
    state->observer = observer_->CaptureState();
    state->slept_for_election = slept_for_election_;
    state->value_counter = value_counter_;
    return state;
  }

  void Restore(const SystemState& state) override {
    const auto* runner_state = dynamic_cast<const PbkvRunnerState*>(&state);
    assert(runner_state != nullptr && "pbkv runner restore needs a pbkv runner state");
    system_.Restore(*runner_state->system);
    script_->RestoreState(runner_state->script);
    observer_->RestoreState(runner_state->observer);
    slept_for_election_ = runner_state->slept_for_election;
    value_counter_ = runner_state->value_counter;
  }

 private:
  static constexpr int kMinorityClient = 0;
  static constexpr int kMajorityClient = 1;

  static pbkv::Cluster::Config MakeConfig(const pbkv::Options& options, uint64_t seed) {
    pbkv::Cluster::Config config;
    config.options = options;
    config.num_clients = 2;
    config.seed = seed;
    return config;
  }

  int ClientFor(Side side) {
    pbkv::Cluster& cluster = system_.cluster();
    if (side == Side::kMinority && script_->partitioned()) {
      // Section 5.2: events on the old leader's side must be invoked right
      // after the partition, before it steps down — no sleep.
      cluster.client(kMinorityClient).set_contact(script_->isolated());
      return kMinorityClient;
    }
    if (script_->partitioned() && !slept_for_election_) {
      // ...while on the majority side, the test sleeps until a new leader
      // is elected (the NEAT tests' SLEEP_LEADER_ELECTION_PERIOD).
      cluster.Settle(sim::Milliseconds(600));
      slept_for_election_ = true;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (script_->partitioned()) {
      for (net::NodeId node : cluster.server_ids()) {
        if (node != script_->isolated()) {
          contact = node;
          break;
        }
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  }

  // detlint: allow(snapshot-field): variant flag chosen at construction; constant for the lifetime of the runner
  bool strong_;
  PbkvSystem system_;
  std::optional<StateObserver> observer_;
  std::optional<PartitionScript> script_;
  bool slept_for_election_ = false;
  int value_counter_ = 0;
  const std::string key_ = "k";
};

struct LocksvcRunnerState : SystemState {
  std::unique_ptr<SystemState> system;
  PartitionScript::State script;
  StateObserver::State observer;
};

class LocksvcRunner : public CaseRunner {
 public:
  LocksvcRunner(const locksvc::Options& options, uint64_t seed)
      : system_(MakeConfig(options, seed)) {
    locksvc::Cluster& cluster = system_.cluster();
    cluster.Settle(sim::Milliseconds(300));
    observer_.emplace(system_, system_.Env().simulator().Trace());
    cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
    cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));
    script_.emplace(cluster.env(), cluster.server_ids());
    isolated_ = cluster.server_ids().back();
  }

  TestEnv& Env() override { return system_.Env(); }
  ISystem* System() override { return &system_; }

  void ApplyEvent(const TestEvent& event) override {
    locksvc::Cluster& cluster = system_.cluster();
    switch (event.kind) {
      case EventKind::kPartition:
        script_->Partition(event.partition, isolated_);
        // Let the flawed views shrink, as the Ignite failures require.
        cluster.Settle(sim::Milliseconds(400));
        break;
      case EventKind::kHeal:
        script_->Heal();
        break;
      case EventKind::kLock:
        cluster.Lock(ClientFor(event.side), lock_);
        break;
      case EventKind::kUnlock:
        cluster.Unlock(ClientFor(event.side), lock_);
        break;
      default:
        break;  // the lock service has no KV surface
    }
    observer_->Observe();
  }

  ExecutionResult Finish(const TestCase& test_case) override {
    locksvc::Cluster& cluster = system_.cluster();
    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    script_->Heal();
    cluster.Settle(sim::Seconds(1));
    observer_->Observe();
    result.violations = check::CheckBrokenLocks(cluster.history());
    const sim::TraceLog& trace = system_.Env().simulator().Trace();
    if (trace.causal()) {
      std::vector<check::Violation> cascades = check::CheckCascades(trace);
      result.violations.insert(result.violations.end(), cascades.begin(), cascades.end());
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = observer_->Report();
    result.coverage = observer_->Finish();
    return result;
  }

  std::unique_ptr<SystemState> Snapshot() const override {
    auto state = std::make_unique<LocksvcRunnerState>();
    state->system = system_.Snapshot();
    if (state->system == nullptr) {
      return nullptr;
    }
    state->script = script_->CaptureState();
    state->observer = observer_->CaptureState();
    return state;
  }

  void Restore(const SystemState& state) override {
    const auto* runner_state = dynamic_cast<const LocksvcRunnerState*>(&state);
    assert(runner_state != nullptr && "locksvc runner restore needs a locksvc runner state");
    system_.Restore(*runner_state->system);
    script_->RestoreState(runner_state->script);
    observer_->RestoreState(runner_state->observer);
  }

 private:
  static constexpr int kMinorityClient = 0;
  static constexpr int kMajorityClient = 1;

  static locksvc::Cluster::Config MakeConfig(const locksvc::Options& options, uint64_t seed) {
    locksvc::Cluster::Config config;
    config.options = options;
    config.num_clients = 2;
    config.seed = seed;
    return config;
  }

  int ClientFor(Side side) {
    locksvc::Cluster& cluster = system_.cluster();
    if (side == Side::kMinority && script_->partitioned()) {
      cluster.client(kMinorityClient).set_contact(isolated_);
      return kMinorityClient;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (script_->partitioned() && contact == isolated_) {
      contact = cluster.server_ids()[1];
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  }

  LocksvcSystem system_;
  std::optional<StateObserver> observer_;
  std::optional<PartitionScript> script_;
  // detlint: allow(snapshot-field): chosen once during Setup and constant thereafter; forks never change the victim
  net::NodeId isolated_ = net::kInvalidNode;
  const std::string lock_ = "L";
};

struct RaftKvRunnerState : SystemState {
  std::unique_ptr<SystemState> system;
  PartitionScript::State script;
  StateObserver::State observer;
  net::Group minority_side;
  bool slept_for_election = false;
  int value_counter = 0;
};

class RaftKvRunner : public CaseRunner {
 public:
  RaftKvRunner(const raftkv::Options& options, uint64_t seed)
      : system_(MakeConfig(options, seed)) {
    raftkv::Cluster& cluster = system_.cluster();
    initial_leader_ = cluster.WaitForLeader();
    observer_.emplace(system_, system_.Env().simulator().Trace());
    cluster.client(kMinorityClient).set_allow_redirect(false);
    cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(800));
    cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(800));
    cluster.client(kAdminClient).set_allow_redirect(false);
    cluster.client(kAdminClient).set_op_timeout(sim::Milliseconds(800));
    script_.emplace(cluster.env(), cluster.server_ids());
  }

  TestEnv& Env() override { return system_.Env(); }
  ISystem* System() override { return &system_; }

  void ApplyEvent(const TestEvent& event) override {
    raftkv::Cluster& cluster = system_.cluster();
    const net::Group servers = cluster.server_ids();
    switch (event.kind) {
      case EventKind::kPartition: {
        net::NodeId leader = initial_leader_;
        const std::vector<net::NodeId> leaders = cluster.Leaders();
        if (!leaders.empty()) {
          leader = leaders.front();
        }
        if (event.partition == PartitionKind::kPartial) {
          // RethinkDB #5289: orphan two replicas behind the cut, keep the
          // leader plus one replica, leave one bridge replica reaching
          // both sides — then the admin removes everything beyond the
          // leader pair while the partition is up. With
          // delete_log_on_removal, the bridge wipes its log and votes the
          // orphaned side a second, amnesiac majority.
          const net::Group others = net::Partitioner::Rest(servers, {leader});
          const net::Group keep = {leader, others[1]};
          const net::Group orphaned = {others[2], others[3]};
          script_->PartitionGroups(PartitionKind::kPartial, orphaned, keep);
          minority_side_ = orphaned;
          cluster.Settle(sim::Milliseconds(100));
          cluster.client(kAdminClient).set_contact(leader);
          cluster.ChangeMembers(kAdminClient, keep);
          cluster.Settle(sim::Seconds(1));
        } else {
          const net::NodeId isolated =
              event.target == IsolationTarget::kLeader ? leader : servers.back();
          script_->Partition(event.partition, isolated);
          minority_side_ = {isolated};
        }
        slept_for_election_ = false;
        break;
      }
      case EventKind::kHeal:
        script_->Heal();
        break;
      case EventKind::kWrite:
        cluster.Put(ClientFor(event.side), key_, "v" + std::to_string(++value_counter_));
        break;
      case EventKind::kRead:
        cluster.Get(ClientFor(event.side), key_);
        break;
      case EventKind::kDelete:
        cluster.Delete(ClientFor(event.side), key_);
        break;
      case EventKind::kLock:
      case EventKind::kUnlock:
        break;  // no lock surface
    }
    observer_->Observe();
  }

  ExecutionResult Finish(const TestCase& test_case) override {
    raftkv::Cluster& cluster = system_.cluster();
    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    if (script_->partitioned()) {
      cluster.Settle(sim::Milliseconds(800));
      script_->Heal();
    }
    cluster.Settle(sim::Seconds(1));
    observer_->Observe();
    cluster.client(kMajorityClient).set_contact(cluster.server_ids().front());
    cluster.Get(kMajorityClient, key_, /*final_read=*/true);

    const check::History& history = cluster.history();
    auto add = [&result](std::vector<check::Violation> violations) {
      result.violations.insert(result.violations.end(), violations.begin(), violations.end());
    };
    add(check::CheckDirtyReads(history));
    add(check::CheckDataLoss(history));
    add(check::CheckReappearance(history));
    add(check::CheckStaleReads(history));  // raftkv promises strong consistency
    const check::LinearizabilityResult linearizable = check::CheckLinearizable(history);
    if (!linearizable.linearizable) {
      check::Violation violation;
      violation.impact = "non-linearizable";
      violation.description = linearizable.reason;
      result.violations.push_back(std::move(violation));
    }
    const sim::TraceLog& trace = system_.Env().simulator().Trace();
    if (trace.causal()) {
      add(check::CheckCascades(trace));
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = observer_->Report();
    result.coverage = observer_->Finish();
    return result;
  }

  std::unique_ptr<SystemState> Snapshot() const override {
    auto state = std::make_unique<RaftKvRunnerState>();
    state->system = system_.Snapshot();
    if (state->system == nullptr) {
      return nullptr;
    }
    state->script = script_->CaptureState();
    state->observer = observer_->CaptureState();
    state->minority_side = minority_side_;
    state->slept_for_election = slept_for_election_;
    state->value_counter = value_counter_;
    return state;
  }

  void Restore(const SystemState& state) override {
    const auto* runner_state = dynamic_cast<const RaftKvRunnerState*>(&state);
    assert(runner_state != nullptr && "raftkv runner restore needs a raftkv runner state");
    system_.Restore(*runner_state->system);
    script_->RestoreState(runner_state->script);
    observer_->RestoreState(runner_state->observer);
    minority_side_ = runner_state->minority_side;
    slept_for_election_ = runner_state->slept_for_election;
    value_counter_ = runner_state->value_counter;
  }

 private:
  static constexpr int kMinorityClient = 0;
  static constexpr int kMajorityClient = 1;
  static constexpr int kAdminClient = 2;

  static raftkv::Cluster::Config MakeConfig(const raftkv::Options& options, uint64_t seed) {
    raftkv::Cluster::Config config;
    config.options = options;
    config.num_servers = 5;  // the #5289 topology needs an orphaned pair
    config.num_clients = 3;
    config.seed = seed;
    return config;
  }

  int ClientFor(Side side) {
    raftkv::Cluster& cluster = system_.cluster();
    if (side == Side::kMinority && script_->partitioned() && !minority_side_.empty()) {
      cluster.client(kMinorityClient).set_contact(minority_side_.front());
      return kMinorityClient;
    }
    if (script_->partitioned() && !slept_for_election_) {
      cluster.Settle(sim::Milliseconds(700));
      slept_for_election_ = true;
    }
    net::NodeId contact = initial_leader_;
    const std::vector<net::NodeId> leaders = cluster.Leaders();
    for (const net::NodeId leader : leaders) {
      if (std::find(minority_side_.begin(), minority_side_.end(), leader) ==
          minority_side_.end()) {
        contact = leader;
        break;
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  }

  RaftKvSystem system_;
  std::optional<StateObserver> observer_;
  std::optional<PartitionScript> script_;
  // detlint: allow(snapshot-field): fixed after Setup elects the initial leader; constant across forks
  net::NodeId initial_leader_ = net::kInvalidNode;  // fixed after setup
  // The nodes cut off by the current partition; minority-side client
  // events contact its first member.
  net::Group minority_side_;
  bool slept_for_election_ = false;
  int value_counter_ = 0;
  const std::string key_ = "k";
};

struct MqueueRunnerState : SystemState {
  std::unique_ptr<SystemState> system;
  PartitionScript::State script;
  StateObserver::State observer;
  bool slept_for_takeover = false;
  int value_counter = 0;
};

class MqueueRunner : public CaseRunner {
 public:
  MqueueRunner(const mqueue::Options& options, uint64_t seed)
      : system_(MakeConfig(options, seed)) {
    mqueue::Cluster& cluster = system_.cluster();
    cluster.Settle(sim::Milliseconds(500));  // first master election via the registry
    observer_.emplace(system_, system_.Env().simulator().Trace());
    cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
    cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));
    // One fully replicated message before any fault: partition-first pruning
    // leaves no room for a pre-partition enqueue inside the case, but the
    // double-dequeue flaw needs a message both sides of the cut believe they
    // hold.
    cluster.Send(kMajorityClient, queue_, "m0");
    cluster.Settle(sim::Milliseconds(300));
    // The partition universe includes the coordination service, which always
    // rides the majority side: an isolated master's session expires there
    // and the survivors elect a replacement (Figure 6).
    net::Group universe = cluster.broker_ids();
    universe.push_back(cluster.zk_id());
    script_.emplace(cluster.env(), universe);
  }

  TestEnv& Env() override { return system_.Env(); }
  ISystem* System() override { return &system_; }

  void ApplyEvent(const TestEvent& event) override {
    mqueue::Cluster& cluster = system_.cluster();
    switch (event.kind) {
      case EventKind::kPartition: {
        net::NodeId isolated = cluster.MasterPerRegistry();
        if (event.target == IsolationTarget::kAnyReplica || isolated == net::kInvalidNode) {
          // A non-master broker (the last one that is not master).
          for (const net::NodeId broker : cluster.broker_ids()) {
            if (broker != cluster.MasterPerRegistry()) {
              isolated = broker;
            }
          }
        }
        script_->Partition(event.partition, isolated);
        slept_for_takeover_ = false;
        break;
      }
      case EventKind::kHeal:
        script_->Heal();
        break;
      case EventKind::kWrite:
        cluster.Send(ClientFor(event.side), queue_, "m" + std::to_string(++value_counter_));
        break;
      case EventKind::kRead:
        cluster.Receive(ClientFor(event.side), queue_);
        break;
      default:
        break;  // no KV/lock surface
    }
    observer_->Observe();
  }

  ExecutionResult Finish(const TestCase& test_case) override {
    mqueue::Cluster& cluster = system_.cluster();
    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    if (script_->partitioned()) {
      cluster.Settle(sim::Milliseconds(800));
      script_->Heal();
    }
    cluster.Settle(sim::Seconds(1));
    observer_->Observe();

    // Drain the healed cluster's queue so the lost-message checker sees the
    // final state; drained values also complete the double-dequeue pattern.
    net::NodeId master = cluster.MasterPerRegistry();
    if (master == net::kInvalidNode) {
      master = cluster.broker_ids().front();
    }
    cluster.client(kMajorityClient).set_contact(master);
    for (int i = 0; i < 8; ++i) {
      const check::Operation drained =
          cluster.Receive(kMajorityClient, queue_, /*final_drain=*/true);
      if (drained.status != check::OpStatus::kOk || drained.value.empty()) {
        break;
      }
    }
    observer_->Observe();

    const check::History& history = cluster.history();
    auto add = [&result](std::vector<check::Violation> violations) {
      result.violations.insert(result.violations.end(), violations.begin(), violations.end());
    };
    add(check::CheckDoubleDequeue(history));
    add(check::CheckLostMessages(history));
    const sim::TraceLog& trace = system_.Env().simulator().Trace();
    if (trace.causal()) {
      add(check::CheckCascades(trace));
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = observer_->Report();
    result.coverage = observer_->Finish();
    return result;
  }

  std::unique_ptr<SystemState> Snapshot() const override {
    auto state = std::make_unique<MqueueRunnerState>();
    state->system = system_.Snapshot();
    if (state->system == nullptr) {
      return nullptr;
    }
    state->script = script_->CaptureState();
    state->observer = observer_->CaptureState();
    state->slept_for_takeover = slept_for_takeover_;
    state->value_counter = value_counter_;
    return state;
  }

  void Restore(const SystemState& state) override {
    const auto* runner_state = dynamic_cast<const MqueueRunnerState*>(&state);
    assert(runner_state != nullptr && "mqueue runner restore needs an mqueue runner state");
    system_.Restore(*runner_state->system);
    script_->RestoreState(runner_state->script);
    observer_->RestoreState(runner_state->observer);
    slept_for_takeover_ = runner_state->slept_for_takeover;
    value_counter_ = runner_state->value_counter;
  }

 private:
  static constexpr int kMinorityClient = 0;
  static constexpr int kMajorityClient = 1;

  static mqueue::Cluster::Config MakeConfig(const mqueue::Options& options, uint64_t seed) {
    mqueue::Cluster::Config config;
    config.options = options;
    config.num_clients = 2;
    config.seed = seed;
    return config;
  }

  int ClientFor(Side side) {
    mqueue::Cluster& cluster = system_.cluster();
    if (side == Side::kMinority && script_->partitioned()) {
      cluster.client(kMinorityClient).set_contact(script_->isolated());
      return kMinorityClient;
    }
    if (script_->partitioned() && !slept_for_takeover_) {
      // Wait out the session timeout so the surviving brokers take over.
      cluster.Settle(sim::Milliseconds(800));
      slept_for_takeover_ = true;
    }
    net::NodeId contact = cluster.MasterPerRegistry();
    if (contact == net::kInvalidNode || contact == script_->isolated()) {
      for (const net::NodeId broker : cluster.broker_ids()) {
        if (broker != script_->isolated()) {
          contact = broker;
          break;
        }
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  }

  MqueueSystem system_;
  std::optional<StateObserver> observer_;
  std::optional<PartitionScript> script_;
  bool slept_for_takeover_ = false;
  int value_counter_ = 0;
  const std::string queue_ = "q";
};

// Drives a fresh runner straight through a case — the classic full-replay
// execution the Run*TestCase functions promise.
template <typename Runner, typename... Args>
ExecutionResult RunStraightThrough(const TestCase& test_case, Args&&... args) {
  Runner runner(std::forward<Args>(args)...);
  for (const TestEvent& event : test_case) {
    runner.ApplyEvent(event);
  }
  return runner.Finish(test_case);
}

}  // namespace

ExecutionResult RunPbkvTestCase(const pbkv::Options& options, const TestCase& test_case,
                                uint64_t seed, bool strong) {
  return RunStraightThrough<PbkvRunner>(test_case, options, seed, strong);
}

ExecutionResult RunLocksvcTestCase(const locksvc::Options& options, const TestCase& test_case,
                                   uint64_t seed) {
  return RunStraightThrough<LocksvcRunner>(test_case, options, seed);
}

ExecutionResult RunRaftKvTestCase(const raftkv::Options& options, const TestCase& test_case,
                                  uint64_t seed) {
  return RunStraightThrough<RaftKvRunner>(test_case, options, seed);
}

ExecutionResult RunMqueueTestCase(const mqueue::Options& options, const TestCase& test_case,
                                  uint64_t seed) {
  return RunStraightThrough<MqueueRunner>(test_case, options, seed);
}

// --- fork-executor runner factories ---

RunnerFactory PbkvRunnerFactory(const pbkv::Options& options, bool strong) {
  return [options, strong](uint64_t seed) -> std::unique_ptr<CaseRunner> {
    return std::make_unique<PbkvRunner>(options, seed, strong);
  };
}

RunnerFactory LocksvcRunnerFactory(const locksvc::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<CaseRunner> {
    return std::make_unique<LocksvcRunner>(options, seed);
  };
}

RunnerFactory RaftKvRunnerFactory(const raftkv::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<CaseRunner> {
    return std::make_unique<RaftKvRunner>(options, seed);
  };
}

RunnerFactory MqueueRunnerFactory(const mqueue::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<CaseRunner> {
    return std::make_unique<MqueueRunner>(options, seed);
  };
}

// --- system factories ---

SystemFactory MakePbkvFactory(const pbkv::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<ISystem> {
    pbkv::Cluster::Config config;
    config.options = options;
    config.seed = seed;
    return std::make_unique<PbkvSystem>(config);
  };
}

SystemFactory MakeRaftKvFactory(int num_servers) {
  return [num_servers](uint64_t seed) -> std::unique_ptr<ISystem> {
    raftkv::Cluster::Config config;
    config.num_servers = num_servers;
    config.seed = seed;
    return std::make_unique<RaftKvSystem>(config);
  };
}

SystemFactory MakeLocksvcFactory(const locksvc::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<ISystem> {
    locksvc::Cluster::Config config;
    config.options = options;
    config.seed = seed;
    return std::make_unique<LocksvcSystem>(config);
  };
}

SystemFactory MakeMqueueFactory() {
  return [](uint64_t seed) -> std::unique_ptr<ISystem> {
    mqueue::Cluster::Config config;
    config.seed = seed;
    return std::make_unique<MqueueSystem>(config);
  };
}

SystemFactory MakeSchedFactory() {
  return [](uint64_t seed) -> std::unique_ptr<ISystem> {
    sched::Cluster::Config config;
    config.seed = seed;
    return std::make_unique<SchedSystem>(config);
  };
}

// --- campaign executors ---

CaseExecutor PbkvCaseExecutor(const pbkv::Options& options, bool strong) {
  return [options, strong](const TestCase& test_case, uint64_t seed) {
    return RunPbkvTestCase(options, test_case, seed, strong);
  };
}

CaseExecutor LocksvcCaseExecutor(const locksvc::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunLocksvcTestCase(options, test_case, seed);
  };
}

CaseExecutor RaftKvCaseExecutor(const raftkv::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunRaftKvTestCase(options, test_case, seed);
  };
}

CaseExecutor MqueueCaseExecutor(const mqueue::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunMqueueTestCase(options, test_case, seed);
  };
}

CaseExecutor StatusProbeExecutor(SystemFactory factory) {
  return [factory = std::move(factory)](const TestCase& test_case, uint64_t seed) {
    std::unique_ptr<ISystem> system = factory(seed);
    TestEnv& env = system->Env();
    env.Sleep(sim::Milliseconds(500));

    ExecutionResult result;
    result.trace = FormatTestCase(test_case);
    StateObserver observer(*system, env.simulator().Trace());

    PartitionScript script(env, system->Servers());
    const net::NodeId isolated = system->Servers().back();
    for (const TestEvent& event : test_case) {
      switch (event.kind) {
        case EventKind::kPartition:
          script.Partition(event.partition, isolated);
          env.Sleep(sim::Milliseconds(400));
          break;
        case EventKind::kHeal:
          script.Heal();
          break;
        default:
          break;  // no generic client surface; client events are skipped
      }
      observer.Observe();
    }
    if (script.partitioned()) {
      env.Sleep(sim::Milliseconds(800));
      script.Heal();
    }
    env.Sleep(sim::Seconds(1));
    observer.Observe();
    if (!system->GetStatus()) {
      check::Violation violation;
      violation.impact = "data unavailability";
      violation.description =
          system->Name() + " cannot make progress after the partition healed";
      result.violations.push_back(std::move(violation));
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = observer.Report();
    result.coverage = observer.Finish();
    return result;
  };
}

}  // namespace neat
