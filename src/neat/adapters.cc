#include "neat/adapters.h"

#include "neat/trace_report.h"

namespace neat {

bool LocksvcSystem::GetStatus() {
  // Healthy when a lock round-trip works end to end.
  const std::string resource = "__status_probe_" + std::to_string(status_probe_++);
  if (cluster_.Lock(0, resource).status != check::OpStatus::kOk) {
    return false;
  }
  return cluster_.Unlock(0, resource).status == check::OpStatus::kOk;
}

void SchedSystem::Shutdown() {
  net::Group all = cluster_.worker_ids();
  all.push_back(cluster_.rm_id());
  all.push_back(cluster_.store_id());
  cluster_.env().Crash(all);
}

namespace {

// Picks the node the partition isolates.
net::NodeId PickIsolated(pbkv::Cluster& cluster, IsolationTarget target) {
  if (target == IsolationTarget::kLeader) {
    const net::NodeId primary = cluster.FindPrimary();
    if (primary != net::kInvalidNode) {
      return primary;
    }
  }
  // "Any replica": a fixed non-initial-leader replica keeps runs comparable.
  return cluster.server_ids().back();
}

// The partition/heal machinery every executor shares: builds the requested
// partition shape around an isolated node and tears it down, keeping track
// of the currently installed partition so re-partition and final heal are
// uniform across systems.
class PartitionScript {
 public:
  PartitionScript(net::Partitioner& partitioner, net::Group servers)
      : partitioner_(partitioner), servers_(std::move(servers)) {}

  bool partitioned() const { return partitioned_; }
  net::NodeId isolated() const { return isolated_; }

  void Partition(PartitionKind kind, net::NodeId isolated) {
    Heal();
    isolated_ = isolated;
    const net::Group rest = net::Partitioner::Rest(servers_, {isolated});
    switch (kind) {
      case PartitionKind::kComplete:
        partition_ = partitioner_.Complete({isolated}, rest);
        break;
      case PartitionKind::kPartial:
        // Cut the isolated node from all but one bridge replica.
        partition_ = partitioner_.Partial({isolated},
                                          net::Group(rest.begin(), rest.end() - 1));
        break;
      case PartitionKind::kSimplex:
        partition_ = partitioner_.Simplex({isolated}, rest);
        break;
    }
    partitioned_ = true;
  }

  void Heal() {
    if (partitioned_) {
      partitioner_.Heal(partition_);
      partitioned_ = false;
    }
  }

 private:
  net::Partitioner& partitioner_;
  net::Group servers_;
  bool partitioned_ = false;
  net::Partition partition_;
  net::NodeId isolated_ = net::kInvalidNode;
};

}  // namespace

ExecutionResult RunPbkvTestCase(const pbkv::Options& options, const TestCase& test_case,
                                uint64_t seed, bool strong) {
  pbkv::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_allow_redirect(false);
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  PartitionScript script(cluster.partitioner(), cluster.server_ids());
  bool slept_for_election = false;
  int value_counter = 0;
  const std::string key = "k";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && script.partitioned()) {
      // Section 5.2: events on the old leader's side must be invoked right
      // after the partition, before it steps down — no sleep.
      cluster.client(kMinorityClient).set_contact(script.isolated());
      return kMinorityClient;
    }
    if (script.partitioned() && !slept_for_election) {
      // ...while on the majority side, the test sleeps until a new leader
      // is elected (the NEAT tests' SLEEP_LEADER_ELECTION_PERIOD).
      cluster.Settle(sim::Milliseconds(600));
      slept_for_election = true;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (script.partitioned()) {
      for (net::NodeId node : cluster.server_ids()) {
        if (node != script.isolated()) {
          contact = node;
          break;
        }
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition:
        script.Partition(event.partition, PickIsolated(cluster, event.target));
        slept_for_election = false;
        break;
      case EventKind::kHeal:
        script.Heal();
        break;
      case EventKind::kWrite:
        cluster.Put(client_for(event.side), key, "v" + std::to_string(++value_counter));
        break;
      case EventKind::kRead:
        cluster.Get(client_for(event.side), key);
        break;
      case EventKind::kDelete:
        cluster.Delete(client_for(event.side), key);
        break;
      case EventKind::kLock:
      case EventKind::kUnlock:
        break;  // pbkv has no locks; the locksvc executor covers those
    }
  }

  if (script.partitioned()) {
    // The studied partitions last minutes to hours; let the system run its
    // failure-handling (elections, step-downs) before the heal so latent
    // damage — e.g. asynchronously replicated writes stranded on a deposed
    // leader — manifests.
    cluster.Settle(sim::Milliseconds(800));
    script.Heal();
  }
  cluster.Settle(sim::Seconds(1));
  cluster.client(kMajorityClient).set_contact(cluster.server_ids().front());
  cluster.client(kMajorityClient).set_allow_redirect(true);
  cluster.Get(kMajorityClient, key, /*final_read=*/true);

  const check::History& history = cluster.history();
  auto add = [&result](std::vector<check::Violation> violations) {
    result.violations.insert(result.violations.end(), violations.begin(), violations.end());
  };
  add(check::CheckDirtyReads(history));
  add(check::CheckDataLoss(history));
  add(check::CheckReappearance(history));
  if (strong) {
    add(check::CheckStaleReads(history));
  }
  result.found_failure = !result.violations.empty();
  result.trace_report = Summarize(cluster.env().simulator().Trace());
  return result;
}

ExecutionResult RunLocksvcTestCase(const locksvc::Options& options, const TestCase& test_case,
                                   uint64_t seed) {
  locksvc::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  locksvc::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(300));

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  PartitionScript script(cluster.partitioner(), cluster.server_ids());
  const net::NodeId isolated = cluster.server_ids().back();
  const std::string lock = "L";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && script.partitioned()) {
      cluster.client(kMinorityClient).set_contact(isolated);
      return kMinorityClient;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (script.partitioned() && contact == isolated) {
      contact = cluster.server_ids()[1];
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition:
        script.Partition(event.partition, isolated);
        // Let the flawed views shrink, as the Ignite failures require.
        cluster.Settle(sim::Milliseconds(400));
        break;
      case EventKind::kHeal:
        script.Heal();
        break;
      case EventKind::kLock:
        cluster.Lock(client_for(event.side), lock);
        break;
      case EventKind::kUnlock:
        cluster.Unlock(client_for(event.side), lock);
        break;
      default:
        break;  // the lock service has no KV surface
    }
  }
  script.Heal();
  cluster.Settle(sim::Seconds(1));
  result.violations = check::CheckBrokenLocks(cluster.history());
  result.found_failure = !result.violations.empty();
  result.trace_report = Summarize(cluster.env().simulator().Trace());
  return result;
}

// --- system factories ---

SystemFactory MakePbkvFactory(const pbkv::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<ISystem> {
    pbkv::Cluster::Config config;
    config.options = options;
    config.seed = seed;
    return std::make_unique<PbkvSystem>(config);
  };
}

SystemFactory MakeRaftKvFactory(int num_servers) {
  return [num_servers](uint64_t seed) -> std::unique_ptr<ISystem> {
    raftkv::Cluster::Config config;
    config.num_servers = num_servers;
    config.seed = seed;
    return std::make_unique<RaftKvSystem>(config);
  };
}

SystemFactory MakeLocksvcFactory(const locksvc::Options& options) {
  return [options](uint64_t seed) -> std::unique_ptr<ISystem> {
    locksvc::Cluster::Config config;
    config.options = options;
    config.seed = seed;
    return std::make_unique<LocksvcSystem>(config);
  };
}

SystemFactory MakeMqueueFactory() {
  return [](uint64_t seed) -> std::unique_ptr<ISystem> {
    mqueue::Cluster::Config config;
    config.seed = seed;
    return std::make_unique<MqueueSystem>(config);
  };
}

SystemFactory MakeSchedFactory() {
  return [](uint64_t seed) -> std::unique_ptr<ISystem> {
    sched::Cluster::Config config;
    config.seed = seed;
    return std::make_unique<SchedSystem>(config);
  };
}

// --- campaign executors ---

CaseExecutor PbkvCaseExecutor(const pbkv::Options& options, bool strong) {
  return [options, strong](const TestCase& test_case, uint64_t seed) {
    return RunPbkvTestCase(options, test_case, seed, strong);
  };
}

CaseExecutor LocksvcCaseExecutor(const locksvc::Options& options) {
  return [options](const TestCase& test_case, uint64_t seed) {
    return RunLocksvcTestCase(options, test_case, seed);
  };
}

CaseExecutor StatusProbeExecutor(SystemFactory factory) {
  return [factory = std::move(factory)](const TestCase& test_case, uint64_t seed) {
    std::unique_ptr<ISystem> system = factory(seed);
    TestEnv& env = system->Env();
    env.Sleep(sim::Milliseconds(500));

    ExecutionResult result;
    result.trace = FormatTestCase(test_case);

    PartitionScript script(env.partitioner(), system->Servers());
    const net::NodeId isolated = system->Servers().back();
    for (const TestEvent& event : test_case) {
      switch (event.kind) {
        case EventKind::kPartition:
          script.Partition(event.partition, isolated);
          env.Sleep(sim::Milliseconds(400));
          break;
        case EventKind::kHeal:
          script.Heal();
          break;
        default:
          break;  // no generic client surface; client events are skipped
      }
    }
    if (script.partitioned()) {
      env.Sleep(sim::Milliseconds(800));
      script.Heal();
    }
    env.Sleep(sim::Seconds(1));
    if (!system->GetStatus()) {
      check::Violation violation;
      violation.impact = "data unavailability";
      violation.description =
          system->Name() + " cannot make progress after the partition healed";
      result.violations.push_back(std::move(violation));
    }
    result.found_failure = !result.violations.empty();
    result.trace_report = Summarize(env.simulator().Trace());
    return result;
  };
}

}  // namespace neat
