#include "neat/adapters.h"

namespace neat {

bool LocksvcSystem::GetStatus() {
  // Healthy when a lock round-trip works end to end.
  static int probe = 0;
  const std::string resource = "__status_probe_" + std::to_string(probe++);
  if (cluster_.Lock(0, resource).status != check::OpStatus::kOk) {
    return false;
  }
  return cluster_.Unlock(0, resource).status == check::OpStatus::kOk;
}

void SchedSystem::Shutdown() {
  net::Group all = cluster_.worker_ids();
  all.push_back(cluster_.rm_id());
  all.push_back(cluster_.store_id());
  cluster_.env().Crash(all);
}

namespace {

// Picks the node the partition isolates.
net::NodeId PickIsolated(pbkv::Cluster& cluster, IsolationTarget target) {
  if (target == IsolationTarget::kLeader) {
    const net::NodeId primary = cluster.FindPrimary();
    if (primary != net::kInvalidNode) {
      return primary;
    }
  }
  // "Any replica": a fixed non-initial-leader replica keeps runs comparable.
  return cluster.server_ids().back();
}

}  // namespace

ExecutionResult RunPbkvTestCase(const pbkv::Options& options, const TestCase& test_case,
                                uint64_t seed, bool strong) {
  pbkv::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  pbkv::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(500));

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_allow_redirect(false);
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  bool partitioned = false;
  bool slept_for_election = false;
  net::Partition partition;
  net::NodeId isolated = net::kInvalidNode;
  int value_counter = 0;
  const std::string key = "k";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && partitioned) {
      // Section 5.2: events on the old leader's side must be invoked right
      // after the partition, before it steps down — no sleep.
      cluster.client(kMinorityClient).set_contact(isolated);
      return kMinorityClient;
    }
    if (partitioned && !slept_for_election) {
      // ...while on the majority side, the test sleeps until a new leader
      // is elected (the NEAT tests' SLEEP_LEADER_ELECTION_PERIOD).
      cluster.Settle(sim::Milliseconds(600));
      slept_for_election = true;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (partitioned) {
      for (net::NodeId node : cluster.server_ids()) {
        if (node != isolated) {
          contact = node;
          break;
        }
      }
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition: {
        if (partitioned) {
          cluster.partitioner().Heal(partition);
        }
        isolated = PickIsolated(cluster, event.target);
        const net::Group rest =
            net::Partitioner::Rest(cluster.server_ids(), {isolated});
        switch (event.partition) {
          case PartitionKind::kComplete:
            partition = cluster.partitioner().Complete({isolated}, rest);
            break;
          case PartitionKind::kPartial:
            // Cut the isolated node from all but one bridge replica.
            partition = cluster.partitioner().Partial(
                {isolated}, net::Group(rest.begin(), rest.end() - 1));
            break;
          case PartitionKind::kSimplex:
            partition = cluster.partitioner().Simplex({isolated}, rest);
            break;
        }
        partitioned = true;
        slept_for_election = false;
        break;
      }
      case EventKind::kHeal:
        if (partitioned) {
          cluster.partitioner().Heal(partition);
          partitioned = false;
        }
        break;
      case EventKind::kWrite:
        cluster.Put(client_for(event.side), key, "v" + std::to_string(++value_counter));
        break;
      case EventKind::kRead:
        cluster.Get(client_for(event.side), key);
        break;
      case EventKind::kDelete:
        cluster.Delete(client_for(event.side), key);
        break;
      case EventKind::kLock:
      case EventKind::kUnlock:
        break;  // pbkv has no locks; the locksvc bench covers those
    }
  }

  if (partitioned) {
    // The studied partitions last minutes to hours; let the system run its
    // failure-handling (elections, step-downs) before the heal so latent
    // damage — e.g. asynchronously replicated writes stranded on a deposed
    // leader — manifests.
    cluster.Settle(sim::Milliseconds(800));
    cluster.partitioner().Heal(partition);
  }
  cluster.Settle(sim::Seconds(1));
  cluster.client(kMajorityClient).set_contact(cluster.server_ids().front());
  cluster.client(kMajorityClient).set_allow_redirect(true);
  cluster.Get(kMajorityClient, key, /*final_read=*/true);

  const check::History& history = cluster.history();
  auto add = [&result](std::vector<check::Violation> violations) {
    result.violations.insert(result.violations.end(), violations.begin(), violations.end());
  };
  add(check::CheckDirtyReads(history));
  add(check::CheckDataLoss(history));
  add(check::CheckReappearance(history));
  if (strong) {
    add(check::CheckStaleReads(history));
  }
  result.found_failure = !result.violations.empty();
  return result;
}

ExecutionResult RunLocksvcTestCase(const locksvc::Options& options, const TestCase& test_case,
                                   uint64_t seed) {
  locksvc::Cluster::Config config;
  config.options = options;
  config.num_clients = 2;
  config.seed = seed;
  locksvc::Cluster cluster(config);
  cluster.Settle(sim::Milliseconds(300));

  ExecutionResult result;
  result.trace = FormatTestCase(test_case);

  constexpr int kMinorityClient = 0;
  constexpr int kMajorityClient = 1;
  cluster.client(kMinorityClient).set_op_timeout(sim::Milliseconds(500));
  cluster.client(kMajorityClient).set_op_timeout(sim::Milliseconds(500));

  bool partitioned = false;
  net::Partition partition;
  const net::NodeId isolated = cluster.server_ids().back();
  const std::string lock = "L";

  auto client_for = [&](Side side) -> int {
    if (side == Side::kMinority && partitioned) {
      cluster.client(kMinorityClient).set_contact(isolated);
      return kMinorityClient;
    }
    net::NodeId contact = cluster.server_ids().front();
    if (partitioned && contact == isolated) {
      contact = cluster.server_ids()[1];
    }
    cluster.client(kMajorityClient).set_contact(contact);
    return kMajorityClient;
  };

  for (const TestEvent& event : test_case) {
    switch (event.kind) {
      case EventKind::kPartition: {
        if (partitioned) {
          cluster.partitioner().Heal(partition);
        }
        const net::Group rest = net::Partitioner::Rest(cluster.server_ids(), {isolated});
        if (event.partition == PartitionKind::kPartial) {
          partition = cluster.partitioner().Partial(
              {isolated}, net::Group(rest.begin(), rest.end() - 1));
        } else if (event.partition == PartitionKind::kSimplex) {
          partition = cluster.partitioner().Simplex({isolated}, rest);
        } else {
          partition = cluster.partitioner().Complete({isolated}, rest);
        }
        partitioned = true;
        // Let the flawed views shrink, as the Ignite failures require.
        cluster.Settle(sim::Milliseconds(400));
        break;
      }
      case EventKind::kHeal:
        if (partitioned) {
          cluster.partitioner().Heal(partition);
          partitioned = false;
        }
        break;
      case EventKind::kLock:
        cluster.Lock(client_for(event.side), lock);
        break;
      case EventKind::kUnlock:
        cluster.Unlock(client_for(event.side), lock);
        break;
      default:
        break;  // the lock service has no KV surface
    }
  }
  if (partitioned) {
    cluster.partitioner().Heal(partition);
  }
  cluster.Settle(sim::Seconds(1));
  result.violations = check::CheckBrokenLocks(cluster.history());
  result.found_failure = !result.violations.empty();
  return result;
}

}  // namespace neat
