#include "neat/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "neat/trace_report.h"

namespace neat {
namespace {

// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(const std::string& text) { return "\"" + JsonEscape(text) + "\""; }

// Fixed-precision seconds: JSON stays locale-independent and diff-friendly.
std::string JsonSeconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", seconds);
  return buffer;
}

size_t TotalDrops(const TraceReport& report) {
  size_t total = 0;
  for (const auto& [link, count] : report.drops_per_link) {
    total += count;
  }
  return total;
}

// The repro for `signature`, or nullptr when minimization did not run (or
// — contract violation — produced no entry for it).
const MinimizedRepro* FindRepro(const CampaignResult& result, const std::string& signature) {
  for (const MinimizedRepro& repro : result.minimized) {
    if (repro.signature == signature) {
      return &repro;
    }
  }
  return nullptr;
}

void AppendJsonRepro(std::ostringstream& os, const MinimizedRepro& repro,
                     const std::string& indent) {
  os << "{\n";
  os << indent << "  \"seed\": " << repro.seed << ",\n";
  os << indent << "  \"original\": " << JsonString(FormatTestCase(repro.original)) << ",\n";
  os << indent << "  \"minimized\": " << JsonString(FormatTestCase(repro.minimized))
     << ",\n";
  os << indent << "  \"original_events\": " << repro.original.size() << ",\n";
  os << indent << "  \"minimized_events\": " << repro.minimized.size() << ",\n";
  os << indent << "  \"probes\": " << repro.probes << ",\n";
  os << indent << "  \"reproduced\": " << (repro.reproduced ? "true" : "false") << ",\n";
  os << indent << "  \"shrink_log\": [";
  for (size_t i = 0; i < repro.log.size(); ++i) {
    const ShrinkStep& step = repro.log[i];
    os << (i == 0 ? "\n" : ",\n");
    os << indent << "    { \"phase\": " << JsonString(step.phase)
       << ", \"detail\": " << JsonString(step.detail)
       << ", \"events_after\": " << step.events_after
       << ", \"probes_after\": " << step.probes_after << " }";
  }
  os << (repro.log.empty() ? "" : "\n" + indent + "  ") << "],\n";
  const TraceReport& trace = repro.final_result.trace_report;
  os << indent << "  \"trace\": { \"total_records\": " << trace.total_records
     << ", \"dropped_messages\": " << TotalDrops(trace)
     << ", \"dropped_links\": " << trace.drops_per_link.size()
     << ", \"leadership_events\": " << trace.leadership_events.size() << " }\n";
  os << indent << "}";
}

}  // namespace

std::string JsonReport(const CampaignResult& result, const ReportContext& context) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"title\": " << JsonString(context.title) << ",\n";
  os << "  \"system\": " << JsonString(context.system) << ",\n";
  os << "  \"suite\": " << JsonString(context.suite) << ",\n";
  os << "  \"threads\": " << context.threads << ",\n";
  os << "  \"seeds\": " << context.seeds << ",\n";
  os << "  \"campaign\": {\n";
  os << "    \"cases_run\": " << result.cases_run << ",\n";
  os << "    \"failures\": " << result.failures << ",\n";
  os << "    \"first_failure_index\": " << result.first_failure_index << ",\n";
  os << "    \"cases_per_second\": " << JsonSeconds(result.CasesPerSecond()) << ",\n";
  os << "    \"sweep_seconds\": " << JsonSeconds(result.sweep_seconds) << ",\n";
  os << "    \"minimize_seconds\": " << JsonSeconds(result.minimize_seconds) << ",\n";
  os << "    \"wall_seconds\": " << JsonSeconds(result.wall_seconds) << ",\n";
  os << "    \"verdict_digest\": " << JsonString(result.VerdictDigest()) << "\n";
  os << "  },\n";
  os << "  \"coverage\": {\n";
  os << "    \"unique_features\": " << result.coverage.unique_features() << ",\n";
  os << "    \"total_hits\": " << result.coverage.total_hits() << ",\n";
  os << "    \"digest\": " << JsonString(result.coverage.Digest()) << "\n";
  os << "  },\n";
  os << "  \"guided\": ";
  if (!result.guided.enabled) {
    os << "null,\n";
  } else {
    os << "{\n";
    os << "    \"seed_cases\": " << result.guided.seed_cases << ",\n";
    os << "    \"rounds_run\": " << result.guided.rounds_run << ",\n";
    os << "    \"mutants_run\": " << result.guided.mutants_run << ",\n";
    os << "    \"duplicates_skipped\": " << result.guided.duplicates_skipped << ",\n";
    os << "    \"corpus_cases\": " << result.guided.corpus.size() << ",\n";
    os << "    \"corpus_digest\": " << JsonString(result.CorpusDigest()) << ",\n";
    os << "    \"new_features_per_round\": [";
    for (size_t i = 0; i < result.guided.new_features_per_round.size(); ++i) {
      os << (i == 0 ? "" : ", ") << result.guided.new_features_per_round[i];
    }
    os << "]\n";
    os << "  },\n";
  }
  os << "  \"signatures\": [";
  size_t index = 0;
  for (const auto& [signature, count] : result.signature_counts) {
    os << (index++ == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"signature\": " << JsonString(signature) << ",\n";
    os << "      \"count\": " << count << ",\n";
    os << "      \"repro\": ";
    const MinimizedRepro* repro = FindRepro(result, signature);
    if (repro == nullptr) {
      os << "null";
    } else {
      AppendJsonRepro(os, *repro, "      ");
    }
    os << "\n    }";
  }
  os << (result.signature_counts.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

std::string MarkdownReport(const CampaignResult& result, const ReportContext& context) {
  std::ostringstream os;
  os << "# " << context.title << "\n\n";
  os << "- **system:** " << context.system << "\n";
  os << "- **suite:** " << context.suite << "\n";
  os << "- **threads:** " << context.threads << " (0 = one per hardware thread), "
     << "**seeds:** " << context.seeds << "\n";
  os << "- **verdict digest:** `" << result.VerdictDigest() << "`\n\n";

  os << "## Campaign\n\n";
  os << "| runs | failures | first failure | cases/s | sweep s | minimize s | wall s |\n";
  os << "|---:|---:|---:|---:|---:|---:|---:|\n";
  char row[256];
  std::snprintf(row, sizeof(row),
                "| %llu | %llu | %lld | %.1f | %.3f | %.3f | %.3f |\n",
                static_cast<unsigned long long>(result.cases_run),
                static_cast<unsigned long long>(result.failures),
                static_cast<long long>(result.first_failure_index),
                result.CasesPerSecond(), result.sweep_seconds, result.minimize_seconds,
                result.wall_seconds);
  os << row;

  os << "\n## Coverage\n\n";
  os << "- **unique features:** " << result.coverage.unique_features() << ", **total hits:** "
     << result.coverage.total_hits() << ", **digest:** `" << result.coverage.Digest()
     << "`\n";
  if (result.guided.enabled) {
    os << "\n## Guided corpus\n\n";
    os << "- **seed cases:** " << result.guided.seed_cases << ", **mutation rounds:** "
       << result.guided.rounds_run << ", **mutants run:** " << result.guided.mutants_run
       << ", **duplicates skipped:** " << result.guided.duplicates_skipped << "\n";
    os << "- **corpus:** " << result.guided.corpus.size() << " case(s), digest `"
       << result.CorpusDigest() << "`\n";
    os << "- **new features per round:** ";
    for (size_t i = 0; i < result.guided.new_features_per_round.size(); ++i) {
      os << (i == 0 ? "" : ", ") << result.guided.new_features_per_round[i];
    }
    os << " (round 0 is the seeding sweep)\n";
  }

  os << "\n## Failure signatures\n\n";
  if (result.signature_counts.empty()) {
    os << "No failing runs.\n";
    return os.str();
  }
  os << "| signature | failing runs | minimized repro | events |\n";
  os << "|---|---:|---|---:|\n";
  for (const auto& [signature, count] : result.signature_counts) {
    const MinimizedRepro* repro = FindRepro(result, signature);
    os << "| " << signature << " | " << count << " | "
       << (repro == nullptr ? std::string("*(not minimized)*")
                            : "`" + FormatTestCase(repro->minimized) + "`")
       << " | "
       << (repro == nullptr ? std::string("-") : std::to_string(repro->minimized.size()))
       << " |\n";
  }

  for (const MinimizedRepro& repro : result.minimized) {
    os << "\n### Repro: " << repro.signature << "\n\n";
    os << "- **original** (" << repro.original.size() << " events): `"
       << FormatTestCase(repro.original) << "`\n";
    os << "- **minimized** (" << repro.minimized.size() << " events): `"
       << FormatTestCase(repro.minimized) << "`\n";
    os << "- **seed:** " << repro.seed << ", **probes:** " << repro.probes
       << ", **re-verified:** " << (repro.reproduced ? "yes" : "NO") << "\n";
    os << "\nShrink log:\n\n";
    for (const ShrinkStep& step : repro.log) {
      os << "1. *" << step.phase << "* — " << step.detail << " (" << step.events_after
         << " events, " << step.probes_after << " probes)\n";
    }
    const TraceReport& trace = repro.final_result.trace_report;
    if (trace.total_records > 0) {
      os << "\nRepro run trace: " << trace.total_records << " records, " << TotalDrops(trace)
         << " messages dropped on " << trace.drops_per_link.size() << " links, "
         << trace.leadership_events.size() << " leadership events.\n";
    }
    if (!repro.final_result.violations.empty()) {
      os << "\nViolations:\n\n";
      for (const check::Violation& violation : repro.final_result.violations) {
        os << "- **" << violation.impact << "** — " << violation.description << "\n";
      }
    }
  }
  return os.str();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out.flush());
}

}  // namespace neat
