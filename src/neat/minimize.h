// Delta-debugging minimization of failing test cases.
//
// A campaign hands back failing runs as raw event sequences; the paper's
// actual deliverable (§6, Table 15) is a small, understandable reproduction
// per distinct failure. MinimizeCase implements ddmin-style shrinking
// (Zeller & Hildebrandt's complement-removal variant) over the
// deterministic replay harness: it re-executes candidate subsequences of
// the failing case under the same seed and accepts a candidate only if the
// run's FailureSignature is preserved, so the minimal repro provably still
// exhibits the same failure. A second pass simplifies the partition events
// themselves, replacing each with the simplest variant (complete before
// partial before simplex, any-replica before leader isolation) that keeps
// the signature.
//
// The whole procedure is a pure function of (test case, seed, executor):
// no randomness, fixed candidate order, memoized probes — so minimizing on
// one thread or sixteen yields byte-identical repros.

#ifndef NEAT_MINIMIZE_H_
#define NEAT_MINIMIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "neat/execution.h"
#include "neat/testgen.h"

namespace neat {

struct MinimizeOptions {
  // Hard cap on executor invocations; shrinking stops (keeping the best
  // case so far) once the budget is spent. ddmin needs O(n^2) probes worst
  // case, typically far fewer.
  uint64_t max_probes = 2000;
};

// One accepted step of the shrink process.
struct ShrinkStep {
  std::string phase;   // "reproduce" | "ddmin" | "simplify" | "verify"
  std::string detail;  // what was removed/replaced
  size_t events_after = 0;
  uint64_t probes_after = 0;  // cumulative executor invocations
};

// The minimal reproduction for one failure signature.
struct MinimizedRepro {
  std::string signature;  // the preserved FailureSignature
  uint64_t seed = 1;
  TestCase original;
  TestCase minimized;
  // True when the minimized case was re-executed and failed with
  // `signature`. False only if the original run did not reproduce at all
  // (flaky executor — a contract violation) — minimized == original then.
  bool reproduced = false;
  uint64_t probes = 0;  // total executor invocations, memoized duplicates excluded
  std::vector<ShrinkStep> log;
  // The re-execution of `minimized`: violations and trace summary for
  // reporting.
  ExecutionResult final_result;
};

// Shrinks `failing` (which failed under `seed`) to a 1-minimal event
// sequence with the same FailureSignature, by deterministic re-execution.
MinimizedRepro MinimizeCase(const TestCase& failing, uint64_t seed,
                            const CaseExecutor& executor,
                            const MinimizeOptions& options = MinimizeOptions());

}  // namespace neat

#endif  // NEAT_MINIMIZE_H_
