#include "neat/trace_report.h"

#include <algorithm>
#include <sstream>

#include "neat/trace_scan.h"

namespace neat {

TraceReport Summarize(const sim::TraceLog& trace) {
  // One-shot form of the incremental fold (neat/trace_scan.h).
  TraceScan scan;
  scan.Advance(trace);
  return scan.Report(trace);
}

std::string FormatReport(const TraceReport& report) {
  std::ostringstream os;
  size_t total_drops = 0;
  std::string worst_link;
  size_t worst_count = 0;
  for (const auto& [link, count] : report.drops_per_link) {
    total_drops += count;
    if (count > worst_count) {
      worst_count = count;
      worst_link = link;
    }
  }
  os << report.total_records << " trace records; " << total_drops << " messages dropped on "
     << report.drops_per_link.size() << " links";
  if (!worst_link.empty()) {
    os << " (worst: " << worst_link << " x" << worst_count << ")";
  }
  os << "\n";
  os << "leadership timeline (" << report.leadership_events.size() << " events):\n";
  for (const sim::TraceRecord& record : report.leadership_events) {
    os << "  t=" << sim::FormatTime(record.when) << "  " << record.component << "  "
       << record.event;
    if (!record.detail.empty()) {
      os << "  " << record.detail;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace neat
