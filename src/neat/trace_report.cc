#include "neat/trace_report.h"

#include <algorithm>
#include <sstream>

namespace neat {
namespace {

// The events that describe leadership movement across the model systems.
bool IsLeadershipEvent(const std::string& event) {
  return event == "election-start" || event == "elected" || event == "step-down" ||
         event == "election-timeout" || event == "vote" || event == "master" ||
         event == "resign" || event == "demoted";
}

}  // namespace

TraceReport Summarize(const sim::TraceLog& trace) {
  TraceReport report;
  report.total_records = trace.size();
  for (const sim::TraceRecord& record : trace.records()) {
    ++report.event_counts[record.event];
    if (record.component == "net" && record.event == "drop") {
      // Detail looks like "3->1 pbkv.Replicate (partitioned at send)". A
      // detail with no space separator still counts — under the raw detail
      // — so the per-link totals always sum to event_counts["drop"].
      const size_t space = record.detail.find(' ');
      ++report.drops_per_link[space == std::string::npos ? record.detail
                                                         : record.detail.substr(0, space)];
    }
    if (IsLeadershipEvent(record.event)) {
      report.leadership_events.push_back(record);
    }
  }
  return report;
}

std::string FormatReport(const TraceReport& report) {
  std::ostringstream os;
  size_t total_drops = 0;
  std::string worst_link;
  size_t worst_count = 0;
  for (const auto& [link, count] : report.drops_per_link) {
    total_drops += count;
    if (count > worst_count) {
      worst_count = count;
      worst_link = link;
    }
  }
  os << report.total_records << " trace records; " << total_drops << " messages dropped on "
     << report.drops_per_link.size() << " links";
  if (!worst_link.empty()) {
    os << " (worst: " << worst_link << " x" << worst_count << ")";
  }
  os << "\n";
  os << "leadership timeline (" << report.leadership_events.size() << " events):\n";
  for (const sim::TraceRecord& record : report.leadership_events) {
    os << "  t=" << sim::FormatTime(record.when) << "  " << record.component << "  "
       << record.event;
    if (!record.detail.empty()) {
      os << "  " << record.detail;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace neat
