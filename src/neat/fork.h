// Snapshot/fork execution of test cases (prefix reuse).
//
// Campaign suites are massively redundant: a pruned enumeration walks the
// space in DFS order, guided rounds mutate corpus entries near their tails,
// and ddmin probes differ from each other by one dropped chunk — so
// consecutive cases usually share a long event prefix. The classic executor
// re-builds a fresh cluster and re-executes that shared prefix for every
// case. The fork executor instead keeps one live runner per seed and a
// bounded cache of whole-system snapshots keyed by case-prefix digest; a
// new case restores the snapshot of its longest cached prefix and executes
// only the suffix. Because snapshots capture the complete deterministic
// state (simulator clock/sequence/RNG/pending events, network, partition
// rules, process and history state — see neat/system.h), the forked run is
// byte-identical to a full replay: same verdict, same trace, same coverage.
//
// Snapshots are only taken at quiescent points — between test events, with
// the simulator stopped — and only restored into the runner instance that
// produced them (process closures capture `this` of that instance's
// processes; the snapshot stores event ids, never callbacks).

#ifndef NEAT_FORK_H_
#define NEAT_FORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "neat/execution.h"
#include "neat/system.h"
#include "neat/testgen.h"

namespace neat {

// A live system executing one test case event by event. Splitting the
// monolithic Run*TestCase executors into construct / ApplyEvent / Finish
// is what gives the fork executor a place to capture state between events:
// the constructor performs setup (build the cluster, settle, configure
// clients), ApplyEvent applies exactly one test event, and Finish runs the
// post-sequence phase (heal, settle, final verification reads, checkers)
// and produces the verdict. Finish perturbs the system — callers must
// Restore before applying further events.
class CaseRunner {
 public:
  virtual ~CaseRunner() = default;

  // The environment the system under test runs in (the fork executor
  // enables simulator event retention through it before snapshotting).
  virtual TestEnv& Env() = 0;

  // The live system under test, for post-Finish status probes (the
  // scenario DSL's status-converges expectation). Null when the runner
  // does not expose one.
  virtual ISystem* System() { return nullptr; }

  // Applies one test event to the live system.
  virtual void ApplyEvent(const TestEvent& event) = 0;

  // Post-sequence phase: heal, settle, final verification, checkers. The
  // full original case is passed for the result's trace field.
  virtual ExecutionResult Finish(const TestCase& test_case) = 0;

  // Whole-run state at a quiescent point: the system snapshot plus the
  // runner's own step state (installed partition, election-sleep flags,
  // value counters, the coverage observer). Const by contract — capturing
  // must not perturb the run (detlint's snapshot-nonconst rule).
  virtual std::unique_ptr<SystemState> Snapshot() const = 0;

  // Rewinds to a state previously captured by Snapshot() on this runner.
  virtual void Restore(const SystemState& state) = 0;
};

// Builds a fresh runner (fully booted and settled) for one seed. Factories
// capture only immutable configuration; the fork executor calls them once
// per (seed, eviction) rather than once per case.
using RunnerFactory = std::function<std::unique_ptr<CaseRunner>(uint64_t seed)>;

struct ForkOptions {
  // Per-seed snapshot cache capacity (LRU by use; the post-setup root
  // snapshot is pinned and does not count against the bound).
  size_t snapshot_cache = 64;
  // Live runners kept across seeds (LRU). Campaigns usually sweep one seed
  // at a time, so a small bound suffices.
  size_t runner_cache = 4;
};

struct ForkStats {
  uint64_t cases_run = 0;
  uint64_t fresh_runners = 0;     // full cluster constructions
  uint64_t forked_runs = 0;       // runs resumed from a non-empty prefix
  uint64_t events_applied = 0;    // suffix events actually executed
  uint64_t events_forked_over = 0;  // prefix events reused from a snapshot
  uint64_t snapshots_taken = 0;
  uint64_t snapshots_evicted = 0;      // LRU-bound and branch-teardown drops
  uint64_t snapshots_invalidated = 0;  // dropped as descendants of a restore
};

// A stateful executor: Run has the same observable contract as the classic
// CaseExecutor (same (case, seed) -> same result), but reuses snapshot
// prefixes across calls. NOT thread-safe — give each campaign worker its
// own instance (SessionFactory in neat/execution.h).
class ForkingExecutor {
 public:
  explicit ForkingExecutor(RunnerFactory factory, ForkOptions options = ForkOptions{});

  ExecutionResult Run(const TestCase& test_case, uint64_t seed);

  const ForkStats& stats() const { return stats_; }

 private:
  struct CachedSnapshot {
    TestCase prefix;  // verified on lookup; digests alone could collide
    std::unique_ptr<SystemState> state;
    uint64_t last_used = 0;
    // Capture-order stamp. Snapshots reference positions in the branch's
    // simulator history (trace sizes, event sequence numbers), so the cache
    // is only coherent as a chain of ancestors of the live state: restoring
    // a snapshot invalidates every snapshot captured after it (their
    // history is about to be rewritten by the new continuation).
    uint64_t birth = 0;
  };
  struct Branch {
    std::unique_ptr<CaseRunner> runner;
    bool forkable = false;  // the runner's Snapshot() returned non-null
    std::map<uint64_t, CachedSnapshot> snapshots;  // prefix digest -> state
    uint64_t last_used = 0;
  };

  Branch& BranchFor(uint64_t seed);
  void CacheSnapshot(Branch* branch, const TestCase& prefix, size_t length);

  RunnerFactory factory_;
  ForkOptions options_;
  std::map<uint64_t, Branch> branches_;  // by seed
  ForkStats stats_;
  uint64_t tick_ = 0;  // LRU clock: bumped per cache touch
};

// Wraps a fork executor as a plain CaseExecutor (single-threaded use: the
// returned callable owns one ForkingExecutor). `stats`, when non-null,
// receives a copy of the executor's counters after every run.
CaseExecutor ForkingCaseExecutor(RunnerFactory factory, ForkOptions options = ForkOptions{},
                                 std::shared_ptr<ForkStats> stats = nullptr);

// A session factory for campaigns: every worker thread gets its own
// ForkingExecutor, so prefix reuse happens per worker with no shared
// mutable state (see CampaignOptions::sessions).
SessionFactory ForkingSessions(RunnerFactory factory, ForkOptions options = ForkOptions{});

}  // namespace neat

#endif  // NEAT_FORK_H_
