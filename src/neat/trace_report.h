// Trace inspection: summarizing a simulation trace into a failure
// narrative. This is the paper's future-work direction made concrete —
// "collect detailed system traces of failures and build tools to verify and
// visualize system protocols ... help developers test, debug, and inspect
// protocols under different failure scenarios".

#ifndef NEAT_TRACE_REPORT_H_
#define NEAT_TRACE_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace neat {

struct TraceReport {
  // Total records, by event name ("drop", "elected", "step-down", ...).
  // Transparent comparators let Summarize probe with string_views parsed
  // out of record details without materializing a key per record.
  std::map<std::string, size_t, std::less<>> event_counts;
  // Dropped messages per directed link, parsed from the network's drop
  // records ("3->1 pbkv.Replicate (partitioned at send)").
  std::map<std::string, size_t, std::less<>> drops_per_link;
  // The leadership timeline: every election/step-down record in order.
  std::vector<sim::TraceRecord> leadership_events;
  size_t total_records = 0;
};

// Builds a report over the whole trace.
TraceReport Summarize(const sim::TraceLog& trace);

// Renders the report as a short human-readable narrative:
//   347 trace records; 41 messages dropped on 4 links (worst: 1->2 x18)
//   t=650ms  pbkv.n2  election-start  term=2
//   ...
std::string FormatReport(const TraceReport& report);

}  // namespace neat

#endif  // NEAT_TRACE_REPORT_H_
