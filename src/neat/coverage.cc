#include "neat/coverage.h"

#include <cstdio>
#include <set>
#include <sstream>

namespace neat {
namespace {

// The second whitespace-separated token of a net "drop" detail
// ("3->1 pbkv.Replicate (partitioned at send)") — the message type.
std::string DroppedMessageType(const std::string& detail) {
  const size_t first_space = detail.find(' ');
  if (first_space == std::string::npos) {
    return detail;
  }
  const size_t start = first_space + 1;
  const size_t end = detail.find(' ', start);
  return detail.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

}  // namespace

size_t CoverageMap::Add(const std::vector<std::string>& features) {
  size_t unseen = 0;
  for (const std::string& feature : features) {
    uint64_t& count = counters_[feature];
    if (count == 0) {
      ++unseen;
    }
    ++count;
    ++total_hits_;
  }
  return unseen;
}

void CoverageMap::MergeFrom(const CoverageMap& other) {
  for (const auto& [feature, count] : other.counters_) {
    counters_[feature] += count;
  }
  total_hits_ += other.total_hits_;
}

bool CoverageMap::Covers(const std::string& feature) const {
  return counters_.find(feature) != counters_.end();
}

std::string CoverageMap::Digest() const {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char byte : text) {
      hash ^= byte;
      hash *= 1099511628211ull;
    }
  };
  for (const auto& [feature, count] : counters_) {
    mix(feature);
    mix("=");
    mix(std::to_string(count));
    mix("\n");
  }
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

std::vector<std::string> TraceCoverage(const sim::TraceLog& trace) {
  std::set<std::string> features;
  for (const auto& [a, b] : trace.EventBigrams()) {
    features.insert("bi:" + a + ">" + b);
  }
  // Partition-phase edges: 'b' before the first injected partition, 'p'
  // while one is installed, 'h' after a heal. The phase markers are the
  // "neat" records the executors' PartitionScript appends.
  char phase = 'b';
  for (const sim::TraceRecord& record : trace.records()) {
    if (record.component == "neat") {
      if (record.event == "partition") {
        phase = 'p';
      } else if (record.event == "heal") {
        phase = 'h';
      }
      continue;
    }
    if (record.component == "net") {
      if (record.event == "drop") {
        features.insert(std::string("ph:") + phase + ":" + DroppedMessageType(record.detail));
      }
      continue;
    }
    // System-level records (elections, step-downs, session expiries):
    // the event name by phase.
    features.insert(std::string("ph:") + phase + ":" + record.event);
  }
  return std::vector<std::string>(features.begin(), features.end());
}

std::string StateTransitionFeature(uint64_t before, uint64_t after) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "sd:%016llx>%016llx",
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(after));
  return buffer;
}

}  // namespace neat
