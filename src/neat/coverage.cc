#include "neat/coverage.h"

#include <cstdio>
#include <sstream>

#include "neat/trace_scan.h"

namespace neat {

size_t CoverageMap::Add(const std::vector<std::string>& features) {
  size_t unseen = 0;
  for (const std::string& feature : features) {
    uint64_t& count = counters_[feature];
    if (count == 0) {
      ++unseen;
    }
    ++count;
    ++total_hits_;
  }
  return unseen;
}

void CoverageMap::MergeFrom(const CoverageMap& other) {
  for (const auto& [feature, count] : other.counters_) {
    counters_[feature] += count;
  }
  total_hits_ += other.total_hits_;
}

bool CoverageMap::Covers(const std::string& feature) const {
  return counters_.find(feature) != counters_.end();
}

std::string CoverageMap::Digest() const {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char byte : text) {
      hash ^= byte;
      hash *= 1099511628211ull;
    }
  };
  for (const auto& [feature, count] : counters_) {
    mix(feature);
    mix("=");
    mix(std::to_string(count));
    mix("\n");
  }
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

std::vector<std::string> TraceCoverage(const sim::TraceLog& trace) {
  // One-shot form of the incremental fold (neat/trace_scan.h): the "bi:"
  // event bigrams plus the "ph:" partition-phase edges — 'b' before the
  // first injected partition, 'p' while one is installed, 'h' after a heal,
  // keyed off the "neat" phase markers PartitionScript appends.
  TraceScan scan;
  scan.Advance(trace);
  return scan.Features();
}

std::string StateTransitionFeature(uint64_t before, uint64_t after) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "sd:%016llx>%016llx",
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(after));
  return buffer;
}

}  // namespace neat
