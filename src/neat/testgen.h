// Test-case generation with the paper's pruning rules (Chapter 5).
//
// The study finds that the event space is "extremely large", but that most
// failures (a) start with the network-partitioning fault (84%), (b) need
// three or fewer input events (83%), (c) follow the natural order of
// operations (lock before unlock, write before read), and (d) reproduce on
// three nodes. This module turns those findings into a generator: it
// enumerates abstract test cases over an event alphabet, with each pruning
// rule individually toggleable so the benches can measure how much of the
// space each rule removes and whether the pruned space still finds the
// seeded bugs.

#ifndef NEAT_TESTGEN_H_
#define NEAT_TESTGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace neat {

enum class EventKind {
  kPartition,  // inject the network-partitioning fault
  kHeal,
  kWrite,
  kRead,
  kDelete,
  kLock,
  kUnlock,
};

enum class PartitionKind { kComplete, kPartial, kSimplex };

// Whom the partition isolates (Table 10 of the paper).
enum class IsolationTarget { kAnyReplica, kLeader };

// Which side of the partition a client event is applied to.
enum class Side { kMinority, kMajority };

struct TestEvent {
  EventKind kind = EventKind::kWrite;
  PartitionKind partition = PartitionKind::kComplete;
  IsolationTarget target = IsolationTarget::kAnyReplica;
  Side side = Side::kMajority;

  std::string DebugString() const;
  bool operator==(const TestEvent& other) const;
};

using TestCase = std::vector<TestEvent>;

std::string FormatTestCase(const TestCase& test_case);

// Which of the paper's findings are applied as pruning rules.
struct PruningRules {
  bool partition_first = false;    // Table 9: 84% start with the fault
  bool natural_order = false;      // Table 9: write before read, lock before unlock
  bool single_partition = false;   // Finding 6: 99% need one partition
  int max_client_events = 0;       // Table 7: 83% need <= 3 events (0 = unlimited)
};

inline PruningRules NoPruning() { return PruningRules{}; }

inline PruningRules PaperPruning() {
  PruningRules rules;
  rules.partition_first = true;
  rules.natural_order = true;
  rules.single_partition = true;
  rules.max_client_events = 3;
  return rules;
}

class TestCaseGenerator {
 public:
  // The alphabet: which client event kinds the workload may use, and which
  // partition variants to inject.
  struct Alphabet {
    std::vector<EventKind> client_events{EventKind::kWrite, EventKind::kRead};
    std::vector<PartitionKind> partitions{PartitionKind::kComplete, PartitionKind::kPartial};
    std::vector<IsolationTarget> targets{IsolationTarget::kLeader,
                                         IsolationTarget::kAnyReplica};
    std::vector<Side> sides{Side::kMinority, Side::kMajority};
  };

  explicit TestCaseGenerator(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  const Alphabet& alphabet() const { return alphabet_; }

  // Every sequence of exactly `length` events permitted by `rules`.
  std::vector<TestCase> Enumerate(int length, const PruningRules& rules) const;

  // Sequences of length 1..max_length.
  std::vector<TestCase> EnumerateUpTo(int max_length, const PruningRules& rules) const;

  // --- streaming enumeration ---
  //
  // Long suites (length 5 and up) are too large to materialize; the cursor
  // and callback forms below walk the same depth-first order as
  // Enumerate/EnumerateUpTo while holding only the DFS stack — O(max_length)
  // state regardless of suite size.

  // Pull-based cursor. Obtain one from MakeCursor/MakeCursorUpTo; each Next
  // call produces the next admissible case until the space is exhausted.
  class Cursor {
   public:
    // Copies the next test case into `out`; false once exhausted.
    bool Next(TestCase* out);

   private:
    friend class TestCaseGenerator;
    Cursor(const TestCaseGenerator* generator, int min_length, int max_length,
           const PruningRules& rules);

    const TestCaseGenerator* generator_;
    std::vector<TestEvent> instances_;
    PruningRules rules_;
    int max_length_;
    int target_length_;              // the exact length currently enumerated
    TestCase prefix_;                // DFS path from the root
    std::vector<size_t> next_index_; // per-depth next instance to try
    bool done_ = false;
  };

  // Sequences of exactly `length` events, in Enumerate order.
  Cursor MakeCursor(int length, const PruningRules& rules) const;
  // Sequences of length 1..max_length, in EnumerateUpTo order.
  Cursor MakeCursorUpTo(int max_length, const PruningRules& rules) const;

  // Callback form over the same order. Return false from `yield` to stop
  // early; Stream returns true iff the space was fully enumerated.
  bool Stream(int length, const PruningRules& rules,
              const std::function<bool(const TestCase&)>& yield) const;
  bool StreamUpTo(int max_length, const PruningRules& rules,
                  const std::function<bool(const TestCase&)>& yield) const;

  // The number of unpruned sequences of exactly `length` events
  // (|alphabet|^length over the concrete event instances).
  uint64_t UnprunedCount(int length) const;

  // Counts the admissible sequences of length 1..max_length by streaming
  // the space — nothing materializes. When `limit` is nonzero and the
  // space holds at least `limit` cases, counting stops and 0 is returned
  // ("unknown"), bounding the cost for huge spaces.
  uint64_t CountUpTo(int max_length, const PruningRules& rules, uint64_t limit = 0) const;

  // All concrete event instances the alphabet can produce.
  std::vector<TestEvent> Instances() const;

 private:
  bool Admissible(const TestCase& prefix, const TestEvent& next,
                  const PruningRules& rules) const;

  Alphabet alphabet_;
};

}  // namespace neat

#endif  // NEAT_TESTGEN_H_
