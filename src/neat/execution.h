// The executor contract shared by the campaign runner (neat/campaign.h)
// and the failure minimizer (neat/minimize.h): one abstract test case is
// executed against one freshly built system under one seed, producing a
// deterministic verdict. Splitting this out of campaign.h lets the
// minimizer re-execute cases without depending on the campaign machinery.

#ifndef NEAT_EXECUTION_H_
#define NEAT_EXECUTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/testgen.h"
#include "neat/trace_report.h"

namespace neat {

// The outcome of executing one abstract test case against one system.
struct ExecutionResult {
  // Catastrophic violations found by the checkers after the run.
  std::vector<check::Violation> violations;
  bool found_failure = false;
  std::string trace;  // the executed event sequence
  // Summary of the run's simulation trace (drops per link, leadership
  // timeline). Filled by the real executors; empty for synthetic ones.
  TraceReport trace_report;
  // Behavioural coverage features of the run (neat/coverage.h), sorted and
  // deduplicated. Guided campaigns admit a case to the corpus iff its
  // features extend the campaign's coverage map; empty when the executor
  // does not report coverage (guided mode then never grows a corpus).
  std::vector<std::string> coverage;
};

// Runs one test case in a freshly built system under the given seed.
// Campaign workers invoke the executor concurrently, so every call must
// construct its own simulation and share no mutable state. Executors must
// be deterministic: the same (test_case, seed) pair always yields the same
// verdict — the campaign's parallel==serial contract and the minimizer's
// shrink decisions both rest on this.
using CaseExecutor = std::function<ExecutionResult(const TestCase& test_case, uint64_t seed)>;

// Builds one executor per campaign worker (and one per triage
// minimization). Unlike a bare CaseExecutor — which workers share and may
// invoke concurrently — each session is only ever called from the worker it
// was built for, so sessions may keep mutable state across calls (e.g. the
// snapshot caches of the fork executor, neat/fork.h). Sessions must still
// honour the determinism contract above: state carried between calls may
// change how fast a run executes, never what it returns.
using SessionFactory = std::function<CaseExecutor()>;

// The deduplication key for a failing run: the sorted set of distinct
// violation impacts, joined with '+' (e.g. "dirty read+stale read").
// Empty for a passing run.
std::string FailureSignature(const ExecutionResult& result);

}  // namespace neat

#endif  // NEAT_EXECUTION_H_
