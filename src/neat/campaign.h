// Parallel NEAT test campaigns (paper Chapter 5).
//
// NEAT's value is measured in failures found per unit of testing time: the
// pruning rules shrink the test-case space, and the campaign runner sweeps
// what remains as fast as the hardware allows. Every generated test case is
// an independent deterministic simulation, so a campaign fans the cases out
// across a pool of worker threads, each of which builds a fresh system per
// case and shares nothing with its peers. Results are keyed by the case's
// position in generation order, which makes the parallel campaign's output
// byte-identical to the serial one — the per-case verdicts, aggregate
// counts, and failure-signature histogram do not depend on thread count.
//
// Suites are fed either from a materialized vector or straight from a
// TestCaseGenerator cursor, so length-5 spaces never exist in memory.
//
// With CampaignOptions::minimize_failures set, the sweep is followed by a
// triage post-pass: one representative failing run per unique failure
// signature is shrunk to a minimal repro (neat/minimize.h) on the same
// worker pool. neat/report.h renders the whole result as JSON/Markdown.

#ifndef NEAT_CAMPAIGN_H_
#define NEAT_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/coverage.h"
#include "neat/execution.h"
#include "neat/minimize.h"
#include "neat/testgen.h"

namespace neat {

// Reads a positive integer knob from the environment, falling back when the
// variable is unset or unparsable. Used for NEAT_THREADS / NEAT_SEEDS.
int EnvKnob(const char* name, int fallback);

struct CampaignOptions {
  // Worker threads; 0 means one per hardware thread.
  int threads = 1;
  // Each case runs under seeds 1..seeds (the multi-seed dimension).
  int seeds = 1;
  // Optional progress observer, invoked after every completed run with
  // (runs done, total runs — 0 when the total is unknown, failures so
  // far). The three values are snapshotted together under one lock, so
  // observers see `done` advance by exactly one per call and `failures`
  // grow monotonically. Calls are serialized but may come from any worker
  // thread. Streaming campaigns pre-count the suite when that is cheap
  // (see RunCampaign below); a total of 0 means "unknown".
  std::function<void(uint64_t done, uint64_t total, uint64_t failures)> progress;
  // Triage post-pass: after the sweep, shrink one representative failing
  // run per unique failure signature to a minimal repro, in parallel on
  // the worker pool. Results land in CampaignResult::minimized.
  bool minimize_failures = false;
  MinimizeOptions minimize;
  // Optional per-worker executor sessions (neat/execution.h). When set,
  // every worker thread builds one session up front and runs all of its
  // cases through it — for the whole campaign, across guided rounds — and
  // each triage minimization gets its own session. Sessions may keep
  // mutable state between calls (the fork executor's snapshot caches,
  // neat/fork.h), which is why they are per-worker: the campaign's
  // parallel==serial byte-identity holds because session state may change
  // how fast a run executes, never its verdict. When unset, all workers
  // share `executor` as before.
  SessionFactory sessions;

  // --- coverage-guided mode (opt-in feedback loop) ---
  // When set, the streaming RunCampaign overload runs a fuzzing loop
  // instead of the exhaustive sweep: a corpus is seeded by stride-sampling
  // the pruned enumeration, then each round mutates every corpus entry
  // (neat/mutate.h) and executes the batch on the worker pool; a case
  // joins the corpus iff its run added coverage (neat/coverage.h).
  // Mutation scheduling is a pure function of (round, corpus index,
  // mutant index, guided_seed) and corpus admission happens serially in
  // schedule order, so guided campaigns honour the same parallel==serial
  // byte-identity contract as exhaustive ones.
  bool guided = false;
  int guided_rounds = 8;       // mutation rounds after the seeding sweep
  int corpus_max = 128;        // corpus size cap
  int corpus_seed_cases = 32;  // cases stride-sampled from the enumeration
  int mutants_per_entry = 4;   // mutation fan-out per corpus entry per round
  uint64_t guided_seed = 1;    // mutation scheduling seed
  // Hard cap on distinct cases executed end to end (0 = uncapped) — the
  // "failures per N runs" budget that bench/coverage_guided and the
  // half-budget acceptance test compare against exhaustive enumeration.
  uint64_t guided_max_cases = 0;
};

// threads from NEAT_THREADS (default: hardware), seeds from NEAT_SEEDS
// (default: 1), guided_rounds from NEAT_GUIDED_ROUNDS and corpus_max from
// NEAT_CORPUS_MAX — the knobs that let benches scale to the machine.
CampaignOptions CampaignOptionsFromEnv();

// One executed (case, seed) pair.
struct CaseResult {
  uint64_t case_index = 0;  // position in generation order
  uint64_t seed = 1;
  bool found_failure = false;
  std::string signature;  // FailureSignature of the run; empty if it passed
  std::string trace;      // the executed event sequence
  // The abstract case itself, retained only for failing runs so the triage
  // post-pass can re-execute them; empty for passing runs.
  TestCase test_case;
  // The run's coverage features (ExecutionResult::coverage).
  std::vector<std::string> coverage;
  double host_micros = 0; // wall-clock cost of this run on its worker
};

struct CampaignResult {
  // Every run, sorted by (case_index, seed) — independent of thread count.
  std::vector<CaseResult> cases;
  uint64_t cases_run = 0;  // == cases.size()
  uint64_t failures = 0;
  // case_index of the earliest case that failed under any seed; -1 if none.
  int64_t first_failure_index = -1;
  // Failure-signature dedup: signature -> number of failing runs.
  std::map<std::string, uint64_t> signature_counts;
  // Minimal repros, one per unique failure signature in signature order.
  // Empty unless CampaignOptions::minimize_failures was set.
  std::vector<MinimizedRepro> minimized;
  // Behavioural coverage accumulated over every run, in (case_index, seed)
  // order; empty when the executor reports no coverage features.
  CoverageMap coverage;
  // Guided-mode outcome; enabled is false for exhaustive sweeps.
  struct GuidedStats {
    bool enabled = false;
    uint64_t seed_cases = 0;          // corpus seeds drawn from the enumeration
    int rounds_run = 0;               // mutation rounds actually executed
    uint64_t mutants_run = 0;         // mutants executed across all rounds
    uint64_t duplicates_skipped = 0;  // mutants dropped as already-scheduled cases
    // Newly covered features per executed batch; entry 0 is the seeding sweep.
    std::vector<uint64_t> new_features_per_round;
    // The final corpus — every case whose run added coverage — in
    // admission order.
    std::vector<TestCase> corpus;
  };
  GuidedStats guided;
  double wall_seconds = 0;      // end-to-end: sweep plus triage post-pass
  double sweep_seconds = 0;     // the sweep phase alone
  double minimize_seconds = 0;  // the triage post-pass alone (0 if skipped)
  double total_host_micros = 0; // sum of per-run cost across all workers

  // Sweep-phase throughput (the triage post-pass is excluded).
  double CasesPerSecond() const;
  // FNV-1a digest over (case_index, seed, verdict, signature) of every run;
  // equal digests mean identical per-case verdicts. Timing is excluded, so
  // serial and parallel campaigns of the same suite digest identically.
  std::string VerdictDigest() const;
  // FNV-1a digest over the guided corpus (FormatTestCase lines in
  // admission order); equal digests mean byte-identical corpora.
  std::string CorpusDigest() const;
};

// Sweeps a materialized suite through `executor` on a pool of
// options.threads workers pulling from a shared work queue.
CampaignResult RunCampaign(const std::vector<TestCase>& suite, const CaseExecutor& executor,
                           const CampaignOptions& options);

// Streaming variant: cases are pulled straight from a generator cursor
// (lengths 1..max_length), so the suite is never materialized. The suite is
// pre-counted through TestCaseGenerator::CountUpTo when the space holds
// fewer than one million cases, so progress observers see a real total;
// larger spaces report total == 0 ("unknown"). With options.guided set,
// this dispatches to RunGuidedCampaign instead of sweeping exhaustively.
CampaignResult RunCampaign(const TestCaseGenerator& generator, int max_length,
                           const PruningRules& rules, const CaseExecutor& executor,
                           const CampaignOptions& options);

// The coverage-guided feedback loop (see CampaignOptions). The pruned
// space defined by (generator, max_length, rules) seeds the corpus;
// mutants may leave that space (that is the point — the feedback signal,
// not the static prune, then judges them). Case indices number the runs in
// schedule order: seeds first, then each round's mutants.
CampaignResult RunGuidedCampaign(const TestCaseGenerator& generator, int max_length,
                                 const PruningRules& rules, const CaseExecutor& executor,
                                 const CampaignOptions& options);

}  // namespace neat

#endif  // NEAT_CAMPAIGN_H_
