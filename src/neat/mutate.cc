#include "neat/mutate.h"

#include <utility>

namespace neat {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// The deterministic draw stream one mutation consumes.
class Draw {
 public:
  explicit Draw(uint64_t seed) : state_(seed) {}
  uint64_t Next() { return state_ = SplitMix64(state_); }
  size_t Below(size_t n) { return n == 0 ? 0 : static_cast<size_t>(Next() % n); }

 private:
  uint64_t state_;
};

enum class Op {
  kInsert,
  kDelete,
  kSwap,
  kFlipPartition,
  kFlipTarget,
  kFlipSide,
  kHealReorder,
};
constexpr int kOpCount = 7;

bool IsClientEvent(const TestEvent& event) {
  return event.kind != EventKind::kPartition && event.kind != EventKind::kHeal;
}

// Indices of events in `c` satisfying `pred`.
template <typename Pred>
std::vector<size_t> IndicesOf(const TestCase& c, Pred pred) {
  std::vector<size_t> out;
  for (size_t i = 0; i < c.size(); ++i) {
    if (pred(c[i])) {
      out.push_back(i);
    }
  }
  return out;
}

// Picks a member of `choices` different from `current`; false when there
// is no alternative.
template <typename T>
bool PickOther(const std::vector<T>& choices, T current, Draw* draw, T* out) {
  std::vector<T> others;
  for (const T& choice : choices) {
    if (!(choice == current)) {
      others.push_back(choice);
    }
  }
  if (others.empty()) {
    return false;
  }
  *out = others[draw->Below(others.size())];
  return true;
}

}  // namespace

Mutator::Mutator(const TestCaseGenerator::Alphabet& alphabet, int max_events)
    : alphabet_(alphabet),
      instances_(TestCaseGenerator(alphabet).Instances()),
      max_events_(max_events < 1 ? 1 : max_events) {}

uint64_t Mutator::MixSeed(uint64_t campaign_seed, uint64_t round, uint64_t corpus_index,
                          uint64_t mutant_index) {
  uint64_t x = SplitMix64(campaign_seed);
  x = SplitMix64(x ^ round);
  x = SplitMix64(x ^ corpus_index);
  x = SplitMix64(x ^ mutant_index);
  return x;
}

TestCase Mutator::Mutate(const TestCase& parent, uint64_t seed) const {
  Draw draw(seed);
  TestCase mutant = parent;

  const auto apply = [&](Op op) -> bool {
    switch (op) {
      case Op::kInsert: {
        if (instances_.empty() || mutant.size() >= static_cast<size_t>(max_events_)) {
          return false;
        }
        const size_t pos = draw.Below(mutant.size() + 1);
        mutant.insert(mutant.begin() + static_cast<std::ptrdiff_t>(pos),
                      instances_[draw.Below(instances_.size())]);
        return true;
      }
      case Op::kDelete: {
        if (mutant.size() < 2) {
          return false;
        }
        mutant.erase(mutant.begin() + static_cast<std::ptrdiff_t>(draw.Below(mutant.size())));
        return true;
      }
      case Op::kSwap: {
        if (mutant.size() < 2) {
          return false;
        }
        const size_t i = draw.Below(mutant.size());
        size_t j = draw.Below(mutant.size() - 1);
        if (j >= i) {
          ++j;
        }
        std::swap(mutant[i], mutant[j]);
        return true;
      }
      case Op::kFlipPartition: {
        const std::vector<size_t> partitions = IndicesOf(
            mutant, [](const TestEvent& e) { return e.kind == EventKind::kPartition; });
        if (partitions.empty()) {
          return false;
        }
        TestEvent& event = mutant[partitions[draw.Below(partitions.size())]];
        return PickOther(alphabet_.partitions, event.partition, &draw, &event.partition);
      }
      case Op::kFlipTarget: {
        const std::vector<size_t> partitions = IndicesOf(
            mutant, [](const TestEvent& e) { return e.kind == EventKind::kPartition; });
        if (partitions.empty()) {
          return false;
        }
        TestEvent& event = mutant[partitions[draw.Below(partitions.size())]];
        return PickOther(alphabet_.targets, event.target, &draw, &event.target);
      }
      case Op::kFlipSide: {
        const std::vector<size_t> clients = IndicesOf(mutant, IsClientEvent);
        if (clients.empty()) {
          return false;
        }
        TestEvent& event = mutant[clients[draw.Below(clients.size())]];
        return PickOther(alphabet_.sides, event.side, &draw, &event.side);
      }
      case Op::kHealReorder: {
        const std::vector<size_t> heals = IndicesOf(
            mutant, [](const TestEvent& e) { return e.kind == EventKind::kHeal; });
        if (heals.empty()) {
          if (mutant.size() >= static_cast<size_t>(max_events_)) {
            return false;
          }
          TestEvent heal;
          heal.kind = EventKind::kHeal;
          mutant.insert(mutant.begin() + static_cast<std::ptrdiff_t>(draw.Below(mutant.size() + 1)),
                        heal);
          return true;
        }
        const size_t from = heals[draw.Below(heals.size())];
        const TestEvent heal = mutant[from];
        mutant.erase(mutant.begin() + static_cast<std::ptrdiff_t>(from));
        mutant.insert(mutant.begin() + static_cast<std::ptrdiff_t>(draw.Below(mutant.size() + 1)),
                      heal);
        return true;
      }
    }
    return false;
  };

  // Try the drawn operator first, rotating through the rest until one
  // applies; the rotation keeps the function total without biasing which
  // operator a given seed prefers.
  const int start = static_cast<int>(draw.Below(kOpCount));
  for (int k = 0; k < kOpCount; ++k) {
    if (apply(static_cast<Op>((start + k) % kOpCount))) {
      return mutant;
    }
  }
  if (mutant.empty() && !instances_.empty()) {
    mutant.push_back(instances_[draw.Below(instances_.size())]);
  }
  return mutant;
}

}  // namespace neat
