#include "neat/minimize.h"

#include <algorithm>
#include <map>
#include <optional>

namespace neat {
namespace {

// Simplicity ranks for the partition-event simplification pass: a complete
// partition is the easiest shape to reason about, and isolating the fixed
// "any replica" needs no leader lookup.
int KindRank(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kComplete:
      return 0;
    case PartitionKind::kPartial:
      return 1;
    case PartitionKind::kSimplex:
      return 2;
  }
  return 3;
}

int TargetRank(IsolationTarget target) {
  return target == IsolationTarget::kAnyReplica ? 0 : 1;
}

// Memoizing probe wrapper: candidates recur across ddmin rounds (the same
// subsequence reappears at different granularities), and FormatTestCase is
// injective over the attributes TestEvent::operator== compares, so the
// formatted case is a sound memo key. Probes count real executions only.
class Prober {
 public:
  Prober(const CaseExecutor& executor, uint64_t seed, uint64_t max_probes)
      : executor_(executor), seed_(seed), max_probes_(max_probes) {}

  // The FailureSignature of the candidate, or nullopt once the probe
  // budget is spent (callers treat that as "not preserved", which keeps
  // the best case found so far).
  std::optional<std::string> Signature(const TestCase& candidate) {
    const std::string key = FormatTestCase(candidate);
    const auto memo = memo_.find(key);
    if (memo != memo_.end()) {
      return memo->second;
    }
    if (probes_ >= max_probes_) {
      return std::nullopt;
    }
    ++probes_;
    const std::string signature = FailureSignature(executor_(candidate, seed_));
    memo_.emplace(key, signature);
    return signature;
  }

  uint64_t probes() const { return probes_; }

 private:
  const CaseExecutor& executor_;
  uint64_t seed_;
  uint64_t max_probes_;
  uint64_t probes_ = 0;
  std::map<std::string, std::string> memo_;
};

}  // namespace

MinimizedRepro MinimizeCase(const TestCase& failing, uint64_t seed,
                            const CaseExecutor& executor, const MinimizeOptions& options) {
  MinimizedRepro repro;
  repro.seed = seed;
  repro.original = failing;
  repro.minimized = failing;

  Prober prober(executor, seed, std::max<uint64_t>(1, options.max_probes));
  auto step = [&repro, &prober](const char* phase, std::string detail, size_t events) {
    repro.log.push_back(
        ShrinkStep{phase, std::move(detail), events, prober.probes()});
  };

  // Phase 0: reproduce. The original run fixes the signature every later
  // candidate must preserve.
  const std::optional<std::string> original = prober.Signature(failing);
  if (!original.has_value() || original->empty()) {
    // The "failing" case passed on replay: nothing to preserve, so nothing
    // to shrink. reproduced stays false and the caller sees the original.
    repro.probes = prober.probes();
    step("reproduce", "original case did not fail on replay", failing.size());
    repro.final_result = executor(failing, seed);
    return repro;
  }
  repro.signature = *original;
  step("reproduce", "signature \"" + repro.signature + "\" confirmed", failing.size());

  const auto preserved = [&prober, &repro](const TestCase& candidate) {
    const std::optional<std::string> signature = prober.Signature(candidate);
    return signature.has_value() && *signature == repro.signature;
  };

  // Phase 1: ddmin over the event sequence (complement removal). Split the
  // current case into n chunks and try dropping each chunk in order; on
  // success restart at coarser granularity, otherwise refine until chunks
  // are single events. Terminates 1-minimal w.r.t. single-event removal
  // (unless the probe budget runs out first).
  TestCase current = repro.minimized;
  size_t chunks = 2;
  while (current.size() >= 2) {
    chunks = std::min(chunks, current.size());
    bool reduced = false;
    for (size_t i = 0; i < chunks; ++i) {
      const size_t begin = current.size() * i / chunks;
      const size_t end = current.size() * (i + 1) / chunks;
      TestCase candidate;
      candidate.reserve(current.size() - (end - begin));
      candidate.insert(candidate.end(), current.begin(), current.begin() + begin);
      candidate.insert(candidate.end(), current.begin() + end, current.end());
      if (candidate.empty() || !preserved(candidate)) {
        continue;
      }
      std::string removed;
      for (size_t j = begin; j < end; ++j) {
        if (!removed.empty()) {
          removed += ", ";
        }
        removed += current[j].DebugString();
      }
      current = std::move(candidate);
      step("ddmin", "removed [" + removed + "]", current.size());
      chunks = std::max<size_t>(2, chunks - 1);
      reduced = true;
      break;
    }
    if (!reduced) {
      if (chunks >= current.size()) {
        break;
      }
      chunks = std::min(current.size(), chunks * 2);
    }
  }

  // Phase 2: simplify the partition events in place. For each partition
  // event, try every strictly simpler (kind, target) variant in ascending
  // simplicity order and keep the first that preserves the signature.
  for (size_t i = 0; i < current.size(); ++i) {
    if (current[i].kind != EventKind::kPartition) {
      continue;
    }
    const int rank = KindRank(current[i].partition) * 2 + TargetRank(current[i].target);
    for (PartitionKind kind :
         {PartitionKind::kComplete, PartitionKind::kPartial, PartitionKind::kSimplex}) {
      bool simplified = false;
      for (IsolationTarget target : {IsolationTarget::kAnyReplica, IsolationTarget::kLeader}) {
        if (KindRank(kind) * 2 + TargetRank(target) >= rank) {
          continue;
        }
        TestCase candidate = current;
        candidate[i].partition = kind;
        candidate[i].target = target;
        if (!preserved(candidate)) {
          continue;
        }
        step("simplify",
             current[i].DebugString() + " -> " + candidate[i].DebugString(),
             candidate.size());
        current = std::move(candidate);
        simplified = true;
        break;
      }
      if (simplified) {
        break;
      }
    }
  }

  repro.minimized = std::move(current);

  // Phase 3: verify. Re-execute the minimal case for the full result (the
  // memo keeps only signatures); determinism makes this probe a formality.
  repro.final_result = executor(repro.minimized, seed);
  repro.reproduced = FailureSignature(repro.final_result) == repro.signature;
  repro.probes = prober.probes() + 1;
  step("verify",
       repro.reproduced ? "minimal repro fails with the original signature"
                        : "verification mismatch",
       repro.minimized.size());
  return repro;
}

}  // namespace neat
