#include "neat/fork.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace neat {
namespace {

// FNV-1a over the attributes TestEvent::operator== compares; the digest of
// a prefix is the running hash after mixing each event in order. Collisions
// are survivable (lookups verify the stored prefix) but should be rare.
uint64_t MixEvent(uint64_t hash, const TestEvent& event) {
  const auto mix = [&hash](uint64_t word) {
    hash ^= word;
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(event.kind));
  mix(static_cast<uint64_t>(event.partition));
  mix(static_cast<uint64_t>(event.target));
  mix(static_cast<uint64_t>(event.side));
  return hash;
}

constexpr uint64_t kEmptyPrefixDigest = 14695981039346656037ull;

bool SamePrefix(const TestCase& cached, const TestCase& incoming, size_t length) {
  if (cached.size() != length || incoming.size() < length) {
    return false;
  }
  return std::equal(cached.begin(), cached.end(), incoming.begin());
}

}  // namespace

ForkingExecutor::ForkingExecutor(RunnerFactory factory, ForkOptions options)
    : factory_(std::move(factory)), options_(options) {
  if (options_.snapshot_cache == 0) {
    options_.snapshot_cache = 1;
  }
  if (options_.runner_cache == 0) {
    options_.runner_cache = 1;
  }
}

ForkingExecutor::Branch& ForkingExecutor::BranchFor(uint64_t seed) {
  auto it = branches_.find(seed);
  if (it == branches_.end()) {
    while (branches_.size() >= options_.runner_cache) {
      auto victim = branches_.begin();
      for (auto candidate = branches_.begin(); candidate != branches_.end(); ++candidate) {
        if (candidate->second.last_used < victim->second.last_used) {
          victim = candidate;
        }
      }
      stats_.snapshots_evicted += victim->second.snapshots.size();
      branches_.erase(victim);
    }
    it = branches_.emplace(seed, Branch{}).first;
  }
  Branch& branch = it->second;
  branch.last_used = ++tick_;
  if (branch.runner == nullptr) {
    branch.runner = factory_(seed);
    ++stats_.fresh_runners;
    branch.snapshots.clear();
    // Retention must be on before any event the fork may rewind over is
    // scheduled; enabling it here (before the root snapshot) also adopts
    // the events still pending from the constructor's setup phase.
    branch.runner->Env().simulator().SetEventRetention(true);
    std::unique_ptr<SystemState> root = branch.runner->Snapshot();
    branch.forkable = root != nullptr;
    if (branch.forkable) {
      ++stats_.snapshots_taken;
      branch.snapshots.emplace(
          kEmptyPrefixDigest, CachedSnapshot{TestCase{}, std::move(root), ++tick_, ++tick_});
    }
  }
  return branch;
}

void ForkingExecutor::CacheSnapshot(Branch* branch, const TestCase& prefix, size_t length) {
  uint64_t digest = kEmptyPrefixDigest;
  for (size_t i = 0; i < length; ++i) {
    digest = MixEvent(digest, prefix[i]);
  }
  std::unique_ptr<SystemState> state = branch->runner->Snapshot();
  if (state == nullptr) {
    return;
  }
  ++stats_.snapshots_taken;
  branch->snapshots[digest] =
      CachedSnapshot{TestCase(prefix.begin(), prefix.begin() + static_cast<std::ptrdiff_t>(length)),
                     std::move(state), ++tick_, ++tick_};
  // Evict LRU entries beyond the bound; the root (empty prefix) is pinned
  // so a branch can always rewind to its post-setup state.
  while (branch->snapshots.size() > options_.snapshot_cache + 1) {
    auto victim = branch->snapshots.end();
    for (auto it = branch->snapshots.begin(); it != branch->snapshots.end(); ++it) {
      if (it->first == kEmptyPrefixDigest) {
        continue;
      }
      if (victim == branch->snapshots.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == branch->snapshots.end()) {
      break;
    }
    branch->snapshots.erase(victim);
    ++stats_.snapshots_evicted;
  }
}

ExecutionResult ForkingExecutor::Run(const TestCase& test_case, uint64_t seed) {
  Branch& branch = BranchFor(seed);
  ++stats_.cases_run;

  if (!branch.forkable) {
    // The system does not support snapshots: run the case on the fresh
    // runner and discard it (Finish perturbs the state and there is no way
    // back without a snapshot).
    std::unique_ptr<CaseRunner> runner = std::move(branch.runner);
    for (const TestEvent& event : test_case) {
      runner->ApplyEvent(event);
      ++stats_.events_applied;
    }
    return runner->Finish(test_case);
  }

  // Longest cached prefix of the incoming case. Walking the case's own
  // prefix digests front to back keeps the scan O(length); the candidate
  // with the greatest length wins.
  uint64_t digest = kEmptyPrefixDigest;
  size_t best_length = 0;
  uint64_t best_digest = kEmptyPrefixDigest;
  for (size_t length = 0;; ++length) {
    const auto hit = branch.snapshots.find(digest);
    if (hit != branch.snapshots.end() && SamePrefix(hit->second.prefix, test_case, length)) {
      best_length = length;
      best_digest = digest;
    }
    if (length == test_case.size()) {
      break;
    }
    digest = MixEvent(digest, test_case[length]);
  }

  // Always restore — even for a full-length hit — because the previous
  // case's Finish (heal, settle, final reads) perturbed the live state.
  CachedSnapshot& base = branch.snapshots.at(best_digest);
  base.last_used = ++tick_;
  // Restoring rewinds the simulator's retained-event log and trace to the
  // base's position, and the continuation then rewrites that history —
  // which silently corrupts every snapshot captured after the base (their
  // trace sizes and event ids now index the new sibling's records). Drop
  // them: the cache is kept as a strict chain of ancestors of the live
  // state, which DFS-ordered suites re-fill on the way back down.
  for (auto it = branch.snapshots.begin(); it != branch.snapshots.end();) {
    if (it->second.birth > base.birth) {
      it = branch.snapshots.erase(it);
      ++stats_.snapshots_invalidated;
    } else {
      ++it;
    }
  }
  branch.runner->Restore(*base.state);
  stats_.events_forked_over += best_length;
  if (best_length > 0) {
    ++stats_.forked_runs;
  }

  for (size_t i = best_length; i < test_case.size(); ++i) {
    branch.runner->ApplyEvent(test_case[i]);
    ++stats_.events_applied;
    CacheSnapshot(&branch, test_case, i + 1);
  }
  // No snapshot is ever taken after Finish starts, and its events (heal,
  // settles, final reads — often thousands) are all scheduled past every
  // cached checkpoint's next_seq, so retaining them only to purge them on
  // the next Restore is pure overhead. Pause retention for the teardown;
  // the next case's Restore resumes it.
  branch.runner->Env().simulator().PauseEventRetention();
  return branch.runner->Finish(test_case);
}

CaseExecutor ForkingCaseExecutor(RunnerFactory factory, ForkOptions options,
                                 std::shared_ptr<ForkStats> stats) {
  auto executor = std::make_shared<ForkingExecutor>(std::move(factory), options);
  return [executor, stats](const TestCase& test_case, uint64_t seed) {
    ExecutionResult result = executor->Run(test_case, seed);
    if (stats != nullptr) {
      *stats = executor->stats();
    }
    return result;
  };
}

SessionFactory ForkingSessions(RunnerFactory factory, ForkOptions options) {
  return [factory = std::move(factory), options]() {
    return ForkingCaseExecutor(factory, options);
  };
}

}  // namespace neat
