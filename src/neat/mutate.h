// Deterministic test-case mutation for coverage-guided campaigns.
//
// The guided loop (neat/campaign.h) evolves a corpus by mutating cases
// that added coverage. Every mutation is a pure function of
// (parent, seed): the Mutator holds only the immutable alphabet, and the
// seed fully determines which operator fires and where. That purity is
// what lets the campaign schedule mutants as a function of
// (round, corpus index, mutant index, campaign seed) and stay
// byte-identical at any NEAT_THREADS.
//
// Operators, in the spirit of the paper's event vocabulary:
//   - insert a concrete alphabet event at a random position
//   - delete an event
//   - swap two events
//   - flip a partition event's PartitionKind / IsolationTarget
//   - flip a client event's Side
//   - heal-reorder: move the heal elsewhere, or add one if absent
//
// Mutants deliberately escape the static pruning rules (a mutant may heal
// first or read before writing) — the feedback loop, not the prune,
// decides whether that behaviour earns corpus space.

#ifndef NEAT_MUTATE_H_
#define NEAT_MUTATE_H_

#include <cstdint>

#include "neat/testgen.h"

namespace neat {

class Mutator {
 public:
  // `max_events` bounds mutant length (inserts stop growing a case there).
  Mutator(const TestCaseGenerator::Alphabet& alphabet, int max_events);

  // Applies one operator to `parent`. Pure: same (parent, seed) in, same
  // mutant out. Never returns an empty case.
  TestCase Mutate(const TestCase& parent, uint64_t seed) const;

  // Folds the guided loop's scheduling coordinates into a mutation seed
  // (splitmix64-style, matching sim::Rng's seeding idiom).
  static uint64_t MixSeed(uint64_t campaign_seed, uint64_t round, uint64_t corpus_index,
                          uint64_t mutant_index);

 private:
  TestCaseGenerator::Alphabet alphabet_;
  std::vector<TestEvent> instances_;  // every concrete event the alphabet allows
  int max_events_;
};

}  // namespace neat

#endif  // NEAT_MUTATE_H_
