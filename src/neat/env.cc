#include "neat/env.h"

namespace neat {

TestEnv::TestEnv(const Options& options) : simulator_(options.seed) {
  if (options.use_switch_backend) {
    backend_ = std::make_unique<net::SwitchPartitioner>();
  } else {
    backend_ = std::make_unique<net::FirewallPartitioner>();
  }
  network_ = std::make_unique<net::Network>(&simulator_, backend_.get());
  partitioner_ = std::make_unique<net::Partitioner>(backend_.get());
}

net::Partition TestEnv::Complete(const net::Group& group_a, const net::Group& group_b) {
  return partitioner_->Complete(group_a, group_b);
}

net::Partition TestEnv::Partial(const net::Group& group_a, const net::Group& group_b) {
  return partitioner_->Partial(group_a, group_b);
}

net::Partition TestEnv::Simplex(const net::Group& group_src, const net::Group& group_dst) {
  return partitioner_->Simplex(group_src, group_dst);
}

void TestEnv::Heal(net::Partition& partition) { partitioner_->Heal(partition); }

net::Group TestEnv::Rest(const net::Group& group) const {
  return net::Partitioner::Rest(network_->Universe(), group);
}

void TestEnv::RegisterProcess(cluster::Process* process) {
  processes_[process->id()] = process;
}

cluster::Process* TestEnv::FindProcess(net::NodeId node) const {
  auto it = processes_.find(node);
  return it == processes_.end() ? nullptr : it->second;
}

void TestEnv::Crash(const net::Group& nodes) {
  for (net::NodeId node : nodes) {
    if (cluster::Process* process = FindProcess(node)) {
      process->Crash();
    }
  }
}

void TestEnv::Restart(const net::Group& nodes) {
  for (net::NodeId node : nodes) {
    cluster::Process* process = FindProcess(node);
    if (process != nullptr && process->crashed()) {
      process->Restart();
    }
  }
}

void TestEnv::Sleep(sim::Duration duration) { simulator_.RunFor(duration); }

TestEnv::State TestEnv::Snapshot() const {
  State state;
  state.simulator = simulator_.Snapshot();
  state.network = network_->CaptureState();
  state.rules = backend_->CaptureRules();
  state.next_partition_id = partitioner_->next_partition_id();
  state.history = history_.CaptureState();
  for (const auto& [node, process] : processes_) {
    state.kernels.emplace(node, process->CaptureKernel());
  }
  return state;
}

void TestEnv::Restore(const State& state) {
  // Rules before kernels: RestoreKernel re-registers network handlers, and
  // registration must see the restored topology, not the abandoned one.
  backend_->RestoreRules(*state.rules);
  partitioner_->set_next_partition_id(state.next_partition_id);
  network_->RestoreState(state.network);
  for (const auto& [node, kernel] : state.kernels) {
    if (cluster::Process* process = FindProcess(node)) {
      process->RestoreKernel(kernel);
    }
  }
  history_.RestoreState(state.history);
  // The simulator last: its checkpoint rewinds the clock and the retained
  // event set that the restored processes' timers live in.
  simulator_.Restore(state.simulator);
}

bool TestEnv::Await(const std::function<bool()>& done, sim::Duration deadline_from_now) {
  return simulator_.RunUntilPredicate(done, simulator_.Now() + deadline_from_now);
}

}  // namespace neat
