// Behavioural coverage for guided campaigns.
//
// The paper prunes the test-case space with static findings; fuzzing
// practice adds a dynamic one: direct the budget at cases that exercise
// *new* system behaviour. This module defines the coverage signal the
// guided campaign loop (neat/campaign.h) feeds on. Every signal is derived
// deterministically from what a run already records, so coverage adds no
// nondeterminism to the parallel==serial contract:
//
//   bi:<a>><b>       trace-record event bigrams (sim::TraceLog) — how the
//                    run interleaved drops, elections, replication
//   ph:<p>:<type>    partition-phase x message-type edges — which message
//                    types died (net "drop") or which leadership events
//                    fired before ('b'), during ('p'), or after ('h') the
//                    injected partition (the "neat" partition/heal records
//                    appended by the executors' PartitionScript)
//   sd:<x>><y>       state-digest transitions observed by the executor
//                    between events (ISystem::StateDigest)
//
// A CoverageMap accumulates features across a campaign; a case earns a
// place in the guided corpus iff its run contributes a feature the map has
// not seen.

#ifndef NEAT_COVERAGE_H_
#define NEAT_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace neat {

class CoverageMap {
 public:
  // Counts every feature and returns how many were previously unseen —
  // the guided loop's corpus-admission signal.
  size_t Add(const std::vector<std::string>& features);

  void MergeFrom(const CoverageMap& other);

  bool Covers(const std::string& feature) const;
  size_t unique_features() const { return counters_.size(); }
  uint64_t total_hits() const { return total_hits_; }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  // FNV-1a digest over "feature=count" lines in key order; equal digests
  // mean identical maps (the determinism acceptance tests compare these
  // across thread counts).
  std::string Digest() const;

 private:
  std::map<std::string, uint64_t> counters_;
  uint64_t total_hits_ = 0;
};

// The trace-derived features of one finished run (the bi: and ph: families
// above), sorted and deduplicated.
std::vector<std::string> TraceCoverage(const sim::TraceLog& trace);

// The sd: feature for one observed state-digest transition.
std::string StateTransitionFeature(uint64_t before, uint64_t after);

}  // namespace neat

#endif  // NEAT_COVERAGE_H_
