// Structured campaign report artifacts.
//
// A campaign that returns hundreds of failing runs as raw event strings
// leaves the paper's deliverable — a small, understandable reproduction per
// distinct failure (§6, Table 15) — as manual work. This module renders a
// CampaignResult (including its triage post-pass, neat/minimize.h) as two
// artifacts: machine-readable JSON for CI gates and tooling, and a human
// Markdown digest. Both bundle, per failure signature, the minimized repro
// with its shrink log, a TraceReport summary of the repro run, campaign
// throughput with per-phase timing, and the verdict digest.

#ifndef NEAT_REPORT_H_
#define NEAT_REPORT_H_

#include <string>

#include "neat/campaign.h"

namespace neat {

// Free-form identification of what the campaign swept; embedded verbatim
// (escaped) in both artifacts.
struct ReportContext {
  std::string title;   // e.g. "pbkv triage"
  std::string system;  // e.g. "pbkv/VoltDB-like"
  std::string suite;   // e.g. "paper-pruned, len <= 4"
  int threads = 0;     // 0 = one per hardware thread
  int seeds = 1;
};

// The machine-readable artifact. Schema (stable keys, additive evolution):
//   { "title", "system", "suite", "threads", "seeds",
//     "campaign": { "cases_run", "failures", "first_failure_index",
//                   "cases_per_second", "sweep_seconds", "minimize_seconds",
//                   "wall_seconds", "verdict_digest" },
//     "coverage": { "unique_features", "total_hits", "digest" },
//     "guided": null | { "seed_cases", "rounds_run", "mutants_run",
//                        "duplicates_skipped", "corpus_cases",
//                        "corpus_digest", "new_features_per_round": [...] },
//     "signatures": [ { "signature", "count",
//                       "repro": { "seed", "original", "minimized",
//                                  "original_events", "minimized_events",
//                                  "probes", "reproduced",
//                                  "shrink_log": [ { "phase", "detail",
//                                                    "events_after",
//                                                    "probes_after" } ],
//                                  "trace": { "total_records",
//                                             "dropped_messages",
//                                             "dropped_links",
//                                             "leadership_events" } } } ] }
// "repro" is null when the campaign ran without minimize_failures.
std::string JsonReport(const CampaignResult& result, const ReportContext& context);

// The human artifact: the same content as a Markdown document.
std::string MarkdownReport(const CampaignResult& result, const ReportContext& context);

// Writes `content` to `path`, overwriting. Returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace neat

#endif  // NEAT_REPORT_H_
