#include "net/network.h"

#include <string>

namespace net {
namespace {

std::string LinkString(NodeId src, NodeId dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

}  // namespace

void Network::Register(NodeId node, Handler handler) {
  connectivity_.AddNode(node);
  if (handler) {
    handlers_[node] = std::move(handler);
  } else {
    // Crashed node: stays in the universe (and the connectivity cache) with
    // no handler; deliveries to it count as "no receiver" drops.
    handlers_[node] = nullptr;
  }
}

Group Network::Universe() const {
  Group out;
  out.reserve(handlers_.size());
  for (const auto& [node, handler] : handlers_) {
    out.push_back(node);
  }
  return out;
}

void Network::SetLinkLoss(NodeId src, NodeId dst, double loss) {
  if (loss <= 0.0) {
    link_loss_.erase({src, dst});
  } else {
    link_loss_[{src, dst}] = loss;
  }
}

void Network::Send(NodeId src, NodeId dst, std::shared_ptr<const Message> msg) {
  ++messages_sent_;
  Envelope envelope{src, dst, simulator_->Now(), std::move(msg)};

  // Causal tracing: record the send so the deliver (or in-flight drop) can
  // name it as its cause. The send record itself inherits the active cause
  // context — the deliver record of the message whose handler sent this
  // one — which is what stitches multi-hop chains.
  if (simulator_->Trace().causal()) {
    envelope.send_record =
        simulator_->Trace().Append(simulator_->Now(), "net", "send",
                                   LinkString(src, dst) + " " + envelope.msg->TypeName());
  }

  if (!connectivity_.Allows(src, dst)) {
    ++messages_dropped_;
    simulator_->Trace().Append(simulator_->Now(), "net", "drop",
                               LinkString(src, dst) + " " + envelope.msg->TypeName() +
                                   " (partitioned at send)");
    return;
  }
  auto loss = link_loss_.find({src, dst});
  if (loss != link_loss_.end() && rng_.NextBool(loss->second)) {
    ++messages_dropped_;
    simulator_->Trace().Append(simulator_->Now(), "net", "drop",
                               LinkString(src, dst) + " " + envelope.msg->TypeName() +
                                   " (flaky link)");
    return;
  }

  sim::Duration delay = latency_.base;
  if (latency_.jitter > 0) {
    delay += static_cast<sim::Duration>(
        rng_.NextBelow(static_cast<uint64_t>(latency_.jitter) + 1));
  }
  if (!faults_.empty() && ApplyFaults(envelope, &delay)) {
    return;  // dropped or held by a fault rule
  }
  ScheduleDelivery(std::move(envelope), delay);
}

void Network::ScheduleDelivery(Envelope envelope, sim::Duration delay) {
  simulator_->Schedule(delay, [this, envelope = std::move(envelope)]() mutable {
    Deliver(std::move(envelope));
  });
}

FaultRuleId Network::AddFaultRule(const FaultRule& rule) {
  const FaultRuleId id = next_fault_id_++;
  faults_[id].rule = rule;
  return id;
}

void Network::RemoveFaultRule(FaultRuleId id) {
  auto it = faults_.find(id);
  if (it == faults_.end()) {
    return;
  }
  FlushHeldMessage(it->second);
  faults_.erase(it);
}

void Network::ClearFaultRules() {
  for (auto& [id, fault] : faults_) {
    FlushHeldMessage(fault);
  }
  faults_.clear();
}

void Network::FlushHeldMessage(InstalledFault& fault) {
  if (!fault.holding) {
    return;
  }
  simulator_->Trace().Append(simulator_->Now(), "net", "fault",
                             LinkString(fault.held.src, fault.held.dst) + " " +
                                 fault.held.msg->TypeName() + " flush",
                             fault.held.send_record);
  ScheduleDelivery(std::move(fault.held), fault.held_delay);
  fault.holding = false;
  fault.held = Envelope{};
}

bool Network::ApplyFaults(Envelope& envelope, sim::Duration* delay) {
  const std::string type = envelope.msg->TypeName();
  for (auto& [id, fault] : faults_) {
    const FaultRule& rule = fault.rule;
    if (rule.type_name != type) {
      continue;
    }
    if (rule.src != kInvalidNode && rule.src != envelope.src) {
      continue;
    }
    if (rule.dst != kInvalidNode && rule.dst != envelope.dst) {
      continue;
    }
    if (rule.limit != 0 && fault.matched >= rule.limit) {
      continue;
    }
    ++fault.matched;
    ++messages_faulted_;
    const std::string link_and_type = LinkString(envelope.src, envelope.dst) + " " + type;
    switch (rule.action) {
      case FaultRule::Action::kDrop:
        ++messages_dropped_;
        simulator_->Trace().Append(simulator_->Now(), "net", "drop",
                                   link_and_type + " (fault drop)", envelope.send_record);
        return true;
      case FaultRule::Action::kDelay:
        *delay += rule.delay;
        simulator_->Trace().Append(simulator_->Now(), "net", "fault",
                                   link_and_type + " delay", envelope.send_record);
        return false;  // deliver, later
      case FaultRule::Action::kReorder:
        if (!fault.holding) {
          fault.holding = true;
          fault.held = std::move(envelope);
          fault.held_delay = *delay;
          simulator_->Trace().Append(simulator_->Now(), "net", "fault",
                                     link_and_type + " hold", fault.held.send_record);
          return true;
        }
        // The successor goes out with its own delay; the held predecessor
        // follows just after it, completing the pairwise swap.
        simulator_->Trace().Append(simulator_->Now(), "net", "fault",
                                   link_and_type + " swap", envelope.send_record);
        ScheduleDelivery(std::move(envelope), *delay);
        ScheduleDelivery(std::move(fault.held), *delay + sim::Microseconds(1));
        fault.holding = false;
        fault.held = Envelope{};
        return true;
    }
  }
  return false;
}

void Network::Deliver(Envelope envelope) {
  // A partition installed while the packet was in flight also kills it:
  // switches and firewalls drop queued packets when rules change.
  if (!connectivity_.Allows(envelope.src, envelope.dst)) {
    ++messages_dropped_;
    simulator_->Trace().Append(simulator_->Now(), "net", "drop",
                               LinkString(envelope.src, envelope.dst) + " " +
                                   envelope.msg->TypeName() + " (partitioned in flight)",
                               envelope.send_record);
    return;
  }
  auto it = handlers_.find(envelope.dst);
  if (it == handlers_.end() || !it->second) {
    ++messages_dropped_;
    simulator_->Trace().Append(simulator_->Now(), "net", "drop",
                               LinkString(envelope.src, envelope.dst) + " " +
                                   envelope.msg->TypeName() + " (no receiver)",
                               envelope.send_record);
    return;
  }
  ++messages_delivered_;
  if (simulator_->Trace().causal()) {
    // Stamp the send->deliver edge, then run the handler under a cause
    // scope so every record it appends (state transitions, sends of
    // follow-on messages) names this delivery as its cause.
    const uint64_t deliver_record = simulator_->Trace().Append(
        simulator_->Now(), "net", "deliver",
        LinkString(envelope.src, envelope.dst) + " " + envelope.msg->TypeName(),
        envelope.send_record);
    sim::CauseScope scope(simulator_->Trace(), deliver_record);
    it->second(envelope);
    return;
  }
  it->second(envelope);
}

}  // namespace net
