// Network-partitioning fault injection.
//
// A PartitionBackend decides, per directed (src, dst) pair, whether traffic
// is allowed. Faults are installed as directional block rules; the three
// partition types of the paper (complete, partial, simplex — Figure 1) are
// built from these rules by net::Partitioner.
//
// Two backends mirror NEAT's two implementations:
//  - SwitchPartitioner: a central priority-rule table, modelling the
//    OpenFlow/Floodlight controller that installs drop rules above the
//    learning-switch rules.
//  - FirewallPartitioner: per-node ingress/egress chains, modelling the
//    iptables deployment that alters firewall rules at every end host.
// Both enforce identical semantics; tests verify their equivalence.
//
// Invariants enforced by the base class for every backend:
//  - Allows(n, n) == true always: self traffic never leaves the host, so no
//    switch rule or firewall chain can cut it, even when a rule's groups
//    overlap.
//  - Groups are deduplicated before installation, so Block({1, 1}, {2})
//    installs the same rule as Block({1}, {2}).
//  - Every Block/Unblock bumps a monotonic epoch and patches any attached
//    ConnectivityCache (see connectivity.h), which is how the network gets
//    an O(1) Allows fast path regardless of the rule-table size.

#ifndef NET_PARTITION_H_
#define NET_PARTITION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"

namespace net {

// Identifies one installed directional block rule.
using RuleId = uint64_t;

class ConnectivityCache;

class PartitionBackend {
 public:
  virtual ~PartitionBackend();

  // True if a packet from src to dst would currently be forwarded. Self
  // traffic is always allowed. This is the authoritative (slow) path; hot
  // paths should query a ConnectivityCache instead.
  bool Allows(NodeId src, NodeId dst) const {
    return src == dst || AllowsLink(src, dst);
  }

  // Installs a rule dropping all traffic from any node in `srcs` to any node
  // in `dsts` (one direction only). Duplicate group entries are ignored;
  // self pairs (the same node in both groups) never block self traffic.
  RuleId Block(const Group& srcs, const Group& dsts);

  // Removes a previously installed rule. Returns false if unknown.
  bool Unblock(RuleId id);

  // Number of rules currently installed (for tests and benches).
  virtual size_t rule_count() const = 0;

  virtual std::string name() const = 0;

  // Monotonic counter, bumped by every successful Block/Unblock. Caches use
  // it to detect staleness without re-reading the rule table.
  uint64_t epoch() const { return epoch_; }

  // --- snapshot / restore (NEAT fork executor) ---
  //
  // An opaque value copy of the installed rule table (and the id counter),
  // restorable onto the same backend type. The epoch is deliberately NOT
  // part of the snapshot: it stays monotonic across restores — Restore
  // bumps it like any other mutation — so attached caches can never read a
  // replayed epoch as "still coherent".
  struct RulesSnapshot {
    virtual ~RulesSnapshot() = default;
  };
  virtual std::unique_ptr<RulesSnapshot> CaptureRules() const = 0;
  // Replaces the rule table with the snapshot's and re-syncs every attached
  // cache (wholesale replacement has no per-rule delta to patch from).
  virtual void RestoreRules(const RulesSnapshot& snapshot) = 0;

 protected:
  // A directed (src, dst) link, as reported in rule coverage.
  using Link = std::pair<NodeId, NodeId>;

  // Authoritative verdict for src != dst (the src == dst case is handled by
  // Allows above).
  virtual bool AllowsLink(NodeId src, NodeId dst) const = 0;

  // Installs a rule for already-deduplicated groups.
  virtual RuleId DoBlock(const Group& srcs, const Group& dsts) = 0;

  // Removes rule `id`, appending every directed link the rule covered to
  // `coverage` (for cache patching). Returns false if the rule is unknown.
  virtual bool DoUnblock(RuleId id, std::vector<Link>* coverage) = 0;

  // For RestoreRules implementations: advances the epoch and has every
  // attached cache re-derive its bitmap from the (just-replaced) table.
  void BumpEpochAndResync();

 private:
  friend class ConnectivityCache;
  void Attach(ConnectivityCache* cache);
  void Detach(ConnectivityCache* cache);

  uint64_t epoch_ = 0;
  std::vector<ConnectivityCache*> caches_;
};

// Central switch with a priority flow table (OpenFlow analog). Drop rules sit
// at a higher priority than the default learning-switch forward-all rule.
class SwitchPartitioner : public PartitionBackend {
 public:
  size_t rule_count() const override { return rules_.size(); }
  std::string name() const override { return "switch"; }

  std::unique_ptr<RulesSnapshot> CaptureRules() const override;
  void RestoreRules(const RulesSnapshot& snapshot) override;

 protected:
  bool AllowsLink(NodeId src, NodeId dst) const override;
  RuleId DoBlock(const Group& srcs, const Group& dsts) override;
  bool DoUnblock(RuleId id, std::vector<Link>* coverage) override;

 private:
  struct FlowRule {
    std::set<NodeId> srcs;
    std::set<NodeId> dsts;
  };
  struct Rules : RulesSnapshot {
    RuleId next_id = 1;
    std::map<RuleId, FlowRule> rules;
  };
  RuleId next_id_ = 1;
  std::map<RuleId, FlowRule> rules_;
};

// Per-host firewall chains (iptables analog). Block(srcs, dsts) adds an
// egress entry on every src host and an ingress entry on every dst host;
// a packet is dropped if either endpoint's chain matches. A reverse index
// RuleId -> chain entries makes Unblock touch only the chains the rule
// created instead of scanning every host.
class FirewallPartitioner : public PartitionBackend {
 public:
  size_t rule_count() const override { return rule_index_.size(); }
  std::string name() const override { return "firewall"; }

  std::unique_ptr<RulesSnapshot> CaptureRules() const override;
  void RestoreRules(const RulesSnapshot& snapshot) override;

 protected:
  bool AllowsLink(NodeId src, NodeId dst) const override;
  RuleId DoBlock(const Group& srcs, const Group& dsts) override;
  bool DoUnblock(RuleId id, std::vector<Link>* coverage) override;

 private:
  struct ChainRef {
    NodeId host;
    NodeId peer;
    bool egress;  // true: host's egress chain; false: host's ingress chain
  };
  struct HostChains {
    // Maps peer -> rule ids that drop traffic in that direction.
    std::map<NodeId, std::set<RuleId>> egress_drop;   // this host -> peer
    std::map<NodeId, std::set<RuleId>> ingress_drop;  // peer -> this host
  };
  struct Rules : RulesSnapshot {
    RuleId next_id = 1;
    std::map<NodeId, HostChains> hosts;
    std::map<RuleId, std::vector<ChainRef>> rule_index;
  };
  RuleId next_id_ = 1;
  std::map<NodeId, HostChains> hosts_;
  // Reverse index: every chain entry a live rule installed.
  std::map<RuleId, std::vector<ChainRef>> rule_index_;
};

// A handle to an injected partition; holds the rules that created it so the
// partition can be healed as a unit.
struct Partition {
  uint64_t id = 0;
  std::vector<RuleId> rules;
  std::string kind;  // "complete" | "partial" | "simplex"
  bool healed = false;
};

// The NEAT partition API (Section 6.2): complete / partial / simplex / heal.
class Partitioner {
 public:
  explicit Partitioner(PartitionBackend* backend) : backend_(backend) {}

  // Complete partition: groupA and groupB cannot exchange traffic in either
  // direction. For a true complete partition the two groups should cover the
  // whole cluster; the mechanics do not require it. Overlapping or
  // duplicated groups are tolerated: a node listed on both sides keeps its
  // self connectivity (Allows(n, n) is always true) but is cut from every
  // other member of both groups.
  Partition Complete(const Group& group_a, const Group& group_b);

  // Partial partition: same bidirectional cut between groupA and groupB, but
  // nodes outside both groups keep full connectivity to both.
  Partition Partial(const Group& group_a, const Group& group_b);

  // Simplex partition: packets flow only from group_src to group_dst; the
  // reverse direction is dropped.
  Partition Simplex(const Group& group_src, const Group& group_dst);

  // Heals a partition; idempotent.
  void Heal(Partition& partition);

  // Helper mirroring NEAT's Partitioner.rest(): all registered nodes not in
  // `group`, in id order. The universe is supplied by the caller.
  static Group Rest(const Group& universe, const Group& group);

  PartitionBackend* backend() const { return backend_; }

  // Snapshot/restore of the handle counter, so partition ids issued after a
  // fork match the ids a full replay would have issued.
  uint64_t next_partition_id() const { return next_partition_id_; }
  void set_next_partition_id(uint64_t id) { next_partition_id_ = id; }

 private:
  Partition MakeBidirectional(const Group& a, const Group& b, const std::string& kind);

  PartitionBackend* backend_;
  uint64_t next_partition_id_ = 1;
};

}  // namespace net

#endif  // NET_PARTITION_H_
