#include "net/partition.h"

#include <algorithm>

namespace net {

// --- SwitchPartitioner ---

bool SwitchPartitioner::Allows(NodeId src, NodeId dst) const {
  // Drop rules have priority over the default learning-switch forwarding.
  for (const auto& [id, rule] : rules_) {
    if (rule.srcs.count(src) != 0 && rule.dsts.count(dst) != 0) {
      return false;
    }
  }
  return true;
}

RuleId SwitchPartitioner::Block(const Group& srcs, const Group& dsts) {
  FlowRule rule;
  rule.srcs.insert(srcs.begin(), srcs.end());
  rule.dsts.insert(dsts.begin(), dsts.end());
  const RuleId id = next_id_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

bool SwitchPartitioner::Unblock(RuleId id) { return rules_.erase(id) != 0; }

// --- FirewallPartitioner ---

bool FirewallPartitioner::Allows(NodeId src, NodeId dst) const {
  auto src_it = hosts_.find(src);
  if (src_it != hosts_.end()) {
    auto egress = src_it->second.egress_drop.find(dst);
    if (egress != src_it->second.egress_drop.end() && !egress->second.empty()) {
      return false;
    }
  }
  auto dst_it = hosts_.find(dst);
  if (dst_it != hosts_.end()) {
    auto ingress = dst_it->second.ingress_drop.find(src);
    if (ingress != dst_it->second.ingress_drop.end() && !ingress->second.empty()) {
      return false;
    }
  }
  return true;
}

RuleId FirewallPartitioner::Block(const Group& srcs, const Group& dsts) {
  const RuleId id = next_id_++;
  live_rules_.insert(id);
  for (NodeId s : srcs) {
    for (NodeId d : dsts) {
      hosts_[s].egress_drop[d].insert(id);
      hosts_[d].ingress_drop[s].insert(id);
    }
  }
  return id;
}

bool FirewallPartitioner::Unblock(RuleId id) {
  if (live_rules_.erase(id) == 0) {
    return false;
  }
  for (auto& [node, chains] : hosts_) {
    for (auto& [peer, ids] : chains.egress_drop) {
      ids.erase(id);
    }
    for (auto& [peer, ids] : chains.ingress_drop) {
      ids.erase(id);
    }
  }
  return true;
}

size_t FirewallPartitioner::rule_count() const { return live_rules_.size(); }

// --- Partitioner ---

Partition Partitioner::MakeBidirectional(const Group& a, const Group& b,
                                         const std::string& kind) {
  Partition p;
  p.id = next_partition_id_++;
  p.kind = kind;
  p.rules.push_back(backend_->Block(a, b));
  p.rules.push_back(backend_->Block(b, a));
  return p;
}

Partition Partitioner::Complete(const Group& group_a, const Group& group_b) {
  return MakeBidirectional(group_a, group_b, "complete");
}

Partition Partitioner::Partial(const Group& group_a, const Group& group_b) {
  return MakeBidirectional(group_a, group_b, "partial");
}

Partition Partitioner::Simplex(const Group& group_src, const Group& group_dst) {
  Partition p;
  p.id = next_partition_id_++;
  p.kind = "simplex";
  // Traffic flows src -> dst; the reverse direction is dropped.
  p.rules.push_back(backend_->Block(group_dst, group_src));
  return p;
}

void Partitioner::Heal(Partition& partition) {
  if (partition.healed) {
    return;
  }
  for (RuleId id : partition.rules) {
    backend_->Unblock(id);
  }
  partition.rules.clear();
  partition.healed = true;
}

Group Partitioner::Rest(const Group& universe, const Group& group) {
  Group out;
  for (NodeId n : universe) {
    if (std::find(group.begin(), group.end(), n) == group.end()) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace net
