#include "net/partition.h"

#include <algorithm>
#include <cassert>

#include "net/connectivity.h"

namespace net {
namespace {

// Removes duplicate entries while preserving first-occurrence order.
Group Dedup(const Group& group) {
  Group out;
  out.reserve(group.size());
  for (NodeId n : group) {
    if (std::find(out.begin(), out.end(), n) == out.end()) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace

// --- PartitionBackend ---

PartitionBackend::~PartitionBackend() = default;

void PartitionBackend::Attach(ConnectivityCache* cache) { caches_.push_back(cache); }

void PartitionBackend::Detach(ConnectivityCache* cache) {
  caches_.erase(std::remove(caches_.begin(), caches_.end(), cache), caches_.end());
}

RuleId PartitionBackend::Block(const Group& srcs, const Group& dsts) {
  const Group src_group = Dedup(srcs);
  const Group dst_group = Dedup(dsts);
  const RuleId id = DoBlock(src_group, dst_group);
  ++epoch_;
  for (ConnectivityCache* cache : caches_) {
    cache->OnBlock(src_group, dst_group);
  }
  return id;
}

bool PartitionBackend::Unblock(RuleId id) {
  std::vector<Link> coverage;
  if (!DoUnblock(id, &coverage)) {
    return false;
  }
  ++epoch_;
  for (ConnectivityCache* cache : caches_) {
    cache->OnUnblock(coverage);
  }
  return true;
}

void PartitionBackend::BumpEpochAndResync() {
  ++epoch_;
  for (ConnectivityCache* cache : caches_) {
    cache->Resync();
  }
}

// --- SwitchPartitioner ---

std::unique_ptr<PartitionBackend::RulesSnapshot> SwitchPartitioner::CaptureRules() const {
  auto snapshot = std::make_unique<Rules>();
  snapshot->next_id = next_id_;
  snapshot->rules = rules_;
  return snapshot;
}

void SwitchPartitioner::RestoreRules(const RulesSnapshot& snapshot) {
  const auto* rules = dynamic_cast<const Rules*>(&snapshot);
  assert(rules != nullptr && "snapshot came from a different backend type");
  next_id_ = rules->next_id;
  rules_ = rules->rules;
  BumpEpochAndResync();
}

bool SwitchPartitioner::AllowsLink(NodeId src, NodeId dst) const {
  // Drop rules have priority over the default learning-switch forwarding.
  for (const auto& [id, rule] : rules_) {
    if (rule.srcs.count(src) != 0 && rule.dsts.count(dst) != 0) {
      return false;
    }
  }
  return true;
}

RuleId SwitchPartitioner::DoBlock(const Group& srcs, const Group& dsts) {
  FlowRule rule;
  rule.srcs.insert(srcs.begin(), srcs.end());
  rule.dsts.insert(dsts.begin(), dsts.end());
  const RuleId id = next_id_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

bool SwitchPartitioner::DoUnblock(RuleId id, std::vector<Link>* coverage) {
  auto it = rules_.find(id);
  if (it == rules_.end()) {
    return false;
  }
  for (NodeId s : it->second.srcs) {
    for (NodeId d : it->second.dsts) {
      if (s != d) {
        coverage->emplace_back(s, d);
      }
    }
  }
  rules_.erase(it);
  return true;
}

// --- FirewallPartitioner ---

std::unique_ptr<PartitionBackend::RulesSnapshot> FirewallPartitioner::CaptureRules() const {
  auto snapshot = std::make_unique<Rules>();
  snapshot->next_id = next_id_;
  snapshot->hosts = hosts_;
  snapshot->rule_index = rule_index_;
  return snapshot;
}

void FirewallPartitioner::RestoreRules(const RulesSnapshot& snapshot) {
  const auto* rules = dynamic_cast<const Rules*>(&snapshot);
  assert(rules != nullptr && "snapshot came from a different backend type");
  next_id_ = rules->next_id;
  hosts_ = rules->hosts;
  rule_index_ = rules->rule_index;
  BumpEpochAndResync();
}

bool FirewallPartitioner::AllowsLink(NodeId src, NodeId dst) const {
  auto src_it = hosts_.find(src);
  if (src_it != hosts_.end()) {
    auto egress = src_it->second.egress_drop.find(dst);
    if (egress != src_it->second.egress_drop.end() && !egress->second.empty()) {
      return false;
    }
  }
  auto dst_it = hosts_.find(dst);
  if (dst_it != hosts_.end()) {
    auto ingress = dst_it->second.ingress_drop.find(src);
    if (ingress != dst_it->second.ingress_drop.end() && !ingress->second.empty()) {
      return false;
    }
  }
  return true;
}

RuleId FirewallPartitioner::DoBlock(const Group& srcs, const Group& dsts) {
  const RuleId id = next_id_++;
  std::vector<ChainRef>& refs = rule_index_[id];
  for (NodeId s : srcs) {
    for (NodeId d : dsts) {
      if (s == d) {
        continue;  // self traffic never traverses a chain
      }
      hosts_[s].egress_drop[d].insert(id);
      hosts_[d].ingress_drop[s].insert(id);
      refs.push_back(ChainRef{s, d, /*egress=*/true});
      refs.push_back(ChainRef{d, s, /*egress=*/false});
    }
  }
  return id;
}

bool FirewallPartitioner::DoUnblock(RuleId id, std::vector<Link>* coverage) {
  auto it = rule_index_.find(id);
  if (it == rule_index_.end()) {
    return false;
  }
  for (const ChainRef& ref : it->second) {
    auto host_it = hosts_.find(ref.host);
    if (host_it == hosts_.end()) {
      continue;
    }
    auto& chains =
        ref.egress ? host_it->second.egress_drop : host_it->second.ingress_drop;
    auto chain_it = chains.find(ref.peer);
    if (chain_it != chains.end()) {
      chain_it->second.erase(id);
      if (chain_it->second.empty()) {
        chains.erase(chain_it);
      }
    }
    if (ref.egress) {
      coverage->emplace_back(ref.host, ref.peer);
    }
  }
  rule_index_.erase(it);
  return true;
}

// --- Partitioner ---

Partition Partitioner::MakeBidirectional(const Group& a, const Group& b,
                                         const std::string& kind) {
  Partition p;
  p.id = next_partition_id_++;
  p.kind = kind;
  p.rules.push_back(backend_->Block(a, b));
  p.rules.push_back(backend_->Block(b, a));
  return p;
}

Partition Partitioner::Complete(const Group& group_a, const Group& group_b) {
  return MakeBidirectional(group_a, group_b, "complete");
}

Partition Partitioner::Partial(const Group& group_a, const Group& group_b) {
  return MakeBidirectional(group_a, group_b, "partial");
}

Partition Partitioner::Simplex(const Group& group_src, const Group& group_dst) {
  Partition p;
  p.id = next_partition_id_++;
  p.kind = "simplex";
  // Traffic flows src -> dst; the reverse direction is dropped.
  p.rules.push_back(backend_->Block(group_dst, group_src));
  return p;
}

void Partitioner::Heal(Partition& partition) {
  if (partition.healed) {
    return;
  }
  for (RuleId id : partition.rules) {
    backend_->Unblock(id);
  }
  partition.rules.clear();
  partition.healed = true;
}

Group Partitioner::Rest(const Group& universe, const Group& group) {
  Group out;
  for (NodeId n : universe) {
    if (std::find(group.begin(), group.end(), n) == group.end()) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace net
