// Cached connectivity: an N×N allowed-bitmap over the registered nodes.
//
// The partition backends answer Allows(src, dst) by consulting their rule
// tables — a linear scan for the switch, two chain lookups for the firewall
// — so every simulated packet gets slower as a test injects more faults,
// exactly when NEAT-style sweeps need the most throughput. A
// ConnectivityCache attaches to a PartitionBackend as an observer: every
// Block clears the covered bits directly, every Unblock re-derives the
// covered bits from the backend (an unblocked pair may still be cut by an
// overlapping rule), and an epoch counter detects any staleness, falling
// back to the authoritative backend verdict. Queries over tracked nodes are
// a single bit test, independent of the number of installed rules.
//
// The cache must not outlive its backend (it detaches in its destructor).

#ifndef NET_CONNECTIVITY_H_
#define NET_CONNECTIVITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "net/message.h"
#include "net/partition.h"

namespace net {

class ConnectivityCache {
 public:
  explicit ConnectivityCache(PartitionBackend* backend);
  ~ConnectivityCache();

  ConnectivityCache(const ConnectivityCache&) = delete;
  ConnectivityCache& operator=(const ConnectivityCache&) = delete;

  // Starts tracking a node; idempotent. Initializes only the new node's
  // row and column from the backend (O(N) queries), so rules installed
  // before registration are reflected without a full-matrix rebuild.
  void AddNode(NodeId node);

  // O(1) verdict for tracked (src, dst) pairs; untracked nodes or a stale
  // epoch fall back to the backend's authoritative answer.
  bool Allows(NodeId src, NodeId dst) const;

  bool Tracks(NodeId node) const { return IndexOf(node) >= 0; }
  size_t node_count() const { return nodes_.size(); }

  // The backend epoch the bitmap reflects; equal to backend->epoch() while
  // the cache is coherent.
  uint64_t synced_epoch() const { return synced_epoch_; }

  // Re-derives every tracked pair from the backend's authoritative verdict.
  // Incremental patching covers ordinary Block/Unblock traffic; Resync is
  // for wholesale rule-table replacement (snapshot restore), where there is
  // no per-rule delta to patch from. O(N^2) backend queries.
  void Resync();

  // Introspection for tests and benches. full_rebuilds() stays 0 during
  // incremental operation — node registration and rule patching never
  // rebuild, which is regression-checked so an O(N^2) rebuild cannot
  // silently return to the hot path. Only Resync() (snapshot restore)
  // increments it.
  uint64_t full_rebuilds() const { return full_rebuilds_; }
  uint64_t patched_pairs() const { return patched_pairs_; }
  uint64_t fallback_queries() const { return fallback_queries_; }

 private:
  friend class PartitionBackend;

  // Observer hooks, invoked by the backend after each mutation.
  void OnBlock(const Group& srcs, const Group& dsts);
  void OnUnblock(const std::vector<std::pair<NodeId, NodeId>>& coverage);

  int IndexOf(NodeId node) const {
    return node >= 0 && static_cast<size_t>(node) < index_.size() ? index_[node] : -1;
  }
  void SetBit(int src_index, int dst_index, bool allowed);
  bool GetBit(int src_index, int dst_index) const {
    const size_t bit = static_cast<size_t>(src_index) * stride_words_ * 64 +
                       static_cast<size_t>(dst_index);
    return (bits_[bit / 64] >> (bit % 64)) & 1;
  }

  PartitionBackend* backend_;
  std::vector<NodeId> nodes_;
  std::vector<int32_t> index_;  // NodeId -> dense index, -1 when untracked
  std::vector<uint64_t> bits_;  // row-major; one row per src node
  size_t stride_words_ = 0;     // 64-bit words per row
  uint64_t synced_epoch_ = 0;
  uint64_t full_rebuilds_ = 0;
  uint64_t patched_pairs_ = 0;
  mutable uint64_t fallback_queries_ = 0;
};

}  // namespace net

#endif  // NET_CONNECTIVITY_H_
