#include "net/connectivity.h"

namespace net {

ConnectivityCache::ConnectivityCache(PartitionBackend* backend) : backend_(backend) {
  backend_->Attach(this);
  synced_epoch_ = backend_->epoch();
}

ConnectivityCache::~ConnectivityCache() { backend_->Detach(this); }

void ConnectivityCache::AddNode(NodeId node) {
  if (node < 0 || Tracks(node)) {
    return;
  }
  if (static_cast<size_t>(node) >= index_.size()) {
    index_.resize(static_cast<size_t>(node) + 1, -1);
  }
  index_[node] = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const size_t count = nodes_.size();
  const size_t new_stride = (count + 63) / 64;
  if (new_stride != stride_words_) {
    // Row width grew: re-lay the existing rows out on the wider stride.
    // Pure bit copying — no backend queries.
    std::vector<uint64_t> wider(count * new_stride, 0);
    for (size_t row = 0; row + 1 < count; ++row) {
      std::copy(bits_.begin() + static_cast<ptrdiff_t>(row * stride_words_),
                bits_.begin() + static_cast<ptrdiff_t>((row + 1) * stride_words_),
                wider.begin() + static_cast<ptrdiff_t>(row * new_stride));
    }
    bits_ = std::move(wider);
    stride_words_ = new_stride;
  } else {
    bits_.resize(count * stride_words_, 0);
  }
  // Incremental initialization: only the new node's row and column consult
  // the backend — O(N) queries per registration instead of the O(N^2) full
  // rebuild, so building an N-node cluster costs O(N^2) overall, not
  // O(N^3). Rules installed before registration are reflected because the
  // backend's answers are authoritative.
  const int added = static_cast<int>(count) - 1;
  for (size_t i = 0; i < count; ++i) {
    SetBit(added, static_cast<int>(i), backend_->Allows(node, nodes_[i]));
    SetBit(static_cast<int>(i), added, backend_->Allows(nodes_[i], node));
  }
  synced_epoch_ = backend_->epoch();
}

void ConnectivityCache::SetBit(int src_index, int dst_index, bool allowed) {
  const size_t bit = static_cast<size_t>(src_index) * stride_words_ * 64 +
                     static_cast<size_t>(dst_index);
  if (allowed) {
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  } else {
    bits_[bit / 64] &= ~(uint64_t{1} << (bit % 64));
  }
}

void ConnectivityCache::Resync() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = 0; j < nodes_.size(); ++j) {
      SetBit(static_cast<int>(i), static_cast<int>(j),
             backend_->Allows(nodes_[i], nodes_[j]));
    }
  }
  synced_epoch_ = backend_->epoch();
  ++full_rebuilds_;
}

bool ConnectivityCache::Allows(NodeId src, NodeId dst) const {
  if (src == dst) {
    return true;
  }
  const int si = IndexOf(src);
  const int di = IndexOf(dst);
  if (si < 0 || di < 0 || synced_epoch_ != backend_->epoch()) {
    ++fallback_queries_;
    return backend_->Allows(src, dst);
  }
  return GetBit(si, di);
}

void ConnectivityCache::OnBlock(const Group& srcs, const Group& dsts) {
  for (NodeId s : srcs) {
    const int si = IndexOf(s);
    if (si < 0) {
      continue;
    }
    for (NodeId d : dsts) {
      const int di = IndexOf(d);
      if (di < 0 || s == d) {
        continue;
      }
      SetBit(si, di, false);
      ++patched_pairs_;
    }
  }
  synced_epoch_ = backend_->epoch();
}

void ConnectivityCache::OnUnblock(const std::vector<std::pair<NodeId, NodeId>>& coverage) {
  // Update the epoch first: the backend has already removed the rule, so its
  // Allows answers (queried below) reflect the new epoch.
  synced_epoch_ = backend_->epoch();
  for (const auto& [s, d] : coverage) {
    const int si = IndexOf(s);
    const int di = IndexOf(d);
    if (si < 0 || di < 0) {
      continue;
    }
    // An overlapping rule may still cut the pair, so re-derive the verdict.
    SetBit(si, di, backend_->Allows(s, d));
    ++patched_pairs_;
  }
}

}  // namespace net
