#include "net/connectivity.h"

namespace net {

ConnectivityCache::ConnectivityCache(PartitionBackend* backend) : backend_(backend) {
  backend_->Attach(this);
  synced_epoch_ = backend_->epoch();
}

ConnectivityCache::~ConnectivityCache() { backend_->Detach(this); }

void ConnectivityCache::AddNode(NodeId node) {
  if (node < 0 || Tracks(node)) {
    return;
  }
  if (static_cast<size_t>(node) >= index_.size()) {
    index_.resize(static_cast<size_t>(node) + 1, -1);
  }
  index_[node] = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  Rebuild();
}

void ConnectivityCache::Rebuild() {
  stride_words_ = (nodes_.size() + 63) / 64;
  bits_.assign(nodes_.size() * stride_words_, 0);
  for (size_t si = 0; si < nodes_.size(); ++si) {
    for (size_t di = 0; di < nodes_.size(); ++di) {
      SetBit(static_cast<int>(si), static_cast<int>(di),
             backend_->Allows(nodes_[si], nodes_[di]));
    }
  }
  synced_epoch_ = backend_->epoch();
  ++full_rebuilds_;
}

void ConnectivityCache::SetBit(int src_index, int dst_index, bool allowed) {
  const size_t bit = static_cast<size_t>(src_index) * stride_words_ * 64 +
                     static_cast<size_t>(dst_index);
  if (allowed) {
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  } else {
    bits_[bit / 64] &= ~(uint64_t{1} << (bit % 64));
  }
}

bool ConnectivityCache::Allows(NodeId src, NodeId dst) const {
  if (src == dst) {
    return true;
  }
  const int si = IndexOf(src);
  const int di = IndexOf(dst);
  if (si < 0 || di < 0 || synced_epoch_ != backend_->epoch()) {
    ++fallback_queries_;
    return backend_->Allows(src, dst);
  }
  return GetBit(si, di);
}

void ConnectivityCache::OnBlock(const Group& srcs, const Group& dsts) {
  for (NodeId s : srcs) {
    const int si = IndexOf(s);
    if (si < 0) {
      continue;
    }
    for (NodeId d : dsts) {
      const int di = IndexOf(d);
      if (di < 0 || s == d) {
        continue;
      }
      SetBit(si, di, false);
      ++patched_pairs_;
    }
  }
  synced_epoch_ = backend_->epoch();
}

void ConnectivityCache::OnUnblock(const std::vector<std::pair<NodeId, NodeId>>& coverage) {
  // Update the epoch first: the backend has already removed the rule, so its
  // Allows answers (queried below) reflect the new epoch.
  synced_epoch_ = backend_->epoch();
  for (const auto& [s, d] : coverage) {
    const int si = IndexOf(s);
    const int di = IndexOf(d);
    if (si < 0 || di < 0) {
      continue;
    }
    // An overlapping rule may still cut the pair, so re-derive the verdict.
    SetBit(si, di, backend_->Allows(s, d));
    ++patched_pairs_;
  }
}

}  // namespace net
