// The simulated message network.
//
// Processes register a delivery handler under their NodeId and send messages
// to peers; the network applies the partition backend's verdict, a latency
// model, and optional per-link flakiness, then schedules delivery on the
// simulator. Dropped messages are recorded in the trace log, which is how
// scenario tests explain which partition rule bit.
//
// Partition verdicts are read from a ConnectivityCache over the registered
// nodes, so the per-packet cost is O(1) no matter how many rules a test has
// installed; the backends keep the cache coherent on every Block/Unblock.
//
// All network randomness (link-loss draws, latency jitter) comes from a
// dedicated RNG substream forked from the simulator's seed at construction,
// so toggling jitter or flakiness never perturbs the random decisions the
// systems under test make from the simulator's own stream.

#ifndef NET_NETWORK_H_
#define NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "net/connectivity.h"
#include "net/message.h"
#include "net/partition.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace net {

struct LatencyModel {
  sim::Duration base = sim::Microseconds(200);
  sim::Duration jitter = sim::Microseconds(100);  // uniform in [0, jitter]
};

// A message-level fault: drop, delay, or reorder messages of one concrete
// type (matched against Message::TypeName()), optionally restricted to one
// src/dst and to the first `limit` matching messages. This is the scenario
// DSL's fault model beyond partitions — a partition kills every message on
// a link, while a fault rule can kill only the heartbeats and let the data
// traffic through (or vice versa), which no partition can express.
//
// Semantics (all deterministic):
//   kDrop     the message is dropped at send time, after the partition and
//             flaky-link checks, recorded as a "(fault drop)" trace drop.
//   kDelay    delivery is postponed by `delay` on top of the latency model.
//   kReorder  pairwise swap: the first matching message is held; when the
//             next one arrives, it is delivered first and the held one is
//             released just after it. A held message still waiting when the
//             rule is removed (or ClearFaultRules runs) is flushed with its
//             originally drawn delay.
struct FaultRule {
  enum class Action { kDrop, kDelay, kReorder };
  std::string type_name;         // exact Message::TypeName() match
  Action action = Action::kDrop;
  sim::Duration delay = 0;       // extra latency for kDelay
  uint64_t limit = 0;            // max matched messages; 0 = unlimited
  NodeId src = kInvalidNode;     // restrict to a sender; kInvalidNode = any
  NodeId dst = kInvalidNode;     // restrict to a receiver; kInvalidNode = any
};
using FaultRuleId = uint64_t;

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Network(sim::Simulator* simulator, PartitionBackend* backend)
      : simulator_(simulator),
        backend_(backend),
        connectivity_(backend),
        rng_(simulator->Rand().Fork()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches a process. Re-registering a NodeId replaces its handler (used
  // by restart).
  //
  // Crashed-node semantics: passing a null handler detaches the process but
  // keeps the node in Universe() — a crashed host is still a host, with an
  // address, firewall chains, and switch ports; it just answers nothing.
  // Messages to it still traverse the partition rules and latency model and
  // are dropped at delivery time, counted as "no receiver" drops (same as
  // messages to a node that never registered).
  void Register(NodeId node, Handler handler);

  // Sends a message. The message is dropped when the partition backend
  // forbids the link at send or delivery time, when the link is flaky and
  // the loss draw fires, or when the destination has no handler.
  void Send(NodeId src, NodeId dst, std::shared_ptr<const Message> msg);

  // Convenience for freshly constructed message objects.
  template <typename M, typename... Args>
  void SendNew(NodeId src, NodeId dst, Args&&... args) {
    Send(src, dst, std::make_shared<const M>(std::forward<Args>(args)...));
  }

  // Sets a directed link loss probability in [0, 1]; flaky links are one of
  // the causes of partial partitions the paper cites.
  void SetLinkLoss(NodeId src, NodeId dst, double loss);

  // --- message-level faults (scenario DSL) ---
  //
  // Rules are consulted in Send, after the partition verdict and the
  // flaky-link draw, in installation order; the first matching rule acts.
  // With no rules installed the send path is byte-identical to a build
  // without this hook: no extra trace records, no extra RNG draws.
  FaultRuleId AddFaultRule(const FaultRule& rule);
  // Removes one rule, flushing its held reorder message if any. Unknown ids
  // are ignored (a phase may end after an explicit clear-faults step).
  void RemoveFaultRule(FaultRuleId id);
  // Removes every rule, flushing all held messages.
  void ClearFaultRules();
  bool HasFaultRules() const { return !faults_.empty(); }
  // Messages a fault rule acted on (dropped, delayed, held, or swapped).
  uint64_t messages_faulted() const { return messages_faulted_; }

  void set_latency(LatencyModel latency) { latency_ = latency; }
  const LatencyModel& latency() const { return latency_; }

  PartitionBackend* backend() const { return backend_; }
  const ConnectivityCache& connectivity() const { return connectivity_; }
  sim::Simulator* simulator() const { return simulator_; }

  // All node ids ever registered, in order (the partition API's universe).
  // Includes crashed (null-handler) nodes.
  Group Universe() const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

  // One installed fault rule plus its match state. Part of Network::State:
  // a forked run must resume with the same match counters and held reorder
  // message the straight-through run had at the snapshot point. The held
  // envelope's message is an immutable value object, safe to share between
  // a snapshot and the live network.
  struct InstalledFault {
    FaultRule rule;
    uint64_t matched = 0;        // messages this rule has acted on
    bool holding = false;        // kReorder: a message is held back
    Envelope held;
    sim::Duration held_delay = 0;  // the held message's drawn delivery delay
  };

  // --- snapshot / restore (NEAT fork executor) ---
  //
  // Value state of the network itself: the private RNG substream, the
  // latency/loss configuration, the message counters, and the fault-rule
  // table with its match state. Handlers are NOT captured — they are
  // closures over live processes, and Process kernel restore re-registers
  // or detaches them. The connectivity cache is not captured either:
  // restoring the partition backend's rules re-syncs it
  // (PartitionBackend::RestoreRules notifies every attached cache).
  struct State {
    sim::Rng rng{1};
    LatencyModel latency;
    std::map<std::pair<NodeId, NodeId>, double> link_loss;
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t messages_dropped = 0;
    std::map<FaultRuleId, InstalledFault> faults;
    FaultRuleId next_fault_id = 1;
    uint64_t messages_faulted = 0;
  };
  State CaptureState() const {
    return State{rng_,           latency_,            link_loss_,
                 messages_sent_, messages_delivered_, messages_dropped_,
                 faults_,        next_fault_id_,      messages_faulted_};
  }
  void RestoreState(const State& state) {
    rng_ = state.rng;
    latency_ = state.latency;
    link_loss_ = state.link_loss;
    messages_sent_ = state.messages_sent;
    messages_delivered_ = state.messages_delivered;
    messages_dropped_ = state.messages_dropped;
    faults_ = state.faults;
    next_fault_id_ = state.next_fault_id;
    messages_faulted_ = state.messages_faulted;
  }

 private:
  void Deliver(Envelope envelope);
  void ScheduleDelivery(Envelope envelope, sim::Duration delay);
  // Returns true when a fault rule consumed the envelope (dropped or held);
  // a kDelay match adds to *delay and lets the send proceed.
  bool ApplyFaults(Envelope& envelope, sim::Duration* delay);
  void FlushHeldMessage(InstalledFault& fault);

  sim::Simulator* simulator_;
  PartitionBackend* backend_;
  // detlint: allow(snapshot-field): derived reachability cache; invalidated on every rule change and rebuilt on demand
  ConnectivityCache connectivity_;
  sim::Rng rng_;  // network-private substream: loss + jitter draws only
  LatencyModel latency_;
  // detlint: allow(snapshot-field): delivery closures are re-registered by Process::RestoreKernel, not value-copied
  std::map<NodeId, Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, double> link_loss_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  std::map<FaultRuleId, InstalledFault> faults_;
  FaultRuleId next_fault_id_ = 1;
  uint64_t messages_faulted_ = 0;
};

}  // namespace net

#endif  // NET_NETWORK_H_
