// The simulated message network.
//
// Processes register a delivery handler under their NodeId and send messages
// to peers; the network applies the partition backend's verdict, a latency
// model, and optional per-link flakiness, then schedules delivery on the
// simulator. Dropped messages are recorded in the trace log, which is how
// scenario tests explain which partition rule bit.

#ifndef NET_NETWORK_H_
#define NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "net/message.h"
#include "net/partition.h"
#include "sim/simulator.h"

namespace net {

struct LatencyModel {
  sim::Duration base = sim::Microseconds(200);
  sim::Duration jitter = sim::Microseconds(100);  // uniform in [0, jitter]
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Network(sim::Simulator* simulator, PartitionBackend* backend)
      : simulator_(simulator), backend_(backend) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches a process. Re-registering a NodeId replaces its handler (used
  // by restart). Pass a null handler to detach.
  void Register(NodeId node, Handler handler);

  // Sends a message. The message is dropped when the partition backend
  // forbids the link at send or delivery time, when the link is flaky and
  // the loss draw fires, or when the destination is not registered.
  void Send(NodeId src, NodeId dst, std::shared_ptr<const Message> msg);

  // Convenience for freshly constructed message objects.
  template <typename M, typename... Args>
  void SendNew(NodeId src, NodeId dst, Args&&... args) {
    Send(src, dst, std::make_shared<const M>(std::forward<Args>(args)...));
  }

  // Sets a directed link loss probability in [0, 1]; flaky links are one of
  // the causes of partial partitions the paper cites.
  void SetLinkLoss(NodeId src, NodeId dst, double loss);

  void set_latency(LatencyModel latency) { latency_ = latency; }
  const LatencyModel& latency() const { return latency_; }

  PartitionBackend* backend() const { return backend_; }
  sim::Simulator* simulator() const { return simulator_; }

  // All node ids ever registered, in order (the partition API's universe).
  Group Universe() const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  void Deliver(Envelope envelope);

  sim::Simulator* simulator_;
  PartitionBackend* backend_;
  LatencyModel latency_;
  std::map<NodeId, Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, double> link_loss_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace net

#endif  // NET_NETWORK_H_
