// The simulated message network.
//
// Processes register a delivery handler under their NodeId and send messages
// to peers; the network applies the partition backend's verdict, a latency
// model, and optional per-link flakiness, then schedules delivery on the
// simulator. Dropped messages are recorded in the trace log, which is how
// scenario tests explain which partition rule bit.
//
// Partition verdicts are read from a ConnectivityCache over the registered
// nodes, so the per-packet cost is O(1) no matter how many rules a test has
// installed; the backends keep the cache coherent on every Block/Unblock.
//
// All network randomness (link-loss draws, latency jitter) comes from a
// dedicated RNG substream forked from the simulator's seed at construction,
// so toggling jitter or flakiness never perturbs the random decisions the
// systems under test make from the simulator's own stream.

#ifndef NET_NETWORK_H_
#define NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "net/connectivity.h"
#include "net/message.h"
#include "net/partition.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace net {

struct LatencyModel {
  sim::Duration base = sim::Microseconds(200);
  sim::Duration jitter = sim::Microseconds(100);  // uniform in [0, jitter]
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Network(sim::Simulator* simulator, PartitionBackend* backend)
      : simulator_(simulator),
        backend_(backend),
        connectivity_(backend),
        rng_(simulator->Rand().Fork()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches a process. Re-registering a NodeId replaces its handler (used
  // by restart).
  //
  // Crashed-node semantics: passing a null handler detaches the process but
  // keeps the node in Universe() — a crashed host is still a host, with an
  // address, firewall chains, and switch ports; it just answers nothing.
  // Messages to it still traverse the partition rules and latency model and
  // are dropped at delivery time, counted as "no receiver" drops (same as
  // messages to a node that never registered).
  void Register(NodeId node, Handler handler);

  // Sends a message. The message is dropped when the partition backend
  // forbids the link at send or delivery time, when the link is flaky and
  // the loss draw fires, or when the destination has no handler.
  void Send(NodeId src, NodeId dst, std::shared_ptr<const Message> msg);

  // Convenience for freshly constructed message objects.
  template <typename M, typename... Args>
  void SendNew(NodeId src, NodeId dst, Args&&... args) {
    Send(src, dst, std::make_shared<const M>(std::forward<Args>(args)...));
  }

  // Sets a directed link loss probability in [0, 1]; flaky links are one of
  // the causes of partial partitions the paper cites.
  void SetLinkLoss(NodeId src, NodeId dst, double loss);

  void set_latency(LatencyModel latency) { latency_ = latency; }
  const LatencyModel& latency() const { return latency_; }

  PartitionBackend* backend() const { return backend_; }
  const ConnectivityCache& connectivity() const { return connectivity_; }
  sim::Simulator* simulator() const { return simulator_; }

  // All node ids ever registered, in order (the partition API's universe).
  // Includes crashed (null-handler) nodes.
  Group Universe() const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

  // --- snapshot / restore (NEAT fork executor) ---
  //
  // Value state of the network itself: the private RNG substream, the
  // latency/loss configuration, and the message counters. Handlers are NOT
  // captured — they are closures over live processes, and Process kernel
  // restore re-registers or detaches them. The connectivity cache is not
  // captured either: restoring the partition backend's rules re-syncs it
  // (PartitionBackend::RestoreRules notifies every attached cache).
  struct State {
    sim::Rng rng{1};
    LatencyModel latency;
    std::map<std::pair<NodeId, NodeId>, double> link_loss;
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t messages_dropped = 0;
  };
  State CaptureState() const {
    return State{rng_,           latency_,            link_loss_,
                 messages_sent_, messages_delivered_, messages_dropped_};
  }
  void RestoreState(const State& state) {
    rng_ = state.rng;
    latency_ = state.latency;
    link_loss_ = state.link_loss;
    messages_sent_ = state.messages_sent;
    messages_delivered_ = state.messages_delivered;
    messages_dropped_ = state.messages_dropped;
  }

 private:
  void Deliver(Envelope envelope);

  sim::Simulator* simulator_;
  PartitionBackend* backend_;
  ConnectivityCache connectivity_;
  sim::Rng rng_;  // network-private substream: loss + jitter draws only
  LatencyModel latency_;
  std::map<NodeId, Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, double> link_loss_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace net

#endif  // NET_NETWORK_H_
