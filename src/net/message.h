// Message types carried by the simulated network.
//
// Each system defines its own message structs deriving from net::Message;
// the network carries them opaquely and handlers downcast on receipt.

#ifndef NET_MESSAGE_H_
#define NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace net {

// Identifies a process (server or client) attached to the network.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

// An ordered set of nodes, as used by the NEAT partition API.
using Group = std::vector<NodeId>;

class Message {
 public:
  virtual ~Message() = default;

  // Short human-readable type tag for traces, e.g. "AppendEntries".
  virtual std::string TypeName() const = 0;
};

// What the network hands to a receiving process.
struct Envelope {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  sim::Time sent_at = sim::kTimeZero;
  std::shared_ptr<const Message> msg;
  // Trace id of the "send" record for this message (0 when causal tracing
  // is off). The network uses it to stamp the send->deliver edge of the
  // happens-before graph; it is a stable log position, never an address.
  uint64_t send_record = 0;
};

}  // namespace net

#endif  // NET_MESSAGE_H_
