// Wire messages of the primary-backup key-value protocol.

#ifndef SYSTEMS_PBKV_MESSAGES_H_
#define SYSTEMS_PBKV_MESSAGES_H_

#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "systems/pbkv/types.h"

namespace pbkv {

// --- client <-> server ---

struct ClientRequest : public net::Message {
  std::string TypeName() const override { return "pbkv.ClientRequest"; }
  uint64_t request_id = 0;
  OpKind kind = OpKind::kPut;
  bool is_read = false;
  std::string key;
  std::string value;
};

struct ClientReply : public net::Message {
  std::string TypeName() const override { return "pbkv.ClientReply"; }
  uint64_t request_id = 0;
  bool ok = false;
  bool not_leader = false;
  net::NodeId leader_hint = net::kInvalidNode;
  std::string value;  // for reads
};

// --- replication ---

struct Replicate : public net::Message {
  std::string TypeName() const override { return "pbkv.Replicate"; }
  uint64_t term = 0;
  net::NodeId leader = net::kInvalidNode;
  LogEntry entry;
};

struct ReplicateAck : public net::Message {
  std::string TypeName() const override { return "pbkv.ReplicateAck"; }
  uint64_t term = 0;
  uint64_t lsn = 0;
};

// --- leader election ---

struct RequestVote : public net::Message {
  std::string TypeName() const override { return "pbkv.RequestVote"; }
  uint64_t term = 0;
  net::NodeId candidate = net::kInvalidNode;
  uint64_t log_length = 0;
  sim::Time last_timestamp = sim::kTimeZero;
  int priority = 0;
};

struct VoteGranted : public net::Message {
  std::string TypeName() const override { return "pbkv.VoteGranted"; }
  uint64_t term = 0;
  bool granted = false;
  // The voter's own current term; a denied candidate with a stale view
  // adopts it so it can recognize the real leader's announcements again.
  uint64_t voter_term = 0;
  // When the voter refused because it can see a healthy leader: who that
  // leader is. A candidate whose own term ran ahead while partitioned away
  // uses this to fall back in line and resynchronize.
  net::NodeId leader_hint = net::kInvalidNode;
};

struct LeaderAnnounce : public net::Message {
  std::string TypeName() const override { return "pbkv.LeaderAnnounce"; }
  uint64_t term = 0;
  net::NodeId leader = net::kInvalidNode;
  uint64_t log_length = 0;
  sim::Time last_timestamp = sim::kTimeZero;
};

// Sent by an arbiter to a deposed primary it can still reach (the MongoDB
// arbiter "step down" notification).
struct StepDownCommand : public net::Message {
  std::string TypeName() const override { return "pbkv.StepDownCommand"; }
  uint64_t term = 0;
  net::NodeId leader = net::kInvalidNode;
};

// --- data consolidation after heal ---

// Winner -> loser: full state transfer (systems in the study ship either
// snapshots or logs; we ship the log and rebuild the store).
struct SyncSnapshot : public net::Message {
  std::string TypeName() const override { return "pbkv.SyncSnapshot"; }
  uint64_t term = 0;
  net::NodeId leader = net::kInvalidNode;
  std::vector<LogEntry> log;
};

struct SyncRequest : public net::Message {
  std::string TypeName() const override { return "pbkv.SyncRequest"; }
  uint64_t term = 0;
};

// --- quorum reads ---

struct ReadGuard : public net::Message {
  std::string TypeName() const override { return "pbkv.ReadGuard"; }
  uint64_t term = 0;
  uint64_t guard_id = 0;
};

struct ReadGuardAck : public net::Message {
  std::string TypeName() const override { return "pbkv.ReadGuardAck"; }
  uint64_t term = 0;
  uint64_t guard_id = 0;
  bool confirms = false;
};

}  // namespace pbkv

#endif  // SYSTEMS_PBKV_MESSAGES_H_
