// A primary-backup key-value replica (or arbiter).
//
// See systems/pbkv/types.h for the configuration space. The protocol:
//
//  - All members exchange heartbeats; each keeps a local failure-detector
//    view (under partial partitions these views disagree, which is the
//    root of several reproduced failures).
//  - The primary appends client writes to its log, applies them locally,
//    and replicates to the data replicas; the write concern decides when
//    the client is acknowledged. Replication that cannot reach its quorum
//    within the replication timeout fails the client write — but the entry
//    remains applied locally, which is exactly the VoltDB/MongoDB dirty
//    state of Figure 2.
//  - A follower whose detector declares the primary dead starts an election
//    for a higher term; voters apply the configured criterion. A majority
//    of the voting membership is always required to win.
//  - A primary that cannot see a majority of the membership steps down, but
//    only after the (longer) step-down threshold — the overlap window in
//    which two leaders coexist ("overlapping between successive leaders",
//    57% of the leader-election failures in Table 4).
//  - When two primaries meet (after a heal), the conflict winner is chosen
//    by term (correct) or by re-applying the election criterion (flawed);
//    the loser synchronizes per the consolidation policy.

#ifndef SYSTEMS_PBKV_SERVER_H_
#define SYSTEMS_PBKV_SERVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/failure_detector.h"
#include "cluster/process.h"
#include "systems/pbkv/messages.h"
#include "systems/pbkv/types.h"

namespace pbkv {

class Server : public cluster::Process {
 public:
  enum class Role { kFollower, kCandidate, kPrimary, kArbiter };

  // `replicas` are the data-bearing members (must contain `id` unless this
  // server is the arbiter); `arbiter` is net::kInvalidNode when absent.
  Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
         const Options& options, std::vector<net::NodeId> replicas, net::NodeId arbiter);

  // --- introspection for tests and checkers ---
  Role role() const { return role_; }
  bool is_primary() const { return role_ == Role::kPrimary; }
  uint64_t term() const { return term_; }
  net::NodeId leader() const { return current_leader_; }
  const std::vector<LogEntry>& log() const { return log_; }
  // Value currently visible for `key` on this replica (nullopt if absent).
  // The raw view includes applied-but-uncommitted entries (dirty state);
  // the committed view only reflects quorum-acknowledged writes.
  std::optional<std::string> StoreGet(const std::string& key) const;
  std::optional<std::string> StoreGetCommitted(const std::string& key) const;
  uint64_t elections_started() const { return elections_started_; }
  uint64_t stepdowns() const { return stepdowns_; }

  // --- snapshot / restore (NEAT fork executor) ---
  // Every mutable field as a value; configuration (options, membership) is
  // immutable and excluded. Kernel state (epoch/crashed) is captured by the
  // TestEnv, not here.
  struct State;
  State CaptureState() const;
  void RestoreState(const State& state);

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct StoreValue {
    std::string value;
    sim::Time timestamp = sim::kTimeZero;
    bool present = false;
    // Committed view.
    std::string committed_value;
    bool committed_present = false;
  };
  struct PendingWrite {
    net::NodeId client = net::kInvalidNode;
    uint64_t request_id = 0;
    std::set<net::NodeId> acks;
    size_t needed = 0;
    sim::EventId timer = sim::kInvalidEventId;
  };
  struct PendingForward {
    net::NodeId client = net::kInvalidNode;
    uint64_t request_id = 0;  // the client's original id
    sim::EventId timer = sim::kInvalidEventId;
  };
  struct PendingRead {
    net::NodeId client = net::kInvalidNode;
    uint64_t request_id = 0;
    std::string key;
    std::set<net::NodeId> acks;
    size_t needed = 0;
    sim::EventId timer = sim::kInvalidEventId;
  };

  // Periodic tick: heartbeats out, then failure-detector-driven decisions.
  void Tick();
  void MaybeStartElection();
  void StartElection();
  void BecomeLeader();
  void StepDown(const std::string& reason, net::NodeId new_leader, uint64_t new_term);
  void AnnounceLeadership();
  // True when we are the leader or recently heard leader traffic.
  bool LeaderFunctioning() const;

  void HandleClientRequest(const net::Envelope& envelope, const ClientRequest& request);
  // Coordinator path (#9967): forward a write to the primary and relay the
  // reply; report failure when no reply arrives in time.
  void ForwardToPrimary(const net::Envelope& envelope, const ClientRequest& request);
  void HandleForwardedReply(const ClientReply& reply);
  void HandleReplicate(const net::Envelope& envelope, const Replicate& msg);
  void HandleReplicateAck(const net::Envelope& envelope, const ReplicateAck& msg);
  void HandleRequestVote(const net::Envelope& envelope, const RequestVote& msg);
  void HandleVoteGranted(const net::Envelope& envelope, const VoteGranted& msg);
  void HandleLeaderAnnounce(const net::Envelope& envelope, const LeaderAnnounce& msg);
  void HandleStepDownCommand(const StepDownCommand& msg);
  void HandleSyncRequest(const net::Envelope& envelope);
  void HandleSyncSnapshot(const SyncSnapshot& msg);
  void HandleReadGuard(const net::Envelope& envelope, const ReadGuard& msg);
  void HandleReadGuardAck(const net::Envelope& envelope, const ReadGuardAck& msg);

  // Does the voter-side election criterion prefer the candidate over us?
  bool CriterionAccepts(const RequestVote& msg) const;
  // Resolves a primary-vs-primary conflict; true if *we* win.
  bool WinsConflict(uint64_t other_term, net::NodeId other_leader, uint64_t other_log_length,
                    sim::Time other_last_timestamp) const;

  void ApplyEntry(const LogEntry& entry);
  // Marks the log entry with `lsn` committed and updates the committed view.
  void CommitEntry(uint64_t lsn);
  void ApplyCommittedView(const LogEntry& entry);
  void RebuildStore();
  void ReplyToClient(net::NodeId client, uint64_t request_id, bool ok,
                     const std::string& value = "", bool not_leader = false);
  void FailPendingOps(const std::string& reason);
  size_t VotingMajority() const;  // majority of replicas + arbiter
  size_t DataMajority() const;    // majority of data replicas
  sim::Time LastTimestamp() const;
  int Priority() const;

  // detlint: allow(snapshot-field): configuration fixed at construction
  Options options_;
  // detlint: allow(snapshot-field): replica topology fixed at construction
  std::vector<net::NodeId> replicas_;
  // detlint: allow(snapshot-field): arbiter address fixed at construction
  net::NodeId arbiter_;
  // detlint: allow(snapshot-field): derived from replicas_ + arbiter_ at construction; never mutated
  std::vector<net::NodeId> members_;  // replicas + arbiter

  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  net::NodeId current_leader_ = net::kInvalidNode;
  uint64_t voted_term_ = 0;
  std::set<net::NodeId> votes_;
  bool election_scheduled_ = false;
  // When we last heard *as leader* from current_leader_ (announcement or
  // replication). Plain heartbeats do not count: a deposed or wedged node
  // still heartbeats, and mistaking that for a functioning leader is how
  // simplex partitions hang systems.
  sim::Time last_leader_contact_ = sim::kTimeZero;
  sim::Time primary_conflict_backoff_until_ = sim::kTimeZero;

  std::vector<LogEntry> log_;
  std::map<std::string, StoreValue> store_;
  std::map<uint64_t, PendingWrite> pending_writes_;   // by lsn
  std::map<uint64_t, PendingRead> pending_reads_;     // by guard id
  uint64_t next_guard_id_ = 1;
  std::map<uint64_t, PendingForward> forwards_;  // by forwarded request id
  uint64_t next_forward_id_ = 1;

  cluster::FailureDetector detector_;

  uint64_t elections_started_ = 0;
  uint64_t stepdowns_ = 0;
};

struct Server::State {
  Role role = Role::kFollower;
  uint64_t term = 0;
  net::NodeId current_leader = net::kInvalidNode;
  uint64_t voted_term = 0;
  std::set<net::NodeId> votes;
  bool election_scheduled = false;
  sim::Time last_leader_contact = sim::kTimeZero;
  sim::Time primary_conflict_backoff_until = sim::kTimeZero;
  std::vector<LogEntry> log;
  std::map<std::string, StoreValue> store;
  std::map<uint64_t, PendingWrite> pending_writes;
  std::map<uint64_t, PendingRead> pending_reads;
  uint64_t next_guard_id = 1;
  std::map<uint64_t, PendingForward> forwards;
  uint64_t next_forward_id = 1;
  std::map<net::NodeId, sim::Time> detector_last_heard;
  uint64_t elections_started = 0;
  uint64_t stepdowns = 0;
};

}  // namespace pbkv

#endif  // SYSTEMS_PBKV_SERVER_H_
