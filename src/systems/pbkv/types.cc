#include "systems/pbkv/types.h"

namespace pbkv {

Options CorrectOptions() {
  return Options{};
}

Options VoltDbOptions() {
  Options options;
  options.criterion = ElectionCriterion::kLongestLog;
  options.quorum_reads = false;  // old primary answers reads from its local copy
  return options;
}

Options ElasticsearchOptions() {
  Options options;
  options.criterion = ElectionCriterion::kLowestId;
  options.refuse_vote_if_leader_alive = false;  // #2488: vote while leader is alive
  options.conflict_winner = ConflictWinner::kByCriterion;  // smaller id wins after heal
  options.write_concern = WriteConcern::kMajorityOfReachable;
  options.quorum_reads = false;
  return options;
}

Options MongoArbiterOptions() {
  Options options;
  options.criterion = ElectionCriterion::kLatestTimestamp;
  options.num_replicas = 2;
  options.has_arbiter = true;
  options.arbiter_checks_leader = false;  // votes for any contestant -> thrash
  options.quorum_reads = false;
  // MongoDB's historical default write concern (w:1): the primary alone
  // acknowledges. With only two data replicas and an arbiter, a majority
  // write concern could never be satisfied across this partition anyway.
  options.write_concern = WriteConcern::kAsync;
  return options;
}

Options MongoConflictingCriteriaOptions() {
  Options options;
  options.criterion = ElectionCriterion::kPriorityThenTimestamp;
  options.quorum_reads = false;
  return options;
}

Options AsyncReplicationOptions() {
  Options options;
  options.write_concern = WriteConcern::kAsync;
  options.quorum_reads = false;
  return options;
}

Options CoordinatorRoutingOptions() {
  Options options;
  options.forward_writes = true;
  options.quorum_reads = false;
  return options;
}

const char* CriterionName(ElectionCriterion criterion) {
  switch (criterion) {
    case ElectionCriterion::kLongestLog:
      return "longest-log";
    case ElectionCriterion::kLatestTimestamp:
      return "latest-timestamp";
    case ElectionCriterion::kLowestId:
      return "lowest-id";
    case ElectionCriterion::kPriorityThenTimestamp:
      return "priority-then-timestamp";
  }
  return "?";
}

}  // namespace pbkv
