// Shared types and configuration for the primary-backup key-value system.
//
// pbkv models the replication/leader-election archetype shared by MongoDB,
// VoltDB, and Elasticsearch in the study. Every design decision the paper
// identifies as a flaw is a configuration knob, so the same code base can
// run as the flawed system (reproducing the failure) or the corrected one
// (showing the failure disappears):
//
//  - election criterion: longest log (VoltDB), latest operation timestamp
//    (MongoDB), lowest node id (Elasticsearch), priority+timestamp
//    (MongoDB's conflicting criteria, SERVER-14885)
//  - voting while still connected to a live leader (Elasticsearch #2488)
//  - write concern: majority of cluster, majority of reachable, or async
//  - reads served locally by a possibly-deposed primary vs. quorum reads
//    (the VoltDB dirty read of Figure 2, ENG-10389)
//  - conflict resolution when two primaries meet after heal: higher term
//    (correct) vs. lowest id / longest log / latest timestamp (data loss)
//  - data consolidation: adopt winner's log vs. per-key last-writer-wins
//  - arbiter behaviour: votes unconditionally (leader thrash, MongoDB
//    arbiter failure) vs. refuses when it sees a healthy leader
//    (SERVER-27125 fix)

#ifndef SYSTEMS_PBKV_TYPES_H_
#define SYSTEMS_PBKV_TYPES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/time.h"

namespace pbkv {

enum class OpKind { kPut, kDelete };

struct LogEntry {
  uint64_t lsn = 0;
  uint64_t term = 0;
  OpKind kind = OpKind::kPut;
  std::string key;
  std::string value;
  sim::Time timestamp = sim::kTimeZero;  // "operation time" used by ts-based criteria
  // Set once the write reached its replication quorum. The dirty state of
  // Figure 2 is exactly an applied-but-never-committed entry; quorum reads
  // serve only committed data, local reads serve everything.
  bool committed = false;
};

// Which candidate a voter prefers / which of two meeting primaries survives.
enum class ElectionCriterion {
  kLongestLog,          // VoltDB: the node with the longest log wins
  kLatestTimestamp,     // MongoDB: the node with the latest operation timestamp wins
  kLowestId,            // Elasticsearch: the replica with the smaller id wins
  kPriorityThenTimestamp,  // MongoDB's conflicting criteria (can elect nobody)
};

enum class WriteConcern {
  kMajorityOfCluster,    // ack after a majority of the configured cluster replicated
  kMajorityOfReachable,  // ack after a majority of currently-reachable replicas (flawed)
  kAsync,                // ack immediately, replicate in the background (Redis-style)
};

enum class ConsolidationPolicy {
  kAdoptWinner,   // loser discards its log and adopts the winner's
  kMergeLww,      // per-key latest-timestamp-wins merge (resurrects deletes)
};

enum class ConflictWinner {
  kHigherTerm,  // correct: the later election wins
  kByCriterion,  // flawed: re-apply the election criterion (e.g. lowest id)
};

struct Options {
  // --- correctness-relevant knobs (defaults are the *correct* choices) ---
  ElectionCriterion criterion = ElectionCriterion::kLongestLog;
  WriteConcern write_concern = WriteConcern::kMajorityOfCluster;
  ConsolidationPolicy consolidation = ConsolidationPolicy::kAdoptWinner;
  ConflictWinner conflict_winner = ConflictWinner::kHigherTerm;
  // Voters refuse to vote while their failure detector still sees a live
  // leader. Disabling this is the Elasticsearch #2488 intersecting-splits flaw.
  bool refuse_vote_if_leader_alive = true;
  // A primary verifies its leadership with a quorum round before answering
  // reads. Disabling this opens the dirty/stale read window of Figure 2.
  bool quorum_reads = true;
  // The arbiter refuses to vote when it can see a healthy primary
  // (the SERVER-27125 fix). Disabling causes leader thrash.
  bool arbiter_checks_leader = true;
  // Followers act as coordinators: they forward client writes to the
  // primary and relay the reply (the Elasticsearch request-routing path).
  // When the primary's reply is lost — e.g. a simplex partition — the
  // coordinator reports failure for a write that committed (#9967).
  bool forward_writes = false;

  // --- topology ---
  int num_replicas = 3;
  bool has_arbiter = false;
  std::map<net::NodeId, int> priorities;  // used by kPriorityThenTimestamp

  // --- timing ---
  sim::Duration heartbeat_interval = sim::Milliseconds(50);
  int election_miss_threshold = 3;   // follower declares leader dead after this
  int stepdown_miss_threshold = 6;   // primary steps down after this (the window)
  sim::Duration replication_timeout = sim::Milliseconds(120);
  sim::Duration read_guard_timeout = sim::Milliseconds(120);

  // --- observability ---
  // Collect the trace in causal mode (sim::TraceLog::set_causal): the
  // network records send/deliver edges and the cascade checker
  // (check/causal.h) runs over the stitched happens-before graph. Off by
  // default so non-causal traces and coverage digests stay byte-identical.
  bool causal_trace = false;
};

// The corrected configuration: all safety knobs on.
Options CorrectOptions();

// VoltDB-like configuration reproducing the Figure 2 dirty read
// (ENG-10389): local reads, longest-log election.
Options VoltDbOptions();

// Elasticsearch-like configuration reproducing intersecting-split data loss
// (#2488): lowest-id election, voting despite a live leader, lowest-id
// conflict resolution.
Options ElasticsearchOptions();

// MongoDB-like configuration with an arbiter that votes unconditionally,
// reproducing leader thrash under a partial partition.
Options MongoArbiterOptions();

// MongoDB-like configuration with conflicting priority/timestamp criteria
// (SERVER-14885): the cluster can end up with no electable leader.
Options MongoConflictingCriteriaOptions();

// Redis-like asynchronous replication: acknowledged writes lost on failover.
Options AsyncReplicationOptions();

// Elasticsearch-like request routing (#9967): followers coordinate writes
// by forwarding to the primary; a lost acknowledgement turns a committed
// write into a reported failure.
Options CoordinatorRoutingOptions();

const char* CriterionName(ElectionCriterion criterion);

}  // namespace pbkv

#endif  // SYSTEMS_PBKV_TYPES_H_
