#include "systems/pbkv/server.h"

#include <algorithm>
#include <cassert>

namespace pbkv {
namespace {

size_t MajorityOf(size_t n) { return n / 2 + 1; }

}  // namespace

Server::Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               const Options& options, std::vector<net::NodeId> replicas, net::NodeId arbiter)
    : cluster::Process(simulator, network, id, "pbkv.n" + std::to_string(id)),
      options_(options),
      replicas_(std::move(replicas)),
      arbiter_(arbiter),
      detector_(id, {}, {options.heartbeat_interval, options.election_miss_threshold}) {
  std::sort(replicas_.begin(), replicas_.end());
  members_ = replicas_;
  if (arbiter_ != net::kInvalidNode) {
    members_.push_back(arbiter_);
  }
  detector_ = cluster::FailureDetector(
      id, members_, {options.heartbeat_interval, options.election_miss_threshold});
}

void Server::OnStart() {
  term_ = 1;
  current_leader_ = replicas_.front();
  if (id() == arbiter_) {
    role_ = Role::kArbiter;
  } else if (id() == current_leader_) {
    role_ = Role::kPrimary;
  } else {
    role_ = Role::kFollower;
  }
  detector_.Reset(Now());
  last_leader_contact_ = Now();
  Every(options_.heartbeat_interval, [this]() { Tick(); });
}

bool Server::LeaderFunctioning() const {
  if (role_ == Role::kPrimary) {
    return true;
  }
  if (current_leader_ == net::kInvalidNode) {
    return false;
  }
  const sim::Duration election_timeout =
      options_.heartbeat_interval * options_.election_miss_threshold;
  return Now() - last_leader_contact_ <= election_timeout;
}

sim::Time Server::LastTimestamp() const {
  return log_.empty() ? sim::kTimeZero : log_.back().timestamp;
}

int Server::Priority() const {
  auto it = options_.priorities.find(id());
  return it == options_.priorities.end() ? 0 : it->second;
}

size_t Server::VotingMajority() const { return MajorityOf(members_.size()); }

size_t Server::DataMajority() const { return MajorityOf(replicas_.size()); }

void Server::Tick() {
  for (net::NodeId peer : members_) {
    if (peer != id()) {
      Send<cluster::HeartbeatMsg>(peer, incarnation());
    }
  }
  if (role_ == Role::kPrimary) {
    AnnounceLeadership();
    // Step down when a majority of the membership has been unreachable for
    // the (long) step-down window.
    const sim::Duration stepdown_timeout =
        options_.heartbeat_interval * options_.stepdown_miss_threshold;
    size_t alive = 1;  // self
    for (net::NodeId peer : members_) {
      if (peer != id() && detector_.IsAliveWithin(peer, Now(), stepdown_timeout)) {
        ++alive;
      }
    }
    if (alive < VotingMajority()) {
      StepDown("lost majority of membership", net::kInvalidNode, term_);
    }
  } else if (role_ != Role::kArbiter) {
    MaybeStartElection();
  }
}

void Server::MaybeStartElection() {
  if (election_scheduled_ || role_ == Role::kPrimary || role_ == Role::kArbiter) {
    return;
  }
  if (LeaderFunctioning()) {
    return;
  }
  election_scheduled_ = true;
  // Randomized backoff so simultaneous candidacies eventually separate.
  const sim::Duration backoff = static_cast<sim::Duration>(simulator()->Rand().NextBelow(
      static_cast<uint64_t>(2 * options_.heartbeat_interval) + 1));
  After(backoff, [this]() {
    election_scheduled_ = false;
    if (role_ != Role::kPrimary && role_ != Role::kArbiter && !LeaderFunctioning()) {
      StartElection();
    }
  });
}

void Server::StartElection() {
  ++elections_started_;
  role_ = Role::kCandidate;
  term_ = std::max(term_, voted_term_) + 1;
  voted_term_ = term_;
  votes_.clear();
  votes_.insert(id());
  TraceEvent("election-start", "term=" + std::to_string(term_));
  if (votes_.size() >= VotingMajority()) {
    BecomeLeader();
    return;
  }
  for (net::NodeId peer : members_) {
    if (peer == id()) {
      continue;
    }
    auto msg = std::make_shared<RequestVote>();
    msg->term = term_;
    msg->candidate = id();
    msg->log_length = log_.size();
    msg->last_timestamp = LastTimestamp();
    msg->priority = Priority();
    SendEnvelope(peer, msg);
  }
  // Give up and retry later if the election does not conclude.
  const uint64_t this_term = term_;
  After(2 * options_.heartbeat_interval * options_.election_miss_threshold, [this, this_term]() {
    if (role_ == Role::kCandidate && term_ == this_term) {
      role_ = Role::kFollower;
      TraceEvent("election-timeout", "term=" + std::to_string(this_term));
    }
  });
}

void Server::BecomeLeader() {
  role_ = Role::kPrimary;
  current_leader_ = id();
  TraceEvent("elected", "term=" + std::to_string(term_));
  AnnounceLeadership();
}

void Server::AnnounceLeadership() {
  for (net::NodeId peer : members_) {
    if (peer == id()) {
      continue;
    }
    auto msg = std::make_shared<LeaderAnnounce>();
    msg->term = term_;
    msg->leader = id();
    msg->log_length = log_.size();
    msg->last_timestamp = LastTimestamp();
    SendEnvelope(peer, msg);
  }
}

void Server::StepDown(const std::string& reason, net::NodeId new_leader, uint64_t new_term) {
  if (role_ == Role::kPrimary) {
    ++stepdowns_;
  }
  TraceEvent("step-down", reason);
  role_ = Role::kFollower;
  term_ = std::max(term_, new_term);
  current_leader_ = new_leader;
  if (new_leader != net::kInvalidNode) {
    detector_.RecordHeartbeat(new_leader, Now());
    last_leader_contact_ = Now();
  }
  FailPendingOps(reason);
}

void Server::FailPendingOps(const std::string& reason) {
  (void)reason;
  for (auto& [lsn, pending] : pending_writes_) {
    simulator()->Cancel(pending.timer);
    ReplyToClient(pending.client, pending.request_id, /*ok=*/false);
  }
  pending_writes_.clear();
  for (auto& [guard, pending] : pending_reads_) {
    simulator()->Cancel(pending.timer);
    ReplyToClient(pending.client, pending.request_id, /*ok=*/false);
  }
  pending_reads_.clear();
}

void Server::ReplyToClient(net::NodeId client, uint64_t request_id, bool ok,
                           const std::string& value, bool not_leader) {
  auto reply = std::make_shared<ClientReply>();
  reply->request_id = request_id;
  reply->ok = ok;
  reply->not_leader = not_leader;
  reply->leader_hint = current_leader_;
  reply->value = value;
  SendEnvelope(client, reply);
}

void Server::ApplyEntry(const LogEntry& entry) {
  StoreValue& slot = store_[entry.key];
  slot.timestamp = entry.timestamp;
  if (entry.kind == OpKind::kPut) {
    slot.value = entry.value;
    slot.present = true;
  } else {
    slot.value.clear();
    slot.present = false;
  }
  if (entry.committed) {
    ApplyCommittedView(entry);
  }
}

void Server::ApplyCommittedView(const LogEntry& entry) {
  StoreValue& slot = store_[entry.key];
  if (entry.kind == OpKind::kPut) {
    slot.committed_value = entry.value;
    slot.committed_present = true;
  } else {
    slot.committed_value.clear();
    slot.committed_present = false;
  }
}

void Server::CommitEntry(uint64_t lsn) {
  for (LogEntry& entry : log_) {
    if (entry.lsn == lsn && !entry.committed) {
      entry.committed = true;
      ApplyCommittedView(entry);
    }
  }
}

void Server::RebuildStore() {
  store_.clear();
  for (const LogEntry& entry : log_) {
    ApplyEntry(entry);
  }
}

std::optional<std::string> Server::StoreGet(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end() || !it->second.present) {
    return std::nullopt;
  }
  return it->second.value;
}

std::optional<std::string> Server::StoreGetCommitted(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end() || !it->second.committed_present) {
    return std::nullopt;
  }
  return it->second.committed_value;
}

void Server::OnMessage(const net::Envelope& envelope) {
  // Any traffic from a member doubles as liveness evidence.
  if (std::find(members_.begin(), members_.end(), envelope.src) != members_.end()) {
    detector_.RecordHeartbeat(envelope.src, Now());
  }
  const net::Message& msg = *envelope.msg;
  if (auto* request = dynamic_cast<const ClientRequest*>(&msg)) {
    HandleClientRequest(envelope, *request);
  } else if (auto* client_reply = dynamic_cast<const ClientReply*>(&msg)) {
    HandleForwardedReply(*client_reply);
  } else if (auto* replicate = dynamic_cast<const Replicate*>(&msg)) {
    HandleReplicate(envelope, *replicate);
  } else if (auto* ack = dynamic_cast<const ReplicateAck*>(&msg)) {
    HandleReplicateAck(envelope, *ack);
  } else if (auto* vote_req = dynamic_cast<const RequestVote*>(&msg)) {
    HandleRequestVote(envelope, *vote_req);
  } else if (auto* vote = dynamic_cast<const VoteGranted*>(&msg)) {
    HandleVoteGranted(envelope, *vote);
  } else if (auto* announce = dynamic_cast<const LeaderAnnounce*>(&msg)) {
    HandleLeaderAnnounce(envelope, *announce);
  } else if (auto* stepdown = dynamic_cast<const StepDownCommand*>(&msg)) {
    HandleStepDownCommand(*stepdown);
  } else if (dynamic_cast<const SyncRequest*>(&msg) != nullptr) {
    HandleSyncRequest(envelope);
  } else if (auto* snapshot = dynamic_cast<const SyncSnapshot*>(&msg)) {
    HandleSyncSnapshot(*snapshot);
  } else if (auto* guard = dynamic_cast<const ReadGuard*>(&msg)) {
    HandleReadGuard(envelope, *guard);
  } else if (auto* guard_ack = dynamic_cast<const ReadGuardAck*>(&msg)) {
    HandleReadGuardAck(envelope, *guard_ack);
  }
  // HeartbeatMsg needs no handling beyond the liveness recording above.
}

void Server::ForwardToPrimary(const net::Envelope& envelope, const ClientRequest& request) {
  const uint64_t forward_id = next_forward_id_++;
  PendingForward forward;
  forward.client = envelope.src;
  forward.request_id = request.request_id;
  forward.timer = After(2 * options_.replication_timeout, [this, forward_id]() {
    auto it = forwards_.find(forward_id);
    if (it != forwards_.end()) {
      // No reply from the primary. The write may well have committed — but
      // the client is told it failed (#9967's wrong status code).
      TraceEvent("forward-timeout", "id=" + std::to_string(forward_id));
      ReplyToClient(it->second.client, it->second.request_id, /*ok=*/false);
      forwards_.erase(it);
    }
  });
  forwards_.emplace(forward_id, forward);
  auto forwarded = std::make_shared<ClientRequest>();
  forwarded->request_id = forward_id;
  forwarded->kind = request.kind;
  forwarded->is_read = request.is_read;
  forwarded->key = request.key;
  forwarded->value = request.value;
  SendEnvelope(current_leader_, forwarded);
}

void Server::HandleForwardedReply(const ClientReply& reply) {
  auto it = forwards_.find(reply.request_id);
  if (it == forwards_.end()) {
    return;
  }
  simulator()->Cancel(it->second.timer);
  ReplyToClient(it->second.client, it->second.request_id, reply.ok, reply.value);
  forwards_.erase(it);
}

void Server::HandleClientRequest(const net::Envelope& envelope, const ClientRequest& request) {
  if (role_ != Role::kPrimary) {
    if (options_.forward_writes && !request.is_read && role_ == Role::kFollower &&
        current_leader_ != net::kInvalidNode && current_leader_ != id()) {
      ForwardToPrimary(envelope, request);
      return;
    }
    ReplyToClient(envelope.src, request.request_id, /*ok=*/false, "", /*not_leader=*/true);
    return;
  }
  if (request.is_read) {
    if (!options_.quorum_reads) {
      // Local read: serves the raw store, dirty state included (Figure 2).
      auto value = StoreGet(request.key);
      ReplyToClient(envelope.src, request.request_id, /*ok=*/true, value.value_or(""));
      return;
    }
    if (DataMajority() <= 1) {
      auto value = StoreGetCommitted(request.key);
      ReplyToClient(envelope.src, request.request_id, /*ok=*/true, value.value_or(""));
      return;
    }
    const uint64_t guard_id = next_guard_id_++;
    PendingRead pending;
    pending.client = envelope.src;
    pending.request_id = request.request_id;
    pending.key = request.key;
    pending.acks.insert(id());
    pending.needed = DataMajority();
    pending.timer = After(options_.read_guard_timeout, [this, guard_id]() {
      auto it = pending_reads_.find(guard_id);
      if (it != pending_reads_.end()) {
        ReplyToClient(it->second.client, it->second.request_id, /*ok=*/false);
        pending_reads_.erase(it);
      }
    });
    pending_reads_.emplace(guard_id, std::move(pending));
    for (net::NodeId peer : replicas_) {
      if (peer == id()) {
        continue;
      }
      auto msg = std::make_shared<ReadGuard>();
      msg->term = term_;
      msg->guard_id = guard_id;
      SendEnvelope(peer, msg);
    }
    return;
  }

  // Write path: append locally (eagerly applied — the dirty state the study
  // documents), then replicate.
  LogEntry entry;
  entry.lsn = log_.empty() ? 1 : log_.back().lsn + 1;
  entry.term = term_;
  entry.kind = request.kind;
  entry.key = request.key;
  entry.value = request.value;
  entry.timestamp = Now();
  log_.push_back(entry);
  ApplyEntry(entry);

  size_t needed = 0;
  switch (options_.write_concern) {
    case WriteConcern::kMajorityOfCluster:
      needed = DataMajority();
      break;
    case WriteConcern::kMajorityOfReachable: {
      size_t reachable = 1;
      for (net::NodeId peer : replicas_) {
        if (peer != id() && detector_.IsAlive(peer, Now())) {
          ++reachable;
        }
      }
      needed = MajorityOf(reachable);
      break;
    }
    case WriteConcern::kAsync:
      needed = 1;
      break;
  }

  for (net::NodeId peer : replicas_) {
    if (peer == id()) {
      continue;
    }
    auto msg = std::make_shared<Replicate>();
    msg->term = term_;
    msg->leader = id();
    msg->entry = entry;
    SendEnvelope(peer, msg);
  }

  if (needed <= 1) {
    CommitEntry(entry.lsn);
    ReplyToClient(envelope.src, request.request_id, /*ok=*/true);
    return;
  }
  PendingWrite pending;
  pending.client = envelope.src;
  pending.request_id = request.request_id;
  pending.acks.insert(id());
  pending.needed = needed;
  const uint64_t lsn = entry.lsn;
  pending.timer = After(options_.replication_timeout, [this, lsn]() {
    auto it = pending_writes_.find(lsn);
    if (it != pending_writes_.end()) {
      // Replication quorum not reached: fail the write. The entry stays in
      // the local log/store — the source of dirty reads (Figure 2).
      TraceEvent("write-failed", "lsn=" + std::to_string(lsn));
      ReplyToClient(it->second.client, it->second.request_id, /*ok=*/false);
      pending_writes_.erase(it);
    }
  });
  pending_writes_.emplace(lsn, std::move(pending));
}

void Server::HandleReplicate(const net::Envelope& envelope, const Replicate& msg) {
  if (role_ == Role::kArbiter) {
    return;
  }
  const bool confused_follower = !options_.refuse_vote_if_leader_alive;
  if (msg.term < term_ && !confused_follower) {
    return;  // stale leader; let it time out
  }
  if (msg.term > term_ || (msg.term == term_ && role_ != Role::kPrimary)) {
    if (role_ == Role::kPrimary && msg.term > term_) {
      StepDown("higher-term replication", msg.leader, msg.term);
    }
    term_ = std::max(term_, msg.term);
    current_leader_ = msg.leader;
    last_leader_contact_ = Now();
    if (role_ != Role::kArbiter) {
      role_ = role_ == Role::kPrimary ? role_ : Role::kFollower;
    }
  }
  // Deduplicate by (term, lsn); otherwise append and apply.
  bool known = false;
  for (const LogEntry& existing : log_) {
    if (existing.term == msg.entry.term && existing.lsn == msg.entry.lsn) {
      known = true;
      break;
    }
  }
  if (!known) {
    log_.push_back(msg.entry);
    ApplyEntry(msg.entry);
  }
  auto ack = std::make_shared<ReplicateAck>();
  ack->term = msg.term;
  ack->lsn = msg.entry.lsn;
  SendEnvelope(envelope.src, ack);
}

void Server::HandleReplicateAck(const net::Envelope& envelope, const ReplicateAck& msg) {
  if (role_ != Role::kPrimary || msg.term != term_) {
    return;
  }
  auto it = pending_writes_.find(msg.lsn);
  if (it == pending_writes_.end()) {
    return;
  }
  it->second.acks.insert(envelope.src);
  if (it->second.acks.size() >= it->second.needed) {
    simulator()->Cancel(it->second.timer);
    CommitEntry(msg.lsn);
    ReplyToClient(it->second.client, it->second.request_id, /*ok=*/true);
    pending_writes_.erase(it);
  }
}

bool Server::CriterionAccepts(const RequestVote& msg) const {
  if (role_ == Role::kArbiter) {
    return true;  // arbiters hold no data; any contestant satisfies the criterion
  }
  switch (options_.criterion) {
    case ElectionCriterion::kLongestLog:
      return msg.log_length >= log_.size();
    case ElectionCriterion::kLatestTimestamp:
      return msg.last_timestamp >= LastTimestamp();
    case ElectionCriterion::kLowestId:
      return msg.candidate < id();
    case ElectionCriterion::kPriorityThenTimestamp:
      // The two rejections whose conjunction can leave the cluster
      // leaderless (SERVER-14885).
      if (Priority() > msg.priority) {
        return false;
      }
      if (LastTimestamp() > msg.last_timestamp) {
        return false;
      }
      return true;
  }
  return false;
}

void Server::HandleRequestVote(const net::Envelope& envelope, const RequestVote& msg) {
  bool granted = true;
  if (msg.term <= voted_term_ || msg.term <= term_) {
    granted = false;  // already voted in this term, or the term is stale
  }
  if (granted && role_ == Role::kPrimary) {
    granted = false;  // we are the leader; the candidate should follow us
  }
  if (granted && role_ == Role::kArbiter) {
    if (options_.arbiter_checks_leader && current_leader_ != msg.candidate &&
        LeaderFunctioning()) {
      granted = false;  // SERVER-27125 fix: a healthy primary is visible
    }
  } else if (granted && options_.refuse_vote_if_leader_alive &&
             current_leader_ != msg.candidate && LeaderFunctioning()) {
    granted = false;  // the Elasticsearch #2488 fix
  }
  if (granted && !CriterionAccepts(msg)) {
    granted = false;
  }
  if (granted) {
    voted_term_ = msg.term;
    TraceEvent("vote", "for=" + std::to_string(msg.candidate) +
                           " term=" + std::to_string(msg.term));
  }
  auto reply = std::make_shared<VoteGranted>();
  reply->term = msg.term;
  reply->granted = granted;
  reply->voter_term = term_;
  if (!granted) {
    if (role_ == Role::kPrimary) {
      reply->leader_hint = id();
    } else if (LeaderFunctioning()) {
      reply->leader_hint = current_leader_;
    }
  }
  SendEnvelope(envelope.src, reply);
}

void Server::HandleVoteGranted(const net::Envelope& envelope, const VoteGranted& msg) {
  if (role_ == Role::kCandidate && !msg.granted && msg.voter_term > term_) {
    // Our candidacies inflated our term past the cluster's reality while we
    // were partitioned away; adopt the voter's term so the current leader's
    // announcements are no longer "stale" to us.
    term_ = msg.voter_term;
    voted_term_ = std::max(voted_term_, msg.voter_term);
    role_ = Role::kFollower;
    return;
  }
  if (role_ == Role::kCandidate && !msg.granted && msg.leader_hint != net::kInvalidNode &&
      msg.leader_hint != id()) {
    // The voter sees a healthy leader we lost track of (our term may have
    // run ahead during the partition): fall in line and resynchronize.
    role_ = Role::kFollower;
    current_leader_ = msg.leader_hint;
    detector_.RecordHeartbeat(msg.leader_hint, Now());
    last_leader_contact_ = Now();
    auto sync = std::make_shared<SyncRequest>();
    sync->term = term_;
    SendEnvelope(msg.leader_hint, sync);
    return;
  }
  if (role_ != Role::kCandidate || msg.term != term_ || !msg.granted) {
    return;
  }
  votes_.insert(envelope.src);
  if (votes_.size() >= VotingMajority()) {
    BecomeLeader();
  }
}

bool Server::WinsConflict(uint64_t other_term, net::NodeId other_leader,
                          uint64_t other_log_length, sim::Time other_last_timestamp) const {
  if (options_.conflict_winner == ConflictWinner::kHigherTerm) {
    if (term_ != other_term) {
      return term_ > other_term;
    }
    return id() < other_leader;
  }
  switch (options_.criterion) {
    case ElectionCriterion::kLowestId:
      return id() < other_leader;
    case ElectionCriterion::kLongestLog:
      if (log_.size() != other_log_length) {
        return log_.size() > other_log_length;
      }
      return id() < other_leader;
    case ElectionCriterion::kLatestTimestamp:
    case ElectionCriterion::kPriorityThenTimestamp:
      if (LastTimestamp() != other_last_timestamp) {
        return LastTimestamp() > other_last_timestamp;
      }
      return id() < other_leader;
  }
  return id() < other_leader;
}

void Server::HandleLeaderAnnounce(const net::Envelope& envelope, const LeaderAnnounce& msg) {
  if (msg.leader == id()) {
    return;
  }
  if (role_ == Role::kPrimary) {
    if (WinsConflict(msg.term, msg.leader, msg.log_length, msg.last_timestamp)) {
      // Push back: re-announce so the other primary resolves and steps down.
      // Rate limiting is unnecessary: announcements already flow each tick.
      if (Now() >= primary_conflict_backoff_until_) {
        primary_conflict_backoff_until_ = Now() + options_.heartbeat_interval;
        auto push = std::make_shared<LeaderAnnounce>();
        push->term = term_;
        push->leader = id();
        push->log_length = log_.size();
        push->last_timestamp = LastTimestamp();
        SendEnvelope(envelope.src, push);
      }
      return;
    }
    StepDown("lost primary conflict", msg.leader, msg.term);
    auto sync = std::make_shared<SyncRequest>();
    sync->term = msg.term;
    SendEnvelope(msg.leader, sync);
    return;
  }
  if (msg.term < term_) {
    return;  // stale announcement
  }
  const net::NodeId old_leader = current_leader_;
  term_ = std::max(term_, msg.term);
  current_leader_ = msg.leader;
  if (role_ == Role::kCandidate) {
    role_ = Role::kFollower;
  }
  detector_.RecordHeartbeat(msg.leader, Now());
  last_leader_contact_ = Now();
  // An arbiter that accepts a new leader tells the deposed one to step down
  // (the MongoDB arbiter notification that drives the thrash failure).
  if (role_ == Role::kArbiter && old_leader != net::kInvalidNode && old_leader != msg.leader) {
    auto cmd = std::make_shared<StepDownCommand>();
    cmd->term = msg.term;
    cmd->leader = msg.leader;
    SendEnvelope(old_leader, cmd);
  }
}

void Server::HandleStepDownCommand(const StepDownCommand& msg) {
  if (role_ == Role::kPrimary && msg.term >= term_ && msg.leader != id()) {
    StepDown("arbiter step-down command", msg.leader, msg.term);
  }
}

void Server::HandleSyncRequest(const net::Envelope& envelope) {
  if (role_ != Role::kPrimary) {
    return;
  }
  auto snapshot = std::make_shared<SyncSnapshot>();
  snapshot->term = term_;
  snapshot->leader = id();
  snapshot->log = log_;
  SendEnvelope(envelope.src, snapshot);
}

void Server::HandleSyncSnapshot(const SyncSnapshot& msg) {
  if (role_ == Role::kArbiter) {
    return;
  }
  switch (options_.consolidation) {
    case ConsolidationPolicy::kAdoptWinner:
      log_ = msg.log;
      RebuildStore();
      break;
    case ConsolidationPolicy::kMergeLww: {
      // Union of both logs, replayed in timestamp order: per-key latest
      // writer wins — the policy that resurrects deleted data and loses
      // overwrites, as the study documents for Redis/Hazelcast/Aerospike.
      std::vector<LogEntry> merged = msg.log;
      for (const LogEntry& mine : log_) {
        bool dup = false;
        for (const LogEntry& theirs : msg.log) {
          if (theirs.term == mine.term && theirs.lsn == mine.lsn &&
              theirs.key == mine.key) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          merged.push_back(mine);
        }
      }
      std::stable_sort(merged.begin(), merged.end(), [](const LogEntry& a, const LogEntry& b) {
        return a.timestamp < b.timestamp;
      });
      log_ = std::move(merged);
      RebuildStore();
      break;
    }
  }
  term_ = std::max(term_, msg.term);
  current_leader_ = msg.leader;
  last_leader_contact_ = Now();
  role_ = Role::kFollower;
  TraceEvent("synced", "from=" + std::to_string(msg.leader));
}

void Server::HandleReadGuard(const net::Envelope& envelope, const ReadGuard& msg) {
  if (role_ == Role::kArbiter) {
    return;
  }
  auto ack = std::make_shared<ReadGuardAck>();
  ack->term = msg.term;
  ack->guard_id = msg.guard_id;
  ack->confirms = current_leader_ == envelope.src && term_ == msg.term;
  SendEnvelope(envelope.src, ack);
}

void Server::HandleReadGuardAck(const net::Envelope& envelope, const ReadGuardAck& msg) {
  auto it = pending_reads_.find(msg.guard_id);
  if (it == pending_reads_.end() || !msg.confirms || msg.term != term_) {
    return;
  }
  it->second.acks.insert(envelope.src);
  if (it->second.acks.size() >= it->second.needed) {
    auto value = StoreGetCommitted(it->second.key);
    simulator()->Cancel(it->second.timer);
    ReplyToClient(it->second.client, it->second.request_id, /*ok=*/true, value.value_or(""));
    pending_reads_.erase(it);
  }
}

Server::State Server::CaptureState() const {
  State state;
  state.role = role_;
  state.term = term_;
  state.current_leader = current_leader_;
  state.voted_term = voted_term_;
  state.votes = votes_;
  state.election_scheduled = election_scheduled_;
  state.last_leader_contact = last_leader_contact_;
  state.primary_conflict_backoff_until = primary_conflict_backoff_until_;
  state.log = log_;
  state.store = store_;
  state.pending_writes = pending_writes_;
  state.pending_reads = pending_reads_;
  state.next_guard_id = next_guard_id_;
  state.forwards = forwards_;
  state.next_forward_id = next_forward_id_;
  state.detector_last_heard = detector_.last_heard();
  state.elections_started = elections_started_;
  state.stepdowns = stepdowns_;
  return state;
}

void Server::RestoreState(const State& state) {
  role_ = state.role;
  term_ = state.term;
  current_leader_ = state.current_leader;
  voted_term_ = state.voted_term;
  votes_ = state.votes;
  election_scheduled_ = state.election_scheduled;
  last_leader_contact_ = state.last_leader_contact;
  primary_conflict_backoff_until_ = state.primary_conflict_backoff_until;
  log_ = state.log;
  store_ = state.store;
  pending_writes_ = state.pending_writes;
  pending_reads_ = state.pending_reads;
  next_guard_id_ = state.next_guard_id;
  forwards_ = state.forwards;
  next_forward_id_ = state.next_forward_id;
  detector_.set_last_heard(state.detector_last_heard);
  elections_started_ = state.elections_started;
  stepdowns_ = state.stepdowns;
}

}  // namespace pbkv
