// A fully wired pbkv deployment: simulator, network, partitioner, servers,
// optional arbiter, and clients. This is the harness that tests, benches,
// and the NEAT adapter build on.

#ifndef SYSTEMS_PBKV_CLUSTER_H_
#define SYSTEMS_PBKV_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/env.h"
#include "net/partition.h"
#include "systems/pbkv/client.h"
#include "systems/pbkv/server.h"

namespace pbkv {

class Cluster {
 public:
  struct Config {
    Options options;
    int num_clients = 2;
    uint64_t seed = 1;
    // False selects the iptables-style FirewallPartitioner backend.
    bool use_switch_backend = true;
  };

  explicit Cluster(const Config& config);

  sim::Simulator& simulator() { return env_.simulator(); }
  net::Network& network() { return env_.network(); }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  check::History& history() { return env_.history(); }
  neat::TestEnv& env() { return env_; }

  const std::vector<net::NodeId>& server_ids() const { return server_ids_; }
  net::NodeId arbiter_id() const { return arbiter_id_; }
  Server& server(net::NodeId id);
  Client& client(int index) { return *clients_.at(static_cast<size_t>(index)); }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  // Runs the simulation for a span of virtual time.
  void Settle(sim::Duration duration) { env_.Sleep(duration); }

  // Runs one client operation to completion (ok/fail/timeout) and returns
  // the recorded operation.
  check::Operation Put(int client, const std::string& key, const std::string& value);
  check::Operation Get(int client, const std::string& key, bool final_read = false);
  check::Operation Delete(int client, const std::string& key);

  // The current primary if exactly one server claims the role.
  net::NodeId FindPrimary() const;
  // Primaries currently claiming leadership (2+ means split brain).
  std::vector<net::NodeId> Primaries() const;
  // Total elections started across all servers (thrash metric).
  uint64_t TotalElections() const;

  // --- snapshot / restore (NEAT fork executor) ---
  // The whole deployment as a value: env (sim/net/rules/history/kernels)
  // plus every server's and client's protocol state. Restorable only onto
  // this same cluster instance, at a quiescent point.
  struct State {
    neat::TestEnv::State env;
    std::vector<Server::State> servers;
    std::vector<Client::State> clients;
  };
  State CaptureState() const;
  void RestoreState(const State& state);

 private:
  check::Operation RunToCompletion(Client& c);

  neat::TestEnv env_;
  // detlint: allow(snapshot-field): cluster topology fixed at construction
  std::vector<net::NodeId> server_ids_;
  // detlint: allow(snapshot-field): arbiter address fixed at construction
  net::NodeId arbiter_id_ = net::kInvalidNode;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace pbkv

#endif  // SYSTEMS_PBKV_CLUSTER_H_
