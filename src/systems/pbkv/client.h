// A pbkv client process.
//
// One operation is outstanding at a time (the NEAT test engine imposes a
// global order on client operations). Completed operations — including
// timeouts — are recorded in a check::History for the safety checkers.

#ifndef SYSTEMS_PBKV_CLIENT_H_
#define SYSTEMS_PBKV_CLIENT_H_

#include <string>
#include <vector>

#include "check/history.h"
#include "cluster/process.h"
#include "systems/pbkv/messages.h"

namespace pbkv {

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         std::vector<net::NodeId> servers, check::History* history);

  // The server this client talks to first; NEAT tests pin clients to one
  // side of a partition by setting the contact.
  void set_contact(net::NodeId contact) { contact_ = contact; }
  net::NodeId contact() const { return contact_; }

  // Whether a "not leader" reply is followed to the hinted leader.
  void set_allow_redirect(bool allow) { allow_redirect_ = allow; }
  void set_op_timeout(sim::Duration timeout) { op_timeout_ = timeout; }

  // Begins an operation; completion is observable through idle(). The test
  // engine runs the simulator until the client is idle again.
  void BeginPut(const std::string& key, const std::string& value);
  void BeginGet(const std::string& key, bool final_read = false);
  void BeginDelete(const std::string& key);

  bool idle() const { return !outstanding_; }
  // The most recently completed operation (valid once idle after a Begin*).
  const check::Operation& last_op() const { return last_op_; }
  int client_num() const { return client_num_; }

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    net::NodeId contact = net::kInvalidNode;
    bool allow_redirect = true;
    sim::Duration op_timeout = sim::Milliseconds(800);
    bool outstanding = false;
    OpKind request_kind = OpKind::kPut;
    bool request_is_read = false;
    uint64_t next_request_id = 1;
    uint64_t current_request_id = 0;
    int redirects_left = 0;
    check::Operation pending_op;
    check::Operation last_op;
    sim::EventId timeout_timer = sim::kInvalidEventId;
  };
  State CaptureState() const {
    return State{contact_,           allow_redirect_, op_timeout_,
                 outstanding_,       request_kind_,   request_is_read_,
                 next_request_id_,   current_request_id_, redirects_left_,
                 pending_op_,        last_op_,        timeout_timer_};
  }
  void RestoreState(const State& state) {
    contact_ = state.contact;
    allow_redirect_ = state.allow_redirect;
    op_timeout_ = state.op_timeout;
    outstanding_ = state.outstanding;
    request_kind_ = state.request_kind;
    request_is_read_ = state.request_is_read;
    next_request_id_ = state.next_request_id;
    current_request_id_ = state.current_request_id;
    redirects_left_ = state.redirects_left;
    pending_op_ = state.pending_op;
    last_op_ = state.last_op;
    timeout_timer_ = state.timeout_timer;
  }

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Begin(check::OpType type, OpKind kind, bool is_read, const std::string& key,
             const std::string& value, bool final_read);
  void SendRequest(net::NodeId target);
  void Complete(check::OpStatus status, const std::string& value);

  // detlint: allow(snapshot-field): client identity fixed at construction
  int client_num_;
  // detlint: allow(snapshot-field): server topology fixed at construction
  std::vector<net::NodeId> servers_;
  check::History* history_;
  net::NodeId contact_ = net::kInvalidNode;
  bool allow_redirect_ = true;
  sim::Duration op_timeout_ = sim::Milliseconds(800);

  bool outstanding_ = false;
  OpKind request_kind_ = OpKind::kPut;
  bool request_is_read_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  int redirects_left_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
};

}  // namespace pbkv

#endif  // SYSTEMS_PBKV_CLIENT_H_
