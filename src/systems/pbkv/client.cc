#include "systems/pbkv/client.h"

#include <cassert>
#include <utility>

namespace pbkv {

Client::Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
               std::vector<net::NodeId> servers, check::History* history)
    : cluster::Process(simulator, network, id, "pbkv.c" + std::to_string(client_num)),
      client_num_(client_num),
      servers_(std::move(servers)),
      history_(history) {
  assert(!servers_.empty());
  contact_ = servers_.front();
}

void Client::BeginPut(const std::string& key, const std::string& value) {
  Begin(check::OpType::kWrite, OpKind::kPut, /*is_read=*/false, key, value,
        /*final_read=*/false);
}

void Client::BeginGet(const std::string& key, bool final_read) {
  Begin(check::OpType::kRead, OpKind::kPut, /*is_read=*/true, key, "", final_read);
}

void Client::BeginDelete(const std::string& key) {
  Begin(check::OpType::kDelete, OpKind::kDelete, /*is_read=*/false, key, "",
        /*final_read=*/false);
}

void Client::Begin(check::OpType type, OpKind kind, bool is_read, const std::string& key,
                   const std::string& value, bool final_read) {
  assert(!outstanding_ && "one operation at a time");
  outstanding_ = true;
  current_request_id_ = next_request_id_++;
  redirects_left_ = 3;
  pending_op_ = check::Operation{};
  pending_op_.client = client_num_;
  pending_op_.type = type;
  pending_op_.key = key;
  pending_op_.value = value;
  pending_op_.invoked = Now();
  pending_op_.final_read = final_read;
  // Stash the wire fields in the request we resend on redirect.
  request_kind_ = kind;
  request_is_read_ = is_read;
  SendRequest(contact_);
  timeout_timer_ = After(op_timeout_, [this]() {
    if (outstanding_) {
      Complete(check::OpStatus::kTimeout, "");
    }
  });
}

void Client::SendRequest(net::NodeId target) {
  auto request = std::make_shared<ClientRequest>();
  request->request_id = current_request_id_;
  request->kind = request_kind_;
  request->is_read = request_is_read_;
  request->key = pending_op_.key;
  request->value = pending_op_.value;
  SendEnvelope(target, request);
}

void Client::Complete(check::OpStatus status, const std::string& value) {
  outstanding_ = false;
  simulator()->Cancel(timeout_timer_);
  pending_op_.completed = Now();
  pending_op_.status = status;
  if (pending_op_.type == check::OpType::kRead) {
    pending_op_.value = value;
  }
  last_op_ = pending_op_;
  if (history_ != nullptr) {
    const uint64_t op_id = history_->Record(pending_op_);
    last_op_.id = op_id;
  }
}

void Client::OnMessage(const net::Envelope& envelope) {
  const auto* reply = dynamic_cast<const ClientReply*>(envelope.msg.get());
  if (reply == nullptr || !outstanding_ || reply->request_id != current_request_id_) {
    return;
  }
  if (reply->not_leader) {
    if (allow_redirect_ && redirects_left_ > 0 && reply->leader_hint != net::kInvalidNode &&
        reply->leader_hint != envelope.src) {
      --redirects_left_;
      SendRequest(reply->leader_hint);
      return;
    }
    Complete(check::OpStatus::kFail, "");
    return;
  }
  Complete(reply->ok ? check::OpStatus::kOk : check::OpStatus::kFail, reply->value);
}

}  // namespace pbkv
