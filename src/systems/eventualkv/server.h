// A replica of the eventually consistent store.
//
// Leaderless: the replica a client contacts coordinates the operation.
// Writes carry both a wall-clock timestamp and a version vector; replicas
// keep the set of causally maximal records per key. How *concurrent*
// records collapse is the conflict mode: last-writer-wins (one acked write
// silently dropped) or Riak-style siblings (both kept for the reader).
// Reads consult a read quorum, resolve, and read-repair. Periodic
// anti-entropy exchanges full digests so partitions heal eventually.
// Replicas unreachable at write time get hinted handoffs; whether hints
// count toward the write quorum and whether they are redelivered are the
// studied design choices. The store is volatile: a crash loses records and
// pending hints.

#ifndef SYSTEMS_EVENTUALKV_SERVER_H_
#define SYSTEMS_EVENTUALKV_SERVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/failure_detector.h"
#include "cluster/process.h"
#include "systems/eventualkv/messages.h"
#include "systems/eventualkv/types.h"

namespace eventualkv {

class Server : public cluster::Process {
 public:
  // `hints_count_toward_quorum` is split from Options so tests can compose
  // it with either handoff mode (the "sloppy quorum" knob).
  Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
         const Options& options, std::vector<net::NodeId> replicas,
         bool hints_count_toward_quorum);

  // --- introspection ---
  // The single visible value ("" when absent); sibling values are joined
  // with '|' in sorted order.
  std::optional<std::string> LocalGet(const std::string& key) const;
  // All live (non-tombstone) sibling values.
  std::vector<std::string> LocalSiblings(const std::string& key) const;
  bool HasTombstone(const std::string& key) const;
  size_t pending_hints() const { return hints_.size(); }
  size_t store_size() const { return store_.size(); }

 protected:
  void OnStart() override;
  void OnRestart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct PendingOp {
    net::NodeId client = net::kInvalidNode;
    uint64_t request_id = 0;
    bool is_read = false;
    std::string key;
    size_t acks = 0;
    size_t needed = 0;
    std::vector<Record> collected;  // read replies (plus our own records)
    sim::EventId timer = sim::kInvalidEventId;
  };
  struct Hint {
    uint64_t id = 0;
    net::NodeId target = net::kInvalidNode;
    std::string key;
    Record record;
  };

  void Tick();
  void AntiEntropy();
  void DeliverHints();
  void HandleClientRequest(const net::Envelope& envelope, const ClientKvRequest& request);
  void FinishWrite(uint64_t txn_id, bool ok);
  void FinishRead(uint64_t txn_id);
  // Adopts `record` for `key` unless it is causally dominated by (or equal
  // to) what we hold. Returns true when the store changed.
  bool Merge(const std::string& key, const Record& record);
  // Reduces a set of records to the causally maximal ones, then applies the
  // conflict mode (LWW collapses concurrents to the latest timestamp).
  std::vector<Record> Resolve(std::vector<Record> records) const;
  // The client-visible value of a resolved sibling set.
  static std::string RenderValue(const std::vector<Record>& records);
  sim::Time LocalClock() const;

  Options options_;
  bool hints_count_toward_quorum_;
  std::vector<net::NodeId> replicas_;
  std::map<std::string, std::vector<Record>> store_;  // causally maximal siblings
  std::vector<Hint> hints_;
  std::map<uint64_t, PendingOp> pending_;
  uint64_t next_txn_ = 1;
  uint64_t next_hint_ = (1ULL << 32);
  size_t next_sync_peer_ = 0;
  cluster::FailureDetector detector_;
};

}  // namespace eventualkv

#endif  // SYSTEMS_EVENTUALKV_SERVER_H_
