#include "systems/eventualkv/server.h"

#include <algorithm>

namespace eventualkv {

Server::Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               const Options& options, std::vector<net::NodeId> replicas,
               bool hints_count_toward_quorum)
    : cluster::Process(simulator, network, id, "ekv.n" + std::to_string(id)),
      options_(options),
      hints_count_toward_quorum_(hints_count_toward_quorum),
      replicas_(std::move(replicas)),
      detector_(id, replicas_, {options.heartbeat_interval, options.miss_threshold}) {}

void Server::OnStart() {
  detector_.Reset(Now());
  Every(options_.heartbeat_interval, [this]() { Tick(); });
  if (options_.anti_entropy_interval > 0) {
    Every(options_.anti_entropy_interval, [this]() { AntiEntropy(); });
  }
}

void Server::OnRestart() {
  // The store is in-memory: a crash loses everything, including hints.
  store_.clear();
  hints_.clear();
  pending_.clear();
  detector_.Reset(Now());
}

sim::Time Server::LocalClock() const {
  auto it = options_.clock_skew.find(id());
  return Now() + (it == options_.clock_skew.end() ? 0 : it->second);
}

std::vector<Record> Server::Resolve(std::vector<Record> records) const {
  // Keep only causally maximal records.
  std::vector<Record> maximal;
  for (const Record& candidate : records) {
    bool dominated = false;
    for (const Record& other : records) {
      if (&other != &candidate && other.Dominates(candidate)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      continue;
    }
    // Deduplicate identical versions.
    bool duplicate = false;
    for (const Record& kept : maximal) {
      if (kept.version == candidate.version && kept.value == candidate.value &&
          kept.tombstone == candidate.tombstone) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      maximal.push_back(candidate);
    }
  }
  if (options_.conflict_mode == ConflictMode::kLww && maximal.size() > 1) {
    // Collapse concurrent records to the latest wall-clock timestamp: the
    // silent-loss behaviour of LWW systems.
    Record winner = maximal.front();
    for (const Record& record : maximal) {
      if (record.Newer(winner)) {
        winner = record;
      }
    }
    return {winner};
  }
  return maximal;
}

std::string Server::RenderValue(const std::vector<Record>& records) {
  std::vector<std::string> values;
  for (const Record& record : records) {
    if (!record.tombstone) {
      values.push_back(record.value);
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += '|';
    }
    out += values[i];
  }
  return out;
}

std::optional<std::string> Server::LocalGet(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end()) {
    return std::nullopt;
  }
  const std::string rendered = RenderValue(it->second);
  if (rendered.empty()) {
    return std::nullopt;  // only tombstones
  }
  return rendered;
}

std::vector<std::string> Server::LocalSiblings(const std::string& key) const {
  std::vector<std::string> out;
  auto it = store_.find(key);
  if (it == store_.end()) {
    return out;
  }
  for (const Record& record : it->second) {
    if (!record.tombstone) {
      out.push_back(record.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Server::HasTombstone(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end()) {
    return false;
  }
  for (const Record& record : it->second) {
    if (record.tombstone) {
      return true;
    }
  }
  return false;
}

bool Server::Merge(const std::string& key, const Record& record) {
  if (record.tombstone && !options_.tombstones) {
    // Flawed delete: erase the record; nothing remembers the deletion.
    return store_.erase(key) != 0;
  }
  std::vector<Record>& siblings = store_[key];
  for (const Record& existing : siblings) {
    if (existing.Dominates(record) ||
        (existing.version == record.version && existing.value == record.value &&
         existing.tombstone == record.tombstone)) {
      return false;  // already superseded or already known
    }
  }
  siblings.push_back(record);
  siblings = Resolve(std::move(siblings));
  return true;
}

void Server::Tick() {
  for (net::NodeId peer : replicas_) {
    if (peer != id()) {
      Send<cluster::HeartbeatMsg>(peer, incarnation());
    }
  }
  DeliverHints();
}

void Server::AntiEntropy() {
  if (replicas_.size() < 2 || store_.empty()) {
    return;
  }
  // Round-robin peer choice keeps runs deterministic.
  net::NodeId peer = replicas_[next_sync_peer_ % replicas_.size()];
  ++next_sync_peer_;
  if (peer == id()) {
    peer = replicas_[next_sync_peer_ % replicas_.size()];
    ++next_sync_peer_;
  }
  auto offer = std::make_shared<SyncOffer>();
  offer->records = store_;
  SendEnvelope(peer, offer);
}

void Server::DeliverHints() {
  std::vector<Hint> keep;
  for (Hint& hint : hints_) {
    if (!detector_.IsAlive(hint.target, Now())) {
      keep.push_back(std::move(hint));
      continue;
    }
    auto write = std::make_shared<ReplicaWrite>();
    write->txn_id = hint.id;
    write->key = hint.key;
    write->record = hint.record;
    SendEnvelope(hint.target, write);
    if (options_.handoff_retries) {
      keep.push_back(std::move(hint));  // cleared by the ack
    }
    // Flawed mode: fire and forget; a lost message loses the hint.
  }
  hints_ = std::move(keep);
}

void Server::HandleClientRequest(const net::Envelope& envelope,
                                 const ClientKvRequest& request) {
  const uint64_t txn_id = next_txn_++;
  if (request.op == ClientKvRequest::Op::kGet) {
    PendingOp op;
    op.client = envelope.src;
    op.request_id = request.request_id;
    op.is_read = true;
    op.key = request.key;
    auto mine = store_.find(request.key);
    if (mine != store_.end()) {
      op.collected = mine->second;
    }
    op.acks = 1;
    op.needed = static_cast<size_t>(std::max(1, options_.read_quorum));
    if (op.acks >= op.needed) {
      pending_.emplace(txn_id, std::move(op));
      FinishRead(txn_id);
      return;
    }
    op.timer = After(options_.quorum_timeout, [this, txn_id]() {
      // Reads degrade rather than fail: answer with what we collected.
      FinishRead(txn_id);
    });
    for (net::NodeId peer : replicas_) {
      if (peer == id()) {
        continue;
      }
      auto read = std::make_shared<ReplicaRead>();
      read->txn_id = txn_id;
      read->key = request.key;
      SendEnvelope(peer, read);
    }
    pending_.emplace(txn_id, std::move(op));
    return;
  }

  // Put / Delete. The new record causally supersedes everything this
  // coordinator currently sees (its version vector is the merge of the
  // visible siblings' vectors, bumped at this node).
  Record record;
  record.value = request.value;
  record.timestamp = LocalClock();
  record.origin = id();
  record.tombstone = request.op == ClientKvRequest::Op::kDelete;
  auto current = store_.find(request.key);
  if (current != store_.end()) {
    for (const Record& sibling : current->second) {
      for (const auto& [node, counter] : sibling.version) {
        record.version[node] = std::max(record.version[node], counter);
      }
    }
  }
  ++record.version[id()];
  Merge(request.key, record);

  PendingOp op;
  op.client = envelope.src;
  op.request_id = request.request_id;
  op.key = request.key;
  op.acks = 1;  // self
  op.needed = static_cast<size_t>(std::max(1, options_.write_quorum));
  for (net::NodeId peer : replicas_) {
    if (peer == id()) {
      continue;
    }
    if (detector_.IsAlive(peer, Now())) {
      auto write = std::make_shared<ReplicaWrite>();
      write->txn_id = txn_id;
      write->key = request.key;
      write->record = record;
      SendEnvelope(peer, write);
    } else if (record.tombstone && !options_.tombstones) {
      // No tombstones means the deletion is forgotten the moment it is
      // applied — there is nothing to hand off to the unreachable replica,
      // whose stale record will later win the anti-entropy merge.
      if (hints_count_toward_quorum_) {
        ++op.acks;
      }
    } else {
      // The peer looks down: stash a hinted handoff.
      Hint hint;
      hint.id = next_hint_++;
      hint.target = peer;
      hint.key = request.key;
      hint.record = record;
      hints_.push_back(std::move(hint));
      TraceEvent("hint", request.key + " for n" + std::to_string(peer));
      if (hints_count_toward_quorum_) {
        ++op.acks;  // the sloppy-quorum flaw: a hint is not a replica
      }
    }
  }
  if (op.acks >= op.needed) {
    pending_.emplace(txn_id, std::move(op));
    FinishWrite(txn_id, /*ok=*/true);
    return;
  }
  op.timer = After(options_.quorum_timeout,
                   [this, txn_id]() { FinishWrite(txn_id, /*ok=*/false); });
  pending_.emplace(txn_id, std::move(op));
}

void Server::FinishWrite(uint64_t txn_id, bool ok) {
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) {
    return;
  }
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  simulator()->Cancel(op.timer);
  auto reply = std::make_shared<ClientKvReply>();
  reply->request_id = op.request_id;
  reply->ok = ok;
  SendEnvelope(op.client, reply);
}

void Server::FinishRead(uint64_t txn_id) {
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) {
    return;
  }
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  simulator()->Cancel(op.timer);

  const std::vector<Record> resolved = Resolve(std::move(op.collected));
  auto reply = std::make_shared<ClientKvReply>();
  reply->request_id = op.request_id;
  reply->ok = true;
  reply->value = RenderValue(resolved);
  SendEnvelope(op.client, reply);

  // Read repair: push the resolved set back out.
  for (const Record& record : resolved) {
    Merge(op.key, record);
    for (net::NodeId peer : replicas_) {
      if (peer == id()) {
        continue;
      }
      auto write = std::make_shared<ReplicaWrite>();
      write->key = op.key;
      write->record = record;
      SendEnvelope(peer, write);
    }
  }
}

void Server::OnMessage(const net::Envelope& envelope) {
  if (std::find(replicas_.begin(), replicas_.end(), envelope.src) != replicas_.end()) {
    detector_.RecordHeartbeat(envelope.src, Now());
  }
  const net::Message& msg = *envelope.msg;
  if (auto* request = dynamic_cast<const ClientKvRequest*>(&msg)) {
    HandleClientRequest(envelope, *request);
    return;
  }
  if (auto* write = dynamic_cast<const ReplicaWrite*>(&msg)) {
    Merge(write->key, write->record);
    if (write->txn_id != 0) {
      auto ack = std::make_shared<ReplicaWriteAck>();
      ack->txn_id = write->txn_id;
      SendEnvelope(envelope.src, ack);
    }
    return;
  }
  if (auto* ack = dynamic_cast<const ReplicaWriteAck*>(&msg)) {
    if (ack->txn_id >= (1ULL << 32)) {
      // A delivered hint.
      hints_.erase(std::remove_if(hints_.begin(), hints_.end(),
                                  [&ack](const Hint& h) { return h.id == ack->txn_id; }),
                   hints_.end());
      return;
    }
    auto it = pending_.find(ack->txn_id);
    if (it != pending_.end() && !it->second.is_read) {
      ++it->second.acks;
      if (it->second.acks >= it->second.needed) {
        FinishWrite(ack->txn_id, /*ok=*/true);
      }
    }
    return;
  }
  if (auto* read = dynamic_cast<const ReplicaRead*>(&msg)) {
    auto reply = std::make_shared<ReplicaReadReply>();
    reply->txn_id = read->txn_id;
    auto it = store_.find(read->key);
    if (it != store_.end()) {
      reply->records = it->second;
    }
    SendEnvelope(envelope.src, reply);
    return;
  }
  if (auto* read_reply = dynamic_cast<const ReplicaReadReply*>(&msg)) {
    auto it = pending_.find(read_reply->txn_id);
    if (it != pending_.end() && it->second.is_read) {
      it->second.collected.insert(it->second.collected.end(), read_reply->records.begin(),
                                  read_reply->records.end());
      ++it->second.acks;
      if (it->second.acks >= it->second.needed) {
        FinishRead(read_reply->txn_id);
      }
    }
    return;
  }
  if (auto* offer = dynamic_cast<const SyncOffer*>(&msg)) {
    for (const auto& [key, records] : offer->records) {
      for (const Record& record : records) {
        Merge(key, record);
      }
    }
    return;
  }
}

}  // namespace eventualkv
