// A wired eventualkv deployment. The client process is shared with the
// other KV systems' pattern: one outstanding operation, history-recorded.

#ifndef SYSTEMS_EVENTUALKV_CLUSTER_H_
#define SYSTEMS_EVENTUALKV_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/env.h"
#include "net/partition.h"
#include "systems/eventualkv/server.h"

namespace eventualkv {

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         std::vector<net::NodeId> servers, check::History* history);

  void set_contact(net::NodeId contact) { contact_ = contact; }
  void set_op_timeout(sim::Duration timeout) { op_timeout_ = timeout; }

  void BeginPut(const std::string& key, const std::string& value);
  void BeginGet(const std::string& key, bool final_read = false);
  void BeginDelete(const std::string& key);

  bool idle() const { return !outstanding_; }
  const check::Operation& last_op() const { return last_op_; }

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Begin(check::OpType type, ClientKvRequest::Op op, const std::string& key,
             const std::string& value, bool final_read);
  void Complete(check::OpStatus status, const std::string& value);

  int client_num_;
  std::vector<net::NodeId> servers_;
  check::History* history_;
  net::NodeId contact_;
  sim::Duration op_timeout_ = sim::Milliseconds(800);
  bool outstanding_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
};

class Cluster {
 public:
  struct Config {
    Options options;
    bool hints_count_toward_quorum = false;
    int num_clients = 2;
    uint64_t seed = 1;
    bool use_switch_backend = true;
  };

  explicit Cluster(const Config& config);

  sim::Simulator& simulator() { return env_.simulator(); }
  net::Network& network() { return env_.network(); }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  check::History& history() { return env_.history(); }
  neat::TestEnv& env() { return env_; }
  const std::vector<net::NodeId>& server_ids() const { return server_ids_; }
  Server& server(net::NodeId id);
  Client& client(int index) { return *clients_.at(static_cast<size_t>(index)); }

  void Settle(sim::Duration duration) { env_.Sleep(duration); }
  check::Operation Put(int client, const std::string& key, const std::string& value);
  check::Operation Get(int client, const std::string& key, bool final_read = false);
  check::Operation Delete(int client, const std::string& key);

 private:
  check::Operation RunToCompletion(Client& c);

  neat::TestEnv env_;
  std::vector<net::NodeId> server_ids_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace eventualkv

#endif  // SYSTEMS_EVENTUALKV_CLUSTER_H_
