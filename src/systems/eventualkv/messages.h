// Wire messages of the eventually consistent store.

#ifndef SYSTEMS_EVENTUALKV_MESSAGES_H_
#define SYSTEMS_EVENTUALKV_MESSAGES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/time.h"

namespace eventualkv {

// One versioned record. Carries both a wall-clock timestamp (for LWW) and a
// version vector (for causality-aware conflict handling, Riak-style).
struct Record {
  std::string value;
  sim::Time timestamp = sim::kTimeZero;
  net::NodeId origin = net::kInvalidNode;
  bool tombstone = false;
  // Version vector: per-replica write counters. Empty vectors (from systems
  // running pure LWW) compare as concurrent with everything non-empty.
  std::map<net::NodeId, uint64_t> version;

  bool Newer(const Record& other) const {
    if (timestamp != other.timestamp) {
      return timestamp > other.timestamp;
    }
    return origin > other.origin;
  }

  // True when this record's version vector dominates (is causally after)
  // the other's: >= on every entry and > on at least one.
  bool Dominates(const Record& other) const {
    bool strictly_greater = false;
    for (const auto& [node, counter] : other.version) {
      auto it = version.find(node);
      if (it == version.end() || it->second < counter) {
        return false;
      }
    }
    for (const auto& [node, counter] : version) {
      auto it = other.version.find(node);
      if (it == other.version.end() || counter > it->second) {
        strictly_greater = true;
      }
    }
    return strictly_greater;
  }

  bool ConcurrentWith(const Record& other) const {
    return !Dominates(other) && !other.Dominates(*this);
  }
};

struct ClientKvRequest : public net::Message {
  std::string TypeName() const override { return "ekv.ClientRequest"; }
  uint64_t request_id = 0;
  enum class Op { kPut, kGet, kDelete } op = Op::kPut;
  std::string key;
  std::string value;
};

struct ClientKvReply : public net::Message {
  std::string TypeName() const override { return "ekv.ClientReply"; }
  uint64_t request_id = 0;
  bool ok = false;
  std::string value;
};

// Coordinator -> replica: store this record (write or tombstone).
struct ReplicaWrite : public net::Message {
  std::string TypeName() const override { return "ekv.ReplicaWrite"; }
  uint64_t txn_id = 0;
  std::string key;
  Record record;
};

struct ReplicaWriteAck : public net::Message {
  std::string TypeName() const override { return "ekv.ReplicaWriteAck"; }
  uint64_t txn_id = 0;
};

// Coordinator -> replica: what is your record for `key`?
struct ReplicaRead : public net::Message {
  std::string TypeName() const override { return "ekv.ReplicaRead"; }
  uint64_t txn_id = 0;
  std::string key;
};

struct ReplicaReadReply : public net::Message {
  std::string TypeName() const override { return "ekv.ReplicaReadReply"; }
  uint64_t txn_id = 0;
  // All sibling records this replica holds for the key (empty if none).
  std::vector<Record> records;
};

// Anti-entropy: full-store digest exchange (small stores; the real systems
// use Merkle trees, which only changes the transfer cost).
struct SyncOffer : public net::Message {
  std::string TypeName() const override { return "ekv.SyncOffer"; }
  std::map<std::string, std::vector<Record>> records;
};

}  // namespace eventualkv

#endif  // SYSTEMS_EVENTUALKV_MESSAGES_H_
