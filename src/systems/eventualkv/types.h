// Configuration for the eventually consistent, leaderless key-value store
// (Dynamo archetype: Cassandra / Aerospike / Riak in the study).
//
// Every replica accepts writes; a coordinator replica fans each operation
// out to the others and acknowledges per the write quorum. Periodic
// anti-entropy reconciles divergent replicas. The data-consolidation flaws
// the study documents map to knobs:
//
//  - last-writer-wins without tombstones: an acked delete is resurrected by
//    anti-entropy from a replica that missed it (the Aerospike
//    "reappearance of deleted data", Table 14 [140]).
//  - wall-clock LWW under clock skew: a later acknowledged write loses to
//    an earlier one stamped by a fast clock (Cassandra-style LWW loss).
//  - hinted handoff without retry: hints dropped by a partition are gone,
//    so acknowledged sloppy-quorum writes never reach their home replicas
//    (the Riak [67] strict-vs-sloppy quorum loss).

#ifndef SYSTEMS_EVENTUALKV_TYPES_H_
#define SYSTEMS_EVENTUALKV_TYPES_H_

#include <map>

#include "net/message.h"
#include "sim/time.h"

namespace eventualkv {

// How concurrent (causally incomparable) writes are resolved.
enum class ConflictMode {
  // Last-writer-wins by wall-clock timestamp: one acknowledged write
  // silently disappears (the Riak [67] default-mode loss).
  kLww,
  // Keep both as sibling values for the reader to resolve (Riak's vector
  // clock mode): nothing acknowledged is ever silently dropped.
  kSiblings,
};

struct Options {
  ConflictMode conflict_mode = ConflictMode::kLww;
  // Deletes write tombstones that participate in LWW (correct) instead of
  // erasing the record (flawed: resurrectable).
  bool tombstones = true;
  // Hinted handoff redelivers hints until acknowledged (correct) or fires
  // them once and forgets (flawed).
  bool handoff_retries = true;

  int num_replicas = 3;
  int write_quorum = 2;  // acks required before the client sees ok
  int read_quorum = 2;   // replicas consulted per read (freshest wins)
  sim::Duration heartbeat_interval = sim::Milliseconds(50);
  int miss_threshold = 3;
  sim::Duration anti_entropy_interval = sim::Milliseconds(200);
  sim::Duration quorum_timeout = sim::Milliseconds(250);
  // Per-node wall-clock skew applied to LWW timestamps.
  std::map<net::NodeId, sim::Duration> clock_skew;
};

inline Options CorrectOptions() { return Options{}; }

// The Aerospike-like configuration: LWW merge with no tombstones.
inline Options AerospikeOptions() {
  Options options;
  options.tombstones = false;
  return options;
}

// Riak's vector-clock mode: concurrent writes become siblings.
inline Options RiakSiblingOptions() {
  Options options;
  options.conflict_mode = ConflictMode::kSiblings;
  return options;
}

// The Riak-sloppy-like configuration: fire-and-forget hinted handoff.
inline Options SloppyHandoffOptions() {
  Options options;
  options.handoff_retries = false;
  return options;
}

}  // namespace eventualkv

#endif  // SYSTEMS_EVENTUALKV_TYPES_H_
