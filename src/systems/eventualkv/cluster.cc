#include "systems/eventualkv/cluster.h"

#include <cassert>

namespace eventualkv {

Client::Client(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               int client_num, std::vector<net::NodeId> servers, check::History* history)
    : cluster::Process(simulator, network, id, "ekv.c" + std::to_string(client_num)),
      client_num_(client_num),
      servers_(std::move(servers)),
      history_(history) {
  assert(!servers_.empty());
  contact_ = servers_.front();
}

void Client::BeginPut(const std::string& key, const std::string& value) {
  Begin(check::OpType::kWrite, ClientKvRequest::Op::kPut, key, value, /*final_read=*/false);
}

void Client::BeginGet(const std::string& key, bool final_read) {
  Begin(check::OpType::kRead, ClientKvRequest::Op::kGet, key, "", final_read);
}

void Client::BeginDelete(const std::string& key) {
  Begin(check::OpType::kDelete, ClientKvRequest::Op::kDelete, key, "", /*final_read=*/false);
}

void Client::Begin(check::OpType type, ClientKvRequest::Op op, const std::string& key,
                   const std::string& value, bool final_read) {
  assert(!outstanding_ && "one operation at a time");
  outstanding_ = true;
  current_request_id_ = next_request_id_++;
  pending_op_ = check::Operation{};
  pending_op_.client = client_num_;
  pending_op_.type = type;
  pending_op_.key = key;
  pending_op_.value = value;
  pending_op_.invoked = Now();
  pending_op_.final_read = final_read;

  auto request = std::make_shared<ClientKvRequest>();
  request->request_id = current_request_id_;
  request->op = op;
  request->key = key;
  request->value = value;
  SendEnvelope(contact_, request);
  timeout_timer_ = After(op_timeout_, [this]() {
    if (outstanding_) {
      Complete(check::OpStatus::kTimeout, "");
    }
  });
}

void Client::Complete(check::OpStatus status, const std::string& value) {
  outstanding_ = false;
  simulator()->Cancel(timeout_timer_);
  pending_op_.completed = Now();
  pending_op_.status = status;
  if (pending_op_.type == check::OpType::kRead) {
    pending_op_.value = value;
  }
  last_op_ = pending_op_;
  if (history_ != nullptr) {
    last_op_.id = history_->Record(pending_op_);
  }
}

void Client::OnMessage(const net::Envelope& envelope) {
  const auto* reply = dynamic_cast<const ClientKvReply*>(envelope.msg.get());
  if (reply == nullptr || !outstanding_ || reply->request_id != current_request_id_) {
    return;
  }
  Complete(reply->ok ? check::OpStatus::kOk : check::OpStatus::kFail, reply->value);
}

Cluster::Cluster(const Config& config)
    : env_(neat::TestEnv::Options{config.seed, config.use_switch_backend}) {
  for (int i = 0; i < config.options.num_replicas; ++i) {
    server_ids_.push_back(static_cast<net::NodeId>(i + 1));
  }
  for (net::NodeId id : server_ids_) {
    servers_.push_back(std::make_unique<Server>(&env_.simulator(), &env_.network(), id,
                                                config.options, server_ids_,
                                                config.hints_count_toward_quorum));
  }
  for (int i = 0; i < config.num_clients; ++i) {
    const net::NodeId client_id = static_cast<net::NodeId>(100 + i + 1);
    clients_.push_back(std::make_unique<Client>(&env_.simulator(), &env_.network(), client_id,
                                                i + 1, server_ids_, &env_.history()));
  }
  for (auto& server : servers_) {
    server->Boot();
    env_.RegisterProcess(server.get());
  }
  for (auto& client : clients_) {
    client->Boot();
    env_.RegisterProcess(client.get());
  }
}

Server& Cluster::server(net::NodeId id) {
  for (auto& server : servers_) {
    if (server->id() == id) {
      return *server;
    }
  }
  assert(false && "unknown server id");
  return *servers_.front();
}

check::Operation Cluster::RunToCompletion(Client& c) {
  env_.simulator().RunUntilPredicate([&c]() { return c.idle(); },
                                     env_.simulator().Now() + sim::Seconds(5));
  return c.last_op();
}

check::Operation Cluster::Put(int client_index, const std::string& key,
                              const std::string& value) {
  Client& c = client(client_index);
  c.BeginPut(key, value);
  return RunToCompletion(c);
}

check::Operation Cluster::Get(int client_index, const std::string& key, bool final_read) {
  Client& c = client(client_index);
  c.BeginGet(key, final_read);
  return RunToCompletion(c);
}

check::Operation Cluster::Delete(int client_index, const std::string& key) {
  Client& c = client(client_index);
  c.BeginDelete(key);
  return RunToCompletion(c);
}

}  // namespace eventualkv
