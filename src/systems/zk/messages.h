// Wire messages of the coordination-service registry (ZooKeeper analog).

#ifndef SYSTEMS_ZK_MESSAGES_H_
#define SYSTEMS_ZK_MESSAGES_H_

#include <cstdint>
#include <string>

#include "net/message.h"

namespace zksvc {

// Session keep-alive; the registry expires sessions that stop pinging and
// deletes their ephemeral entries.
struct ZkPing : public net::Message {
  std::string TypeName() const override { return "zk.Ping"; }
};

struct ZkPong : public net::Message {
  std::string TypeName() const override { return "zk.Pong"; }
};

// Creates an entry owned by the sender's session. Fails if it exists.
struct ZkCreate : public net::Message {
  std::string TypeName() const override { return "zk.Create"; }
  uint64_t request_id = 0;
  std::string path;
  std::string data;
  bool ephemeral = true;
};

struct ZkCreateReply : public net::Message {
  std::string TypeName() const override { return "zk.CreateReply"; }
  uint64_t request_id = 0;
  bool ok = false;
};

struct ZkGet : public net::Message {
  std::string TypeName() const override { return "zk.Get"; }
  uint64_t request_id = 0;
  std::string path;
};

struct ZkGetReply : public net::Message {
  std::string TypeName() const override { return "zk.GetReply"; }
  uint64_t request_id = 0;
  bool exists = false;
  std::string data;
};

struct ZkDelete : public net::Message {
  std::string TypeName() const override { return "zk.Delete"; }
  uint64_t request_id = 0;
  std::string path;
};

// Registers interest in a path; one-shot, re-armed by the watcher.
struct ZkWatch : public net::Message {
  std::string TypeName() const override { return "zk.Watch"; }
  std::string path;
};

// Fired when a watched path is created, changed, or deleted.
struct ZkEvent : public net::Message {
  std::string TypeName() const override { return "zk.Event"; }
  std::string path;
  bool deleted = false;
};

}  // namespace zksvc

#endif  // SYSTEMS_ZK_MESSAGES_H_
