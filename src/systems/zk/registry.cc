#include "systems/zk/registry.h"

#include <vector>

namespace zksvc {

Registry::Registry(sim::Simulator* simulator, net::Network* network, net::NodeId id,
                   Options options)
    : cluster::Process(simulator, network, id, "zk"), options_(options) {}

void Registry::OnStart() {
  Every(options_.session_check_interval, [this]() { Tick(); });
}

std::string Registry::Data(const std::string& path) const {
  auto it = entries_.find(path);
  return it == entries_.end() ? "" : it->second.data;
}

void Registry::Tick() {
  std::vector<net::NodeId> expired;
  for (const auto& [session, last_heard] : sessions_) {
    if (Now() - last_heard > options_.session_timeout) {
      expired.push_back(session);
    }
  }
  for (net::NodeId session : expired) {
    ExpireSession(session);
  }
}

void Registry::Touch(net::NodeId session) { sessions_[session] = Now(); }

void Registry::ExpireSession(net::NodeId session) {
  TraceEvent("session-expired", "session=" + std::to_string(session));
  sessions_.erase(session);
  std::vector<std::string> doomed;
  for (const auto& [path, entry] : entries_) {
    if (entry.ephemeral && entry.owner == session) {
      doomed.push_back(path);
    }
  }
  for (const std::string& path : doomed) {
    entries_.erase(path);
    FireWatches(path, /*deleted=*/true);
  }
}

void Registry::FireWatches(const std::string& path, bool deleted) {
  auto it = watches_.find(path);
  if (it == watches_.end()) {
    return;
  }
  const std::set<net::NodeId> watchers = std::move(it->second);
  watches_.erase(it);  // one-shot, as in ZooKeeper
  for (net::NodeId watcher : watchers) {
    auto event = std::make_shared<ZkEvent>();
    event->path = path;
    event->deleted = deleted;
    SendEnvelope(watcher, event);
  }
}

void Registry::OnMessage(const net::Envelope& envelope) {
  Touch(envelope.src);
  const net::Message& msg = *envelope.msg;
  if (dynamic_cast<const ZkPing*>(&msg) != nullptr) {
    Send<ZkPong>(envelope.src);
    return;
  }
  if (auto* create = dynamic_cast<const ZkCreate*>(&msg)) {
    const bool ok = entries_.count(create->path) == 0;
    if (ok) {
      entries_[create->path] = Entry{create->data, create->ephemeral, envelope.src};
      FireWatches(create->path, /*deleted=*/false);
      TraceEvent("create", create->path + "=" + create->data);
    }
    auto reply = std::make_shared<ZkCreateReply>();
    reply->request_id = create->request_id;
    reply->ok = ok;
    SendEnvelope(envelope.src, reply);
    return;
  }
  if (auto* get = dynamic_cast<const ZkGet*>(&msg)) {
    auto reply = std::make_shared<ZkGetReply>();
    reply->request_id = get->request_id;
    auto it = entries_.find(get->path);
    reply->exists = it != entries_.end();
    reply->data = reply->exists ? it->second.data : "";
    SendEnvelope(envelope.src, reply);
    return;
  }
  if (auto* del = dynamic_cast<const ZkDelete*>(&msg)) {
    if (entries_.erase(del->path) != 0) {
      FireWatches(del->path, /*deleted=*/true);
    }
    return;
  }
  if (auto* watch = dynamic_cast<const ZkWatch*>(&msg)) {
    watches_[watch->path].insert(envelope.src);
    return;
  }
}

Registry::State Registry::CaptureState() const {
  State state;
  state.entries = entries_;
  state.sessions = sessions_;
  state.watches = watches_;
  return state;
}

void Registry::RestoreState(const State& state) {
  entries_ = state.entries;
  sessions_ = state.sessions;
  watches_ = state.watches;
}

}  // namespace zksvc
