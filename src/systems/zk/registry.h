// A minimal coordination service (ZooKeeper analog).
//
// Provides exactly what the queue system needs for master election: a
// key space with ephemeral entries bound to heartbeat sessions, one-shot
// watches, and first-writer-wins creation. Modelled as a single process —
// the systems in the study treat ZooKeeper as a central service, and the
// interesting failures (Figure 6) come from *which sides of a partition can
// reach it*, not from its internal replication.

#ifndef SYSTEMS_ZK_REGISTRY_H_
#define SYSTEMS_ZK_REGISTRY_H_

#include <map>
#include <set>
#include <string>

#include "cluster/process.h"
#include "systems/zk/messages.h"

namespace zksvc {

class Registry : public cluster::Process {
 public:
  struct Options {
    sim::Duration session_check_interval = sim::Milliseconds(50);
    sim::Duration session_timeout = sim::Milliseconds(300);
  };

  Registry(sim::Simulator* simulator, net::Network* network, net::NodeId id, Options options);

  // --- introspection ---
  bool Exists(const std::string& path) const { return entries_.count(path) != 0; }
  std::string Data(const std::string& path) const;
  size_t live_sessions() const { return sessions_.size(); }

  // --- snapshot / restore (NEAT fork executor) ---
  struct State;
  State CaptureState() const;
  void RestoreState(const State& state);

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct Entry {
    std::string data;
    bool ephemeral = true;
    net::NodeId owner = net::kInvalidNode;
  };

  void Tick();
  void Touch(net::NodeId session);
  void ExpireSession(net::NodeId session);
  void FireWatches(const std::string& path, bool deleted);

  // detlint: allow(snapshot-field): configuration fixed at construction
  Options options_;
  std::map<std::string, Entry> entries_;
  std::map<net::NodeId, sim::Time> sessions_;
  std::map<std::string, std::set<net::NodeId>> watches_;
};

struct Registry::State {
  std::map<std::string, Entry> entries;
  std::map<net::NodeId, sim::Time> sessions;
  std::map<std::string, std::set<net::NodeId>> watches;
};

}  // namespace zksvc

#endif  // SYSTEMS_ZK_REGISTRY_H_
