#include "systems/members/membership.h"

#include <algorithm>

namespace members {

Node::Node(sim::Simulator* simulator, net::Network* network, net::NodeId id,
           const Options& options, std::vector<net::NodeId> seeds)
    : cluster::Process(simulator, network, id, "members.n" + std::to_string(id)),
      options_(options),
      seeds_(std::move(seeds)) {}

void Node::OnStart() {
  if (id() == seeds_.front()) {
    // The designated bootstrap node forms the cluster.
    cluster_id_ = "cluster-" + std::to_string(id());
    members_ = {id()};
    TraceEvent("bootstrap", cluster_id_);
  } else {
    TryDiscover();
  }
  Every(options_.gossip_interval, [this]() {
    if (!joined()) {
      return;
    }
    for (net::NodeId peer : members_) {
      if (peer == id()) {
        continue;
      }
      auto gossip = std::make_shared<MemberGossip>();
      gossip->cluster_id = cluster_id_;
      gossip->members = {members_.begin(), members_.end()};
      SendEnvelope(peer, gossip);
    }
  });
}

void Node::TryDiscover() {
  if (joined()) {
    return;
  }
  for (net::NodeId seed : seeds_) {
    if (seed != id()) {
      Send<JoinRequest>(seed);
    }
  }
  After(options_.discovery_timeout, [this]() {
    if (joined()) {
      return;
    }
    if (options_.form_own_cluster_when_alone) {
      // rabbitmq-server#1455: nobody answered, so "the rest of the cluster
      // must be down" — bootstrap a brand-new cluster.
      cluster_id_ = "cluster-" + std::to_string(id());
      members_ = {id()};
      TraceEvent("self-bootstrap", cluster_id_ + " (independent cluster!)");
    } else {
      TryDiscover();  // keep knocking until a peer answers
    }
  });
}

void Node::OnMessage(const net::Envelope& envelope) {
  const net::Message& msg = *envelope.msg;
  if (dynamic_cast<const JoinRequest*>(&msg) != nullptr) {
    if (!joined()) {
      return;  // cannot admit anyone into a cluster we are not part of
    }
    members_.insert(envelope.src);
    auto accept = std::make_shared<JoinAccept>();
    accept->cluster_id = cluster_id_;
    accept->members = {members_.begin(), members_.end()};
    SendEnvelope(envelope.src, accept);
    return;
  }
  if (auto* accept = dynamic_cast<const JoinAccept*>(&msg)) {
    if (!joined()) {
      cluster_id_ = accept->cluster_id;
      members_.insert(accept->members.begin(), accept->members.end());
      members_.insert(id());
      TraceEvent("joined", cluster_id_);
    }
    return;
  }
  if (auto* gossip = dynamic_cast<const MemberGossip*>(&msg)) {
    if (!joined() || gossip->cluster_id != cluster_id_) {
      // A different cluster id is not mergeable: this is exactly the
      // permanent split of #1455 — nodes of different clusters ignore each
      // other forever.
      return;
    }
    members_.insert(gossip->members.begin(), gossip->members.end());
    return;
  }
}

Deployment::Deployment(const Config& config)
    : env_(neat::TestEnv::Options{config.seed, true}) {
  for (int i = 0; i < config.num_nodes; ++i) {
    node_ids_.push_back(static_cast<net::NodeId>(i + 1));
  }
  for (net::NodeId id : node_ids_) {
    nodes_.push_back(
        std::make_unique<Node>(&env_.simulator(), &env_.network(), id, config.options,
                               node_ids_));
  }
  for (auto& node : nodes_) {
    node->Boot();
    env_.RegisterProcess(node.get());
  }
}

std::set<std::string> Deployment::DistinctClusters() const {
  std::set<std::string> out;
  for (const auto& node : nodes_) {
    if (node->joined()) {
      out.insert(node->cluster_id());
    }
  }
  return out;
}

}  // namespace members
