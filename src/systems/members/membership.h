// Gossip-based cluster membership (RabbitMQ auto-clustering analog).
//
// Nodes discover the cluster by contacting their seed list. The flaw of
// rabbitmq-server#1455: "a network partition during peer discovery in auto
// clustering causes two clusters to form" — a booting node that cannot
// reach any peer concludes it is the first node and bootstraps a fresh
// cluster. The two clusters never merge, even after the partition heals:
// permanent damage (Finding 3). The corrected node keeps retrying discovery
// until a peer answers (only the designated bootstrap node may form a
// cluster).

#ifndef SYSTEMS_MEMBERS_MEMBERSHIP_H_
#define SYSTEMS_MEMBERS_MEMBERSHIP_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.h"
#include "neat/env.h"

namespace members {

struct Options {
  // The #1455 flaw: a node whose discovery attempts all time out forms its
  // own single-node cluster instead of retrying.
  bool form_own_cluster_when_alone = false;

  sim::Duration gossip_interval = sim::Milliseconds(50);
  sim::Duration discovery_timeout = sim::Milliseconds(300);
};

inline Options CorrectOptions() { return Options{}; }

inline Options RabbitMqOptions() {
  Options options;
  options.form_own_cluster_when_alone = true;
  return options;
}

struct JoinRequest : public net::Message {
  std::string TypeName() const override { return "members.JoinRequest"; }
};

struct JoinAccept : public net::Message {
  std::string TypeName() const override { return "members.JoinAccept"; }
  std::string cluster_id;
  std::vector<net::NodeId> members;
};

struct MemberGossip : public net::Message {
  std::string TypeName() const override { return "members.Gossip"; }
  std::string cluster_id;
  std::vector<net::NodeId> members;
};

class Node : public cluster::Process {
 public:
  // `seeds.front()` is the designated bootstrap node.
  Node(sim::Simulator* simulator, net::Network* network, net::NodeId id,
       const Options& options, std::vector<net::NodeId> seeds);

  const std::string& cluster_id() const { return cluster_id_; }
  bool joined() const { return !cluster_id_.empty(); }
  std::vector<net::NodeId> members() const { return {members_.begin(), members_.end()}; }

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void TryDiscover();

  Options options_;
  std::vector<net::NodeId> seeds_;
  std::string cluster_id_;
  std::set<net::NodeId> members_;
};

// A wired deployment of membership nodes, with staggered boot support.
class Deployment {
 public:
  struct Config {
    Options options;
    int num_nodes = 3;
    uint64_t seed = 1;
  };

  explicit Deployment(const Config& config);

  neat::TestEnv& env() { return env_; }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  void Settle(sim::Duration duration) { env_.Sleep(duration); }
  Node& node(net::NodeId id) { return *nodes_.at(static_cast<size_t>(id - 1)); }
  const std::vector<net::NodeId>& node_ids() const { return node_ids_; }

  // Distinct cluster ids currently claimed by joined nodes.
  std::set<std::string> DistinctClusters() const;

 private:
  neat::TestEnv env_;
  std::vector<net::NodeId> node_ids_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace members

#endif  // SYSTEMS_MEMBERS_MEMBERSHIP_H_
