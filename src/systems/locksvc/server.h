// A replica of the lock/semaphore/atomics service.
//
// Every replica holds a full copy of the lock tables. A client operation is
// coordinated by the replica the client contacts: the coordinator applies
// the operation locally, pushes it to the peers in its current view, and
// acknowledges per the configured quorum. The flawed configuration removes
// unreachable peers from the view (and then "all in view" is satisfied by
// one partition side alone), and reclaims leases of unreachable clients —
// the two Ignite behaviours behind Figure 5 and the semaphore corruption.

#ifndef SYSTEMS_LOCKSVC_SERVER_H_
#define SYSTEMS_LOCKSVC_SERVER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/failure_detector.h"
#include "cluster/process.h"
#include "systems/locksvc/messages.h"
#include "systems/locksvc/types.h"

namespace locksvc {

class Server : public cluster::Process {
 public:
  Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
         const Options& options, std::vector<net::NodeId> replicas);

  // --- introspection ---
  // Client number currently holding `lock` on this replica (0 = free).
  int LockHolder(const std::string& lock) const;
  // Clients currently holding permits of `semaphore` on this replica.
  std::vector<int> SemaphoreHolders(const std::string& semaphore) const;
  bool SemaphoreBroken(const std::string& semaphore) const;
  int64_t CounterValue(const std::string& counter) const;
  const std::set<net::NodeId>& view() const { return view_; }

  // --- snapshot / restore (NEAT fork executor) ---
  struct State;
  State CaptureState() const;
  void RestoreState(const State& state);

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct Semaphore {
    int permits = 1;
    std::multiset<int> holders;
    bool broken = false;
  };
  struct PendingTxn {
    net::NodeId client_node = net::kInvalidNode;
    int client = 0;
    uint64_t request_id = 0;
    ResourceKind kind = ResourceKind::kLock;
    ClientOp op = ClientOp::kAcquire;
    std::string resource;
    int permits = 1;
    int64_t counter_value = 0;
    std::set<net::NodeId> acks;
    std::set<net::NodeId> applied_on;  // peers to roll back on abort
    size_t needed = 0;
    sim::EventId timer = sim::kInvalidEventId;
  };

  void Tick();
  void HandleClientRequest(const net::Envelope& envelope, const ClientLockRequest& request);
  void HandlePeerApply(const net::Envelope& envelope, const PeerApply& msg);
  void HandlePeerAck(const net::Envelope& envelope, const PeerAck& msg);
  void HandlePeerAbort(const PeerAbort& msg);
  void HandleKeepAlive(const net::Envelope& envelope, const KeepAlive& msg);

  // Applies an operation to the local tables. Returns false if it cannot be
  // granted (lock held by someone else, no permits left, ...).
  bool ApplyLocal(ResourceKind kind, ClientOp op, const std::string& resource, int client,
                  int permits, int64_t* counter_value_out);
  void RollbackLocal(ResourceKind kind, const std::string& resource, int client);
  void AbortTxn(uint64_t txn_id);
  void FinishTxn(uint64_t txn_id, bool ok);
  void ReclaimClient(int client);
  size_t QuorumNeeded() const;
  void TrackHolding(int client, net::NodeId client_node, ResourceKind kind,
                    const std::string& resource, bool add);

  // detlint: allow(snapshot-field): configuration fixed at construction
  Options options_;
  // detlint: allow(snapshot-field): replica topology fixed at construction
  std::vector<net::NodeId> replicas_;
  std::set<net::NodeId> view_;

  std::map<std::string, int> locks_;  // resource -> holding client (0 free)
  std::map<std::string, Semaphore> semaphores_;
  std::map<std::string, int64_t> counters_;

  std::map<uint64_t, PendingTxn> pending_;
  uint64_t next_txn_id_ = 1;

  struct ClientLease {
    net::NodeId node = net::kInvalidNode;
    sim::Time last_heard = sim::kTimeZero;
    std::vector<std::pair<ResourceKind, std::string>> holdings;
  };
  std::map<int, ClientLease> leases_;  // by client number; coordinator-side

  cluster::FailureDetector detector_;
};

struct Server::State {
  std::set<net::NodeId> view;
  std::map<std::string, int> locks;
  std::map<std::string, Semaphore> semaphores;
  std::map<std::string, int64_t> counters;
  std::map<uint64_t, PendingTxn> pending;
  uint64_t next_txn_id = 1;
  std::map<int, ClientLease> leases;
  std::map<net::NodeId, sim::Time> detector_last_heard;
};

}  // namespace locksvc

#endif  // SYSTEMS_LOCKSVC_SERVER_H_
