// Configuration for the replicated lock/semaphore/atomics service.
//
// locksvc models the distributed data-structure archetype of Apache Ignite
// and Terracotta. The central flaw the NEAT testing found in Ignite
// (IGNITE-9767, -8881..-8883, -9768): "the assumption that an unreachable
// node has crashed; consequently, nodes on both sides of a partition remove
// the nodes they cannot reach from their replica set" — after which each
// side happily grants the same lock/semaphore/atomic update (Figure 5).
// A second flaw: permits held by an unreachable client are reclaimed; when
// the partition heals and the client releases, the semaphore is corrupted.

#ifndef SYSTEMS_LOCKSVC_TYPES_H_
#define SYSTEMS_LOCKSVC_TYPES_H_

#include "sim/time.h"

namespace locksvc {

enum class Quorum {
  // Correct: an acquire commits only with acknowledgements from a majority
  // of the *configured* cluster, so at most one partition side can grant.
  kMajorityOfCluster,
  // Flawed (Ignite): an acquire needs every node in the coordinator's
  // *current view* — and unreachable nodes were removed from the view.
  kAllInView,
};

struct Options {
  Quorum quorum = Quorum::kMajorityOfCluster;
  // Remove peers the failure detector declares dead from the replica view
  // (the Ignite behaviour). Peers are re-added when heard from again, with
  // no state reconciliation — divergence persists after the heal.
  bool remove_unreachable = false;
  // Reclaim locks/permits held by clients that become unreachable.
  bool reclaim_unreachable_clients = false;

  int num_replicas = 3;
  sim::Duration heartbeat_interval = sim::Milliseconds(50);
  int miss_threshold = 3;
  sim::Duration acquire_timeout = sim::Milliseconds(250);
  // How long a holding client may be silent before reclaim.
  sim::Duration client_lease = sim::Milliseconds(300);

  // Collect the trace in causal mode (sim::TraceLog::set_causal) so the
  // cascade checker (check/causal.h) can stitch the happens-before graph.
  // Off by default: non-causal traces stay byte-identical.
  bool causal_trace = false;
};

// The corrected configuration.
inline Options CorrectOptions() { return Options{}; }

// The Ignite-like flawed configuration used by the Figure 5 reproduction.
inline Options IgniteOptions() {
  Options options;
  options.quorum = Quorum::kAllInView;
  options.remove_unreachable = true;
  options.reclaim_unreachable_clients = true;
  return options;
}

}  // namespace locksvc

#endif  // SYSTEMS_LOCKSVC_TYPES_H_
