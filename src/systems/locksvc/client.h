// A locksvc client: locks, semaphores, and atomic counters.
//
// While the client holds any resource it renews its lease with periodic
// keep-alives to its coordinator; the reclaim flaw needs this traffic to
// stop (a partition between client and service) to trigger.

#ifndef SYSTEMS_LOCKSVC_CLIENT_H_
#define SYSTEMS_LOCKSVC_CLIENT_H_

#include <string>
#include <vector>

#include "check/history.h"
#include "cluster/process.h"
#include "systems/locksvc/messages.h"
#include "systems/locksvc/types.h"

namespace locksvc {

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         std::vector<net::NodeId> servers, check::History* history,
         sim::Duration keepalive_interval);

  void set_contact(net::NodeId contact) { contact_ = contact; }
  void set_op_timeout(sim::Duration timeout) { op_timeout_ = timeout; }

  void BeginLock(const std::string& resource);
  void BeginUnlock(const std::string& resource);
  void BeginSemAcquire(const std::string& semaphore, int permits);
  void BeginSemRelease(const std::string& semaphore);
  void BeginIncrement(const std::string& counter);

  bool idle() const { return !outstanding_; }
  const check::Operation& last_op() const { return last_op_; }
  // The value returned by the last successful increment.
  int64_t last_counter_value() const { return last_counter_value_; }
  int client_num() const { return client_num_; }

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    net::NodeId contact = net::kInvalidNode;
    sim::Duration op_timeout = sim::Milliseconds(800);
    bool outstanding = false;
    uint64_t next_request_id = 1;
    uint64_t current_request_id = 0;
    int held_resources = 0;
    check::Operation pending_op;
    check::Operation last_op;
    int64_t last_counter_value = 0;
    sim::EventId timeout_timer = sim::kInvalidEventId;
  };
  State CaptureState() const {
    return State{contact_,           op_timeout_,  outstanding_,
                 next_request_id_,   current_request_id_, held_resources_,
                 pending_op_,        last_op_,     last_counter_value_,
                 timeout_timer_};
  }
  void RestoreState(const State& state) {
    contact_ = state.contact;
    op_timeout_ = state.op_timeout;
    outstanding_ = state.outstanding;
    next_request_id_ = state.next_request_id;
    current_request_id_ = state.current_request_id;
    held_resources_ = state.held_resources;
    pending_op_ = state.pending_op;
    last_op_ = state.last_op;
    last_counter_value_ = state.last_counter_value;
    timeout_timer_ = state.timeout_timer;
  }

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Begin(check::OpType type, ResourceKind kind, ClientOp op, const std::string& resource,
             int permits);
  void Complete(check::OpStatus status, int64_t counter_value);

  // detlint: allow(snapshot-field): client identity fixed at construction
  int client_num_;
  // detlint: allow(snapshot-field): server topology fixed at construction
  std::vector<net::NodeId> servers_;
  check::History* history_;
  net::NodeId contact_;
  sim::Duration op_timeout_ = sim::Milliseconds(800);
  // detlint: allow(snapshot-field): protocol constant chosen at construction
  sim::Duration keepalive_interval_;

  bool outstanding_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  int held_resources_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  int64_t last_counter_value_ = 0;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
};

}  // namespace locksvc

#endif  // SYSTEMS_LOCKSVC_CLIENT_H_
