#include "systems/locksvc/client.h"

#include <cassert>
#include <utility>

namespace locksvc {

Client::Client(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               int client_num, std::vector<net::NodeId> servers, check::History* history,
               sim::Duration keepalive_interval)
    : cluster::Process(simulator, network, id, "locksvc.c" + std::to_string(client_num)),
      client_num_(client_num),
      servers_(std::move(servers)),
      history_(history),
      keepalive_interval_(keepalive_interval) {
  assert(!servers_.empty());
  contact_ = servers_.front();
}

void Client::OnStart() {
  Every(keepalive_interval_, [this]() {
    if (held_resources_ > 0) {
      auto msg = std::make_shared<KeepAlive>();
      msg->client = client_num_;
      SendEnvelope(contact_, msg);
    }
  });
}

void Client::BeginLock(const std::string& resource) {
  Begin(check::OpType::kLock, ResourceKind::kLock, ClientOp::kAcquire, resource, 1);
}

void Client::BeginUnlock(const std::string& resource) {
  Begin(check::OpType::kUnlock, ResourceKind::kLock, ClientOp::kRelease, resource, 1);
}

void Client::BeginSemAcquire(const std::string& semaphore, int permits) {
  Begin(check::OpType::kSemAcquire, ResourceKind::kSemaphore, ClientOp::kAcquire, semaphore,
        permits);
}

void Client::BeginSemRelease(const std::string& semaphore) {
  Begin(check::OpType::kSemRelease, ResourceKind::kSemaphore, ClientOp::kRelease, semaphore, 1);
}

void Client::BeginIncrement(const std::string& counter) {
  Begin(check::OpType::kOther, ResourceKind::kCounter, ClientOp::kIncrement, counter, 1);
}

void Client::Begin(check::OpType type, ResourceKind kind, ClientOp op,
                   const std::string& resource, int permits) {
  assert(!outstanding_ && "one operation at a time");
  outstanding_ = true;
  current_request_id_ = next_request_id_++;
  pending_op_ = check::Operation{};
  pending_op_.client = client_num_;
  pending_op_.type = type;
  pending_op_.key = resource;
  pending_op_.invoked = Now();

  auto request = std::make_shared<ClientLockRequest>();
  request->request_id = current_request_id_;
  request->kind = kind;
  request->op = op;
  request->resource = resource;
  request->permits = permits;
  SendEnvelope(contact_, request);
  timeout_timer_ = After(op_timeout_, [this]() {
    if (outstanding_) {
      Complete(check::OpStatus::kTimeout, 0);
    }
  });
}

void Client::Complete(check::OpStatus status, int64_t counter_value) {
  outstanding_ = false;
  simulator()->Cancel(timeout_timer_);
  pending_op_.completed = Now();
  pending_op_.status = status;
  if (status == check::OpStatus::kOk) {
    if (pending_op_.type == check::OpType::kLock ||
        pending_op_.type == check::OpType::kSemAcquire) {
      ++held_resources_;
    } else if ((pending_op_.type == check::OpType::kUnlock ||
                pending_op_.type == check::OpType::kSemRelease) &&
               held_resources_ > 0) {
      --held_resources_;
    }
    if (pending_op_.type == check::OpType::kOther) {
      last_counter_value_ = counter_value;
      pending_op_.value = std::to_string(counter_value);
    }
  }
  last_op_ = pending_op_;
  if (history_ != nullptr) {
    last_op_.id = history_->Record(pending_op_);
  }
}

void Client::OnMessage(const net::Envelope& envelope) {
  const auto* reply = dynamic_cast<const ClientLockReply*>(envelope.msg.get());
  if (reply == nullptr || !outstanding_ || reply->request_id != current_request_id_) {
    return;
  }
  Complete(reply->ok ? check::OpStatus::kOk : check::OpStatus::kFail, reply->counter_value);
}

}  // namespace locksvc
