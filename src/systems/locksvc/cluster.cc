#include "systems/locksvc/cluster.h"

#include <cassert>

namespace locksvc {

Cluster::Cluster(const Config& config)
    : env_(neat::TestEnv::Options{config.seed, config.use_switch_backend}) {
  if (config.options.causal_trace) {
    env_.simulator().Trace().set_causal(true);
  }
  for (int i = 0; i < config.options.num_replicas; ++i) {
    server_ids_.push_back(static_cast<net::NodeId>(i + 1));
  }
  for (net::NodeId id : server_ids_) {
    servers_.push_back(std::make_unique<Server>(&env_.simulator(), &env_.network(), id,
                                                config.options, server_ids_));
  }
  for (int i = 0; i < config.num_clients; ++i) {
    // Client numbering must match the coordinator's "node id - 100" rule.
    const net::NodeId client_id = static_cast<net::NodeId>(100 + i + 1);
    clients_.push_back(std::make_unique<Client>(&env_.simulator(), &env_.network(),
                                                client_id, i + 1,
                                                server_ids_, &env_.history(),
                                                config.options.heartbeat_interval));
  }
  for (auto& server : servers_) {
    server->Boot();
    env_.RegisterProcess(server.get());
  }
  for (auto& client : clients_) {
    client->Boot();
    env_.RegisterProcess(client.get());
  }
}

Server& Cluster::server(net::NodeId id) {
  for (auto& server : servers_) {
    if (server->id() == id) {
      return *server;
    }
  }
  assert(false && "unknown server id");
  return *servers_.front();
}

const Server& Cluster::server(net::NodeId id) const {
  for (const auto& server : servers_) {
    if (server->id() == id) {
      return *server;
    }
  }
  assert(false && "unknown server id");
  return *servers_.front();
}

check::Operation Cluster::RunToCompletion(Client& c) {
  env_.simulator().RunUntilPredicate([&c]() { return c.idle(); },
                               env_.simulator().Now() + sim::Seconds(5));
  return c.last_op();
}

check::Operation Cluster::Lock(int client_index, const std::string& resource) {
  Client& c = client(client_index);
  c.BeginLock(resource);
  return RunToCompletion(c);
}

check::Operation Cluster::Unlock(int client_index, const std::string& resource) {
  Client& c = client(client_index);
  c.BeginUnlock(resource);
  return RunToCompletion(c);
}

check::Operation Cluster::SemAcquire(int client_index, const std::string& semaphore,
                                     int permits) {
  Client& c = client(client_index);
  c.BeginSemAcquire(semaphore, permits);
  return RunToCompletion(c);
}

check::Operation Cluster::SemRelease(int client_index, const std::string& semaphore) {
  Client& c = client(client_index);
  c.BeginSemRelease(semaphore);
  return RunToCompletion(c);
}

check::Operation Cluster::Increment(int client_index, const std::string& counter) {
  Client& c = client(client_index);
  c.BeginIncrement(counter);
  return RunToCompletion(c);
}

Cluster::State Cluster::CaptureState() const {
  State state;
  state.env = env_.Snapshot();
  state.servers.reserve(servers_.size());
  for (const auto& server : servers_) {
    state.servers.push_back(server->CaptureState());
  }
  state.clients.reserve(clients_.size());
  for (const auto& client : clients_) {
    state.clients.push_back(client->CaptureState());
  }
  return state;
}

void Cluster::RestoreState(const State& state) {
  env_.Restore(state.env);
  for (size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->RestoreState(state.servers.at(i));
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->RestoreState(state.clients.at(i));
  }
}

}  // namespace locksvc
