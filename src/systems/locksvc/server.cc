#include "systems/locksvc/server.h"

#include <algorithm>

namespace locksvc {

Server::Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               const Options& options, std::vector<net::NodeId> replicas)
    : cluster::Process(simulator, network, id, "locksvc.n" + std::to_string(id)),
      options_(options),
      replicas_(std::move(replicas)),
      detector_(id, replicas_, {options.heartbeat_interval, options.miss_threshold}) {
  view_.insert(replicas_.begin(), replicas_.end());
}

void Server::OnStart() {
  detector_.Reset(Now());
  Every(options_.heartbeat_interval, [this]() { Tick(); });
}

void Server::Tick() {
  for (net::NodeId peer : replicas_) {
    if (peer != id()) {
      Send<cluster::HeartbeatMsg>(peer, incarnation());
    }
  }
  if (options_.remove_unreachable) {
    for (net::NodeId peer : detector_.DeadPeers(Now())) {
      if (view_.erase(peer) != 0) {
        TraceEvent("view-remove", "peer=" + std::to_string(peer));
      }
    }
  }
  if (options_.reclaim_unreachable_clients) {
    std::vector<int> expired;
    for (const auto& [client, lease] : leases_) {
      if (!lease.holdings.empty() && Now() - lease.last_heard > options_.client_lease) {
        expired.push_back(client);
      }
    }
    for (int client : expired) {
      ReclaimClient(client);
    }
  }
}

int Server::LockHolder(const std::string& lock) const {
  auto it = locks_.find(lock);
  return it == locks_.end() ? 0 : it->second;
}

std::vector<int> Server::SemaphoreHolders(const std::string& semaphore) const {
  auto it = semaphores_.find(semaphore);
  if (it == semaphores_.end()) {
    return {};
  }
  return {it->second.holders.begin(), it->second.holders.end()};
}

bool Server::SemaphoreBroken(const std::string& semaphore) const {
  auto it = semaphores_.find(semaphore);
  return it != semaphores_.end() && it->second.broken;
}

int64_t Server::CounterValue(const std::string& counter) const {
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

size_t Server::QuorumNeeded() const {
  if (options_.quorum == Quorum::kMajorityOfCluster) {
    return replicas_.size() / 2 + 1;
  }
  return view_.size();  // every member of the (possibly shrunken) view
}

bool Server::ApplyLocal(ResourceKind kind, ClientOp op, const std::string& resource,
                        int client, int permits, int64_t* counter_value_out) {
  switch (kind) {
    case ResourceKind::kLock: {
      int& holder = locks_[resource];
      if (op == ClientOp::kAcquire) {
        if (holder != 0 && holder != client) {
          return false;
        }
        holder = client;
        return true;
      }
      if (holder != client) {
        return false;  // releasing a lock we do not hold
      }
      holder = 0;
      return true;
    }
    case ResourceKind::kSemaphore: {
      auto [it, inserted] = semaphores_.try_emplace(resource);
      Semaphore& sem = it->second;
      if (inserted) {
        sem.permits = permits;
      }
      if (op == ClientOp::kAcquire) {
        if (static_cast<int>(sem.holders.size()) >= sem.permits) {
          return false;
        }
        sem.holders.insert(client);
        return true;
      }
      auto holder = sem.holders.find(client);
      if (holder == sem.holders.end()) {
        // Releasing a permit that was reclaimed: the semaphore is corrupt
        // from here on (the Ignite post-heal corruption).
        sem.broken = true;
        TraceEvent("semaphore-broken", resource);
        return false;
      }
      sem.holders.erase(holder);
      return true;
    }
    case ResourceKind::kCounter: {
      int64_t& value = counters_[resource];
      if (op == ClientOp::kIncrement) {
        ++value;
      }
      if (counter_value_out != nullptr) {
        *counter_value_out = value;
      }
      return true;
    }
  }
  return false;
}

void Server::RollbackLocal(ResourceKind kind, const std::string& resource, int client) {
  if (kind == ResourceKind::kLock) {
    auto it = locks_.find(resource);
    if (it != locks_.end() && it->second == client) {
      it->second = 0;
    }
  } else if (kind == ResourceKind::kSemaphore) {
    auto it = semaphores_.find(resource);
    if (it != semaphores_.end()) {
      auto holder = it->second.holders.find(client);
      if (holder != it->second.holders.end()) {
        it->second.holders.erase(holder);
      }
    }
  }
  // Counters are not rolled back: a skipped value is harmless, a reused one
  // is not.
}

void Server::TrackHolding(int client, net::NodeId client_node, ResourceKind kind,
                          const std::string& resource, bool add) {
  ClientLease& lease = leases_[client];
  lease.node = client_node;
  lease.last_heard = Now();
  auto& holdings = lease.holdings;
  const auto entry = std::make_pair(kind, resource);
  if (add) {
    holdings.push_back(entry);
  } else {
    auto it = std::find(holdings.begin(), holdings.end(), entry);
    if (it != holdings.end()) {
      holdings.erase(it);
    }
  }
}

void Server::ReclaimClient(int client) {
  auto it = leases_.find(client);
  if (it == leases_.end()) {
    return;
  }
  TraceEvent("reclaim", "client=" + std::to_string(client));
  for (const auto& [kind, resource] : it->second.holdings) {
    RollbackLocal(kind, resource, client);
    for (net::NodeId peer : view_) {
      if (peer == id()) {
        continue;
      }
      auto abort = std::make_shared<PeerAbort>();
      abort->kind = kind;
      abort->resource = resource;
      abort->client = client;
      SendEnvelope(peer, abort);
    }
  }
  it->second.holdings.clear();
}

void Server::OnMessage(const net::Envelope& envelope) {
  const bool is_peer =
      std::find(replicas_.begin(), replicas_.end(), envelope.src) != replicas_.end();
  if (is_peer) {
    detector_.RecordHeartbeat(envelope.src, Now());
    // A peer heard from again rejoins the view — with no reconciliation of
    // the diverged tables, so double-granted locks persist past the heal.
    if (view_.insert(envelope.src).second) {
      TraceEvent("view-rejoin", "peer=" + std::to_string(envelope.src));
    }
  }
  const net::Message& msg = *envelope.msg;
  if (auto* request = dynamic_cast<const ClientLockRequest*>(&msg)) {
    HandleClientRequest(envelope, *request);
  } else if (auto* apply = dynamic_cast<const PeerApply*>(&msg)) {
    HandlePeerApply(envelope, *apply);
  } else if (auto* ack = dynamic_cast<const PeerAck*>(&msg)) {
    HandlePeerAck(envelope, *ack);
  } else if (auto* abort = dynamic_cast<const PeerAbort*>(&msg)) {
    HandlePeerAbort(*abort);
  } else if (auto* keepalive = dynamic_cast<const KeepAlive*>(&msg)) {
    HandleKeepAlive(envelope, *keepalive);
  }
}

void Server::HandleKeepAlive(const net::Envelope& envelope, const KeepAlive& msg) {
  auto it = leases_.find(msg.client);
  if (it != leases_.end()) {
    it->second.node = envelope.src;
    it->second.last_heard = Now();
  }
}

void Server::HandleClientRequest(const net::Envelope& envelope,
                                 const ClientLockRequest& request) {
  // The client number rides in the low digits of its node id (see Cluster);
  // the coordinator needs it to attribute holdings.
  const int client = static_cast<int>(envelope.src) - 100;

  int64_t counter_value = 0;
  const bool granted = ApplyLocal(request.kind, request.op, request.resource, client,
                                  request.permits, &counter_value);
  const bool is_release = request.op == ClientOp::kRelease;
  if (!granted) {
    auto reply = std::make_shared<ClientLockReply>();
    reply->request_id = request.request_id;
    reply->ok = false;
    SendEnvelope(envelope.src, reply);
    return;
  }
  if (is_release) {
    // Releases are propagated without waiting: they only ever free state.
    TrackHolding(client, envelope.src, request.kind, request.resource, /*add=*/false);
    for (net::NodeId peer : view_) {
      if (peer == id()) {
        continue;
      }
      auto apply = std::make_shared<PeerApply>();
      apply->kind = request.kind;
      apply->op = ClientOp::kRelease;
      apply->resource = request.resource;
      apply->client = client;
      SendEnvelope(peer, apply);
    }
    auto reply = std::make_shared<ClientLockReply>();
    reply->request_id = request.request_id;
    reply->ok = true;
    SendEnvelope(envelope.src, reply);
    return;
  }

  const uint64_t txn_id = next_txn_id_++;
  PendingTxn txn;
  txn.client_node = envelope.src;
  txn.client = client;
  txn.request_id = request.request_id;
  txn.kind = request.kind;
  txn.op = request.op;
  txn.resource = request.resource;
  txn.permits = request.permits;
  txn.counter_value = counter_value;
  txn.acks.insert(id());
  txn.needed = QuorumNeeded();
  if (txn.acks.size() >= txn.needed) {
    pending_.emplace(txn_id, std::move(txn));
    FinishTxn(txn_id, /*ok=*/true);
    return;
  }
  txn.timer = After(options_.acquire_timeout, [this, txn_id]() { AbortTxn(txn_id); });
  for (net::NodeId peer : view_) {
    if (peer == id()) {
      continue;
    }
    auto apply = std::make_shared<PeerApply>();
    apply->txn_id = txn_id;
    apply->kind = request.kind;
    apply->op = request.op;
    apply->resource = request.resource;
    apply->client = client;
    apply->permits = request.permits;
    apply->counter_value = counter_value;
    SendEnvelope(peer, apply);
  }
  pending_.emplace(txn_id, std::move(txn));
}

void Server::HandlePeerApply(const net::Envelope& envelope, const PeerApply& msg) {
  int64_t counter_value = 0;
  bool granted = false;
  if (msg.kind == ResourceKind::kCounter && msg.op == ClientOp::kIncrement) {
    // Adopt the coordinator's assignment; refuse if we already saw it.
    int64_t& value = counters_[msg.resource];
    granted = value < msg.counter_value;
    value = std::max(value, msg.counter_value);
    counter_value = value;
  } else {
    granted =
        ApplyLocal(msg.kind, msg.op, msg.resource, msg.client, msg.permits, &counter_value);
  }
  if (msg.op == ClientOp::kRelease) {
    return;  // fire-and-forget
  }
  auto ack = std::make_shared<PeerAck>();
  ack->txn_id = msg.txn_id;
  ack->granted = granted;
  ack->counter_value = counter_value;
  SendEnvelope(envelope.src, ack);
}

void Server::HandlePeerAck(const net::Envelope& envelope, const PeerAck& msg) {
  auto it = pending_.find(msg.txn_id);
  if (it == pending_.end()) {
    return;
  }
  if (!msg.granted) {
    AbortTxn(msg.txn_id);
    return;
  }
  it->second.acks.insert(envelope.src);
  it->second.applied_on.insert(envelope.src);
  if (it->second.acks.size() >= it->second.needed) {
    FinishTxn(msg.txn_id, /*ok=*/true);
  }
}

void Server::HandlePeerAbort(const PeerAbort& msg) {
  RollbackLocal(msg.kind, msg.resource, msg.client);
}

void Server::AbortTxn(uint64_t txn_id) {
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) {
    return;
  }
  PendingTxn txn = std::move(it->second);
  pending_.erase(it);
  simulator()->Cancel(txn.timer);
  RollbackLocal(txn.kind, txn.resource, txn.client);
  for (net::NodeId peer : txn.applied_on) {
    auto abort = std::make_shared<PeerAbort>();
    abort->kind = txn.kind;
    abort->resource = txn.resource;
    abort->client = txn.client;
    SendEnvelope(peer, abort);
  }
  auto reply = std::make_shared<ClientLockReply>();
  reply->request_id = txn.request_id;
  reply->ok = false;
  SendEnvelope(txn.client_node, reply);
}

void Server::FinishTxn(uint64_t txn_id, bool ok) {
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) {
    return;
  }
  PendingTxn txn = std::move(it->second);
  pending_.erase(it);
  simulator()->Cancel(txn.timer);
  if (ok && txn.op == ClientOp::kAcquire) {
    TrackHolding(txn.client, txn.client_node, txn.kind, txn.resource, /*add=*/true);
  }
  auto reply = std::make_shared<ClientLockReply>();
  reply->request_id = txn.request_id;
  reply->ok = ok;
  reply->counter_value = txn.counter_value;
  SendEnvelope(txn.client_node, reply);
}

Server::State Server::CaptureState() const {
  State state;
  state.view = view_;
  state.locks = locks_;
  state.semaphores = semaphores_;
  state.counters = counters_;
  state.pending = pending_;
  state.next_txn_id = next_txn_id_;
  state.leases = leases_;
  state.detector_last_heard = detector_.last_heard();
  return state;
}

void Server::RestoreState(const State& state) {
  view_ = state.view;
  locks_ = state.locks;
  semaphores_ = state.semaphores;
  counters_ = state.counters;
  pending_ = state.pending;
  next_txn_id_ = state.next_txn_id;
  leases_ = state.leases;
  detector_.set_last_heard(state.detector_last_heard);
}

}  // namespace locksvc
