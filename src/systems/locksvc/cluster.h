// A wired locksvc deployment for tests, benches, and the NEAT adapter.

#ifndef SYSTEMS_LOCKSVC_CLUSTER_H_
#define SYSTEMS_LOCKSVC_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/env.h"
#include "net/partition.h"
#include "systems/locksvc/client.h"
#include "systems/locksvc/server.h"

namespace locksvc {

class Cluster {
 public:
  struct Config {
    Options options;
    int num_clients = 2;
    uint64_t seed = 1;
    bool use_switch_backend = true;
  };

  explicit Cluster(const Config& config);

  sim::Simulator& simulator() { return env_.simulator(); }
  net::Network& network() { return env_.network(); }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  check::History& history() { return env_.history(); }
  neat::TestEnv& env() { return env_; }
  const std::vector<net::NodeId>& server_ids() const { return server_ids_; }
  Server& server(net::NodeId id);
  // Read-only lookup for const probes (e.g. LocksvcSystem::StateDigest).
  const Server& server(net::NodeId id) const;
  Client& client(int index) { return *clients_.at(static_cast<size_t>(index)); }

  void Settle(sim::Duration duration) { env_.Sleep(duration); }

  check::Operation Lock(int client, const std::string& resource);
  check::Operation Unlock(int client, const std::string& resource);
  check::Operation SemAcquire(int client, const std::string& semaphore, int permits);
  check::Operation SemRelease(int client, const std::string& semaphore);
  check::Operation Increment(int client, const std::string& counter);

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    neat::TestEnv::State env;
    std::vector<Server::State> servers;
    std::vector<Client::State> clients;
  };
  State CaptureState() const;
  void RestoreState(const State& state);

 private:
  check::Operation RunToCompletion(Client& c);

  neat::TestEnv env_;
  // detlint: allow(snapshot-field): cluster topology fixed at construction
  std::vector<net::NodeId> server_ids_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace locksvc

#endif  // SYSTEMS_LOCKSVC_CLUSTER_H_
