// Wire messages of the lock/semaphore/atomics service.

#ifndef SYSTEMS_LOCKSVC_MESSAGES_H_
#define SYSTEMS_LOCKSVC_MESSAGES_H_

#include <cstdint>
#include <string>

#include "net/message.h"

namespace locksvc {

enum class ResourceKind { kLock, kSemaphore, kCounter };
enum class ClientOp { kAcquire, kRelease, kIncrement };

// --- client <-> coordinator replica ---

struct ClientLockRequest : public net::Message {
  std::string TypeName() const override { return "locksvc.ClientLockRequest"; }
  uint64_t request_id = 0;
  ResourceKind kind = ResourceKind::kLock;
  ClientOp op = ClientOp::kAcquire;
  std::string resource;
  int permits = 1;  // semaphore capacity, fixed at first acquire
};

struct ClientLockReply : public net::Message {
  std::string TypeName() const override { return "locksvc.ClientLockReply"; }
  uint64_t request_id = 0;
  bool ok = false;
  int64_t counter_value = 0;  // for kIncrement
};

// Holding clients renew their lease through their coordinator.
struct KeepAlive : public net::Message {
  std::string TypeName() const override { return "locksvc.KeepAlive"; }
  int client = 0;
};

// --- coordinator <-> peer replicas (one round, then commit/abort) ---

struct PeerApply : public net::Message {
  std::string TypeName() const override { return "locksvc.PeerApply"; }
  uint64_t txn_id = 0;
  ResourceKind kind = ResourceKind::kLock;
  ClientOp op = ClientOp::kAcquire;
  std::string resource;
  int client = 0;
  int permits = 1;
  // For counters: the value the coordinator assigned. A peer grants only if
  // it has not yet seen this value, which keeps granted values unique.
  int64_t counter_value = 0;
};

struct PeerAck : public net::Message {
  std::string TypeName() const override { return "locksvc.PeerAck"; }
  uint64_t txn_id = 0;
  bool granted = false;
  int64_t counter_value = 0;
};

// Rolls back a PeerApply whose transaction failed to reach quorum.
struct PeerAbort : public net::Message {
  std::string TypeName() const override { return "locksvc.PeerAbort"; }
  uint64_t txn_id = 0;
  ResourceKind kind = ResourceKind::kLock;
  ClientOp op = ClientOp::kAcquire;
  std::string resource;
  int client = 0;
};

}  // namespace locksvc

#endif  // SYSTEMS_LOCKSVC_MESSAGES_H_
