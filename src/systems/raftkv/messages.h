// Raft RPCs and client messages.

#ifndef SYSTEMS_RAFTKV_MESSAGES_H_
#define SYSTEMS_RAFTKV_MESSAGES_H_

#include <string>
#include <vector>

#include "net/message.h"
#include "systems/raftkv/types.h"

namespace raftkv {

struct RequestVoteReq : public net::Message {
  std::string TypeName() const override { return "raft.RequestVote"; }
  uint64_t term = 0;
  net::NodeId candidate = net::kInvalidNode;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
};

struct RequestVoteResp : public net::Message {
  std::string TypeName() const override { return "raft.RequestVoteResp"; }
  uint64_t term = 0;
  bool granted = false;
};

struct AppendEntriesReq : public net::Message {
  std::string TypeName() const override { return "raft.AppendEntries"; }
  uint64_t term = 0;
  net::NodeId leader = net::kInvalidNode;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  std::vector<LogEntry> entries;
  uint64_t leader_commit = 0;
};

struct AppendEntriesResp : public net::Message {
  std::string TypeName() const override { return "raft.AppendEntriesResp"; }
  uint64_t term = 0;
  bool success = false;
  uint64_t match_index = 0;
};

// Leader -> removed replica: you are no longer part of the configuration.
// What the replica does next is the crux of RethinkDB #5289: retire with
// its log intact (correct) or delete the log and forget (flawed).
struct RemoveNotice : public net::Message {
  std::string TypeName() const override { return "raft.RemoveNotice"; }
  std::vector<net::NodeId> members;  // the new configuration
};

struct ClientCommand : public net::Message {
  std::string TypeName() const override { return "raft.ClientCommand"; }
  uint64_t request_id = 0;
  Command command;
};

struct ClientResponse : public net::Message {
  std::string TypeName() const override { return "raft.ClientResponse"; }
  uint64_t request_id = 0;
  bool ok = false;
  bool not_leader = false;
  net::NodeId leader_hint = net::kInvalidNode;
  std::string value;
};

}  // namespace raftkv

#endif  // SYSTEMS_RAFTKV_MESSAGES_H_
