// A raftkv client (including the admin operations).

#ifndef SYSTEMS_RAFTKV_CLIENT_H_
#define SYSTEMS_RAFTKV_CLIENT_H_

#include <string>
#include <vector>

#include "check/history.h"
#include "cluster/process.h"
#include "systems/raftkv/messages.h"

namespace raftkv {

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         std::vector<net::NodeId> servers, check::History* history);

  void set_contact(net::NodeId contact) { contact_ = contact; }
  void set_allow_redirect(bool allow) { allow_redirect_ = allow; }
  void set_op_timeout(sim::Duration timeout) { op_timeout_ = timeout; }

  void BeginPut(const std::string& key, const std::string& value);
  void BeginGet(const std::string& key, bool final_read = false);
  void BeginDelete(const std::string& key);
  // Admin: replace the cluster membership (modelled on RethinkDB's
  // "change the replication factor").
  void BeginChangeMembers(std::vector<net::NodeId> members);

  bool idle() const { return !outstanding_; }
  const check::Operation& last_op() const { return last_op_; }

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    net::NodeId contact = net::kInvalidNode;
    bool allow_redirect = true;
    sim::Duration op_timeout = sim::Milliseconds(1500);
    bool outstanding = false;
    Command current_command;
    uint64_t next_request_id = 1;
    uint64_t current_request_id = 0;
    int redirects_left = 0;
    check::Operation pending_op;
    check::Operation last_op;
    sim::EventId timeout_timer = sim::kInvalidEventId;
  };
  State CaptureState() const {
    return State{contact_,         allow_redirect_,     op_timeout_,
                 outstanding_,     current_command_,    next_request_id_,
                 current_request_id_, redirects_left_,  pending_op_,
                 last_op_,         timeout_timer_};
  }
  void RestoreState(const State& state) {
    contact_ = state.contact;
    allow_redirect_ = state.allow_redirect;
    op_timeout_ = state.op_timeout;
    outstanding_ = state.outstanding;
    current_command_ = state.current_command;
    next_request_id_ = state.next_request_id;
    current_request_id_ = state.current_request_id;
    redirects_left_ = state.redirects_left;
    pending_op_ = state.pending_op;
    last_op_ = state.last_op;
    timeout_timer_ = state.timeout_timer;
  }

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Begin(check::OpType type, Command command, bool final_read);
  void Complete(check::OpStatus status, const std::string& value);

  // detlint: allow(snapshot-field): client identity fixed at construction
  int client_num_;
  // detlint: allow(snapshot-field): server topology fixed at construction
  std::vector<net::NodeId> servers_;
  check::History* history_;
  net::NodeId contact_;
  bool allow_redirect_ = true;
  sim::Duration op_timeout_ = sim::Milliseconds(1500);

  bool outstanding_ = false;
  Command current_command_;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  int redirects_left_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
};

}  // namespace raftkv

#endif  // SYSTEMS_RAFTKV_CLIENT_H_
