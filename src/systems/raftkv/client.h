// A raftkv client (including the admin operations).

#ifndef SYSTEMS_RAFTKV_CLIENT_H_
#define SYSTEMS_RAFTKV_CLIENT_H_

#include <string>
#include <vector>

#include "check/history.h"
#include "cluster/process.h"
#include "systems/raftkv/messages.h"

namespace raftkv {

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         std::vector<net::NodeId> servers, check::History* history);

  void set_contact(net::NodeId contact) { contact_ = contact; }
  void set_allow_redirect(bool allow) { allow_redirect_ = allow; }
  void set_op_timeout(sim::Duration timeout) { op_timeout_ = timeout; }

  void BeginPut(const std::string& key, const std::string& value);
  void BeginGet(const std::string& key, bool final_read = false);
  void BeginDelete(const std::string& key);
  // Admin: replace the cluster membership (modelled on RethinkDB's
  // "change the replication factor").
  void BeginChangeMembers(std::vector<net::NodeId> members);

  bool idle() const { return !outstanding_; }
  const check::Operation& last_op() const { return last_op_; }

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Begin(check::OpType type, Command command, bool final_read);
  void Complete(check::OpStatus status, const std::string& value);

  int client_num_;
  std::vector<net::NodeId> servers_;
  check::History* history_;
  net::NodeId contact_;
  bool allow_redirect_ = true;
  sim::Duration op_timeout_ = sim::Milliseconds(1500);

  bool outstanding_ = false;
  Command current_command_;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  int redirects_left_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
};

}  // namespace raftkv

#endif  // SYSTEMS_RAFTKV_CLIENT_H_
