// A Raft server with a key-value state machine.
//
// Standard Raft (elections with the up-to-date log check, log replication,
// majority commit with the current-term restriction, leader no-op barrier,
// reads serialized through the log) plus log-entry membership changes
// applied at append time. The single deviation — behind the
// delete_log_on_removal option — is RethinkDB's tweak, which this module
// exists to study.

#ifndef SYSTEMS_RAFTKV_SERVER_H_
#define SYSTEMS_RAFTKV_SERVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.h"
#include "systems/raftkv/messages.h"
#include "systems/raftkv/types.h"

namespace raftkv {

class Server : public cluster::Process {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
         const Options& options, std::vector<net::NodeId> initial_members);

  // --- introspection ---
  Role role() const { return role_; }
  bool is_leader() const { return role_ == Role::kLeader; }
  uint64_t term() const { return term_; }
  uint64_t commit_index() const { return commit_index_; }
  size_t log_size() const { return log_.size(); }
  const std::vector<net::NodeId>& members() const { return members_; }
  bool removed() const { return removed_; }
  std::optional<std::string> StoreGet(const std::string& key) const;

  // --- snapshot / restore (NEAT fork executor) ---
  struct State;
  State CaptureState() const;
  void RestoreState(const State& state);

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Tick();
  void ResetElectionDeadline();
  void StartElection();
  void BecomeLeader();
  void BecomeFollower(uint64_t term, net::NodeId leader);
  void SendAppendEntries(net::NodeId peer);
  void BroadcastAppendEntries();
  void AdvanceCommitIndex();
  void ApplyCommitted();
  void ApplyConfig(const Command& command);
  void HandleRemoval();

  void HandleRequestVote(const net::Envelope& envelope, const RequestVoteReq& msg);
  void HandleRequestVoteResp(const net::Envelope& envelope, const RequestVoteResp& msg);
  void HandleAppendEntries(const net::Envelope& envelope, const AppendEntriesReq& msg);
  void HandleAppendEntriesResp(const net::Envelope& envelope, const AppendEntriesResp& msg);
  void HandleClientCommand(const net::Envelope& envelope, const ClientCommand& msg);

  uint64_t LastLogIndex() const { return log_.empty() ? 0 : log_.back().index; }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }
  const LogEntry* EntryAt(uint64_t index) const;  // 1-based; null if absent
  size_t Majority() const { return members_.size() / 2 + 1; }
  bool IsMember(net::NodeId node) const;
  void FailPending(const std::string& reason);

  // detlint: allow(snapshot-field): configuration fixed at construction
  Options options_;
  // detlint: allow(snapshot-field): bootstrap membership fixed at construction; live membership is in the replicated config
  std::vector<net::NodeId> initial_members_;
  std::vector<net::NodeId> members_;  // current configuration

  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  net::NodeId voted_for_ = net::kInvalidNode;
  net::NodeId leader_id_ = net::kInvalidNode;
  std::vector<LogEntry> log_;  // log_[i] has index i+1
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  sim::Time election_deadline_ = 0;
  bool removed_ = false;  // retired after a config change (correct behaviour)

  std::set<net::NodeId> votes_;
  std::map<net::NodeId, uint64_t> next_index_;
  std::map<net::NodeId, uint64_t> match_index_;

  std::map<std::string, std::string> store_;
  // Client responses awaiting commit, by log index.
  struct PendingClient {
    net::NodeId client = net::kInvalidNode;
    uint64_t request_id = 0;
  };
  std::map<uint64_t, PendingClient> pending_;
};

struct Server::State {
  std::vector<net::NodeId> members;
  Role role = Role::kFollower;
  uint64_t term = 0;
  net::NodeId voted_for = net::kInvalidNode;
  net::NodeId leader_id = net::kInvalidNode;
  std::vector<LogEntry> log;
  uint64_t commit_index = 0;
  uint64_t last_applied = 0;
  sim::Time election_deadline = 0;
  bool removed = false;
  std::set<net::NodeId> votes;
  std::map<net::NodeId, uint64_t> next_index;
  std::map<net::NodeId, uint64_t> match_index;
  std::map<std::string, std::string> store;
  std::map<uint64_t, PendingClient> pending;
};

}  // namespace raftkv

#endif  // SYSTEMS_RAFTKV_SERVER_H_
