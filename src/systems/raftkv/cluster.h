// A wired raftkv deployment.

#ifndef SYSTEMS_RAFTKV_CLUSTER_H_
#define SYSTEMS_RAFTKV_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/env.h"
#include "net/partition.h"
#include "systems/raftkv/client.h"
#include "systems/raftkv/server.h"

namespace raftkv {

class Cluster {
 public:
  struct Config {
    Options options;
    int num_servers = 5;
    int num_clients = 2;
    uint64_t seed = 1;
    bool use_switch_backend = true;
  };

  explicit Cluster(const Config& config);

  sim::Simulator& simulator() { return env_.simulator(); }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  check::History& history() { return env_.history(); }
  neat::TestEnv& env() { return env_; }
  const std::vector<net::NodeId>& server_ids() const { return server_ids_; }
  Server& server(net::NodeId id);
  Client& client(int index) { return *clients_.at(static_cast<size_t>(index)); }

  void Settle(sim::Duration duration) { env_.Sleep(duration); }
  // Runs until some server is leader (or the deadline passes); returns it.
  net::NodeId WaitForLeader(sim::Duration deadline = sim::Seconds(5));
  std::vector<net::NodeId> Leaders() const;

  check::Operation Put(int client, const std::string& key, const std::string& value);
  check::Operation Get(int client, const std::string& key, bool final_read = false);
  check::Operation Delete(int client, const std::string& key);
  check::Operation ChangeMembers(int client, std::vector<net::NodeId> members);

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    neat::TestEnv::State env;
    std::vector<Server::State> servers;
    std::vector<Client::State> clients;
  };
  State CaptureState() const;
  void RestoreState(const State& state);

 private:
  check::Operation RunToCompletion(Client& c);

  neat::TestEnv env_;
  // detlint: allow(snapshot-field): cluster topology fixed at construction
  std::vector<net::NodeId> server_ids_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace raftkv

#endif  // SYSTEMS_RAFTKV_CLUSTER_H_
