#include "systems/raftkv/cluster.h"

#include <cassert>

namespace raftkv {

Cluster::Cluster(const Config& config)
    : env_(neat::TestEnv::Options{config.seed, config.use_switch_backend}) {
  if (config.options.causal_trace) {
    env_.simulator().Trace().set_causal(true);
  }
  for (int i = 0; i < config.num_servers; ++i) {
    server_ids_.push_back(static_cast<net::NodeId>(i + 1));
  }
  for (net::NodeId id : server_ids_) {
    servers_.push_back(std::make_unique<Server>(&env_.simulator(), &env_.network(), id,
                                                config.options, server_ids_));
  }
  for (int i = 0; i < config.num_clients; ++i) {
    const net::NodeId client_id = static_cast<net::NodeId>(100 + i + 1);
    clients_.push_back(std::make_unique<Client>(&env_.simulator(), &env_.network(),
                                                client_id, i + 1,
                                                server_ids_, &env_.history()));
  }
  for (auto& server : servers_) {
    server->Boot();
    env_.RegisterProcess(server.get());
  }
  for (auto& client : clients_) {
    client->Boot();
    env_.RegisterProcess(client.get());
  }
}

Server& Cluster::server(net::NodeId id) {
  for (auto& server : servers_) {
    if (server->id() == id) {
      return *server;
    }
  }
  assert(false && "unknown server id");
  return *servers_.front();
}

std::vector<net::NodeId> Cluster::Leaders() const {
  std::vector<net::NodeId> out;
  for (const auto& server : servers_) {
    if (!server->crashed() && server->is_leader()) {
      out.push_back(server->id());
    }
  }
  return out;
}

net::NodeId Cluster::WaitForLeader(sim::Duration deadline) {
  env_.simulator().RunUntilPredicate([this]() { return !Leaders().empty(); },
                               env_.simulator().Now() + deadline);
  auto leaders = Leaders();
  return leaders.empty() ? net::kInvalidNode : leaders.front();
}

check::Operation Cluster::RunToCompletion(Client& c) {
  env_.simulator().RunUntilPredicate([&c]() { return c.idle(); },
                               env_.simulator().Now() + sim::Seconds(10));
  return c.last_op();
}

check::Operation Cluster::Put(int client_index, const std::string& key,
                              const std::string& value) {
  Client& c = client(client_index);
  c.BeginPut(key, value);
  return RunToCompletion(c);
}

check::Operation Cluster::Get(int client_index, const std::string& key, bool final_read) {
  Client& c = client(client_index);
  c.BeginGet(key, final_read);
  return RunToCompletion(c);
}

check::Operation Cluster::Delete(int client_index, const std::string& key) {
  Client& c = client(client_index);
  c.BeginDelete(key);
  return RunToCompletion(c);
}

check::Operation Cluster::ChangeMembers(int client_index, std::vector<net::NodeId> members) {
  Client& c = client(client_index);
  c.BeginChangeMembers(std::move(members));
  return RunToCompletion(c);
}

Cluster::State Cluster::CaptureState() const {
  State state;
  state.env = env_.Snapshot();
  state.servers.reserve(servers_.size());
  for (const auto& server : servers_) {
    state.servers.push_back(server->CaptureState());
  }
  state.clients.reserve(clients_.size());
  for (const auto& client : clients_) {
    state.clients.push_back(client->CaptureState());
  }
  return state;
}

void Cluster::RestoreState(const State& state) {
  env_.Restore(state.env);
  for (size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->RestoreState(state.servers.at(i));
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->RestoreState(state.clients.at(i));
  }
}

}  // namespace raftkv
