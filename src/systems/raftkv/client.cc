#include "systems/raftkv/client.h"

#include <cassert>
#include <utility>

namespace raftkv {

Client::Client(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               int client_num, std::vector<net::NodeId> servers, check::History* history)
    : cluster::Process(simulator, network, id, "raft.c" + std::to_string(client_num)),
      client_num_(client_num),
      servers_(std::move(servers)),
      history_(history) {
  assert(!servers_.empty());
  contact_ = servers_.front();
}

void Client::BeginPut(const std::string& key, const std::string& value) {
  Command command;
  command.kind = CommandKind::kPut;
  command.key = key;
  command.value = value;
  Begin(check::OpType::kWrite, std::move(command), /*final_read=*/false);
}

void Client::BeginGet(const std::string& key, bool final_read) {
  Command command;
  command.kind = CommandKind::kGet;
  command.key = key;
  Begin(check::OpType::kRead, std::move(command), final_read);
}

void Client::BeginDelete(const std::string& key) {
  Command command;
  command.kind = CommandKind::kDelete;
  command.key = key;
  Begin(check::OpType::kDelete, std::move(command), /*final_read=*/false);
}

void Client::BeginChangeMembers(std::vector<net::NodeId> members) {
  Command command;
  command.kind = CommandKind::kConfig;
  command.members = std::move(members);
  Begin(check::OpType::kOther, std::move(command), /*final_read=*/false);
}

void Client::Begin(check::OpType type, Command command, bool final_read) {
  assert(!outstanding_ && "one operation at a time");
  outstanding_ = true;
  current_command_ = std::move(command);
  current_request_id_ = next_request_id_++;
  redirects_left_ = 3;
  pending_op_ = check::Operation{};
  pending_op_.client = client_num_;
  pending_op_.type = type;
  pending_op_.key = current_command_.key;
  pending_op_.value = current_command_.value;
  pending_op_.invoked = Now();
  pending_op_.final_read = final_read;

  auto msg = std::make_shared<ClientCommand>();
  msg->request_id = current_request_id_;
  msg->command = current_command_;
  SendEnvelope(contact_, msg);
  timeout_timer_ = After(op_timeout_, [this]() {
    if (outstanding_) {
      Complete(check::OpStatus::kTimeout, "");
    }
  });
}

void Client::Complete(check::OpStatus status, const std::string& value) {
  outstanding_ = false;
  simulator()->Cancel(timeout_timer_);
  pending_op_.completed = Now();
  pending_op_.status = status;
  if (pending_op_.type == check::OpType::kRead) {
    pending_op_.value = value;
  }
  last_op_ = pending_op_;
  if (history_ != nullptr) {
    last_op_.id = history_->Record(pending_op_);
  }
}

void Client::OnMessage(const net::Envelope& envelope) {
  const auto* resp = dynamic_cast<const ClientResponse*>(envelope.msg.get());
  if (resp == nullptr || !outstanding_ || resp->request_id != current_request_id_) {
    return;
  }
  if (resp->not_leader) {
    if (allow_redirect_ && redirects_left_ > 0 && resp->leader_hint != net::kInvalidNode &&
        resp->leader_hint != envelope.src) {
      --redirects_left_;
      auto msg = std::make_shared<ClientCommand>();
      msg->request_id = current_request_id_;
      msg->command = current_command_;
      SendEnvelope(resp->leader_hint, msg);
      return;
    }
    Complete(check::OpStatus::kFail, "");
    return;
  }
  Complete(resp->ok ? check::OpStatus::kOk : check::OpStatus::kFail, resp->value);
}

}  // namespace raftkv
