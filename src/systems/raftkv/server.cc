#include "systems/raftkv/server.h"

#include <algorithm>

namespace raftkv {

Server::Server(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               const Options& options, std::vector<net::NodeId> initial_members)
    : cluster::Process(simulator, network, id, "raft.n" + std::to_string(id)),
      options_(options),
      initial_members_(std::move(initial_members)),
      members_(initial_members_) {}

void Server::OnStart() {
  ResetElectionDeadline();
  Every(options_.heartbeat_interval, [this]() { Tick(); });
}

void Server::ResetElectionDeadline() {
  const auto span = static_cast<uint64_t>(options_.election_timeout_max -
                                          options_.election_timeout_min);
  election_deadline_ = Now() + options_.election_timeout_min +
                       static_cast<sim::Duration>(simulator()->Rand().NextBelow(span));
}

std::optional<std::string> Server::StoreGet(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const LogEntry* Server::EntryAt(uint64_t index) const {
  if (index == 0 || index > log_.size()) {
    return nullptr;
  }
  return &log_[index - 1];
}

bool Server::IsMember(net::NodeId node) const {
  return std::find(members_.begin(), members_.end(), node) != members_.end();
}

void Server::Tick() {
  if (role_ == Role::kLeader) {
    BroadcastAppendEntries();
    return;
  }
  if (!removed_ && Now() >= election_deadline_) {
    StartElection();
  }
}

void Server::StartElection() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id();
  votes_.clear();
  votes_.insert(id());
  leader_id_ = net::kInvalidNode;
  ResetElectionDeadline();
  TraceEvent("election-start", "term=" + std::to_string(term_));
  if (votes_.size() >= Majority()) {
    BecomeLeader();
    return;
  }
  for (net::NodeId peer : members_) {
    if (peer == id()) {
      continue;
    }
    auto req = std::make_shared<RequestVoteReq>();
    req->term = term_;
    req->candidate = id();
    req->last_log_index = LastLogIndex();
    req->last_log_term = LastLogTerm();
    SendEnvelope(peer, req);
  }
}

void Server::BecomeLeader() {
  role_ = Role::kLeader;
  leader_id_ = id();
  TraceEvent("elected", "term=" + std::to_string(term_));
  next_index_.clear();
  match_index_.clear();
  for (net::NodeId peer : members_) {
    next_index_[peer] = LastLogIndex() + 1;
    match_index_[peer] = 0;
  }
  // No-op barrier entry: commits everything from earlier terms once it
  // commits (the standard fix for the stale-read-at-term-start hazard).
  LogEntry entry;
  entry.term = term_;
  entry.index = LastLogIndex() + 1;
  entry.command.kind = CommandKind::kNoop;
  log_.push_back(entry);
  BroadcastAppendEntries();
}

void Server::BecomeFollower(uint64_t term, net::NodeId leader) {
  const bool was_leader = role_ == Role::kLeader;
  role_ = Role::kFollower;
  if (term > term_) {
    term_ = term;
    voted_for_ = net::kInvalidNode;
  }
  if (leader != net::kInvalidNode) {
    leader_id_ = leader;
  }
  if (was_leader) {
    TraceEvent("step-down", "term=" + std::to_string(term));
    FailPending("lost leadership");
  }
}

void Server::FailPending(const std::string& reason) {
  (void)reason;
  for (const auto& [index, pending] : pending_) {
    auto resp = std::make_shared<ClientResponse>();
    resp->request_id = pending.request_id;
    resp->ok = false;
    resp->not_leader = true;
    resp->leader_hint = leader_id_;
    SendEnvelope(pending.client, resp);
  }
  pending_.clear();
}

void Server::SendAppendEntries(net::NodeId peer) {
  auto req = std::make_shared<AppendEntriesReq>();
  req->term = term_;
  req->leader = id();
  const uint64_t next = next_index_[peer];
  req->prev_log_index = next - 1;
  const LogEntry* prev = EntryAt(next - 1);
  req->prev_log_term = prev != nullptr ? prev->term : 0;
  for (uint64_t i = next; i <= LastLogIndex(); ++i) {
    req->entries.push_back(*EntryAt(i));
  }
  req->leader_commit = commit_index_;
  SendEnvelope(peer, req);
}

void Server::BroadcastAppendEntries() {
  for (net::NodeId peer : members_) {
    if (peer != id()) {
      SendAppendEntries(peer);
    }
  }
}

void Server::ApplyConfig(const Command& command) {
  const std::vector<net::NodeId> old_members = members_;
  members_ = command.members;
  TraceEvent("config", "members=" + std::to_string(members_.size()));
  if (role_ == Role::kLeader) {
    // Tell replicas that just left the configuration; the leader will not
    // contact them again.
    for (net::NodeId node : old_members) {
      if (node != id() && !IsMember(node)) {
        auto notice = std::make_shared<RemoveNotice>();
        notice->members = members_;
        SendEnvelope(node, notice);
      }
    }
  }
  if (!IsMember(id())) {
    HandleRemoval();
  }
}

void Server::HandleRemoval() {
  if (options_.delete_log_on_removal) {
    // The RethinkDB #5289 tweak: wipe the log — and with it the memory of
    // ever having been removed. The node is reborn into the *initial*
    // configuration, ready to vote for old-configuration candidates and to
    // serve old-configuration leaders: two replica sets for the same keys.
    TraceEvent("removed-wipe", "log deleted");
    log_.clear();
    store_.clear();
    commit_index_ = 0;
    last_applied_ = 0;
    term_ = 0;
    voted_for_ = net::kInvalidNode;
    leader_id_ = net::kInvalidNode;
    members_ = initial_members_;
    removed_ = false;
    role_ = Role::kFollower;
    pending_.clear();
    ResetElectionDeadline();
  } else {
    // Correct retirement: keep the log, refuse further participation.
    TraceEvent("removed-retire");
    removed_ = true;
    if (role_ == Role::kLeader) {
      FailPending("removed from configuration");
    }
    role_ = Role::kFollower;
  }
}

void Server::AdvanceCommitIndex() {
  for (uint64_t n = LastLogIndex(); n > commit_index_; --n) {
    const LogEntry* entry = EntryAt(n);
    if (entry->term != term_) {
      break;  // only current-term entries commit by counting (Raft §5.4.2)
    }
    size_t count = IsMember(id()) ? 1 : 0;
    for (net::NodeId peer : members_) {
      if (peer != id() && match_index_[peer] >= n) {
        ++count;
      }
    }
    if (count >= Majority()) {
      commit_index_ = n;
      break;
    }
  }
  ApplyCommitted();
}

void Server::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const LogEntry* entry = EntryAt(last_applied_);
    std::string read_value;
    switch (entry->command.kind) {
      case CommandKind::kPut:
        store_[entry->command.key] = entry->command.value;
        break;
      case CommandKind::kDelete:
        store_.erase(entry->command.key);
        break;
      case CommandKind::kGet: {
        auto it = store_.find(entry->command.key);
        read_value = it == store_.end() ? "" : it->second;
        break;
      }
      case CommandKind::kNoop:
      case CommandKind::kConfig:
        break;  // config already applied at append time
    }
    auto pending = pending_.find(last_applied_);
    if (pending != pending_.end()) {
      auto resp = std::make_shared<ClientResponse>();
      resp->request_id = pending->second.request_id;
      resp->ok = true;
      resp->value = read_value;
      SendEnvelope(pending->second.client, resp);
      pending_.erase(pending);
    }
  }
}

void Server::HandleRequestVote(const net::Envelope& envelope, const RequestVoteReq& msg) {
  if (removed_) {
    return;  // retired replicas no longer vote
  }
  if (msg.term > term_) {
    BecomeFollower(msg.term, net::kInvalidNode);
  }
  const bool log_ok = msg.last_log_term > LastLogTerm() ||
                      (msg.last_log_term == LastLogTerm() &&
                       msg.last_log_index >= LastLogIndex());
  const bool granted = msg.term == term_ && log_ok &&
                       (voted_for_ == net::kInvalidNode || voted_for_ == msg.candidate);
  if (granted) {
    voted_for_ = msg.candidate;
    ResetElectionDeadline();
  }
  auto resp = std::make_shared<RequestVoteResp>();
  resp->term = term_;
  resp->granted = granted;
  SendEnvelope(envelope.src, resp);
}

void Server::HandleRequestVoteResp(const net::Envelope& envelope, const RequestVoteResp& msg) {
  if (msg.term > term_) {
    BecomeFollower(msg.term, net::kInvalidNode);
    return;
  }
  if (role_ != Role::kCandidate || msg.term != term_ || !msg.granted) {
    return;
  }
  votes_.insert(envelope.src);
  if (votes_.size() >= Majority()) {
    BecomeLeader();
  }
}

void Server::HandleAppendEntries(const net::Envelope& envelope, const AppendEntriesReq& msg) {
  auto respond = [this, &envelope](bool success, uint64_t match) {
    auto resp = std::make_shared<AppendEntriesResp>();
    resp->term = term_;
    resp->success = success;
    resp->match_index = match;
    SendEnvelope(envelope.src, resp);
  };
  if (removed_) {
    return;  // retired replicas no longer replicate
  }
  if (msg.term < term_) {
    respond(false, 0);
    return;
  }
  BecomeFollower(msg.term, msg.leader);
  ResetElectionDeadline();

  if (msg.prev_log_index > 0) {
    const LogEntry* prev = EntryAt(msg.prev_log_index);
    if (prev == nullptr || prev->term != msg.prev_log_term) {
      respond(false, 0);
      return;
    }
  }
  for (const LogEntry& entry : msg.entries) {
    const LogEntry* existing = EntryAt(entry.index);
    if (existing != nullptr) {
      if (existing->term == entry.term) {
        continue;  // already have it
      }
      // Conflict: truncate our divergent suffix.
      log_.resize(entry.index - 1);
    }
    log_.push_back(entry);
    if (entry.command.kind == CommandKind::kConfig) {
      ApplyConfig(entry.command);
      if (log_.empty() || removed_) {
        // We were just removed (wiped or retired); drop out of this batch.
        return;
      }
    }
  }
  const uint64_t match = msg.prev_log_index + msg.entries.size();
  if (msg.leader_commit > commit_index_) {
    commit_index_ = std::min(msg.leader_commit, LastLogIndex());
    ApplyCommitted();
  }
  respond(true, match);
}

void Server::HandleAppendEntriesResp(const net::Envelope& envelope,
                                     const AppendEntriesResp& msg) {
  if (msg.term > term_) {
    BecomeFollower(msg.term, net::kInvalidNode);
    return;
  }
  if (role_ != Role::kLeader || msg.term != term_) {
    return;
  }
  const net::NodeId peer = envelope.src;
  if (msg.success) {
    match_index_[peer] = std::max(match_index_[peer], msg.match_index);
    next_index_[peer] = match_index_[peer] + 1;
    AdvanceCommitIndex();
  } else {
    if (next_index_[peer] > 1) {
      --next_index_[peer];
    }
    SendAppendEntries(peer);
  }
}

void Server::HandleClientCommand(const net::Envelope& envelope, const ClientCommand& msg) {
  if (role_ != Role::kLeader || removed_) {
    auto resp = std::make_shared<ClientResponse>();
    resp->request_id = msg.request_id;
    resp->ok = false;
    resp->not_leader = true;
    resp->leader_hint = leader_id_ == id() ? net::kInvalidNode : leader_id_;
    SendEnvelope(envelope.src, resp);
    return;
  }
  LogEntry entry;
  entry.term = term_;
  entry.index = LastLogIndex() + 1;
  entry.command = msg.command;
  log_.push_back(entry);
  pending_[entry.index] = PendingClient{envelope.src, msg.request_id};
  if (entry.command.kind == CommandKind::kConfig) {
    ApplyConfig(entry.command);
  }
  if (Majority() == 1) {
    AdvanceCommitIndex();
  }
  BroadcastAppendEntries();
}

void Server::OnMessage(const net::Envelope& envelope) {
  const net::Message& msg = *envelope.msg;
  if (auto* vote_req = dynamic_cast<const RequestVoteReq*>(&msg)) {
    HandleRequestVote(envelope, *vote_req);
  } else if (auto* vote_resp = dynamic_cast<const RequestVoteResp*>(&msg)) {
    HandleRequestVoteResp(envelope, *vote_resp);
  } else if (auto* append = dynamic_cast<const AppendEntriesReq*>(&msg)) {
    HandleAppendEntries(envelope, *append);
  } else if (auto* append_resp = dynamic_cast<const AppendEntriesResp*>(&msg)) {
    HandleAppendEntriesResp(envelope, *append_resp);
  } else if (auto* command = dynamic_cast<const ClientCommand*>(&msg)) {
    HandleClientCommand(envelope, *command);
  } else if (auto* notice = dynamic_cast<const RemoveNotice*>(&msg)) {
    const bool excluded = std::find(notice->members.begin(), notice->members.end(), id()) ==
                          notice->members.end();
    if (!removed_ && excluded) {
      members_ = notice->members;
      HandleRemoval();
    }
  }
}

Server::State Server::CaptureState() const {
  State state;
  state.members = members_;
  state.role = role_;
  state.term = term_;
  state.voted_for = voted_for_;
  state.leader_id = leader_id_;
  state.log = log_;
  state.commit_index = commit_index_;
  state.last_applied = last_applied_;
  state.election_deadline = election_deadline_;
  state.removed = removed_;
  state.votes = votes_;
  state.next_index = next_index_;
  state.match_index = match_index_;
  state.store = store_;
  state.pending = pending_;
  return state;
}

void Server::RestoreState(const State& state) {
  members_ = state.members;
  role_ = state.role;
  term_ = state.term;
  voted_for_ = state.voted_for;
  leader_id_ = state.leader_id;
  log_ = state.log;
  commit_index_ = state.commit_index;
  last_applied_ = state.last_applied;
  election_deadline_ = state.election_deadline;
  removed_ = state.removed;
  votes_ = state.votes;
  next_index_ = state.next_index;
  match_index_ = state.match_index;
  store_ = state.store;
  pending_ = state.pending;
}

}  // namespace raftkv
