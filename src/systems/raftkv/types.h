// Configuration and log types for the Raft-based key-value store.
//
// raftkv models RethinkDB in the study: a strongly consistent store built
// on Raft, with the documented protocol tweak as a knob. RethinkDB #5289:
// "unlike Raft, when an admin removes a replica from the cluster, the
// removed replica deletes its Raft log". Under a partial partition this
// "apparently minor tweak" creates two replica sets for the same keys —
// the old-configuration majority (which never heard about the removal and
// counts the amnesiac replica) and the new-configuration majority.

#ifndef SYSTEMS_RAFTKV_TYPES_H_
#define SYSTEMS_RAFTKV_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/time.h"

namespace raftkv {

enum class CommandKind {
  kNoop,    // leader barrier entry at term start
  kPut,
  kDelete,
  kGet,     // reads serialize through the log (linearizable)
  kConfig,  // membership change
};

struct Command {
  CommandKind kind = CommandKind::kNoop;
  std::string key;
  std::string value;
  // For kConfig: the new member set.
  std::vector<net::NodeId> members;
};

struct LogEntry {
  uint64_t term = 0;
  uint64_t index = 0;
  Command command;
};

struct Options {
  // The RethinkDB #5289 tweak: a replica that learns it was removed deletes
  // its entire Raft log (and with it, its memory of the removal), instead
  // of retiring with its log intact.
  bool delete_log_on_removal = false;

  sim::Duration heartbeat_interval = sim::Milliseconds(50);
  // Election timeouts are drawn uniformly from [min, max).
  sim::Duration election_timeout_min = sim::Milliseconds(300);
  sim::Duration election_timeout_max = sim::Milliseconds(600);

  // Collect the trace in causal mode (sim::TraceLog::set_causal) so the
  // cascade checker (check/causal.h) can stitch the happens-before graph.
  // Off by default: non-causal traces stay byte-identical.
  bool causal_trace = false;
};

inline Options CorrectOptions() { return Options{}; }

inline Options RethinkDbOptions() {
  Options options;
  options.delete_log_on_removal = true;
  return options;
}

}  // namespace raftkv

#endif  // SYSTEMS_RAFTKV_TYPES_H_
