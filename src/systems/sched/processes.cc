#include "systems/sched/processes.h"

#include <algorithm>
#include <cassert>

namespace sched {

// --- OutputStore ---

OutputStore::OutputStore(sim::Simulator* simulator, net::Network* network, net::NodeId id,
                         const Options& options)
    : cluster::Process(simulator, network, id, "sched.store"), options_(options) {}

void OutputStore::OnMessage(const net::Envelope& envelope) {
  const net::Message& msg = *envelope.msg;
  if (auto* reg = dynamic_cast<const RegisterAttempt*>(&msg)) {
    current_attempt_[reg->task_id] = reg->attempt;
    return;
  }
  if (auto* record = dynamic_cast<const RecordExecution*>(&msg)) {
    container_runs_.push_back(check::TaskExecution{
        record->task_id + "#p" + std::to_string(record->part), envelope.src, Now()});
    return;
  }
  if (auto* commit = dynamic_cast<const CommitResult*>(&msg)) {
    bool accepted = true;
    if (options_.fence_commits) {
      auto it = current_attempt_.find(commit->task_id);
      accepted = it != current_attempt_.end() && it->second == commit->attempt;
    }
    if (accepted) {
      commits_.push_back(check::TaskExecution{commit->task_id, envelope.src, Now()});
      TraceEvent("commit", commit->task_id + " attempt=" + std::to_string(commit->attempt));
    } else {
      TraceEvent("commit-fenced",
                 commit->task_id + " attempt=" + std::to_string(commit->attempt));
    }
    auto ack = std::make_shared<CommitAck>();
    ack->task_id = commit->task_id;
    ack->attempt = commit->attempt;
    ack->accepted = accepted;
    SendEnvelope(envelope.src, ack);
    return;
  }
}

// --- Worker (and AppMaster role) ---

Worker::Worker(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               const Options& options, std::vector<net::NodeId> workers, net::NodeId rm,
               net::NodeId store)
    : cluster::Process(simulator, network, id, "sched.w" + std::to_string(id)),
      options_(options),
      workers_(std::move(workers)),
      rm_(rm),
      store_(store) {}

bool Worker::HostsAppMasterFor(const std::string& task_id) const {
  return app_masters_.count(task_id) != 0;
}

void Worker::DispatchContainer(const std::string& task_id, AppMaster& am, int part) {
  // Rotate the target on each retry so a dead worker is routed around.
  const int tries = am.dispatch_tries[part]++;
  const net::NodeId target =
      workers_[static_cast<size_t>(part + tries) % workers_.size()];
  auto run = std::make_shared<RunContainer>();
  run->task_id = task_id;
  run->attempt = am.attempt;
  run->part = part;
  SendEnvelope(target, run);
}

void Worker::StartAm(const StartAppMaster& msg) {
  AppMaster am;
  am.attempt = msg.attempt;
  am.client = msg.client;
  TraceEvent("am-start", msg.task_id + " attempt=" + std::to_string(msg.attempt));
  // Fan containers out across the workers (including ourselves).
  for (int part = 0; part < options_.containers_per_task; ++part) {
    am.pending_parts.insert(part);
    DispatchContainer(msg.task_id, am, part);
  }
  const std::string task_id = msg.task_id;
  app_masters_[task_id] = std::move(am);
  // Heartbeat to the RM until the task is done (or we stop hosting it), and
  // re-dispatch containers that never report back.
  Every(options_.am_heartbeat_interval, [this, task_id]() {
    auto it = app_masters_.find(task_id);
    if (it != app_masters_.end() && !it->second.committed) {
      auto hb = std::make_shared<AmHeartbeat>();
      hb->task_id = task_id;
      hb->attempt = it->second.attempt;
      SendEnvelope(rm_, hb);
    }
  });
  Every(3 * options_.container_runtime, [this, task_id]() {
    auto it = app_masters_.find(task_id);
    if (it == app_masters_.end() || it->second.committed) {
      return;
    }
    for (int part : it->second.pending_parts) {
      DispatchContainer(task_id, it->second, part);
    }
  });
}

void Worker::OnContainerDone(const ContainerDone& msg) {
  auto it = app_masters_.find(msg.task_id);
  if (it == app_masters_.end() || it->second.attempt != msg.attempt) {
    return;
  }
  it->second.pending_parts.erase(msg.part);
  if (it->second.pending_parts.empty() && !it->second.committed) {
    auto commit = std::make_shared<CommitResult>();
    commit->task_id = msg.task_id;
    commit->attempt = msg.attempt;
    SendEnvelope(store_, commit);
  }
}

void Worker::OnCommitAck(const CommitAck& msg) {
  auto it = app_masters_.find(msg.task_id);
  if (it == app_masters_.end() || it->second.attempt != msg.attempt) {
    return;
  }
  if (!msg.accepted) {
    TraceEvent("am-fenced", msg.task_id);
    app_masters_.erase(it);
    return;
  }
  it->second.committed = true;
  auto note = std::make_shared<ResultNotification>();
  note->task_id = msg.task_id;
  note->attempt = msg.attempt;
  SendEnvelope(it->second.client, note);
  auto done = std::make_shared<TaskDone>();
  done->task_id = msg.task_id;
  done->attempt = msg.attempt;
  SendEnvelope(rm_, done);
}

void Worker::OnMessage(const net::Envelope& envelope) {
  const net::Message& msg = *envelope.msg;
  if (auto* start = dynamic_cast<const StartAppMaster*>(&msg)) {
    StartAm(*start);
    return;
  }
  if (auto* run = dynamic_cast<const RunContainer*>(&msg)) {
    // Execute the container: takes time, then reports to the store and the
    // requesting AppMaster.
    const RunContainer job = *run;
    const net::NodeId am = envelope.src;
    After(options_.container_runtime, [this, job, am]() {
      auto record = std::make_shared<RecordExecution>();
      record->task_id = job.task_id;
      record->attempt = job.attempt;
      record->part = job.part;
      SendEnvelope(store_, record);
      auto done = std::make_shared<ContainerDone>();
      done->task_id = job.task_id;
      done->attempt = job.attempt;
      done->part = job.part;
      SendEnvelope(am, done);
    });
    return;
  }
  if (auto* done = dynamic_cast<const ContainerDone*>(&msg)) {
    OnContainerDone(*done);
    return;
  }
  if (auto* ack = dynamic_cast<const CommitAck*>(&msg)) {
    OnCommitAck(*ack);
    return;
  }
}

// --- ResourceManager ---

ResourceManager::ResourceManager(sim::Simulator* simulator, net::Network* network,
                                 net::NodeId id, const Options& options,
                                 std::vector<net::NodeId> workers, net::NodeId store)
    : cluster::Process(simulator, network, id, "sched.rm"),
      options_(options),
      workers_(std::move(workers)),
      store_(store) {}

int ResourceManager::AttemptOf(const std::string& task_id) const {
  auto it = tasks_.find(task_id);
  return it == tasks_.end() ? 0 : it->second.attempt;
}

void ResourceManager::OnStart() {
  Every(options_.am_heartbeat_interval, [this]() { Tick(); });
}

void ResourceManager::Tick() {
  const sim::Duration timeout = options_.am_heartbeat_interval * options_.am_miss_threshold;
  for (auto& [task_id, task] : tasks_) {
    if (task.done) {
      continue;
    }
    if (Now() - task.last_am_heartbeat > timeout) {
      // The AppMaster is unreachable — which this RM, like the studied
      // systems, equates with crashed. Start a replacement attempt.
      TraceEvent("am-lost", task_id + " attempt=" + std::to_string(task.attempt));
      LaunchAttempt(task_id, task);
    }
  }
}

void ResourceManager::LaunchAttempt(const std::string& task_id, Task& task) {
  ++task.attempt;
  task.am_node = workers_[next_worker_ % workers_.size()];
  ++next_worker_;
  task.last_am_heartbeat = Now();
  auto reg = std::make_shared<RegisterAttempt>();
  reg->task_id = task_id;
  reg->attempt = task.attempt;
  SendEnvelope(store_, reg);
  auto start = std::make_shared<StartAppMaster>();
  start->task_id = task_id;
  start->attempt = task.attempt;
  start->client = task.client;
  SendEnvelope(task.am_node, start);
  TraceEvent("launch", task_id + " attempt=" + std::to_string(task.attempt) + " on n" +
                           std::to_string(task.am_node));
}

void ResourceManager::OnMessage(const net::Envelope& envelope) {
  const net::Message& msg = *envelope.msg;
  if (auto* submit = dynamic_cast<const SubmitTask*>(&msg)) {
    Task& task = tasks_[submit->task_id];
    task.client = envelope.src;
    LaunchAttempt(submit->task_id, task);
    auto ack = std::make_shared<SubmitAck>();
    ack->request_id = submit->request_id;
    ack->ok = true;
    SendEnvelope(envelope.src, ack);
    return;
  }
  if (auto* hb = dynamic_cast<const AmHeartbeat*>(&msg)) {
    auto it = tasks_.find(hb->task_id);
    if (it != tasks_.end() && it->second.attempt == hb->attempt) {
      it->second.last_am_heartbeat = Now();
    }
    return;
  }
  if (auto* done = dynamic_cast<const TaskDone*>(&msg)) {
    auto it = tasks_.find(done->task_id);
    if (it != tasks_.end()) {
      it->second.done = true;
    }
    return;
  }
}

// --- Client ---

Client::Client(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               int client_num, net::NodeId rm, check::History* history)
    : cluster::Process(simulator, network, id, "sched.c" + std::to_string(client_num)),
      client_num_(client_num),
      rm_(rm),
      history_(history) {}

void Client::BeginSubmit(const std::string& task_id) {
  assert(!outstanding_ && "one operation at a time");
  outstanding_ = true;
  current_request_id_ = next_request_id_++;
  pending_op_ = check::Operation{};
  pending_op_.client = client_num_;
  pending_op_.type = check::OpType::kSubmitTask;
  pending_op_.key = task_id;
  pending_op_.invoked = Now();
  auto submit = std::make_shared<SubmitTask>();
  submit->request_id = current_request_id_;
  submit->task_id = task_id;
  SendEnvelope(rm_, submit);
  timeout_timer_ = After(sim::Milliseconds(800), [this]() {
    if (outstanding_) {
      outstanding_ = false;
      pending_op_.completed = Now();
      pending_op_.status = check::OpStatus::kTimeout;
      last_op_ = pending_op_;
      if (history_ != nullptr) {
        last_op_.id = history_->Record(pending_op_);
      }
    }
  });
}

int Client::ResultCount(const std::string& task_id) const {
  int count = 0;
  for (const auto& [task, attempt] : results_) {
    if (task == task_id) {
      ++count;
    }
  }
  return count;
}

void Client::OnMessage(const net::Envelope& envelope) {
  const net::Message& msg = *envelope.msg;
  if (auto* ack = dynamic_cast<const SubmitAck*>(&msg)) {
    if (outstanding_ && ack->request_id == current_request_id_) {
      outstanding_ = false;
      simulator()->Cancel(timeout_timer_);
      pending_op_.completed = Now();
      pending_op_.status = ack->ok ? check::OpStatus::kOk : check::OpStatus::kFail;
      last_op_ = pending_op_;
      if (history_ != nullptr) {
        last_op_.id = history_->Record(pending_op_);
      }
    }
    return;
  }
  if (auto* note = dynamic_cast<const ResultNotification*>(&msg)) {
    results_.emplace_back(note->task_id, note->attempt);
    return;
  }
}

}  // namespace sched
