// The scheduler system's processes: ResourceManager, Worker (which can host
// an AppMaster), OutputStore, and Client.

#ifndef SYSTEMS_SCHED_PROCESSES_H_
#define SYSTEMS_SCHED_PROCESSES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "check/history.h"
#include "cluster/process.h"
#include "systems/sched/messages.h"
#include "systems/sched/types.h"

namespace sched {

// The shared durable store (HDFS analog): registers current attempts,
// records executions, and accepts or fences result commits.
class OutputStore : public cluster::Process {
 public:
  OutputStore(sim::Simulator* simulator, net::Network* network, net::NodeId id,
              const Options& options);

  // Committed results, in order (two entries with the same task id =
  // double execution of a user-visible result).
  const std::vector<check::TaskExecution>& commits() const { return commits_; }
  // Every container run (for the wasted-work metric).
  const std::vector<check::TaskExecution>& container_runs() const { return container_runs_; }

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  Options options_;
  std::map<std::string, int> current_attempt_;
  std::vector<check::TaskExecution> commits_;
  std::vector<check::TaskExecution> container_runs_;
};

// A worker runs containers, and hosts an AppMaster when the RM says so.
class Worker : public cluster::Process {
 public:
  Worker(sim::Simulator* simulator, net::Network* network, net::NodeId id,
         const Options& options, std::vector<net::NodeId> workers, net::NodeId rm,
         net::NodeId store);

  bool HostsAppMasterFor(const std::string& task_id) const;

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct AppMaster {
    int attempt = 0;
    net::NodeId client = net::kInvalidNode;
    std::set<int> pending_parts;
    std::map<int, int> dispatch_tries;  // part -> attempts, for re-dispatch
    bool committed = false;
  };

  void DispatchContainer(const std::string& task_id, AppMaster& am, int part);

  void StartAm(const StartAppMaster& msg);
  void OnContainerDone(const ContainerDone& msg);
  void OnCommitAck(const CommitAck& msg);

  Options options_;
  std::vector<net::NodeId> workers_;
  net::NodeId rm_;
  net::NodeId store_;
  std::map<std::string, AppMaster> app_masters_;  // tasks this node is AM for
};

class ResourceManager : public cluster::Process {
 public:
  ResourceManager(sim::Simulator* simulator, net::Network* network, net::NodeId id,
                  const Options& options, std::vector<net::NodeId> workers,
                  net::NodeId store);

  int AttemptOf(const std::string& task_id) const;

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct Task {
    int attempt = 0;
    net::NodeId am_node = net::kInvalidNode;
    net::NodeId client = net::kInvalidNode;
    sim::Time last_am_heartbeat = sim::kTimeZero;
    bool done = false;
  };

  void Tick();
  void LaunchAttempt(const std::string& task_id, Task& task);

  Options options_;
  std::vector<net::NodeId> workers_;
  net::NodeId store_;
  std::map<std::string, Task> tasks_;
  size_t next_worker_ = 0;  // round-robin AM placement
};

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         net::NodeId rm, check::History* history);

  void BeginSubmit(const std::string& task_id);
  bool idle() const { return !outstanding_; }
  const check::Operation& last_op() const { return last_op_; }
  // Result notifications received, possibly more than one per task.
  const std::vector<std::pair<std::string, int>>& results() const { return results_; }
  int ResultCount(const std::string& task_id) const;

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  int client_num_;
  net::NodeId rm_;
  check::History* history_;
  bool outstanding_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
  std::vector<std::pair<std::string, int>> results_;
};

}  // namespace sched

#endif  // SYSTEMS_SCHED_PROCESSES_H_
