// Configuration for the data-processing scheduler (MapReduce analog).
//
// A ResourceManager launches an AppMaster on a worker for every submitted
// task; the AppMaster fans containers out to workers, commits the result to
// a shared output store, and notifies the client. MAPREDUCE-4819/-4832
// (Figure 3): a partial partition between the AppMaster and the
// ResourceManager — with both still reaching the workers, the store, and
// the client — makes the ResourceManager start a second AppMaster while the
// first is still running, so the task executes and delivers results twice.
// The fix modelled here is commit fencing: the output store accepts a
// commit only from the attempt the ResourceManager registered last.

#ifndef SYSTEMS_SCHED_TYPES_H_
#define SYSTEMS_SCHED_TYPES_H_

#include "sim/time.h"

namespace sched {

struct Options {
  // The output store rejects commits from superseded attempts.
  bool fence_commits = true;

  int num_workers = 3;
  int containers_per_task = 2;
  sim::Duration container_runtime = sim::Milliseconds(200);
  sim::Duration am_heartbeat_interval = sim::Milliseconds(50);
  int am_miss_threshold = 3;  // RM declares the AM dead after this
};

inline Options CorrectOptions() { return Options{}; }

inline Options MapReduceOptions() {
  Options options;
  options.fence_commits = false;  // the MAPREDUCE-4819 behaviour
  return options;
}

}  // namespace sched

#endif  // SYSTEMS_SCHED_TYPES_H_
