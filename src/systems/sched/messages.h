// Wire messages of the scheduler system.

#ifndef SYSTEMS_SCHED_MESSAGES_H_
#define SYSTEMS_SCHED_MESSAGES_H_

#include <cstdint>
#include <string>

#include "net/message.h"

namespace sched {

// --- client <-> ResourceManager / AppMaster ---

struct SubmitTask : public net::Message {
  std::string TypeName() const override { return "sched.SubmitTask"; }
  uint64_t request_id = 0;
  std::string task_id;
};

struct SubmitAck : public net::Message {
  std::string TypeName() const override { return "sched.SubmitAck"; }
  uint64_t request_id = 0;
  bool ok = false;
};

// Sent by an AppMaster whose commit went through.
struct ResultNotification : public net::Message {
  std::string TypeName() const override { return "sched.ResultNotification"; }
  std::string task_id;
  int attempt = 0;
};

// --- ResourceManager <-> AppMaster host ---

struct StartAppMaster : public net::Message {
  std::string TypeName() const override { return "sched.StartAppMaster"; }
  std::string task_id;
  int attempt = 0;
  net::NodeId client = net::kInvalidNode;
};

struct AmHeartbeat : public net::Message {
  std::string TypeName() const override { return "sched.AmHeartbeat"; }
  std::string task_id;
  int attempt = 0;
};

struct TaskDone : public net::Message {
  std::string TypeName() const override { return "sched.TaskDone"; }
  std::string task_id;
  int attempt = 0;
};

// --- AppMaster <-> workers ---

struct RunContainer : public net::Message {
  std::string TypeName() const override { return "sched.RunContainer"; }
  std::string task_id;
  int attempt = 0;
  int part = 0;
};

struct ContainerDone : public net::Message {
  std::string TypeName() const override { return "sched.ContainerDone"; }
  std::string task_id;
  int attempt = 0;
  int part = 0;
};

// --- output store ---

struct RegisterAttempt : public net::Message {
  std::string TypeName() const override { return "sched.RegisterAttempt"; }
  std::string task_id;
  int attempt = 0;
};

struct RecordExecution : public net::Message {
  std::string TypeName() const override { return "sched.RecordExecution"; }
  std::string task_id;
  int attempt = 0;
  int part = 0;
};

struct CommitResult : public net::Message {
  std::string TypeName() const override { return "sched.CommitResult"; }
  std::string task_id;
  int attempt = 0;
};

struct CommitAck : public net::Message {
  std::string TypeName() const override { return "sched.CommitAck"; }
  std::string task_id;
  int attempt = 0;
  bool accepted = false;
};

}  // namespace sched

#endif  // SYSTEMS_SCHED_MESSAGES_H_
