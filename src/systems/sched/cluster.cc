#include "systems/sched/cluster.h"

#include <cassert>

namespace sched {

Cluster::Cluster(const Config& config)
    : env_(neat::TestEnv::Options{config.seed, config.use_switch_backend}) {
  for (int i = 0; i < config.options.num_workers; ++i) {
    worker_ids_.push_back(static_cast<net::NodeId>(i + 1));
  }
  rm_ = std::make_unique<ResourceManager>(&env_.simulator(), &env_.network(), rm_id_,
                                          config.options,
                                          worker_ids_, store_id_);
  store_ = std::make_unique<OutputStore>(&env_.simulator(), &env_.network(), store_id_,
                                         config.options);
  for (net::NodeId id : worker_ids_) {
    workers_.push_back(std::make_unique<Worker>(&env_.simulator(), &env_.network(), id,
                                                config.options, worker_ids_, rm_id_,
                                                store_id_));
  }
  for (int i = 0; i < config.num_clients; ++i) {
    const net::NodeId client_id = static_cast<net::NodeId>(100 + i + 1);
    clients_.push_back(std::make_unique<Client>(&env_.simulator(), &env_.network(),
                                                client_id, i + 1,
                                                rm_id_, &env_.history()));
  }
  rm_->Boot();
  env_.RegisterProcess(rm_.get());
  store_->Boot();
  env_.RegisterProcess(store_.get());
  for (auto& worker : workers_) {
    worker->Boot();
    env_.RegisterProcess(worker.get());
  }
  for (auto& client : clients_) {
    client->Boot();
    env_.RegisterProcess(client.get());
  }
}

Worker& Cluster::worker(net::NodeId id) {
  for (auto& worker : workers_) {
    if (worker->id() == id) {
      return *worker;
    }
  }
  assert(false && "unknown worker id");
  return *workers_.front();
}

check::Operation Cluster::Submit(int client_index, const std::string& task_id) {
  Client& c = client(client_index);
  c.BeginSubmit(task_id);
  env_.simulator().RunUntilPredicate([&c]() { return c.idle(); },
                               env_.simulator().Now() + sim::Seconds(5));
  return c.last_op();
}

}  // namespace sched
