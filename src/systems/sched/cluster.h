// A wired scheduler deployment: ResourceManager, workers, output store,
// and clients.

#ifndef SYSTEMS_SCHED_CLUSTER_H_
#define SYSTEMS_SCHED_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/env.h"
#include "net/partition.h"
#include "systems/sched/processes.h"

namespace sched {

class Cluster {
 public:
  struct Config {
    Options options;
    int num_clients = 1;
    uint64_t seed = 1;
    bool use_switch_backend = true;
  };

  explicit Cluster(const Config& config);

  sim::Simulator& simulator() { return env_.simulator(); }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  check::History& history() { return env_.history(); }
  neat::TestEnv& env() { return env_; }

  net::NodeId rm_id() const { return rm_id_; }
  net::NodeId store_id() const { return store_id_; }
  const std::vector<net::NodeId>& worker_ids() const { return worker_ids_; }

  ResourceManager& rm() { return *rm_; }
  const ResourceManager& rm() const { return *rm_; }
  OutputStore& store() { return *store_; }
  Worker& worker(net::NodeId id);
  Client& client(int index) { return *clients_.at(static_cast<size_t>(index)); }

  void Settle(sim::Duration duration) { env_.Sleep(duration); }
  check::Operation Submit(int client, const std::string& task_id);

 private:
  neat::TestEnv env_;
  net::NodeId rm_id_ = 10;
  net::NodeId store_id_ = 20;
  std::vector<net::NodeId> worker_ids_;
  std::unique_ptr<ResourceManager> rm_;
  std::unique_ptr<OutputStore> store_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace sched

#endif  // SYSTEMS_SCHED_CLUSTER_H_
