// A queue broker. Mastership is an ephemeral entry in the coordination
// service; slaves watch it and race to re-create it when it disappears.

#ifndef SYSTEMS_MQUEUE_BROKER_H_
#define SYSTEMS_MQUEUE_BROKER_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/failure_detector.h"
#include "cluster/process.h"
#include "systems/mqueue/messages.h"
#include "systems/mqueue/types.h"
#include "systems/zk/messages.h"

namespace mqueue {

class Broker : public cluster::Process {
 public:
  Broker(sim::Simulator* simulator, net::Network* network, net::NodeId id,
         const Options& options, std::vector<net::NodeId> brokers, net::NodeId zk);

  bool is_master() const { return is_master_; }
  size_t QueueSize(const std::string& queue) const;
  bool QueueContains(const std::string& queue, const std::string& value) const;

  // --- snapshot / restore (NEAT fork executor) ---
  struct State;
  State CaptureState() const;
  void RestoreState(const State& state);

 protected:
  void OnStart() override;
  void OnMessage(const net::Envelope& envelope) override;

 private:
  struct PendingOp {
    net::NodeId client = net::kInvalidNode;
    uint64_t request_id = 0;
    QueueOp op = QueueOp::kEnqueue;
    std::string queue;
    std::string value;
    std::set<net::NodeId> acks;
    size_t needed = 0;
    sim::EventId timer = sim::kInvalidEventId;
  };

  void Tick();
  void TryBecomeMaster();
  void ResignMastership(const std::string& reason);
  void HandleClientRequest(const net::Envelope& envelope, const ClientQueueRequest& request);
  void HandleReplOp(const net::Envelope& envelope, const ReplOp& msg);
  void HandleReplAck(const net::Envelope& envelope, const ReplAck& msg);
  void FinishOp(uint64_t seq, bool ok);
  void Reply(net::NodeId client, uint64_t request_id, bool ok, const std::string& value,
             bool not_master = false);
  bool LeaseValid() const;
  size_t Majority() const { return brokers_.size() / 2 + 1; }

  // Applies an op to the local queues. For dequeue, removes `value`.
  void ApplyLocal(QueueOp op, const std::string& queue, const std::string& value);

  // detlint: allow(snapshot-field): configuration fixed at construction
  Options options_;
  // detlint: allow(snapshot-field): broker topology fixed at construction
  std::vector<net::NodeId> brokers_;
  // detlint: allow(snapshot-field): registry address fixed at construction
  net::NodeId zk_;
  bool is_master_ = false;
  bool create_pending_ = false;
  sim::Time last_zk_pong_ = sim::kTimeZero;
  uint64_t next_zk_request_ = 1;
  uint64_t next_seq_ = 1;
  std::map<std::string, std::deque<std::string>> queues_;
  std::map<uint64_t, PendingOp> pending_;
  cluster::FailureDetector detector_;
};

struct Broker::State {
  bool is_master = false;
  bool create_pending = false;
  sim::Time last_zk_pong = sim::kTimeZero;
  uint64_t next_zk_request = 1;
  uint64_t next_seq = 1;
  std::map<std::string, std::deque<std::string>> queues;
  std::map<uint64_t, PendingOp> pending;
  std::map<net::NodeId, sim::Time> detector_last_heard;
};

}  // namespace mqueue

#endif  // SYSTEMS_MQUEUE_BROKER_H_
