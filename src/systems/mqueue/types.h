// Configuration for the replicated message queue (ActiveMQ analog).
//
// A master broker — elected through the coordination service — serves
// enqueues and dequeues and replicates them to slave brokers. The two
// failures NEAT found in ActiveMQ map to two knobs:
//
//  - AMQ-6978 (double dequeue under a complete partition): consumer
//    acknowledgements applied locally and replicated asynchronously, so an
//    isolated old master hands out a message the new master still has.
//    Fix: dequeues commit only after a majority of brokers acknowledged the
//    removal (sync_dequeue).
//  - AMQ-7064 (cluster blocks indefinitely under a partial partition): the
//    master cannot reach any replica, so every operation stalls — and the
//    replicas cannot elect a replacement because ZooKeeper still sees the
//    master's session. Fix: a master that cannot reach a majority of its
//    replicas resigns its mastership entry (resign_when_isolated).

#ifndef SYSTEMS_MQUEUE_TYPES_H_
#define SYSTEMS_MQUEUE_TYPES_H_

#include "sim/time.h"

namespace mqueue {

struct Options {
  // Commit dequeues through a majority, like enqueues (correct) — or apply
  // locally and replicate asynchronously (the AMQ-6978 flaw).
  bool sync_dequeue = true;
  // A master that cannot replicate resigns so the replicas can take over
  // (fixes the AMQ-7064 hang).
  bool resign_when_isolated = true;
  // A master whose coordination-service lease lapsed stops serving.
  bool require_zk_lease = true;

  int num_brokers = 3;
  sim::Duration heartbeat_interval = sim::Milliseconds(50);
  int miss_threshold = 3;
  sim::Duration replication_timeout = sim::Milliseconds(150);
  sim::Duration zk_session_timeout = sim::Milliseconds(300);

  // Collect the trace in causal mode (sim::TraceLog::set_causal) so the
  // cascade checker (check/causal.h) can stitch the happens-before graph.
  // Off by default: non-causal traces stay byte-identical.
  bool causal_trace = false;
};

inline Options CorrectOptions() { return Options{}; }

// The ActiveMQ-like configuration reproducing Figure 6 and Listing 2.
inline Options ActiveMqOptions() {
  Options options;
  options.sync_dequeue = false;
  options.resign_when_isolated = false;
  options.require_zk_lease = false;
  return options;
}

}  // namespace mqueue

#endif  // SYSTEMS_MQUEUE_TYPES_H_
