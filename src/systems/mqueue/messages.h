// Wire messages of the replicated message queue.

#ifndef SYSTEMS_MQUEUE_MESSAGES_H_
#define SYSTEMS_MQUEUE_MESSAGES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "net/message.h"

namespace mqueue {

enum class QueueOp { kEnqueue, kDequeue };

struct ClientQueueRequest : public net::Message {
  std::string TypeName() const override { return "mqueue.ClientRequest"; }
  uint64_t request_id = 0;
  QueueOp op = QueueOp::kEnqueue;
  std::string queue;
  std::string value;  // enqueue payload
};

struct ClientQueueReply : public net::Message {
  std::string TypeName() const override { return "mqueue.ClientReply"; }
  uint64_t request_id = 0;
  bool ok = false;
  bool not_master = false;
  std::string value;  // dequeued payload ("" = queue empty)
};

struct ReplOp : public net::Message {
  std::string TypeName() const override { return "mqueue.ReplOp"; }
  uint64_t seq = 0;
  QueueOp op = QueueOp::kEnqueue;
  std::string queue;
  std::string value;
};

struct ReplAck : public net::Message {
  std::string TypeName() const override { return "mqueue.ReplAck"; }
  uint64_t seq = 0;
};

// Full-state transfer when a broker (re)joins as a slave.
struct QueueSyncRequest : public net::Message {
  std::string TypeName() const override { return "mqueue.SyncRequest"; }
};

struct QueueSnapshot : public net::Message {
  std::string TypeName() const override { return "mqueue.Snapshot"; }
  std::map<std::string, std::deque<std::string>> queues;
};

}  // namespace mqueue

#endif  // SYSTEMS_MQUEUE_MESSAGES_H_
