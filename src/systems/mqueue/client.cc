#include "systems/mqueue/client.h"

#include <cassert>
#include <utility>

namespace mqueue {

Client::Client(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               int client_num, std::vector<net::NodeId> brokers, check::History* history)
    : cluster::Process(simulator, network, id, "mq.c" + std::to_string(client_num)),
      client_num_(client_num),
      brokers_(std::move(brokers)),
      history_(history) {
  assert(!brokers_.empty());
  contact_ = brokers_.front();
}

void Client::BeginSend(const std::string& queue, const std::string& value) {
  Begin(check::OpType::kEnqueue, QueueOp::kEnqueue, queue, value, /*final_drain=*/false);
}

void Client::BeginReceive(const std::string& queue, bool final_drain) {
  Begin(check::OpType::kDequeue, QueueOp::kDequeue, queue, "", final_drain);
}

void Client::Begin(check::OpType type, QueueOp op, const std::string& queue,
                   const std::string& value, bool final_drain) {
  assert(!outstanding_ && "one operation at a time");
  outstanding_ = true;
  current_request_id_ = next_request_id_++;
  pending_op_ = check::Operation{};
  pending_op_.client = client_num_;
  pending_op_.type = type;
  pending_op_.key = queue;
  pending_op_.value = value;
  pending_op_.invoked = Now();
  pending_op_.final_read = final_drain;

  auto request = std::make_shared<ClientQueueRequest>();
  request->request_id = current_request_id_;
  request->op = op;
  request->queue = queue;
  request->value = value;
  SendEnvelope(contact_, request);
  timeout_timer_ = After(op_timeout_, [this]() {
    if (outstanding_) {
      Complete(check::OpStatus::kTimeout, "");
    }
  });
}

void Client::Complete(check::OpStatus status, const std::string& value) {
  outstanding_ = false;
  simulator()->Cancel(timeout_timer_);
  pending_op_.completed = Now();
  pending_op_.status = status;
  if (pending_op_.type == check::OpType::kDequeue) {
    pending_op_.value = value;
  }
  last_op_ = pending_op_;
  if (history_ != nullptr) {
    last_op_.id = history_->Record(pending_op_);
  }
}

void Client::OnMessage(const net::Envelope& envelope) {
  const auto* reply = dynamic_cast<const ClientQueueReply*>(envelope.msg.get());
  if (reply == nullptr || !outstanding_ || reply->request_id != current_request_id_) {
    return;
  }
  if (reply->not_master) {
    Complete(check::OpStatus::kFail, "");
    return;
  }
  Complete(reply->ok ? check::OpStatus::kOk : check::OpStatus::kFail, reply->value);
}

}  // namespace mqueue
