#include "systems/mqueue/cluster.h"

#include <cassert>

namespace mqueue {

Cluster::Cluster(const Config& config)
    : env_(neat::TestEnv::Options{config.seed, config.use_switch_backend}) {
  if (config.options.causal_trace) {
    env_.simulator().Trace().set_causal(true);
  }
  for (int i = 0; i < config.options.num_brokers; ++i) {
    broker_ids_.push_back(static_cast<net::NodeId>(i + 1));
  }
  zk_id_ = 50;
  zksvc::Registry::Options zk_options;
  zk_options.session_timeout = config.options.zk_session_timeout;
  registry_ = std::make_unique<zksvc::Registry>(&env_.simulator(), &env_.network(), zk_id_,
                                                zk_options);
  for (net::NodeId id : broker_ids_) {
    brokers_.push_back(std::make_unique<Broker>(&env_.simulator(), &env_.network(), id,
                                                config.options, broker_ids_, zk_id_));
  }
  for (int i = 0; i < config.num_clients; ++i) {
    const net::NodeId client_id = static_cast<net::NodeId>(100 + i + 1);
    clients_.push_back(std::make_unique<Client>(&env_.simulator(), &env_.network(),
                                                client_id, i + 1,
                                                broker_ids_, &env_.history()));
  }
  registry_->Boot();
  env_.RegisterProcess(registry_.get());
  for (auto& broker : brokers_) {
    broker->Boot();
    env_.RegisterProcess(broker.get());
  }
  for (auto& client : clients_) {
    client->Boot();
    env_.RegisterProcess(client.get());
  }
}

Broker& Cluster::broker(net::NodeId id) {
  for (auto& broker : brokers_) {
    if (broker->id() == id) {
      return *broker;
    }
  }
  assert(false && "unknown broker id");
  return *brokers_.front();
}

net::NodeId Cluster::MasterPerRegistry() const {
  const std::string data = registry_->Data("/mq/master");
  if (data.empty()) {
    return net::kInvalidNode;
  }
  return static_cast<net::NodeId>(std::stol(data));
}

std::vector<net::NodeId> Cluster::SelfBelievedMasters() const {
  std::vector<net::NodeId> out;
  for (const auto& broker : brokers_) {
    if (!broker->crashed() && broker->is_master()) {
      out.push_back(broker->id());
    }
  }
  return out;
}

check::Operation Cluster::RunToCompletion(Client& c) {
  env_.simulator().RunUntilPredicate([&c]() { return c.idle(); },
                               env_.simulator().Now() + sim::Seconds(5));
  return c.last_op();
}

check::Operation Cluster::Send(int client_index, const std::string& queue,
                               const std::string& value) {
  Client& c = client(client_index);
  c.BeginSend(queue, value);
  return RunToCompletion(c);
}

check::Operation Cluster::Receive(int client_index, const std::string& queue,
                                  bool final_drain) {
  Client& c = client(client_index);
  c.BeginReceive(queue, final_drain);
  return RunToCompletion(c);
}

Cluster::State Cluster::CaptureState() const {
  State state;
  state.env = env_.Snapshot();
  state.brokers.reserve(brokers_.size());
  for (const auto& broker : brokers_) {
    state.brokers.push_back(broker->CaptureState());
  }
  state.registry = registry_->CaptureState();
  state.clients.reserve(clients_.size());
  for (const auto& client : clients_) {
    state.clients.push_back(client->CaptureState());
  }
  return state;
}

void Cluster::RestoreState(const State& state) {
  env_.Restore(state.env);
  for (size_t i = 0; i < brokers_.size(); ++i) {
    brokers_[i]->RestoreState(state.brokers.at(i));
  }
  registry_->RestoreState(state.registry);
  for (size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->RestoreState(state.clients.at(i));
  }
}

}  // namespace mqueue
