// A queue client (producer/consumer).

#ifndef SYSTEMS_MQUEUE_CLIENT_H_
#define SYSTEMS_MQUEUE_CLIENT_H_

#include <string>
#include <vector>

#include "check/history.h"
#include "cluster/process.h"
#include "systems/mqueue/messages.h"

namespace mqueue {

class Client : public cluster::Process {
 public:
  Client(sim::Simulator* simulator, net::Network* network, net::NodeId id, int client_num,
         std::vector<net::NodeId> brokers, check::History* history);

  void set_contact(net::NodeId contact) { contact_ = contact; }
  void set_op_timeout(sim::Duration timeout) { op_timeout_ = timeout; }

  void BeginSend(const std::string& queue, const std::string& value);
  void BeginReceive(const std::string& queue, bool final_drain = false);

  bool idle() const { return !outstanding_; }
  const check::Operation& last_op() const { return last_op_; }
  int client_num() const { return client_num_; }

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    net::NodeId contact = net::kInvalidNode;
    sim::Duration op_timeout = sim::Milliseconds(800);
    bool outstanding = false;
    uint64_t next_request_id = 1;
    uint64_t current_request_id = 0;
    check::Operation pending_op;
    check::Operation last_op;
    sim::EventId timeout_timer = sim::kInvalidEventId;
  };
  State CaptureState() const {
    return State{contact_,     op_timeout_, outstanding_,  next_request_id_,
                 current_request_id_, pending_op_, last_op_, timeout_timer_};
  }
  void RestoreState(const State& state) {
    contact_ = state.contact;
    op_timeout_ = state.op_timeout;
    outstanding_ = state.outstanding;
    next_request_id_ = state.next_request_id;
    current_request_id_ = state.current_request_id;
    pending_op_ = state.pending_op;
    last_op_ = state.last_op;
    timeout_timer_ = state.timeout_timer;
  }

 protected:
  void OnMessage(const net::Envelope& envelope) override;

 private:
  void Begin(check::OpType type, QueueOp op, const std::string& queue,
             const std::string& value, bool final_drain);
  void Complete(check::OpStatus status, const std::string& value);

  // detlint: allow(snapshot-field): client identity fixed at construction
  int client_num_;
  // detlint: allow(snapshot-field): broker topology fixed at construction
  std::vector<net::NodeId> brokers_;
  check::History* history_;
  net::NodeId contact_;
  sim::Duration op_timeout_ = sim::Milliseconds(800);

  bool outstanding_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t current_request_id_ = 0;
  check::Operation pending_op_;
  check::Operation last_op_;
  sim::EventId timeout_timer_ = sim::kInvalidEventId;
};

}  // namespace mqueue

#endif  // SYSTEMS_MQUEUE_CLIENT_H_
