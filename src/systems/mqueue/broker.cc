#include "systems/mqueue/broker.h"

#include <algorithm>

namespace mqueue {

namespace {
constexpr char kMasterPath[] = "/mq/master";
}  // namespace

Broker::Broker(sim::Simulator* simulator, net::Network* network, net::NodeId id,
               const Options& options, std::vector<net::NodeId> brokers, net::NodeId zk)
    : cluster::Process(simulator, network, id, "mq.b" + std::to_string(id)),
      options_(options),
      brokers_(std::move(brokers)),
      zk_(zk),
      detector_(id, brokers_, {options.heartbeat_interval, options.miss_threshold}) {}

void Broker::OnStart() {
  last_zk_pong_ = Now();
  detector_.Reset(Now());
  // Stagger the initial mastership race so startup is deterministic; the
  // registry's first-create-wins rule is the real arbiter.
  const auto index = static_cast<sim::Duration>(
      std::find(brokers_.begin(), brokers_.end(), id()) - brokers_.begin());
  After(sim::Milliseconds(1) + index * sim::Milliseconds(5), [this]() { TryBecomeMaster(); });
  Every(options_.heartbeat_interval, [this]() { Tick(); });
}

size_t Broker::QueueSize(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.size();
}

bool Broker::QueueContains(const std::string& queue, const std::string& value) const {
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), value) != it->second.end();
}

bool Broker::LeaseValid() const {
  return Now() - last_zk_pong_ <= options_.zk_session_timeout / 2;
}

void Broker::Tick() {
  Send<zksvc::ZkPing>(zk_);
  for (net::NodeId peer : brokers_) {
    if (peer != id()) {
      Send<cluster::HeartbeatMsg>(peer, incarnation());
    }
  }
  if (is_master_) {
    // Verify mastership against the registry (catches session expiry and a
    // replacement master after a heal).
    auto get = std::make_shared<zksvc::ZkGet>();
    get->request_id = next_zk_request_++;
    get->path = kMasterPath;
    SendEnvelope(zk_, get);

    if (options_.resign_when_isolated) {
      size_t reachable = 1;
      for (net::NodeId peer : brokers_) {
        if (peer != id() && detector_.IsAlive(peer, Now())) {
          ++reachable;
        }
      }
      if (reachable < Majority()) {
        ResignMastership("cannot reach a majority of replicas");
      }
    }
  }
}

void Broker::TryBecomeMaster() {
  if (is_master_ || create_pending_) {
    return;
  }
  create_pending_ = true;
  auto create = std::make_shared<zksvc::ZkCreate>();
  create->request_id = next_zk_request_++;
  create->path = kMasterPath;
  create->data = std::to_string(id());
  create->ephemeral = true;
  SendEnvelope(zk_, create);
  // If the registry is unreachable the reply never comes; retry later.
  After(options_.zk_session_timeout, [this]() {
    if (create_pending_) {
      create_pending_ = false;
      TryBecomeMaster();
    }
  });
}

void Broker::ResignMastership(const std::string& reason) {
  TraceEvent("resign", reason);
  is_master_ = false;
  auto del = std::make_shared<zksvc::ZkDelete>();
  del->path = kMasterPath;
  SendEnvelope(zk_, del);
  {
    auto watch = std::make_shared<zksvc::ZkWatch>();
    watch->path = kMasterPath;
    SendEnvelope(zk_, watch);
  }
}

void Broker::ApplyLocal(QueueOp op, const std::string& queue, const std::string& value) {
  std::deque<std::string>& q = queues_[queue];
  if (op == QueueOp::kEnqueue) {
    if (std::find(q.begin(), q.end(), value) == q.end()) {
      q.push_back(value);
    }
  } else {
    auto it = std::find(q.begin(), q.end(), value);
    if (it != q.end()) {
      q.erase(it);
    }
  }
}

void Broker::Reply(net::NodeId client, uint64_t request_id, bool ok, const std::string& value,
                   bool not_master) {
  auto reply = std::make_shared<ClientQueueReply>();
  reply->request_id = request_id;
  reply->ok = ok;
  reply->not_master = not_master;
  reply->value = value;
  SendEnvelope(client, reply);
}

void Broker::HandleClientRequest(const net::Envelope& envelope,
                                 const ClientQueueRequest& request) {
  if (!is_master_ || (options_.require_zk_lease && !LeaseValid())) {
    Reply(envelope.src, request.request_id, /*ok=*/false, "", /*not_master=*/true);
    return;
  }
  if (request.op == QueueOp::kEnqueue) {
    ApplyLocal(QueueOp::kEnqueue, request.queue, request.value);
    const uint64_t seq = next_seq_++;
    PendingOp pending;
    pending.client = envelope.src;
    pending.request_id = request.request_id;
    pending.op = QueueOp::kEnqueue;
    pending.queue = request.queue;
    pending.value = request.value;
    pending.acks.insert(id());
    pending.needed = Majority();
    for (net::NodeId peer : brokers_) {
      if (peer == id()) {
        continue;
      }
      auto repl = std::make_shared<ReplOp>();
      repl->seq = seq;
      repl->op = QueueOp::kEnqueue;
      repl->queue = request.queue;
      repl->value = request.value;
      SendEnvelope(peer, repl);
    }
    if (pending.acks.size() >= pending.needed) {
      Reply(envelope.src, request.request_id, /*ok=*/true, "");
      return;
    }
    pending.timer = After(options_.replication_timeout, [this, seq]() {
      FinishOp(seq, /*ok=*/false);
    });
    pending_.emplace(seq, std::move(pending));
    return;
  }

  // Dequeue.
  std::deque<std::string>& q = queues_[request.queue];
  if (q.empty()) {
    Reply(envelope.src, request.request_id, /*ok=*/true, "");
    return;
  }
  const std::string candidate = q.front();
  if (!options_.sync_dequeue) {
    // The AMQ-6978 path: commit locally, replicate asynchronously. An
    // isolated master hands the message out even though the replicas (and a
    // future new master) still hold it.
    q.pop_front();
    for (net::NodeId peer : brokers_) {
      if (peer == id()) {
        continue;
      }
      auto repl = std::make_shared<ReplOp>();
      repl->op = QueueOp::kDequeue;
      repl->queue = request.queue;
      repl->value = candidate;
      SendEnvelope(peer, repl);
    }
    Reply(envelope.src, request.request_id, /*ok=*/true, candidate);
    return;
  }
  const uint64_t seq = next_seq_++;
  PendingOp pending;
  pending.client = envelope.src;
  pending.request_id = request.request_id;
  pending.op = QueueOp::kDequeue;
  pending.queue = request.queue;
  pending.value = candidate;
  pending.acks.insert(id());
  pending.needed = Majority();
  for (net::NodeId peer : brokers_) {
    if (peer == id()) {
      continue;
    }
    auto repl = std::make_shared<ReplOp>();
    repl->seq = seq;
    repl->op = QueueOp::kDequeue;
    repl->queue = request.queue;
    repl->value = candidate;
    SendEnvelope(peer, repl);
  }
  if (pending.acks.size() >= pending.needed) {
    pending_.emplace(seq, std::move(pending));
    FinishOp(seq, /*ok=*/true);
    return;
  }
  pending.timer = After(options_.replication_timeout, [this, seq]() {
    FinishOp(seq, /*ok=*/false);
  });
  pending_.emplace(seq, std::move(pending));
}

void Broker::HandleReplOp(const net::Envelope& envelope, const ReplOp& msg) {
  ApplyLocal(msg.op, msg.queue, msg.value);
  if (msg.seq != 0) {
    auto ack = std::make_shared<ReplAck>();
    ack->seq = msg.seq;
    SendEnvelope(envelope.src, ack);
  }
}

void Broker::HandleReplAck(const net::Envelope& envelope, const ReplAck& msg) {
  auto it = pending_.find(msg.seq);
  if (it == pending_.end()) {
    return;
  }
  it->second.acks.insert(envelope.src);
  if (it->second.acks.size() >= it->second.needed) {
    FinishOp(msg.seq, /*ok=*/true);
  }
}

void Broker::FinishOp(uint64_t seq, bool ok) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return;
  }
  PendingOp pending = std::move(it->second);
  pending_.erase(it);
  simulator()->Cancel(pending.timer);
  if (pending.op == QueueOp::kDequeue) {
    if (ok) {
      ApplyLocal(QueueOp::kDequeue, pending.queue, pending.value);
      Reply(pending.client, pending.request_id, /*ok=*/true, pending.value);
      return;
    }
    // Compensate replicas that already removed the message.
    for (net::NodeId peer : pending.acks) {
      if (peer == id()) {
        continue;
      }
      auto repl = std::make_shared<ReplOp>();
      repl->op = QueueOp::kEnqueue;
      repl->queue = pending.queue;
      repl->value = pending.value;
      SendEnvelope(peer, repl);
    }
    Reply(pending.client, pending.request_id, /*ok=*/false, "");
    return;
  }
  Reply(pending.client, pending.request_id, ok, "");
}

void Broker::OnMessage(const net::Envelope& envelope) {
  if (std::find(brokers_.begin(), brokers_.end(), envelope.src) != brokers_.end()) {
    detector_.RecordHeartbeat(envelope.src, Now());
  }
  const net::Message& msg = *envelope.msg;
  if (dynamic_cast<const zksvc::ZkPong*>(&msg) != nullptr) {
    last_zk_pong_ = Now();
    return;
  }
  if (auto* create_reply = dynamic_cast<const zksvc::ZkCreateReply*>(&msg)) {
    create_pending_ = false;
    if (create_reply->ok) {
      is_master_ = true;
      TraceEvent("master", "acquired mastership");
    } else {
      {
    auto watch = std::make_shared<zksvc::ZkWatch>();
    watch->path = kMasterPath;
    SendEnvelope(zk_, watch);
  }
    }
    return;
  }
  if (auto* event = dynamic_cast<const zksvc::ZkEvent*>(&msg)) {
    if (event->deleted && !is_master_) {
      TryBecomeMaster();
    } else if (!is_master_) {
      {
    auto watch = std::make_shared<zksvc::ZkWatch>();
    watch->path = kMasterPath;
    SendEnvelope(zk_, watch);
  }  // re-arm
    }
    return;
  }
  if (auto* get_reply = dynamic_cast<const zksvc::ZkGetReply*>(&msg)) {
    if (is_master_) {
      if (!get_reply->exists) {
        // Our session expired while partitioned away; the entry is gone.
        is_master_ = false;
        TraceEvent("demoted", "mastership entry vanished");
        TryBecomeMaster();
      } else if (get_reply->data != std::to_string(id())) {
        // Someone else took over; fall in line and resync.
        is_master_ = false;
        TraceEvent("demoted", "new master=" + get_reply->data);
        const net::NodeId new_master = static_cast<net::NodeId>(std::stol(get_reply->data));
        Send<QueueSyncRequest>(new_master);
        {
    auto watch = std::make_shared<zksvc::ZkWatch>();
    watch->path = kMasterPath;
    SendEnvelope(zk_, watch);
  }
      }
    }
    return;
  }
  if (dynamic_cast<const QueueSyncRequest*>(&msg) != nullptr) {
    auto snapshot = std::make_shared<QueueSnapshot>();
    snapshot->queues = queues_;
    SendEnvelope(envelope.src, snapshot);
    return;
  }
  if (auto* snapshot = dynamic_cast<const QueueSnapshot*>(&msg)) {
    if (!is_master_) {
      queues_ = snapshot->queues;
      TraceEvent("synced");
    }
    return;
  }
  if (auto* request = dynamic_cast<const ClientQueueRequest*>(&msg)) {
    HandleClientRequest(envelope, *request);
    return;
  }
  if (auto* repl = dynamic_cast<const ReplOp*>(&msg)) {
    HandleReplOp(envelope, *repl);
    return;
  }
  if (auto* ack = dynamic_cast<const ReplAck*>(&msg)) {
    HandleReplAck(envelope, *ack);
    return;
  }
}

Broker::State Broker::CaptureState() const {
  State state;
  state.is_master = is_master_;
  state.create_pending = create_pending_;
  state.last_zk_pong = last_zk_pong_;
  state.next_zk_request = next_zk_request_;
  state.next_seq = next_seq_;
  state.queues = queues_;
  state.pending = pending_;
  state.detector_last_heard = detector_.last_heard();
  return state;
}

void Broker::RestoreState(const State& state) {
  is_master_ = state.is_master;
  create_pending_ = state.create_pending;
  last_zk_pong_ = state.last_zk_pong;
  next_zk_request_ = state.next_zk_request;
  next_seq_ = state.next_seq;
  queues_ = state.queues;
  pending_ = state.pending;
  detector_.set_last_heard(state.detector_last_heard);
}

}  // namespace mqueue
