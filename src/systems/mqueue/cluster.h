// A wired mqueue deployment: brokers, the coordination-service registry,
// and clients.

#ifndef SYSTEMS_MQUEUE_CLUSTER_H_
#define SYSTEMS_MQUEUE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/history.h"
#include "neat/env.h"
#include "net/partition.h"
#include "systems/mqueue/broker.h"
#include "systems/mqueue/client.h"
#include "systems/zk/registry.h"

namespace mqueue {

class Cluster {
 public:
  struct Config {
    Options options;
    int num_clients = 2;
    uint64_t seed = 1;
    bool use_switch_backend = true;
  };

  explicit Cluster(const Config& config);

  sim::Simulator& simulator() { return env_.simulator(); }
  net::Partitioner& partitioner() { return env_.partitioner(); }
  check::History& history() { return env_.history(); }
  neat::TestEnv& env() { return env_; }
  const std::vector<net::NodeId>& broker_ids() const { return broker_ids_; }
  net::NodeId zk_id() const { return zk_id_; }
  Broker& broker(net::NodeId id);
  Client& client(int index) { return *clients_.at(static_cast<size_t>(index)); }
  zksvc::Registry& registry() { return *registry_; }

  void Settle(sim::Duration duration) { env_.Sleep(duration); }

  check::Operation Send(int client, const std::string& queue, const std::string& value);
  check::Operation Receive(int client, const std::string& queue, bool final_drain = false);

  // The broker currently holding mastership per the registry
  // (net::kInvalidNode when none).
  net::NodeId MasterPerRegistry() const;
  // Brokers currently *believing* they are master (2+ = split brain).
  std::vector<net::NodeId> SelfBelievedMasters() const;

  // --- snapshot / restore (NEAT fork executor) ---
  struct State {
    neat::TestEnv::State env;
    std::vector<Broker::State> brokers;
    zksvc::Registry::State registry;
    std::vector<Client::State> clients;
  };
  State CaptureState() const;
  void RestoreState(const State& state);

 private:
  check::Operation RunToCompletion(Client& c);

  neat::TestEnv env_;
  // detlint: allow(snapshot-field): cluster topology fixed at construction
  std::vector<net::NodeId> broker_ids_;
  // detlint: allow(snapshot-field): registry address fixed at construction
  net::NodeId zk_id_ = net::kInvalidNode;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::unique_ptr<zksvc::Registry> registry_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace mqueue

#endif  // SYSTEMS_MQUEUE_CLUSTER_H_
