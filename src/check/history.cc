#include "check/history.h"

#include <sstream>

namespace check {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kWrite:
      return "write";
    case OpType::kRead:
      return "read";
    case OpType::kDelete:
      return "delete";
    case OpType::kCas:
      return "cas";
    case OpType::kLock:
      return "lock";
    case OpType::kUnlock:
      return "unlock";
    case OpType::kSemAcquire:
      return "sem-acquire";
    case OpType::kSemRelease:
      return "sem-release";
    case OpType::kEnqueue:
      return "enqueue";
    case OpType::kDequeue:
      return "dequeue";
    case OpType::kSubmitTask:
      return "submit-task";
    case OpType::kOther:
      return "other";
  }
  return "?";
}

const char* OpStatusName(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kFail:
      return "fail";
    case OpStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

uint64_t History::Record(Operation op) {
  op.id = next_id_++;
  ops_.push_back(op);
  return op.id;
}

std::vector<Operation> History::OfType(OpType type) const {
  std::vector<Operation> out;
  for (const Operation& op : ops_) {
    if (op.type == type) {
      out.push_back(op);
    }
  }
  return out;
}

std::vector<Operation> History::ForKey(const std::string& key) const {
  std::vector<Operation> out;
  for (const Operation& op : ops_) {
    if (op.key == key) {
      out.push_back(op);
    }
  }
  return out;
}

std::optional<Operation> History::LastAckedWrite(const std::string& key) const {
  std::optional<Operation> best;
  for (const Operation& op : ops_) {
    if (op.type == OpType::kWrite && op.key == key && op.status == OpStatus::kOk) {
      if (!best || op.completed >= best->completed) {
        best = op;
      }
    }
  }
  return best;
}

std::string History::Dump() const {
  std::ostringstream os;
  for (const Operation& op : ops_) {
    os << "#" << op.id << " c" << op.client << " " << OpTypeName(op.type) << "(" << op.key;
    if (!op.value.empty()) {
      os << "=" << op.value;
    }
    os << ") -> " << OpStatusName(op.status) << " [" << sim::FormatTime(op.invoked) << ", "
       << sim::FormatTime(op.completed) << "]";
    if (op.final_read) {
      os << " final";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace check
