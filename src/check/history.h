// Operation histories and the violation vocabulary of the paper.
//
// Every client operation run through the NEAT test engine is recorded here
// with its invocation/completion times and outcome. The checkers in
// checkers.h scan a history for the catastrophic impacts the study
// catalogues (Table 2): data loss, stale reads, dirty reads, reappearance of
// deleted data, broken locks, double dequeueing, and double execution.

#ifndef CHECK_HISTORY_H_
#define CHECK_HISTORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace check {

enum class OpType {
  kWrite,
  kRead,
  kDelete,
  kCas,
  kLock,
  kUnlock,
  kSemAcquire,
  kSemRelease,
  kEnqueue,
  kDequeue,
  kSubmitTask,
  kOther,
};

enum class OpStatus {
  kOk,
  kFail,     // the system reported failure
  kTimeout,  // no response; outcome unknown
};

struct Operation {
  uint64_t id = 0;
  int client = 0;
  OpType type = OpType::kOther;
  std::string key;
  // For writes/enqueues: the value written. For reads/dequeues: the value
  // returned (empty when the key was absent / queue empty).
  std::string value;
  OpStatus status = OpStatus::kOk;
  sim::Time invoked = sim::kTimeZero;
  sim::Time completed = sim::kTimeZero;
  // Verification reads issued after the partition healed and the system
  // quiesced are marked final; several checkers only apply to them.
  bool final_read = false;
};

const char* OpTypeName(OpType type);
const char* OpStatusName(OpStatus status);

class History {
 public:
  // Records a completed operation and returns its id.
  uint64_t Record(Operation op);

  const std::vector<Operation>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  void Clear() { ops_.clear(); }

  // Operations on `key` of type `type`, in record order.
  std::vector<Operation> OfType(OpType type) const;
  std::vector<Operation> ForKey(const std::string& key) const;

  // The last successful write to `key` (by completion time), if any.
  std::optional<Operation> LastAckedWrite(const std::string& key) const;

  std::string Dump() const;

  // --- snapshot / restore (NEAT fork executor) ---
  //
  // The history is append-only, so a snapshot is just its length plus the
  // id counter; restore rewinds to that length.
  struct State {
    uint64_t next_id = 1;
    size_t size = 0;
  };
  State CaptureState() const { return State{next_id_, ops_.size()}; }
  void RestoreState(const State& state) {
    next_id_ = state.next_id;
    if (ops_.size() > state.size) {
      ops_.resize(state.size);
    }
  }

 private:
  uint64_t next_id_ = 1;
  std::vector<Operation> ops_;
};

// One detected safety violation.
struct Violation {
  // Matches the impact vocabulary of Table 2, e.g. "data loss", "stale
  // read", "dirty read", "reappearance of deleted data", "broken locks",
  // "double dequeue", "double execution", "data unavailability".
  std::string impact;
  std::string description;
  std::vector<uint64_t> op_ids;
};

}  // namespace check

#endif  // CHECK_HISTORY_H_
