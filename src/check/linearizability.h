// A Wing & Gong linearizability checker for register histories.
//
// Used by the property tests: the strongly consistent model systems (Raft
// KV, primary-backup KV with a correct configuration) must produce
// linearizable histories under arbitrary partitions, while the flawed
// variants measurably do not. Each key is checked independently as a
// last-write-wins register. Timed-out operations are ambiguous: a timed-out
// write may have taken effect at any point after its invocation or never;
// timed-out reads impose no constraint.

#ifndef CHECK_LINEARIZABILITY_H_
#define CHECK_LINEARIZABILITY_H_

#include <string>

#include "check/history.h"

namespace check {

struct LinearizabilityResult {
  bool linearizable = true;
  // For a violation: the key and a short explanation. For success: empty.
  std::string reason;
};

// Checks every key in the history. Histories with more than 62 read/write
// operations on a single key are rejected (checker is exponential; tests
// stay far below this).
LinearizabilityResult CheckLinearizable(const History& history);

// Checks only the given key.
LinearizabilityResult CheckLinearizableKey(const History& history, const std::string& key);

}  // namespace check

#endif  // CHECK_LINEARIZABILITY_H_
